"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments whose tooling predates PEP 660
editable installs (``python setup.py develop`` / legacy ``pip install -e .``).
"""

from setuptools import setup

setup()
