"""Unit tests for deterministic static timing analysis."""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark, c17
from repro.sta.dsta import DeterministicSTA


@pytest.fixture
def dsta(delay_model):
    return DeterministicSTA(delay_model)


class TestArrivalTimes:
    def test_chain_arrivals_accumulate(self, dsta, chain_circuit):
        arrival, gate_delays = dsta.arrival_times(chain_circuit)
        assert arrival["in"] == 0.0
        assert arrival["n1"] == pytest.approx(gate_delays["i1"])
        assert arrival["n2"] == pytest.approx(gate_delays["i1"] + gate_delays["i2"])
        assert arrival["out1"] == pytest.approx(
            gate_delays["i1"] + gate_delays["i2"] + gate_delays["i3"]
        )

    def test_max_over_fanin(self, dsta, c17_circuit):
        arrival, gate_delays = dsta.arrival_times(c17_circuit)
        g22_inputs = max(arrival["N10"], arrival["N16"])
        assert arrival["N22"] == pytest.approx(g22_inputs + gate_delays["g22"])

    def test_max_delay(self, dsta, c17_circuit):
        arrival, _ = dsta.arrival_times(c17_circuit)
        assert dsta.max_delay(c17_circuit) == pytest.approx(
            max(arrival["N22"], arrival["N23"])
        )


class TestAnalyze:
    def test_default_period_gives_zero_worst_slack(self, dsta, c17_circuit):
        report = dsta.analyze(c17_circuit)
        assert report.clock_period == pytest.approx(report.worst_arrival)
        assert min(report.slack[n] for n in c17_circuit.primary_outputs) == pytest.approx(0.0, abs=1e-9)

    def test_explicit_period_sets_wns(self, dsta, c17_circuit):
        relaxed = dsta.analyze(c17_circuit, clock_period=10000.0)
        assert relaxed.wns == pytest.approx(10000.0 - relaxed.worst_arrival)
        assert all(s >= 0 for s in relaxed.slack.values())

    def test_tight_period_gives_negative_slack(self, dsta, c17_circuit):
        tight = dsta.analyze(c17_circuit, clock_period=1.0)
        assert tight.wns < 0
        assert min(tight.slack.values()) < 0

    def test_required_minus_arrival_equals_slack(self, dsta, c17_circuit):
        report = dsta.analyze(c17_circuit)
        for net, arr in report.arrival.items():
            assert report.slack[net] == pytest.approx(report.required[net] - arr)

    def test_no_outputs_raises(self, dsta):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("empty", primary_inputs=["a"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            dsta.analyze(circuit)


class TestVectorizedPath:
    """The levelized IR path must be *bit-identical* to the scalar walk.

    ``max`` over floats and float addition are exact operations, so there
    is no tolerance here: every arrival must match to the last bit on every
    registry circuit.
    """

    @pytest.mark.parametrize("name", ["c17", *BENCHMARK_NAMES])
    def test_bit_identical_on_registry(self, delay_model, name):
        circuit = c17() if name == "c17" else build_benchmark(name)
        scalar_arrival, scalar_delays = DeterministicSTA(
            delay_model
        ).arrival_times(circuit)
        vec_arrival, vec_delays = DeterministicSTA(
            delay_model, vectorized=True
        ).arrival_times(circuit)
        assert vec_delays == scalar_delays
        assert vec_arrival == scalar_arrival

    def test_analyze_report_matches(self, delay_model, c17_circuit):
        scalar = DeterministicSTA(delay_model).analyze(c17_circuit)
        vec = DeterministicSTA(delay_model, vectorized=True).analyze(c17_circuit)
        assert vec.arrival == scalar.arrival
        assert vec.required == scalar.required
        assert vec.slack == scalar.slack
        assert vec.critical_path == scalar.critical_path
        assert vec.worst_output == scalar.worst_output
        assert vec.worst_arrival == scalar.worst_arrival

    def test_floating_inputs_read_as_zero(self, delay_model):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("f", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "NAND2", ["a", "ghost"], "y")
        scalar_arrival, _ = DeterministicSTA(delay_model).arrival_times(circuit)
        vec_arrival, _ = DeterministicSTA(
            delay_model, vectorized=True
        ).arrival_times(circuit)
        assert vec_arrival == scalar_arrival
        assert "ghost" not in vec_arrival  # reads as 0.0 via .get, like scalar


class TestCriticalPath:
    def test_path_is_connected_and_ends_at_worst_output(self, dsta, c17_circuit):
        report = dsta.analyze(c17_circuit)
        path = report.critical_path
        assert path  # non-empty
        last_gate = c17_circuit.gate(path[-1])
        assert last_gate.output == report.worst_output
        # Consecutive gates must be connected.
        for upstream, downstream in zip(path, path[1:], strict=False):
            up = c17_circuit.gate(upstream)
            down = c17_circuit.gate(downstream)
            assert up.output in down.inputs

    def test_path_delay_close_to_worst_arrival(self, dsta, chain_circuit):
        report = dsta.analyze(chain_circuit)
        assert report.path_delay() == pytest.approx(report.worst_arrival)

    def test_critical_path_changes_with_sizing(self, dsta, c17_circuit):
        # The paper notes the WNS path must be re-traced during sizing because
        # it moves; upsizing the current path's gates shifts both arrivals and
        # (typically) the path itself through the extra load on side branches.
        report_before = dsta.analyze(c17_circuit)
        for name in report_before.critical_path:
            c17_circuit.set_size(name, 6)
        report_after = dsta.analyze(c17_circuit)
        assert (
            report_after.critical_path != report_before.critical_path
            or report_after.worst_arrival != pytest.approx(report_before.worst_arrival)
        )

    def test_critical_path_shortcut(self, dsta, c17_circuit):
        assert dsta.critical_path(c17_circuit) == dsta.analyze(c17_circuit).critical_path
