"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_circuit, main
from repro.circuits.registry import c17
from repro.netlist.bench import write_bench


class TestLoadCircuit:
    def test_registry_name(self):
        assert load_circuit("c17").num_gates() == 6

    def test_bench_file(self, tmp_path):
        path = tmp_path / "mini.bench"
        path.write_text(write_bench(c17()))
        circuit = load_circuit(str(path))
        assert circuit.num_gates() == 6
        assert circuit.name == "mini"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_circuit("not_a_circuit")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_defaults(self):
        args = build_parser().parse_args(["size", "c17"])
        assert args.lam == 3.0
        assert args.circuit == "c17"

    def test_table1_lambda_list(self):
        args = build_parser().parse_args(["table1", "c17", "--lam", "3", "6", "9"])
        assert args.lam == [3.0, 6.0, 9.0]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "c17"]) == 0
        out = capsys.readouterr().out
        assert "gates          : 6" in out
        assert "validation     : ok" in out

    def test_sta(self, capsys):
        assert main(["sta", "c17"]) == 0
        out = capsys.readouterr().out
        assert "worst arrival" in out
        assert "critical path" in out

    def test_ssta_with_mc_and_yield(self, capsys):
        assert main(["ssta", "c17", "--monte-carlo", "200", "--period", "200"]) == 0
        out = capsys.readouterr().out
        assert "FASSTA" in out and "FULLSSTA" in out
        assert "MonteCarlo(200)" in out
        assert "timing yield" in out

    def test_size(self, capsys):
        assert main(["size", "c17", "--lam", "3", "--max-iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "sigma" in out
        assert "area" in out

    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "c6288" in out
        assert "2980" in out  # the paper's gate count column

    def test_info_on_bench_file(self, tmp_path, capsys):
        path = tmp_path / "c17.bench"
        path.write_text(write_bench(c17()))
        assert main(["info", str(path)]) == 0
        assert "gates          : 6" in capsys.readouterr().out
