"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_circuit, main
from repro.circuits.registry import c17
from repro.netlist.bench import write_bench
from repro.netlist.verilog import write_verilog


class TestLoadCircuit:
    def test_registry_name(self):
        assert load_circuit("c17").num_gates() == 6

    def test_bench_file(self, tmp_path):
        path = tmp_path / "mini.bench"
        path.write_text(write_bench(c17()))
        circuit = load_circuit(str(path))
        assert circuit.num_gates() == 6
        assert circuit.name == "mini"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_circuit("not_a_circuit")

    def test_verilog_file(self, tmp_path):
        path = tmp_path / "mini.v"
        path.write_text(write_verilog(c17()))
        circuit = load_circuit(str(path))
        assert circuit.num_gates() == 6

    def test_verilog_file_with_top(self, tmp_path):
        path = tmp_path / "pair.v"
        path.write_text(
            "module one (input a, output y);\n"
            "  BUF u (.Y(y), .A(a));\n"
            "endmodule\n"
            "module two (input a, output y);\n"
            "  INV u0 (.Y(w), .A(a));\n"
            "  INV u1 (.Y(y), .A(w));\n"
            "endmodule\n"
        )
        assert load_circuit(str(path), top="one").num_gates() == 1
        assert load_circuit(str(path), top="two").num_gates() == 2

    def test_generated_spec(self):
        assert load_circuit("gen:3,10").num_gates() == 30

    def test_named_scale_point(self):
        assert load_circuit("gen1k").num_gates() == 1000


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_defaults(self):
        args = build_parser().parse_args(["size", "c17"])
        assert args.lam == 3.0
        assert args.circuit == "c17"

    def test_table1_lambda_list(self):
        args = build_parser().parse_args(["table1", "c17", "--lam", "3", "6", "9"])
        assert args.lam == [3.0, 6.0, 9.0]

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.out == "sweep-results"
        assert args.resume is False
        assert args.quick is False
        assert args.kind == "table1"
        assert args.lam == [3.0, 9.0]
        assert args.target_yield == [0.99]

    def test_size_yield_flags(self):
        args = build_parser().parse_args(
            ["size", "c17", "--objective", "yield", "--target-yield", "0.95",
             "--max-area-ratio", "1.2", "--pdf-samples", "21"]
        )
        assert args.objective == "yield"
        assert args.target_yield == 0.95
        assert args.max_area_ratio == 1.2
        assert args.pdf_samples == 21

    def test_size_defaults_to_cost_objective(self):
        args = build_parser().parse_args(["size", "c17"])
        assert args.objective == "cost"
        assert args.max_area_ratio is None

    def test_sweep_yield_kind(self):
        args = build_parser().parse_args(
            ["sweep", "c17", "--kind", "yield", "--target-yield", "0.9", "0.99"]
        )
        assert args.kind == "yield"
        assert args.target_yield == [0.9, 0.99]

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "c17", "alu1", "--jobs", "4", "--out", "/tmp/x",
             "--resume", "--quick", "--kind", "fig4", "--lam", "0", "3"]
        )
        assert args.circuits == ["c17", "alu1"]
        assert args.jobs == 4
        assert args.resume and args.quick
        assert args.kind == "fig4"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "c17"]) == 0
        out = capsys.readouterr().out
        assert "gates          : 6" in out
        assert "validation     : ok" in out

    def test_sta(self, capsys):
        assert main(["sta", "c17"]) == 0
        out = capsys.readouterr().out
        assert "worst arrival" in out
        assert "critical path" in out

    def test_ssta_with_mc_and_yield(self, capsys):
        assert main(["ssta", "c17", "--monte-carlo", "200", "--period", "200"]) == 0
        out = capsys.readouterr().out
        assert "FASSTA" in out and "FULLSSTA" in out
        assert "MonteCarlo(200)" in out
        assert "timing yield" in out

    def test_size(self, capsys):
        assert main(["size", "c17", "--lam", "3", "--max-iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "sigma" in out
        assert "area" in out

    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "c6288" in out
        assert "2980" in out  # the paper's gate count column

    def test_info_on_bench_file(self, tmp_path, capsys):
        path = tmp_path / "c17.bench"
        path.write_text(write_bench(c17()))
        assert main(["info", str(path)]) == 0
        assert "gates          : 6" in capsys.readouterr().out

    def test_info_on_verilog_file_with_frontend_report(self, tmp_path, capsys):
        path = tmp_path / "hier.v"
        path.write_text(
            "module leaf (input a, input b, output y);\n"
            "  AND2 u (.Y(y), .A(a), .B(b));\n"
            "endmodule\n"
            "module top (input p, input q, output o, output o2);\n"
            "  wire w;\n"
            "  leaf u0 (.a(p), .b(q), .y(w));\n"
            "  assign o = w;\n"
            "  assign o2 = o;\n"
            "endmodule\n"
        )
        assert main(["info", str(path), "--top", "top", "--frontend"]) == 0
        out = capsys.readouterr().out
        assert "front end:" in out
        assert "merged nets" in out
        assert "repair buffers: 1" in out

    def test_sta_on_generated_circuit(self, capsys):
        assert main(["sta", "gen:3,10"]) == 0
        assert "worst arrival" in capsys.readouterr().out

    def test_lint_on_verilog_file(self, tmp_path, capsys):
        path = tmp_path / "mini.v"
        path.write_text(write_verilog(c17()))
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_size_explain_path(self, capsys):
        assert main(["size", "c17", "--max-iterations", "2",
                     "--explain-path"]) == 0
        out = capsys.readouterr().out
        assert "WNSS path of the final design" in out
        # Every decision line names its method and the chosen net.
        decision_lines = [
            line for line in out.splitlines()
            if "->" in line and ("dominance" in line or "sensitivity" in line
                                 or "single" in line)
        ]
        assert decision_lines
        assert all("[" in line and "]" in line for line in decision_lines)

    def test_report_text(self, capsys):
        assert main(["report", "c17", "--top-k", "3",
                     "--monte-carlo", "500"]) == 0
        out = capsys.readouterr().out
        assert "Statistical criticality report: c17" in out
        assert "Gate criticality" in out
        assert "Top statistical paths" in out
        assert "Monte-Carlo cross-check" in out
        assert "slack pdf of" in out

    def test_report_json(self, capsys):
        import json

        assert main(["report", "c17", "--format", "json", "--top-k", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["circuit"] == "c17"
        assert len(data["top_paths"]) == 2
        assert data["source_mass"] == pytest.approx(1.0, abs=1e-9)
        assert "monte_carlo" not in data

    def test_report_markdown_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "crit.md"
        assert main(["report", "c17", "--format", "markdown",
                     "--baseline", "--out", str(out_file)]) == 0
        assert f"report written to {out_file}" in capsys.readouterr().out
        text = out_file.read_text()
        assert text.startswith("# Statistical criticality report")
        assert "| gate | cell | size | criticality |" in text

    def test_report_rejects_bad_top_k(self, capsys):
        assert main(["report", "c17", "--top-k", "0"]) == 2
        assert "--top-k" in capsys.readouterr().err

    def test_table1_substrate_flags_take_effect(self, capsys):
        # Regression: --alpha/--random-sigma/--sizes-per-cell were parsed but
        # never reached the runs.  With variation zeroed out the original
        # sigma/mu column must read exactly 0.000.
        assert main(["table1", "c17", "--lam", "3", "--max-iterations", "2",
                     "--alpha", "0", "--random-sigma", "0"]) == 0
        out = capsys.readouterr().out
        row = next(line for line in out.splitlines() if line.startswith("c17"))
        assert row.split()[3] == "0.000"


class TestSweepCommand:
    def test_quick_sweep_then_resume(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        argv = ["sweep", "c17", "--quick", "--lam", "3", "9",
                "--jobs", "2", "--out", str(out_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 computed, 0 reused" in first
        artifacts = [p for p in out_dir.glob("table1__c17__lam*.json")
                     if not p.name.endswith(".trace.json")]
        assert len(artifacts) == 2
        # Every computed cell gets a span trace written beside its artifact.
        assert all(p.with_suffix(".trace.json").is_file() for p in artifacts)

        assert main([*argv, "--resume"]) == 0
        captured = capsys.readouterr()
        second = captured.out
        assert "0 computed, 2 reused" in second
        assert "cached" in captured.err  # progress lines go to stderr
        # The resumed table is identical to the computed one.
        table = lambda text: [l for l in text.splitlines() if l.startswith("c17")]
        assert table(first) == table(second)

    def test_fig4_rejects_monte_carlo(self, tmp_path, capsys):
        # fig4 cells have no MC validation path; silently dropping the flag
        # would let the user believe the points were validated.
        assert main(["sweep", "c17", "--kind", "fig4", "--monte-carlo", "100",
                     "--out", str(tmp_path)]) == 2
        assert "--monte-carlo" in capsys.readouterr().err

    def test_yield_rejects_monte_carlo(self, tmp_path, capsys):
        assert main(["sweep", "c17", "--kind", "yield", "--monte-carlo", "100",
                     "--out", str(tmp_path)]) == 2
        assert "--monte-carlo" in capsys.readouterr().err

    def test_yield_rejects_out_of_range_target(self, tmp_path, capsys):
        # Bad inputs get a clean CLI error, not a ValueError traceback.
        assert main(["sweep", "c17", "--kind", "yield", "--target-yield", "1.5",
                     "--out", str(tmp_path)]) == 2
        assert "--target-yield" in capsys.readouterr().err

    def test_criticality_sweep_then_resume(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        argv = ["sweep", "c17", "alu1", "--kind", "criticality",
                "--top-k", "3", "--monte-carlo", "400", "--out", str(out_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 computed, 0 reused" in first
        assert "source_mass" in first
        assert "mc_max_err" in first
        assert len([p for p in out_dir.glob("criticality__*__lam0.0__*.json")
                    if not p.name.endswith(".trace.json")]) == 2
        assert main([*argv, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 computed, 2 reused" in second
        table = lambda text: [l for l in text.splitlines()
                              if l.startswith(("c17", "alu1"))]
        assert table(first) == table(second)

    def test_criticality_sweep_accepts_monte_carlo(self, tmp_path, capsys):
        assert main(["sweep", "c17", "--kind", "criticality",
                     "--monte-carlo", "200", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mc_max_err" in out

    def test_criticality_sweep_rejects_bad_top_k(self, tmp_path, capsys):
        # Clean CLI error, not a CellSpec ValueError traceback.
        assert main(["sweep", "c17", "--kind", "criticality", "--top-k", "0",
                     "--out", str(tmp_path)]) == 2
        assert "--top-k" in capsys.readouterr().err

    def test_yield_sweep_then_resume(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        argv = ["sweep", "c17", "--quick", "--kind", "yield",
                "--target-yield", "0.9", "0.99", "--out", str(out_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 computed, 0 reused" in first
        assert "orig_period" in first
        assert len([p for p in out_dir.glob("yield__c17__lam0.0__y*.json")
                    if not p.name.endswith(".trace.json")]) == 2
        assert main([*argv, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 computed, 2 reused" in second
        table = lambda text: [l for l in text.splitlines() if l.startswith("c17")]
        assert table(first) == table(second)


class TestSizeYieldCommand:
    def test_size_with_yield_objective(self, capsys):
        assert main(["size", "c17", "--objective", "yield",
                     "--target-yield", "0.99", "--max-iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "objective=yield" in out
        assert "period@99%" in out
        assert "yield at" in out

    def test_size_with_area_constrained_yield(self, capsys):
        assert main(["size", "c17", "--objective", "yield",
                     "--target-yield", "0.9", "--max-area-ratio", "1.1",
                     "--max-iterations", "3"]) == 0
        assert "period@90%" in capsys.readouterr().out

    def test_size_rejects_bad_yield_options(self, capsys):
        assert main(["size", "c17", "--objective", "yield",
                     "--target-yield", "0.3"]) == 2
        assert "--target-yield" in capsys.readouterr().err
        assert main(["size", "c17", "--max-area-ratio", "0.5"]) == 2
        assert "--max-area-ratio" in capsys.readouterr().err
        assert main(["size", "c17", "--pdf-samples", "2"]) == 2
        assert "--pdf-samples" in capsys.readouterr().err

    def test_fig4_sweep(self, tmp_path, capsys):
        assert main(["sweep", "c17", "--quick", "--kind", "fig4",
                     "--lam", "0", "9", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "norm_mean" in out
        rows = [l for l in out.splitlines() if l.startswith("c17")]
        assert len(rows) == 2
        # The lambda = 0 point is the normalization anchor.
        assert rows[0].split()[4] == "1.000"


class TestLintCommand:
    def test_clean_registry_circuit_exits_zero(self, capsys):
        assert main(["lint", "c17"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_defective_bench_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.bench"
        path.write_text(
            "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n"
        )
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "DRC004" in out

    def test_json_format(self, tmp_path, capsys):
        import json as json_mod

        path = tmp_path / "bad.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n")
        assert main(["lint", str(path), "--format", "json"]) == 1
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["circuit"] == "bad"
        assert any(d["rule_id"] == "DRC004" for d in payload["diagnostics"])

    def test_fail_on_warning_promotes_warnings(self, capsys):
        # c432 carries a known dangling-gate warning (DRC006): exit 0 by
        # default, exit 1 under --fail-on warning.
        assert main(["lint", "c432"]) == 0
        capsys.readouterr()
        assert main(["lint", "c432", "--fail-on", "warning"]) == 1
        assert "DRC006" in capsys.readouterr().out

    def test_no_library_skips_library_rules(self, capsys):
        assert main(["lint", "c17", "--no-library"]) == 0
        out = capsys.readouterr().out
        assert "DRC007" not in out

    def test_list_rules_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DRC001", "DRC010"):
            assert rule_id in out

    def test_circuit_required_without_list_rules(self, capsys):
        assert main(["lint"]) == 2
        assert "required" in capsys.readouterr().err

    def test_size_preflight_rejects_defective_netlist(self, tmp_path, capsys):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n")
        assert main(["size", str(path), "--max-iterations", "1"]) == 1
        err = capsys.readouterr().err
        assert "pre-flight" in err
        assert "--no-preflight" in err
