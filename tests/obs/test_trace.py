"""Tracer semantics: free when disabled, correct nesting when enabled."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_SPAN,
    Stopwatch,
    Tracer,
    activate,
    clock,
    get_tracer,
    span,
    stopwatch,
    traced,
    tracing_enabled,
)


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_null_singleton(self):
        # No allocation when tracing is off: every disabled span() call
        # returns the one shared NULL_SPAN instance.
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.span("y", attr=1) is NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert tracer.spans == []
        assert tracer.records_since(0) == []

    def test_module_span_uses_null_when_current_disabled(self):
        with activate(Tracer(enabled=False)):
            assert not tracing_enabled()
            assert span("anything") is NULL_SPAN

    def test_disabled_overhead_bounded(self):
        # The acceptance bound is deliberately generous (no CI flakes): a
        # hot path carrying a disabled span must stay within microseconds
        # per call — orders of magnitude under any engine's gate loop.
        tracer = Tracer(enabled=False)
        n = 50_000
        start = clock()
        for _ in range(n):
            with tracer.span("hot"):
                pass
        per_call = (clock() - start) / n
        assert per_call < 20e-6
        assert tracer.spans == []

    def test_null_span_set_is_noop(self):
        assert NULL_SPAN.set(gates=7) is NULL_SPAN


class TestEnabledTracer:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # Children finish first: records are in completion order.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert inner.parent_id == outer.id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.id
        assert b.parent_id == root.id
        assert a.id != b.id

    def test_span_ids_embed_pid(self):
        import os

        tracer = Tracer(enabled=True)
        with tracer.span("x") as sp:
            pass
        assert sp.id.startswith(f"{os.getpid():x}.")

    def test_duration_and_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x", circuit="c17") as sp:
            sp.set(gates=6)
        assert sp.duration_s >= 0.0
        assert sp.attrs == {"circuit": "c17", "gates": 6}
        record = sp.to_dict()
        assert record["name"] == "x"
        assert record["parent"] is None

    def test_mark_and_records_since(self):
        tracer = Tracer(enabled=True)
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        names = [r["name"] for r in tracer.records_since(mark)]
        assert names == ["after"]

    def test_activate_restores_previous_tracer(self):
        previous = get_tracer()
        local = Tracer(enabled=True)
        with activate(local):
            assert get_tracer() is local
            with span("inside"):
                pass
        assert get_tracer() is previous
        assert [s.name for s in local.spans] == ["inside"]

    def test_nesting_across_tracers_interleaves_into_one_tree(self):
        # The span stack is shared by every tracer, so a local tracer's
        # span correctly parents under an enclosing global span.
        outer_tracer = Tracer(enabled=True)
        inner_tracer = Tracer(enabled=True)
        with outer_tracer.span("outer") as outer:
            with inner_tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.id
        assert [s.name for s in outer_tracer.spans] == ["outer"]
        assert [s.name for s in inner_tracer.spans] == ["inner"]

    def test_traced_decorator_records_per_call(self):
        local = Tracer(enabled=True)

        @traced("work")
        def work(x):
            return x + 1

        with activate(local):
            assert work(1) == 2
            assert work(2) == 3
        assert [s.name for s in local.spans] == ["work", "work"]

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert [s.name for s in tracer.spans] == ["boom"]
        # The stack unwound: a fresh span is a root again.
        with tracer.span("next") as sp:
            pass
        assert sp.parent_id is None


class TestStopwatch:
    def test_measures_elapsed(self):
        with stopwatch() as sw:
            pass
        assert isinstance(sw, Stopwatch)
        assert sw.elapsed_s >= 0.0
