"""End-to-end observability: flow traces, pinned metrics, campaign merges.

Uses c17 with a minimal sizer budget so every flow is tens of
milliseconds; the pinned cache-hit counters are exact because the sizing
flow is deterministic.  Tests that read the process-wide ``METRICS``
registry reset it first — it accumulates for the process lifetime.
"""

import json

import pytest

from repro.circuits.registry import build_benchmark
from repro.core.sizer import SizerConfig
from repro.flow import run_sizing_flow
from repro.obs import METRICS, load_trace, span_tree_coverage, validate_trace
from repro.runner.faults import FAULTS_ENV, FaultRule, fault_env_value
from repro.runner.sweep import run_cells, table1_specs

#: Smallest useful sizer budget (mirrors tests/runner/test_faults.py).
FAST = SizerConfig(lam=3.0, max_iterations=2, max_outputs_per_pass=1, patience=1)

QUICK_RETRY = {"retry_backoff": 0.01, "backoff_factor": 1.0}

#: The exact memoization counters of a deterministic c17 flow at this
#: budget.  These pin the *wiring* (a refactor that stops counting cache
#: hits fails here), and doubling under an accidental second accumulation
#: would too.
PINNED_FLOW_CONFIG = SizerConfig(lam=3.0, max_iterations=3)
PINNED_FLOW_COUNTERS = {
    "sizer.eval_cache_hits": 3,
    "sizer.eval_cache_misses": 13,
    "sizer.subcircuit_cache_hits": 10,
    "sizer.subcircuit_cache_misses": 6,
    "incremental.runs": 5,
    "incremental.full_runs": 1,
    "incremental.preview_runs": 1,
}


def _run_flow(config):
    from repro.library.delay_model import LookupTableDelayModel
    from repro.library.synthetic90nm import make_synthetic_90nm_library
    from repro.variation.model import VariationModel

    library = make_synthetic_90nm_library()
    return run_sizing_flow(
        build_benchmark("c17"),
        lam=config.lam,
        library=library,
        delay_model=LookupTableDelayModel(library),
        variation_model=VariationModel(),
        sizer_config=config,
    )


class TestFlowTrace:
    def test_span_tree_covers_flow_runtime(self):
        METRICS.reset()
        flow = _run_flow(PINNED_FLOW_CONFIG)
        assert flow.trace is not None
        assert validate_trace(flow.trace) == []
        coverage = span_tree_coverage(flow.trace)
        # The acceptance bar: the stage spans account for >= 95% of the
        # root flow span — unexplained wall-clock stays under 5%.
        assert coverage["coverage"] >= 0.95

    def test_runtime_property_derived_from_trace(self):
        METRICS.reset()
        flow = _run_flow(FAST)
        root = next(
            s for s in flow.trace["spans"] if s["parent"] is None
        )
        assert flow.total_runtime_seconds == root["duration_s"]

    def test_pinned_cache_metrics(self):
        METRICS.reset()
        flow = _run_flow(PINNED_FLOW_CONFIG)
        counters = flow.trace["metrics"]["counters"]
        for name, expected in PINNED_FLOW_COUNTERS.items():
            assert counters.get(name) == expected, name


class TestSweepTraces:
    def test_serial_sweep_writes_cell_and_campaign_traces(self, tmp_path):
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=1, out_dir=tmp_path)
        assert report.computed == 2

        for spec in specs:
            cell_trace = load_trace(
                spec.artifact_path(tmp_path).with_suffix(".trace.json")
            )
            assert validate_trace(cell_trace) == []
            roots = [s for s in cell_trace["spans"] if s["parent"] is None]
            assert [s["name"] for s in roots] == ["cell"]
            assert roots[0]["attrs"]["circuit"] == "c17"
            # The flow's stage spans nested under the cell span.
            names = {s["name"] for s in cell_trace["spans"]}
            assert {"cell", "flow", "sizer.optimize"} <= names

        campaign = load_trace(tmp_path / "trace.json")
        assert validate_trace(campaign) == []
        root = next(s for s in campaign["spans"] if s["parent"] is None)
        assert root["name"] == "sweep"
        assert root["attrs"]["cells"] == 2
        # Campaign metrics aggregate both cells plus orchestrator counters.
        counters = campaign["metrics"]["counters"]
        assert counters["sweep.cells_total"] == 2
        assert counters["sweep.cells_computed"] == 2
        # Each cell's flow analyzes original + final: two levelized
        # FULLSSTA runs per cell, aggregated across the campaign.
        assert counters["fullssta.runs.levelized"] >= 4

    def test_parallel_sweep_merges_spans_across_worker_pids(self, tmp_path):
        specs = table1_specs(["c17"], (3.0, 6.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=2, out_dir=tmp_path)
        assert report.computed == 3

        campaign = load_trace(tmp_path / "trace.json")
        assert validate_trace(campaign) == []
        # One cell span per cell, each re-rooted under the campaign root.
        root = next(s for s in campaign["spans"] if s["parent"] is None)
        cells = [s for s in campaign["spans"] if s["parent"] == root["id"]]
        assert len(cells) == 3
        lams = sorted(s["attrs"]["lam"] for s in cells)
        assert lams == [3.0, 6.0, 9.0]
        # Worker span ids embed the worker's pid; with jobs=2 at least two
        # distinct processes contributed to the merged tree.
        pids = {s["id"].split("/")[-1].split(".")[0] for s in cells}
        assert len(pids) >= 2
        # Report metrics match the persisted campaign trace metrics.
        assert campaign["metrics"] == report.metrics

    def test_cached_resume_preserves_campaign_trace(self, tmp_path):
        specs = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        run_cells(specs, jobs=1, out_dir=tmp_path)
        before = (tmp_path / "trace.json").read_bytes()
        report = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert report.skipped == 1 and report.computed == 0
        # Nothing ran, nothing changed.
        assert (tmp_path / "trace.json").read_bytes() == before
        # But the cached cell's shipped metrics still aggregate.
        assert report.metrics["counters"]["sweep.cells_cached"] == 1
        assert report.metrics["counters"]["fullssta.runs.levelized"] >= 2


class TestCrashedWorkerTrace:
    def test_crashed_attempt_synthesizes_failure_span(
        self, tmp_path, monkeypatch
    ):
        # The crashed worker can never ship its partial spans back; the
        # orchestrator synthesizes a cell.failure span from the ledger
        # record so the campaign trace still accounts for the lost attempt.
        monkeypatch.setenv(FAULTS_ENV, fault_env_value([
            FaultRule(mode="crash", circuit="c17", lam=9.0, attempts=(0,)),
        ]))
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=2, out_dir=tmp_path,
                           max_retries=2, **QUICK_RETRY)
        assert report.computed == 2 and report.failed == 0

        campaign = load_trace(tmp_path / "trace.json")
        assert validate_trace(campaign) == []
        failures = [s for s in campaign["spans"] if s["name"] == "cell.failure"]
        assert len(failures) == 1
        attrs = failures[0]["attrs"]
        assert attrs["category"] == "crash"
        assert attrs["attempt"] == 0
        assert attrs["retried"] is True
        root = next(s for s in campaign["spans"] if s["parent"] is None)
        assert failures[0]["parent"] == root["id"]
        # The successful retry's span tree is present alongside it.
        cell_spans = [s for s in campaign["spans"] if s["name"] == "cell"]
        assert len(cell_spans) == 2
        # The respawned worker shows up in the campaign metrics.
        assert report.metrics["counters"].get("pool.respawns", 0) >= 1
        assert report.metrics["counters"]["sweep.failures.crash"] == 1
        assert report.metrics["counters"]["sweep.retries"] == 1


class TestArtifactHygiene:
    def test_cell_traces_never_collide_with_artifacts(self, tmp_path):
        specs = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        run_cells(specs, jobs=1, out_dir=tmp_path)
        artifact = specs[0].artifact_path(tmp_path)
        trace_file = artifact.with_suffix(".trace.json")
        assert artifact.is_file() and trace_file.is_file()
        # The artifact itself stays schema-2 sweep payload, not a trace.
        payload = json.loads(artifact.read_text())
        assert "spans" not in payload
        assert payload["key"] == specs[0].key()
        # Resume treats the trace companion as a trace, not an artifact.
        report = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert report.skipped == 1
        (cached,) = report.results
        assert cached.from_cache and cached.trace is not None
        assert validate_trace(cached.trace) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
