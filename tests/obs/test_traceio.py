"""trace.json payloads: schema, validation, campaign merge, coverage."""

from __future__ import annotations

import pytest

from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    load_trace,
    merge_traces,
    span_tree_coverage,
    trace_payload,
    validate_trace,
    write_trace,
)


def _payload(names_and_parents, name="t"):
    """A payload from (id, parent, name) triples with unit durations."""
    spans = [
        {"id": sid, "parent": parent, "name": span_name,
         "start_unix": 0.0, "duration_s": 1.0, "attrs": {}}
        for sid, parent, span_name in names_and_parents
    ]
    return trace_payload(name, spans)


class TestTracePayload:
    def test_from_tracer_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        payload = trace_payload("run", tracer.spans)
        assert payload["schema"] == TRACE_SCHEMA
        assert validate_trace(payload) == []
        assert {s["name"] for s in payload["spans"]} == {"outer", "inner"}

    def test_unknown_parents_rerooted(self):
        # A flow recorded while an enclosing sweep-cell span was open: the
        # flow's root references a parent outside this payload and must be
        # normalized to None so the payload is self-contained.
        payload = _payload([("a.1", "not-here", "flow"), ("a.2", "a.1", "stage")])
        roots = [s for s in payload["spans"] if s["parent"] is None]
        assert [s["name"] for s in roots] == ["flow"]
        assert validate_trace(payload) == []

    def test_default_metrics_block(self):
        payload = _payload([("a.1", None, "x")])
        assert payload["metrics"] == {"counters": {}, "gauges": {},
                                      "histograms": {}}


class TestValidation:
    def test_roundtrip(self, tmp_path):
        payload = _payload([("a.1", None, "root"), ("a.2", "a.1", "child")])
        path = write_trace(tmp_path / "trace.json", payload)
        assert load_trace(path) == payload

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"schema": 99, "name": "x", "spans": [], '
                        '"metrics": {}}')
        with pytest.raises(ValueError, match="invalid trace"):
            load_trace(path)

    @pytest.mark.parametrize("mutate, problem", [
        (lambda p: p.update(schema=2), "schema"),
        (lambda p: p.update(name=None), "name"),
        (lambda p: p["spans"][0].pop("duration_s"), "missing field"),
        (lambda p: p["spans"][0].update(duration_s=-1.0), "negative duration"),
        (lambda p: p["spans"].append(dict(p["spans"][0])), "duplicated"),
        (lambda p: p["spans"][0].update(parent="ghost"), "unknown parent"),
        (lambda p: p.update(metrics={}), "metrics"),
    ])
    def test_structural_problems_reported(self, mutate, problem):
        payload = _payload([("a.1", None, "root")])
        mutate(payload)
        assert any(problem in text for text in validate_trace(payload))


class TestMergeTraces:
    def test_cells_rerooted_under_campaign_root(self):
        cell_a = _payload([("a.1", None, "cell"), ("a.2", "a.1", "flow")])
        cell_b = _payload([("a.1", None, "cell")])  # recycled pid-style ids
        merged = merge_traces([cell_a, cell_b], name="sweep")
        assert validate_trace(merged) == []
        by_id = {s["id"]: s for s in merged["spans"]}
        root = by_id["campaign.0"]
        assert root["parent"] is None
        assert root["name"] == "sweep"
        # Same original ids, disambiguated by the cell ordinal prefix.
        assert by_id["c0/a.1"]["parent"] == "campaign.0"
        assert by_id["c0/a.2"]["parent"] == "c0/a.1"
        assert by_id["c1/a.1"]["parent"] == "campaign.0"
        assert root["attrs"]["cells"] == 2

    def test_extra_spans_attach_to_root(self):
        failure = {"id": "fail.0", "parent": None, "name": "cell.failure",
                   "start_unix": 0.0, "duration_s": 0.5,
                   "attrs": {"category": "crash"}}
        merged = merge_traces([], name="sweep", extra_spans=[failure])
        by_id = {s["id"]: s for s in merged["spans"]}
        assert by_id["x/fail.0"]["parent"] == "campaign.0"
        assert validate_trace(merged) == []

    def test_root_duration_spans_children(self):
        early = _payload([("a.1", None, "cell")])
        early["spans"][0].update(start_unix=10.0, duration_s=2.0)
        late = _payload([("b.1", None, "cell")])
        late["spans"][0].update(start_unix=13.0, duration_s=4.0)
        merged = merge_traces([early, late])
        root = next(s for s in merged["spans"] if s["id"] == "campaign.0")
        assert root["start_unix"] == 10.0
        assert root["duration_s"] == pytest.approx(7.0)


class TestSpanTreeCoverage:
    def test_direct_children_over_root(self):
        payload = _payload([
            ("r.1", None, "flow"),
            ("r.2", "r.1", "stage_a"),
            ("r.3", "r.1", "stage_b"),
            ("r.4", "r.2", "nested"),  # grandchild: not double-counted
        ])
        root = payload["spans"][0]
        root["duration_s"] = 4.0
        coverage = span_tree_coverage(payload)
        assert coverage["root_s"] == 4.0
        assert coverage["children_s"] == 2.0
        assert coverage["coverage"] == pytest.approx(0.5)

    def test_empty_payload(self):
        assert span_tree_coverage({"spans": []})["coverage"] == 0.0
