"""MetricsRegistry semantics: updates, snapshots, cross-process merge."""

from __future__ import annotations

from repro.obs import MetricsRegistry


class TestUpdates:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        reg.counter("hits", 4)
        assert reg.get_counter("hits") == 5
        assert reg.get_counter("unknown") == 0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("queue_depth", 3)
        reg.gauge("queue_depth", 1.5)
        assert reg.get_gauge("queue_depth") == 1.5
        assert reg.get_gauge("unknown") is None

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (4.0, 6.0, 2.0):
            reg.histogram("cone_gates", value)
        hist = reg.get_histogram("cone_gates")
        assert hist == {"count": 3, "sum": 12.0, "min": 2.0, "max": 6.0,
                        "mean": 4.0}
        assert reg.get_histogram("unknown") is None

    def test_bool_and_reset(self):
        reg = MetricsRegistry()
        assert not reg
        reg.counter("x")
        assert reg
        reg.reset()
        assert not reg
        assert reg.get_counter("x") == 0


class TestSnapshotAndMerge:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", 2)
        reg.gauge("g", 7.0)
        reg.histogram("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("c")
        snap = reg.snapshot()
        reg.counter("c")
        assert snap["counters"]["c"] == 1

    def test_merge_combines_worker_snapshots(self):
        # The campaign pattern: two workers each snapshot their registry,
        # the parent folds both into one campaign-level registry.
        worker_a = MetricsRegistry()
        worker_a.counter("cache_hits", 10)
        worker_a.gauge("last_lam", 3.0)
        worker_a.histogram("cone", 4.0)

        worker_b = MetricsRegistry()
        worker_b.counter("cache_hits", 5)
        worker_b.gauge("last_lam", 9.0)
        worker_b.histogram("cone", 8.0)
        worker_b.histogram("cone", 2.0)

        campaign = MetricsRegistry()
        campaign.merge(worker_a.snapshot())
        campaign.merge(worker_b.snapshot())

        assert campaign.get_counter("cache_hits") == 15
        assert campaign.get_gauge("last_lam") == 9.0  # last write wins
        hist = campaign.get_histogram("cone")
        assert hist["count"] == 3
        assert hist["sum"] == 14.0
        assert hist["min"] == 2.0
        assert hist["max"] == 8.0

    def test_merge_ignores_empty_histograms(self):
        campaign = MetricsRegistry()
        campaign.merge({"histograms": {"h": None}})
        campaign.merge({"histograms": {"h": {"count": 0}}})
        assert campaign.get_histogram("h") is None

    def test_merge_roundtrips_through_json_types(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c", 3)
        reg.histogram("h", 2.5)
        wire = json.loads(json.dumps(reg.snapshot()))
        other = MetricsRegistry()
        other.merge(wire)
        assert other.snapshot() == reg.snapshot()
