"""Shared fixtures for the test suite.

Most tests need the same three substrates — a cell library, a delay model
and a variation model — plus a handful of small circuits.  Building the
synthetic library is cheap but not free, so the library-scoped fixtures are
session-scoped; circuits are function-scoped because many tests mutate gate
sizes.
"""

from __future__ import annotations

import os

import pytest

# Verify every fresh IR lowering against its documented invariants for the
# whole suite (see Circuit.compiled / repro.verify.ir_checks).  Cheap
# relative to the analyses the tests run, and it turns any lowering
# regression into an immediate, named failure.
os.environ.setdefault("REPRO_VERIFY_IR", "1")

from repro.circuits.registry import c17
from repro.circuits.adders import ripple_carry_adder
from repro.circuits.alu import alu
from repro.library.delay_model import LinearRCDelayModel, LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.netlist.circuit import Circuit
from repro.variation.model import VariationModel


@pytest.fixture(scope="session")
def library():
    """The default synthetic 90 nm-like library (7 sizes per cell type)."""
    return make_synthetic_90nm_library()


@pytest.fixture(scope="session")
def delay_model(library):
    """LUT delay model over the default library."""
    return LookupTableDelayModel(library)


@pytest.fixture(scope="session")
def linear_delay_model(library):
    """Linear-RC delay model over the default library."""
    return LinearRCDelayModel(library)


@pytest.fixture(scope="session")
def variation_model():
    """Default variation model (proportional + random components)."""
    return VariationModel()


@pytest.fixture
def c17_circuit():
    """The six-NAND ISCAS-85 toy circuit."""
    return c17()


@pytest.fixture
def small_adder():
    """A 4-bit ripple-carry adder (fast enough for optimizer tests)."""
    return ripple_carry_adder(4)


@pytest.fixture
def small_alu():
    """A 4-bit ALU (used by integration tests)."""
    return alu(4)


@pytest.fixture
def chain_circuit():
    """A simple 4-inverter chain with one fanout branch.

    Layout::

        in -> i1 -> i2 -> i3 -> out1
                     \\-> i4 -> out2
    """
    circuit = Circuit("chain", primary_inputs=["in"], primary_outputs=["out1", "out2"])
    circuit.add("i1", "INV", ["in"], "n1")
    circuit.add("i2", "INV", ["n1"], "n2")
    circuit.add("i3", "INV", ["n2"], "out1")
    circuit.add("i4", "INV", ["n2"], "out2")
    return circuit
