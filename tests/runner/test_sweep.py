"""Tests for the parallel sweep orchestrator and its artifacts.

All sweeps here run the smallest circuits with a reduced sizer budget; the
full-scale serial-vs-parallel comparison lives in
``benchmarks/bench_sweep.py``.
"""

import dataclasses
import json

import pytest

from repro.core.sizer import SizerConfig
from repro.runner.artifacts import (
    ARTIFACT_SCHEMA,
    artifact_path,
    load_artifact,
    spec_key,
    write_artifact,
)
from repro.runner.sweep import (
    CellSpec,
    SubstrateSpec,
    config_with_lam,
    evaluate_cell,
    fig4_specs,
    run_cells,
    table1_specs,
    yield_specs,
)

FAST = SizerConfig(lam=3.0, max_iterations=3, max_outputs_per_pass=2, patience=2)


def _row_fields_except_runtime(result):
    fields = dict(result.result)
    fields.pop("runtime_seconds", None)
    return fields


class TestConfigWithLam:
    def test_none_gives_default_at_lam(self):
        config = config_with_lam(None, 9.0)
        assert config == SizerConfig(lam=9.0)

    def test_preserves_every_other_field(self):
        base = SizerConfig(
            lam=3.0,
            subcircuit_depth=1,
            max_iterations=7,
            min_relative_gain=1e-3,
            sigma_target=5.0,
            pdf_samples=11,
            freeze_no_gain_gates=True,
            max_outputs_per_pass=2,
            patience=3,
        )
        replaced = config_with_lam(base, 9.0)
        assert replaced.lam == 9.0
        expected = dataclasses.asdict(base)
        expected["lam"] = 9.0
        assert dataclasses.asdict(replaced) == expected

    def test_same_lam_returns_config_unchanged(self):
        assert config_with_lam(FAST, FAST.lam) is FAST


class TestSpecsAndKeys:
    def test_table1_grid(self):
        specs = table1_specs(["c17", "alu1"], (3.0, 9.0), sizer_config=FAST)
        assert len(specs) == 4
        assert {(s.circuit, s.lam) for s in specs} == {
            ("c17", 3.0), ("c17", 9.0), ("alu1", 3.0), ("alu1", 9.0)
        }
        # Each cell's config carries the cell lambda but keeps FAST's budget.
        for spec in specs:
            assert spec.sizer_config.lam == spec.lam
            assert spec.sizer_config.max_iterations == FAST.max_iterations

    def test_key_is_deterministic_and_config_sensitive(self):
        spec = CellSpec(kind="table1", circuit="c17", lam=3.0, sizer_config=FAST)
        same = CellSpec(kind="table1", circuit="c17", lam=3.0, sizer_config=FAST)
        assert spec.key() == same.key()
        other_config = dataclasses.replace(FAST, max_iterations=5)
        changed = CellSpec(
            kind="table1", circuit="c17", lam=3.0, sizer_config=other_config
        )
        assert changed.key() != spec.key()

    def test_int_and_float_lambda_are_the_same_cell(self, tmp_path):
        as_int = CellSpec(kind="table1", circuit="c17", lam=3,
                          sizer_config=SizerConfig(lam=3))
        as_float = CellSpec(kind="table1", circuit="c17", lam=3.0,
                            sizer_config=SizerConfig(lam=3.0))
        assert as_int.key() == as_float.key()
        assert as_int.artifact_path(tmp_path) == as_float.artifact_path(tmp_path)

    def test_key_sensitive_to_seed(self):
        base = CellSpec(kind="table1", circuit="c17", lam=3.0)
        assert CellSpec(kind="table1", circuit="c17", lam=3.0, seed=1).key() != base.key()

    def test_key_sensitive_to_substrates_and_mc(self):
        base = CellSpec(kind="table1", circuit="c17", lam=3.0)
        assert (
            CellSpec(
                kind="table1", circuit="c17", lam=3.0,
                substrates=SubstrateSpec(proportional_alpha=0.3),
            ).key()
            != base.key()
        )
        assert (
            CellSpec(
                kind="table1", circuit="c17", lam=3.0, monte_carlo_samples=100
            ).key()
            != base.key()
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CellSpec(kind="table2", circuit="c17", lam=3.0)


class TestArtifacts:
    def test_roundtrip(self, tmp_path):
        path = artifact_path(tmp_path, "table1", "c17", 3.0)
        write_artifact(path, key="k", spec={"a": 1}, result={"b": 2.5},
                       runtime_seconds=1.25)
        payload = load_artifact(path)
        assert payload["schema"] == ARTIFACT_SCHEMA
        assert payload["key"] == "k"
        assert payload["result"] == {"b": 2.5}
        assert payload["runtime_seconds"] == 1.25

    def test_missing_and_corrupt_return_none(self, tmp_path):
        assert load_artifact(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_artifact(bad) is None

    def test_schema_mismatch_returns_none(self, tmp_path):
        path = artifact_path(tmp_path, "table1", "c17", 3.0)
        write_artifact(path, key="k", spec={}, result={}, runtime_seconds=0.0)
        payload = json.loads(path.read_text())
        payload["schema"] = ARTIFACT_SCHEMA + 1
        path.write_text(json.dumps(payload))
        assert load_artifact(path) is None

    def test_spec_key_order_independent(self):
        assert spec_key({"a": 1, "b": 2}) == spec_key({"b": 2, "a": 1})

    def test_close_lambdas_do_not_collide(self, tmp_path):
        # %g-style formatting would map 3.0 and 3.0000001 onto one file,
        # making the up-to-date resume state unreachable.
        a = artifact_path(tmp_path, "table1", "c17", 3.0)
        b = artifact_path(tmp_path, "table1", "c17", 3.0000001)
        assert a != b


class TestRunCells:
    def test_serial_matches_parallel(self, tmp_path):
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        assert serial.computed == 2 and parallel.computed == 2
        for a, b in zip(serial.results, parallel.results, strict=True):
            assert a.spec == b.spec
            # Rows are bitwise identical apart from measured wall-clock.
            assert _row_fields_except_runtime(a) == _row_fields_except_runtime(b)

    def test_results_follow_spec_order(self):
        specs = table1_specs(["c17"], (9.0, 3.0), sizer_config=FAST)
        report = run_cells(specs, jobs=2)
        assert [r.spec.lam for r in report.results] == [9.0, 3.0]

    def test_resume_skips_up_to_date_cells(self, tmp_path):
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        first = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert first.computed == 2 and first.skipped == 0
        mtimes = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.json")}
        second = run_cells(specs, jobs=2, out_dir=tmp_path, resume=True)
        assert second.computed == 0 and second.skipped == 2
        assert all(r.from_cache for r in second.results)
        # Artifacts were not rewritten.
        assert mtimes == {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.json")}
        # Cached rows equal the originally computed ones.
        for a, b in zip(first.results, second.results, strict=True):
            assert _row_fields_except_runtime(a) == _row_fields_except_runtime(b)

    def test_resume_recomputes_on_config_change(self, tmp_path):
        specs = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        changed = table1_specs(
            ["c17"], (3.0,),
            sizer_config=dataclasses.replace(FAST, max_iterations=2),
        )
        report = run_cells(changed, jobs=1, out_dir=tmp_path, resume=True)
        assert report.computed == 1 and report.skipped == 0

    def test_resume_without_out_dir_computes(self):
        specs = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        report = run_cells(specs, jobs=1, out_dir=None, resume=True)
        assert report.computed == 1

    def test_progress_callback_sees_every_cell(self, tmp_path):
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        seen = []
        run_cells(specs, jobs=1, out_dir=tmp_path,
                  progress=lambda done, total, r: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_cells([], jobs=0)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_cell_preserves_siblings(self, tmp_path, jobs):
        # One bad cell must not discard the completed ones: their artifacts
        # persist, and a later resume only pays for the failure.
        specs = table1_specs(["c17", "no_such_circuit"], (3.0,),
                             sizer_config=FAST)
        with pytest.raises(RuntimeError, match="no_such_circuit"):
            run_cells(specs, jobs=jobs, out_dir=tmp_path)
        good = load_artifact(specs[0].artifact_path(tmp_path))
        assert good is not None
        report = run_cells(specs[:1], jobs=1, out_dir=tmp_path, resume=True)
        assert report.computed == 0 and report.skipped == 1


class TestFig4Cells:
    def test_lam_zero_is_pure_baseline(self):
        (spec,) = fig4_specs("c17", (0.0,), sizer_config=FAST)
        result = evaluate_cell(spec).result
        assert result["mean"] == result["original_mean"]
        assert result["sigma"] == result["original_sigma"]

    def test_optimized_cell_reduces_sigma(self):
        (spec,) = fig4_specs("c17", (9.0,),
                             sizer_config=SizerConfig(lam=9.0, max_iterations=6,
                                                      patience=2))
        result = evaluate_cell(spec).result
        assert result["sigma"] <= result["original_sigma"] + 1e-9
        assert result["area"] > 0

    def test_baseline_memoized_across_lambdas(self):
        # A serial fig4 sweep derives the deterministic mean-delay baseline
        # once per (circuit, substrates), not once per lambda.
        import repro.runner.sweep as sweep_module

        sweep_module._FIG4_BASELINES.clear()
        results = [
            evaluate_cell(spec).result
            for spec in fig4_specs("c17", (0.0, 3.0), sizer_config=FAST)
        ]
        assert len(sweep_module._FIG4_BASELINES) == 1
        assert results[0]["original_mean"] == results[1]["original_mean"]
        assert results[0]["original_sigma"] == results[1]["original_sigma"]

    def test_table1_row_rejected_for_fig4(self):
        (spec,) = fig4_specs("c17", (0.0,), sizer_config=FAST)
        with pytest.raises(ValueError):
            evaluate_cell(spec).table1_row()


class TestYieldCells:
    def test_yield_grid_and_configs(self):
        specs = yield_specs(["c17", "alu1"], (0.9, 0.99), sizer_config=FAST)
        assert len(specs) == 4
        assert {(s.circuit, s.target_yield) for s in specs} == {
            ("c17", 0.9), ("c17", 0.99), ("alu1", 0.9), ("alu1", 0.99)
        }
        for spec in specs:
            assert spec.kind == "yield"
            assert spec.lam == 0.0
            assert spec.sizer_config.objective == "yield"
            assert spec.sizer_config.target_yield == spec.target_yield
            # Budget knobs of the caller's config are preserved.
            assert spec.sizer_config.max_iterations == FAST.max_iterations

    def test_yield_cell_requires_target(self):
        with pytest.raises(ValueError):
            CellSpec(kind="yield", circuit="c17", lam=0.0)

    def test_keys_distinguish_targets(self):
        a, b = yield_specs(["c17"], (0.9, 0.99), sizer_config=FAST)
        assert a.key() != b.key()

    def test_artifact_paths_distinguish_targets(self, tmp_path):
        a, b = yield_specs(["c17"], (0.9, 0.99), sizer_config=FAST)
        path_a = artifact_path(tmp_path, a.kind, a.circuit, a.lam, a.target_yield)
        path_b = artifact_path(tmp_path, b.kind, b.circuit, b.lam, b.target_yield)
        assert path_a != path_b
        assert "y0.9" in path_a.name and "y0.99" in path_b.name

    def test_evaluate_yield_cell(self):
        (spec,) = yield_specs(["c17"], (0.99,), sizer_config=FAST)
        result = evaluate_cell(spec).result
        assert result["target_yield"] == 0.99
        # The sized design needs a period no larger than the original's.
        assert result["final_period"] <= result["original_period"] + 1e-9
        # At the achieved period the sized design meets the target while the
        # original does not exceed it.
        assert result["final_yield_at_final_period"] >= 0.99 - 1e-9
        assert result["original_yield_at_final_period"] <= (
            result["final_yield_at_final_period"] + 1e-9
        )
        assert result["area"] >= result["original_area"] - 1e-9

    def test_yield_cells_resume(self, tmp_path):
        specs = yield_specs(["c17"], (0.9, 0.99), sizer_config=FAST)
        first = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert first.computed == 2 and first.skipped == 0
        second = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert second.computed == 0 and second.skipped == 2
        for a, b in zip(first.results, second.results, strict=True):
            assert _row_fields_except_runtime(a) == _row_fields_except_runtime(b)

    def test_table1_row_rejected_for_yield(self):
        (spec,) = yield_specs(["c17"], (0.99,), sizer_config=FAST)
        with pytest.raises(ValueError):
            evaluate_cell(spec).table1_row()
