"""Chaos tests: fault injection against the fault-tolerant sweep runner.

Faults are injected through the ``REPRO_FAULTS`` environment variable so
they reach the real worker processes — a ``crash`` rule genuinely
``os._exit``\\ s a worker, a ``hang`` rule genuinely wedges one until the
parent's timeout kills it.  Everything is deterministic: rules match on
(circuit, lam, attempt) and the probabilistic path is a pure hash.

All sweeps use c17 with a minimal sizer budget (~tens of ms per cell), so
even the 12-cell acceptance chaos run is cheap.
"""

import json

import pytest

from repro.core.sizer import SizerConfig
from repro.runner.artifacts import QUARANTINE_SUFFIX, load_artifact
from repro.runner.errors import (
    CellTimeoutError,
    NumericalHealthError,
    SweepInterrupted,
    TransientCellError,
    WorkerCrashError,
    check_payload_health,
    classify_exception,
    ensure_finite_moments,
    is_retryable,
)
from repro.runner.faults import (
    FAULTS_ENV,
    FaultRule,
    fault_env_value,
    parse_fault_rules,
)
from repro.runner.ledger import (
    CHECKPOINT_FILENAME,
    LEDGER_FILENAME,
    FailureLedger,
    FailureRecord,
    QuarantineRecord,
    load_ledger,
)
from repro.runner.sweep import (
    criticality_specs,
    run_cells,
    table1_specs,
)

#: Smallest useful sizer budget — every chaos cell is a ~20 ms c17 run.
FAST = SizerConfig(lam=3.0, max_iterations=2, max_outputs_per_pass=1, patience=1)

#: Backoff small enough that retry scheduling never dominates test time.
QUICK_RETRY = {"retry_backoff": 0.01, "backoff_factor": 1.0}


def _inject(monkeypatch, *rules):
    monkeypatch.setenv(FAULTS_ENV, fault_env_value(list(rules)))


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_classification(self):
        assert classify_exception(TransientCellError("x")) == "transient"
        assert classify_exception(CellTimeoutError("x")) == "timeout"
        assert classify_exception(WorkerCrashError("x")) == "crash"
        assert classify_exception(MemoryError()) == "transient"
        assert classify_exception(ValueError("x")) == "deterministic"
        assert classify_exception(KeyError("x")) == "deterministic"
        assert classify_exception(NumericalHealthError("x")) == "deterministic"

    def test_retryability(self):
        assert is_retryable("transient")
        assert is_retryable("timeout")
        assert is_retryable("crash")
        assert not is_retryable("deterministic")

    def test_finite_moment_guard(self):
        ensure_finite_moments(100.0, 5.0, context="ok", area=10.0)
        with pytest.raises(NumericalHealthError, match="non-finite"):
            ensure_finite_moments(float("nan"), 5.0, context="bad")
        with pytest.raises(NumericalHealthError, match="negative sigma"):
            ensure_finite_moments(100.0, -1.0, context="bad")
        with pytest.raises(NumericalHealthError, match="area"):
            ensure_finite_moments(100.0, 5.0, context="bad", area=float("inf"))

    def test_payload_health_rejects_nan_and_negative_sigma(self):
        check_payload_health({"mean": 1.0, "nested": {"sigma": 0.5}}, "cell")
        with pytest.raises(NumericalHealthError, match="non-finite"):
            check_payload_health({"rows": [1.0, float("inf")]}, "cell")
        with pytest.raises(NumericalHealthError, match="negative sigma"):
            check_payload_health({"original_sigma": -2.0}, "cell")

    def test_payload_health_allows_negative_deltas(self):
        # The paper reports sigma *reductions* as negative percentages.
        check_payload_health({"sigma_reduction_pct": -35.2}, "cell")


# ---------------------------------------------------------------------------
# Fault rules
# ---------------------------------------------------------------------------
class TestFaultRules:
    def test_parse_roundtrip(self):
        rules = (
            FaultRule(mode="crash", circuit="c17", lam=3.0, attempts=(0,)),
            FaultRule(mode="transient", kind="table1", attempts=(0, 1)),
        )
        assert parse_fault_rules(fault_env_value(rules)) == rules

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_fault_rules("{not json")
        with pytest.raises(ValueError):
            parse_fault_rules('{"mode": "crash"}')  # not a list
        with pytest.raises(ValueError):
            parse_fault_rules('[{"circuit": "c17"}]')  # no mode
        with pytest.raises(ValueError):
            parse_fault_rules('[{"mode": "explode"}]')

    def test_matching(self):
        (spec,) = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        assert FaultRule(mode="transient").matches(spec, 0)
        assert FaultRule(mode="transient", circuit="c17", lam=3.0).matches(spec, 0)
        assert not FaultRule(mode="transient", circuit="alu1").matches(spec, 0)
        assert not FaultRule(mode="transient", lam=9.0).matches(spec, 0)
        assert not FaultRule(mode="transient", kind="fig4").matches(spec, 0)
        rule = FaultRule(mode="transient", attempts=(0, 1))
        assert rule.matches(spec, 0) and rule.matches(spec, 1)
        assert not rule.matches(spec, 2)

    def test_seeded_probability_is_deterministic(self):
        specs = table1_specs(["c17"], tuple(float(i) for i in range(40)),
                             sizer_config=FAST)
        rule = FaultRule(mode="transient", probability=0.5, seed=7)
        first = [rule.matches(s, 0) for s in specs]
        assert first == [rule.matches(s, 0) for s in specs]
        assert 0 < sum(first) < len(first)  # actually probabilistic
        other_seed = FaultRule(mode="transient", probability=0.5, seed=8)
        assert first != [other_seed.matches(s, 0) for s in specs]


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------
class TestLedger:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / LEDGER_FILENAME
        ledger = FailureLedger(path)
        ledger.record_failure(FailureRecord(
            cell="table1__c17__lam3.0__deadbeef", key="k", kind="table1",
            circuit="c17", lam=3.0, target_yield=None, attempt=0,
            category="transient", error="TransientCellError", message="boom",
            traceback="tb", elapsed_seconds=0.1, retried=True,
        ))
        ledger.record_quarantine(QuarantineRecord(
            artifact="a.json", quarantined_as="a.json.corrupt", reason="corrupt",
        ))
        payload = load_ledger(path)
        assert len(payload["events"]) == 1
        event = payload["events"][0]
        assert event["category"] == "transient" and event["retried"] is True
        assert event["attempt"] == 0 and event["circuit"] == "c17"
        assert payload["quarantines"][0]["reason"] == "corrupt"

    def test_load_missing_or_bad(self, tmp_path):
        assert load_ledger(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        assert load_ledger(bad) is None

    def test_in_memory_ledger_never_writes(self, tmp_path):
        ledger = FailureLedger(None)
        ledger.record_failure(FailureRecord(
            cell="c", key="k", kind="table1", circuit="c17", lam=3.0,
            target_yield=None, attempt=0, category="transient", error="E",
            message="m", traceback="", elapsed_seconds=0.0,
        ))
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Artifact digests (filename collision fix)
# ---------------------------------------------------------------------------
class TestArtifactDigests:
    def test_criticality_cells_with_different_knobs_do_not_collide(self, tmp_path):
        # Both cells are (criticality, c17, lam=0.0); before the digest the
        # filename ignored top_k/monte_carlo_samples/seed and they collided.
        (a,) = criticality_specs(["c17"], top_k=3)
        (b,) = criticality_specs(["c17"], top_k=7)
        (c,) = criticality_specs(["c17"], top_k=3, monte_carlo_samples=50, seed=1)
        paths = {a.artifact_path(tmp_path), b.artifact_path(tmp_path),
                 c.artifact_path(tmp_path)}
        assert len(paths) == 3

    def test_digest_is_stable_and_key_derived(self):
        (spec,) = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        assert spec.digest() == spec.key()[:8]
        assert spec.artifact_path(".").stem.endswith(spec.digest())


# ---------------------------------------------------------------------------
# Retry behavior
# ---------------------------------------------------------------------------
class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_heals_on_retry(self, tmp_path, monkeypatch, jobs):
        _inject(monkeypatch,
                FaultRule(mode="transient", circuit="c17", attempts=(0,)))
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=jobs, out_dir=tmp_path,
                           max_retries=2, **QUICK_RETRY)
        assert report.computed == 2 and report.failed == 0
        assert report.retries == 2  # one retry per cell
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        assert len(ledger["events"]) == 2
        assert all(e["category"] == "transient" and e["retried"]
                   for e in ledger["events"])
        for spec in specs:
            assert load_artifact(spec.artifact_path(tmp_path)) is not None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_exhausts_retry_budget(self, tmp_path, monkeypatch, jobs):
        _inject(monkeypatch, FaultRule(mode="transient", circuit="c17"))
        specs = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        with pytest.raises(RuntimeError, match="1 of 1 sweep cell"):
            run_cells(specs, jobs=jobs, out_dir=tmp_path,
                      max_retries=1, **QUICK_RETRY)
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        assert [e["attempt"] for e in ledger["events"]] == [0, 1]
        assert [e["retried"] for e in ledger["events"]] == [True, False]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_deterministic_failure_never_retries(self, tmp_path, monkeypatch, jobs):
        specs = table1_specs(["c17", "no_such_circuit"], (3.0,),
                             sizer_config=FAST)
        with pytest.raises(RuntimeError, match="no_such_circuit"):
            run_cells(specs, jobs=jobs, out_dir=tmp_path,
                      max_retries=3, **QUICK_RETRY)
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        assert len(ledger["events"]) == 1  # no retry burned on it
        assert ledger["events"][0]["category"] == "deterministic"
        # The healthy sibling still completed.
        assert load_artifact(specs[0].artifact_path(tmp_path)) is not None

    def test_on_error_continue_returns_report(self, tmp_path, monkeypatch):
        _inject(monkeypatch, FaultRule(mode="transient", circuit="c17", lam=9.0))
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=1, out_dir=tmp_path,
                           max_retries=0, on_error="continue")
        assert report.computed == 1 and report.failed == 1
        assert len(report.failures) == 1
        assert report.failures[0].category == "transient"
        assert "1 failed" in report.summary()


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    def test_crash_mid_sweep_is_retried_and_siblings_survive(
        self, tmp_path, monkeypatch
    ):
        _inject(monkeypatch,
                FaultRule(mode="crash", circuit="c17", lam=9.0, attempts=(0,)))
        specs = table1_specs(["c17"], (3.0, 6.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=2, out_dir=tmp_path,
                           max_retries=2, **QUICK_RETRY)
        assert report.computed == 3 and report.failed == 0
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        (event,) = ledger["events"]
        assert event["category"] == "crash" and event["retried"]
        assert event["lam"] == 9.0
        assert "exit code 13" in event["message"]

    def test_unretried_crash_fails_only_its_cell(self, tmp_path, monkeypatch):
        _inject(monkeypatch,
                FaultRule(mode="crash", circuit="c17", lam=9.0))
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=2, out_dir=tmp_path,
                           max_retries=0, on_error="continue")
        assert report.computed == 1 and report.failed == 1
        assert report.failures[0].category == "crash"
        assert load_artifact(specs[0].artifact_path(tmp_path)) is not None


# ---------------------------------------------------------------------------
# Timeouts
# ---------------------------------------------------------------------------
class TestTimeouts:
    def test_hung_worker_is_killed_and_cell_retried(self, tmp_path, monkeypatch):
        _inject(monkeypatch,
                FaultRule(mode="hang", circuit="c17", lam=9.0,
                          attempts=(0,), seconds=60.0))
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=2, out_dir=tmp_path,
                           cell_timeout=1.0, max_retries=1, **QUICK_RETRY)
        assert report.computed == 2 and report.failed == 0
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        (event,) = ledger["events"]
        assert event["category"] == "timeout" and event["retried"]
        assert "cell timeout of 1" in event["message"]

    def test_persistent_hang_exhausts_budget(self, tmp_path, monkeypatch):
        _inject(monkeypatch,
                FaultRule(mode="hang", circuit="c17", lam=9.0, seconds=60.0))
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        report = run_cells(specs, jobs=2, out_dir=tmp_path,
                           cell_timeout=0.5, max_retries=1,
                           on_error="continue", **QUICK_RETRY)
        assert report.computed == 1 and report.failed == 1
        assert report.failures[0].category == "timeout"
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        assert [e["attempt"] for e in ledger["events"]] == [0, 1]


# ---------------------------------------------------------------------------
# Corruption and quarantine
# ---------------------------------------------------------------------------
class TestQuarantine:
    def test_corrupt_artifact_quarantined_on_resume(self, tmp_path, monkeypatch):
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        _inject(monkeypatch, FaultRule(mode="corrupt", circuit="c17", lam=9.0))
        run_cells(specs, jobs=1, out_dir=tmp_path)
        corrupted = specs[1].artifact_path(tmp_path)
        with pytest.raises(json.JSONDecodeError):
            json.loads(corrupted.read_text())

        monkeypatch.delenv(FAULTS_ENV)
        report = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert report.skipped == 1 and report.computed == 1
        assert report.quarantined == 1
        assert "1 corrupt artifact(s) quarantined" in report.summary()
        quarantine = corrupted.with_name(corrupted.name + QUARANTINE_SUFFIX)
        assert quarantine.is_file()
        # The cell recomputed into a healthy artifact.
        assert load_artifact(corrupted) is not None
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        (entry,) = ledger["quarantines"]
        assert entry["reason"] == "corrupt"
        assert entry["artifact"] == corrupted.name

    def test_schema_mismatch_quarantined(self, tmp_path):
        specs = table1_specs(["c17"], (3.0,), sizer_config=FAST)
        run_cells(specs, jobs=1, out_dir=tmp_path)
        path = specs[0].artifact_path(tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = 1
        path.write_text(json.dumps(payload))
        report = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert report.quarantined == 1 and report.computed == 1
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        assert ledger["quarantines"][0]["reason"] == "schema"


# ---------------------------------------------------------------------------
# Graceful interrupts
# ---------------------------------------------------------------------------
class TestInterrupts:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_interrupt_checkpoints_and_resumes(self, tmp_path, monkeypatch, jobs):
        # A KeyboardInterrupt raised from the progress callback lands in the
        # parent's orchestration loop exactly where a real SIGINT would.
        specs = table1_specs(["c17"], (3.0, 6.0, 9.0), sizer_config=FAST)
        fired = []

        def interrupt_once(done, total, result):
            if not fired:
                fired.append(result)
                raise KeyboardInterrupt

        with pytest.raises(SweepInterrupted) as excinfo:
            run_cells(specs, jobs=jobs, out_dir=tmp_path, progress=interrupt_once)
        report = excinfo.value.report
        assert report.interrupted
        assert report.computed >= 1
        assert "interrupted" in report.summary()

        checkpoint = json.loads((tmp_path / CHECKPOINT_FILENAME).read_text())
        assert checkpoint["total"] == 3
        assert len(checkpoint["completed"]) == report.computed
        assert len(checkpoint["pending"]) == 3 - report.computed
        assert set(checkpoint["completed"]) | set(checkpoint["pending"]) == {
            spec.artifact_stem() for spec in specs
        }

        # Resume pays only for the cells the interrupt preempted.
        resumed = run_cells(specs, jobs=1, out_dir=tmp_path, resume=True)
        assert resumed.skipped == report.computed
        assert resumed.computed == 3 - report.computed
        assert len(resumed.results) == 3

    def test_serial_and_parallel_interrupts_raise_the_same_type(self, tmp_path):
        # Unified behavior: both paths raise SweepInterrupted (a
        # KeyboardInterrupt subclass), never a bare KeyboardInterrupt.
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)

        def interrupt(done, total, result):
            raise KeyboardInterrupt

        for jobs in (1, 2):
            with pytest.raises(SweepInterrupted):
                run_cells(specs, jobs=jobs, out_dir=tmp_path, progress=interrupt)
            assert issubclass(SweepInterrupted, KeyboardInterrupt)


# ---------------------------------------------------------------------------
# Acceptance: the 12-cell chaos sweep
# ---------------------------------------------------------------------------
class TestAcceptanceChaosSweep:
    def test_twelve_cells_with_crash_hang_and_transient(self, tmp_path, monkeypatch):
        lams = tuple(float(i) for i in range(1, 13))  # 12 distinct cells
        crash_lam, hang_lam, transient_lam = 2.0, 5.0, 8.0
        _inject(
            monkeypatch,
            FaultRule(mode="crash", circuit="c17", lam=crash_lam, attempts=(0,)),
            FaultRule(mode="hang", circuit="c17", lam=hang_lam,
                      attempts=(0,), seconds=60.0),
            FaultRule(mode="transient", circuit="c17", lam=transient_lam,
                      attempts=(0, 1)),  # heals on attempt 2
        )
        specs = table1_specs(["c17"], lams, sizer_config=FAST)
        report = run_cells(specs, jobs=4, out_dir=tmp_path,
                           cell_timeout=2.0, max_retries=2, **QUICK_RETRY)

        # Every cell completed despite the injected faults.
        assert report.total == 12 and report.computed == 12
        assert report.failed == 0 and not report.interrupted
        assert report.retries == 4  # 1 crash + 1 timeout + 2 transient
        for spec in specs:
            assert load_artifact(spec.artifact_path(tmp_path)) is not None

        # The ledger records exactly the injected failures.
        ledger = load_ledger(tmp_path / LEDGER_FILENAME)
        events = ledger["events"]
        assert len(events) == 4
        by_lam = {}
        for event in events:
            by_lam.setdefault(event["lam"], []).append(event)
        assert by_lam[crash_lam][0]["category"] == "crash"
        assert by_lam[hang_lam][0]["category"] == "timeout"
        assert sorted(e["attempt"] for e in by_lam[transient_lam]) == [0, 1]
        assert all(e["category"] == "transient" for e in by_lam[transient_lam])
        assert all(e["retried"] for e in events)
        assert set(by_lam) == {crash_lam, hang_lam, transient_lam}

        # A fault-free resume recomputes nothing.
        monkeypatch.delenv(FAULTS_ENV)
        resumed = run_cells(specs, jobs=4, out_dir=tmp_path, resume=True)
        assert resumed.computed == 0 and resumed.skipped == 12

    def test_chaos_rows_match_fault_free_rows(self, tmp_path, monkeypatch):
        # Retried/respawned cells must produce bit-identical results: the
        # evaluators are deterministic and injection never touches payloads.
        specs = table1_specs(["c17"], (3.0, 9.0), sizer_config=FAST)
        clean = run_cells(specs, jobs=1)
        _inject(monkeypatch,
                FaultRule(mode="transient", circuit="c17", attempts=(0,)))
        chaotic = run_cells(specs, jobs=2, out_dir=tmp_path,
                            max_retries=1, **QUICK_RETRY)
        for a, b in zip(clean.results, chaotic.results, strict=True):
            row_a = {k: v for k, v in a.result.items() if k != "runtime_seconds"}
            row_b = {k: v for k, v in b.result.items() if k != "runtime_seconds"}
            assert row_a == row_b
