"""Pre-flight DRC hooks: defective netlists must fail in the parent process
before any compute is spent — no worker pool, no sizer pass, no artifact.
"""

import pytest

from repro.flow import run_sizing_flow
from repro.netlist.circuit import Circuit
from repro.runner.errors import DeterministicError, classify_exception
from repro.runner.sweep import CellSpec, run_cells
from repro.verify import PreflightError, preflight_circuit


def _defective_circuit(name="c17"):
    """A cyclic two-gate circuit (DRC001) under any requested name."""
    circuit = Circuit(name, primary_inputs=["a"], primary_outputs=["y"])
    circuit.add("g1", "NAND2", ["a", "n2"], "n1")
    circuit.add("g2", "INV", ["n1"], "n2")
    circuit.add("g3", "INV", ["n1"], "y")
    return circuit


class TestPreflightCircuit:
    def test_clean_circuit_returns_report(self, c17_circuit, library):
        report = preflight_circuit(c17_circuit, library=library)
        assert report.ok

    def test_defective_circuit_raises_preflight_error(self):
        with pytest.raises(PreflightError) as exc_info:
            preflight_circuit(_defective_circuit())
        assert "DRC001" in {d.rule_id for d in exc_info.value.report.errors}

    def test_preflight_error_is_deterministic_category(self):
        try:
            preflight_circuit(_defective_circuit())
        except PreflightError as exc:
            assert isinstance(exc, DeterministicError)
            assert classify_exception(exc) == "deterministic"
        else:  # pragma: no cover - defect must raise
            pytest.fail("expected PreflightError")

    def test_warnings_reported_via_callback(self, library):
        circuit = Circuit("warn", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("dead", "INV", ["a"], "n_dead")  # DRC006 warning
        lines = []
        report = preflight_circuit(circuit, library=library, warn=lines.append)
        assert report.ok
        assert any("DRC006" in line for line in lines)


class TestFlowPreflight:
    def test_flow_rejects_defective_circuit_up_front(self):
        with pytest.raises(DeterministicError):
            run_sizing_flow(_defective_circuit())

    def test_flow_opt_out_reaches_the_engine_failure(self):
        # Without pre-flight the defect surfaces as a deep engine error
        # (levelization of a cyclic circuit) — exactly what the hook is
        # meant to pre-empt.
        with pytest.raises(Exception) as exc_info:
            run_sizing_flow(_defective_circuit(), preflight=False)
        assert not isinstance(exc_info.value, DeterministicError)


class TestSweepPreflight:
    def test_defective_cell_fails_before_any_worker(self, monkeypatch, tmp_path):
        import repro.runner.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "build_benchmark",
                            lambda name: _defective_circuit(name))

        constructed = []

        class _SentinelPool:  # pragma: no cover - must never be instantiated
            def __init__(self, *args, **kwargs):
                constructed.append(self)
                raise AssertionError("pool constructed despite preflight")

        monkeypatch.setattr(sweep_mod, "FaultTolerantPool", _SentinelPool)

        spec = CellSpec(kind="table1", circuit="c17", lam=3.0)
        with pytest.raises(DeterministicError) as exc_info:
            run_cells([spec], jobs=2, out_dir=tmp_path)
        assert constructed == []
        assert isinstance(exc_info.value, PreflightError)
        # No artifacts were produced for the doomed sweep.
        assert list(tmp_path.glob("table1__*.json")) == []

    def test_preflight_raises_even_with_on_error_continue(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "build_benchmark",
                            lambda name: _defective_circuit(name))
        spec = CellSpec(kind="table1", circuit="c17", lam=3.0)
        with pytest.raises(DeterministicError):
            run_cells([spec], jobs=1, on_error="continue")

    def test_opt_out_falls_through_to_cell_failure(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "build_benchmark",
                            lambda name: _defective_circuit(name))
        spec = CellSpec(kind="table1", circuit="c17", lam=3.0)
        report = run_cells([spec], jobs=1, on_error="continue", preflight=False)
        assert len(report.failures) == 1

    def test_unresolvable_circuit_name_is_not_a_preflight_error(self, monkeypatch):
        # Pre-flight only lints circuits it can build; a bad name falls
        # through to the per-cell failure machinery so sibling cells still
        # run and the ledger records it.
        spec = CellSpec(kind="table1", circuit="no_such_circuit", lam=3.0)
        report = run_cells([spec], jobs=1, on_error="continue")
        assert len(report.failures) == 1

    def test_clean_sweep_unaffected_by_preflight(self, tmp_path):
        from repro.core.sizer import SizerConfig

        fast = SizerConfig(lam=3.0, max_iterations=2, max_outputs_per_pass=1,
                           patience=1)
        spec = CellSpec(kind="table1", circuit="c17", lam=3.0,
                        sizer_config=fast)
        report = run_cells([spec], jobs=1, out_dir=tmp_path)
        assert len(report.results) == 1
