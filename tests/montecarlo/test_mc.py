"""Unit tests for the Monte-Carlo golden model."""

import numpy as np
import pytest

from repro.core.fullssta import FULLSSTA
from repro.montecarlo.mc import MonteCarloTimer
from repro.netlist.circuit import Circuit
from repro.sta.dsta import DeterministicSTA
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.model import VariationModel


@pytest.fixture
def timer(delay_model, variation_model):
    return MonteCarloTimer(delay_model, variation_model)


class TestBasicProperties:
    def test_reproducible_with_seed(self, timer, c17_circuit):
        r1 = timer.run(c17_circuit, num_samples=500, seed=11)
        r2 = timer.run(c17_circuit, num_samples=500, seed=11)
        assert np.array_equal(r1.samples, r2.samples)

    def test_different_seeds_differ(self, timer, c17_circuit):
        r1 = timer.run(c17_circuit, num_samples=500, seed=1)
        r2 = timer.run(c17_circuit, num_samples=500, seed=2)
        assert not np.array_equal(r1.samples, r2.samples)

    def test_sample_count_and_outputs(self, timer, c17_circuit):
        result = timer.run(c17_circuit, num_samples=256, seed=0)
        assert result.num_samples == 256
        assert set(result.per_output_mean) == set(c17_circuit.primary_outputs)
        assert all(s > 0 for s in result.per_output_sigma.values())

    def test_mean_close_to_deterministic(self, timer, delay_model, c17_circuit):
        nominal = DeterministicSTA(delay_model).max_delay(c17_circuit)
        result = timer.run(c17_circuit, num_samples=3000, seed=0)
        # The statistical mean of the max exceeds the nominal max but not wildly.
        assert result.mean >= nominal * 0.95
        assert result.mean <= nominal * 1.5

    def test_quantiles_and_cv(self, timer, c17_circuit):
        result = timer.run(c17_circuit, num_samples=2000, seed=0)
        assert result.quantile(0.99) > result.quantile(0.5) > result.quantile(0.01)
        assert result.cv == pytest.approx(result.sigma / result.mean)
        with pytest.raises(ValueError):
            result.quantile(1.5)

    def test_too_few_samples_rejected(self, timer, c17_circuit):
        with pytest.raises(ValueError):
            timer.run(c17_circuit, num_samples=1)

    def test_no_outputs_rejected(self, timer):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("none", primary_inputs=["a"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            timer.run(circuit, num_samples=10)


class TestAgainstAnalyticalChain:
    def test_chain_moments_match_theory(self, delay_model, variation_model, chain_circuit):
        # On a pure chain the circuit delay is the sum of independent normals,
        # so MC must match the analytic sum of moments.
        timer = MonteCarloTimer(delay_model, variation_model)
        result = timer.run(chain_circuit, num_samples=20_000, seed=3)
        dists = variation_model.all_gate_distributions(chain_circuit, delay_model)
        # out1 path: i1 -> i2 -> i3 ; out2 path: i1 -> i2 -> i4 (same moments)
        mean = dists["i1"].mean + dists["i2"].mean + dists["i3"].mean
        assert result.per_output_mean["out1"] == pytest.approx(mean, rel=0.02)
        var = dists["i1"].variance + dists["i2"].variance + dists["i3"].variance
        assert result.per_output_sigma["out1"] ** 2 == pytest.approx(var, rel=0.08)

    def test_zero_variation_gives_zero_sigma(self, delay_model, chain_circuit):
        timer = MonteCarloTimer(
            delay_model, VariationModel(proportional_alpha=0.0, random_sigma=0.0)
        )
        result = timer.run(chain_circuit, num_samples=100, seed=0)
        assert result.sigma == pytest.approx(0.0, abs=1e-9)


class TestUpsizingEffect:
    def test_upsizing_reduces_mc_sigma(self, timer, small_adder):
        before = timer.run(small_adder, num_samples=2000, seed=5)
        for name in small_adder.gates:
            small_adder.set_size(name, 5)
        after = timer.run(small_adder, num_samples=2000, seed=5)
        assert after.sigma < before.sigma


class TestUnknownNets:
    def test_undriven_primary_output_raises(self, timer):
        circuit = Circuit("ghost", primary_inputs=["a"],
                          primary_outputs=["y", "ghost"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(KeyError, match="ghost"):
            timer.run(circuit, num_samples=10)

    def test_floating_non_pi_input_times_as_zero_like_engines(
        self, timer, delay_model, variation_model
    ):
        # Floating (undriven non-PI) gate inputs follow the IR boundary
        # mask: zero arrival, exactly like FASSTA/FULLSSTA.  Historically MC
        # raised here while the engines timed the net as zero — the models
        # disagreed on the same netlist.
        circuit = Circuit("dangle", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "NAND2", ["a", "phantom"], "y")
        result = timer.run(circuit, num_samples=500, seed=3)
        from repro.core.fassta import FASSTA

        engine_mean = FASSTA(delay_model, variation_model).analyze(circuit).mean
        # Both models now see the same single-gate circuit: the MC mean must
        # land near the engine mean instead of raising.
        assert result.mean == pytest.approx(engine_mean, rel=0.1)

    def test_true_primary_inputs_keep_zero_arrival(self, timer, chain_circuit):
        # The documented boundary condition survives: PIs start at t = 0, so
        # the first gate's arrival is exactly its own delay samples.
        result = timer.run(chain_circuit, num_samples=50, seed=0)
        assert result.num_samples == 50


def _reference_independent_samples(timer, circuit, num_samples, seed):
    """The historical per-gate dict-propagation independent path."""
    rng = np.random.default_rng(seed)
    order = circuit.topological_order()
    distributions = timer.variation_model.all_gate_distributions(
        circuit, timer.delay_model
    )
    gate_samples = {}
    for name in order:
        dist = distributions[name]
        gate_samples[name] = rng.normal(dist.mean, dist.sigma, num_samples)
    arrivals = {net: np.zeros(num_samples) for net in circuit.primary_inputs}
    for name in order:
        gate = circuit.gate(name)
        worst = None
        for net in gate.inputs:
            arr = arrivals.setdefault(net, np.zeros(num_samples))
            worst = arr if worst is None else np.maximum(worst, arr)
        arrivals[gate.output] = worst + gate_samples[name]
    circuit_delay = None
    for net in circuit.primary_outputs:
        arr = arrivals[net]
        circuit_delay = (
            arr if circuit_delay is None else np.maximum(circuit_delay, arr)
        )
    return circuit_delay


class TestLevelizedVectorization:
    """The levelized IR propagation against the historical per-gate loop.

    The generator stream is shared (draws stay in topological order) and
    ``np.maximum``/float addition are exact, so the circuit-delay samples
    must be bit-for-bit identical — no tolerance.
    """

    @pytest.mark.parametrize("name", ["c17", "c432", "c880"])
    def test_bit_identical_to_per_gate_reference(self, timer, name):
        from repro.circuits.registry import build_benchmark, c17

        circuit = c17() if name == "c17" else build_benchmark(name)
        reference = _reference_independent_samples(
            timer, circuit, num_samples=300, seed=7
        )
        result = timer.run(circuit, num_samples=300, seed=7)
        assert np.array_equal(result.samples, reference)

    def test_bit_identical_on_fixtures(self, timer, small_adder, small_alu):
        for circuit in (small_adder, small_alu):
            reference = _reference_independent_samples(
                timer, circuit, num_samples=200, seed=1
            )
            result = timer.run(circuit, num_samples=200, seed=1)
            assert np.array_equal(result.samples, reference)


def _reference_correlated_samples(timer, circuit, num_samples, seed):
    """The historical per-sample correlated path (pre-vectorization)."""
    rng = np.random.default_rng(seed)
    order = circuit.topological_order()
    distributions = timer.variation_model.all_gate_distributions(
        circuit, timer.delay_model
    )
    model = timer.correlation_model
    factor_draws = [model.sample_factors(rng) for _ in range(num_samples)]
    gate_samples = {}
    for name in order:
        dist = distributions[name]
        gate = circuit.gate(name)
        drive = timer.delay_model.library.size(gate.cell_type, gate.size_index).drive
        sigma_prop = (
            timer.variation_model.proportional_alpha
            * dist.mean
            / (drive ** timer.variation_model.size_exponent)
        )
        sigma_rand = timer.variation_model.random_sigma
        sigma_corr, sigma_ind = model.split_sigma(sigma_prop)
        correlated = np.array(
            [model.correlated_component(name, draw) for draw in factor_draws]
        )
        independent = rng.standard_normal(num_samples)
        random_part = rng.standard_normal(num_samples)
        gate_samples[name] = (
            dist.mean
            + sigma_corr * correlated
            + sigma_ind * independent
            + sigma_rand * random_part
        )
    arrivals = {net: np.zeros(num_samples) for net in circuit.primary_inputs}
    for name in order:
        gate = circuit.gate(name)
        worst = None
        for net in gate.inputs:
            arr = arrivals[net]
            worst = arr if worst is None else np.maximum(worst, arr)
        arrivals[gate.output] = worst + gate_samples[name]
    delay = None
    for net in circuit.primary_outputs:
        delay = arrivals[net] if delay is None else np.maximum(delay, arrivals[net])
    return delay


class TestCorrelatedVectorization:
    @pytest.mark.parametrize("grid_size,levels", [(4, 3), (8, 4), (1, 1)])
    def test_vectorized_path_matches_loop_bit_for_bit(
        self, delay_model, variation_model, c17_circuit, grid_size, levels
    ):
        timer = MonteCarloTimer(
            delay_model,
            variation_model,
            correlation_model=SpatialCorrelationModel(
                grid_size=grid_size, correlated_fraction=0.6, levels=levels
            ),
        )
        result = timer.run(c17_circuit, num_samples=300, seed=42)
        reference = _reference_correlated_samples(timer, c17_circuit, 300, seed=42)
        assert np.array_equal(result.samples, reference)

    def test_factor_array_matches_per_sample_draws(self):
        model = SpatialCorrelationModel(grid_size=4, levels=3)
        array = model.sample_factor_array(np.random.default_rng(7), 5)
        rng = np.random.default_rng(7)
        order = model.factor_order()
        for s in range(5):
            draw = model.sample_factors(rng)
            assert np.array_equal(array[s], np.array([draw[idx] for idx in order]))

    def test_correlated_components_match_scalar(self):
        model = SpatialCorrelationModel(grid_size=4, correlated_fraction=0.5, levels=3)
        names = [f"g{i}" for i in range(17)]
        rng = np.random.default_rng(3)
        array = model.sample_factor_array(rng, 11)
        matrix = model.correlated_components(names, array)
        order = model.factor_order()
        for s in range(11):
            draw = {idx: float(array[s, j]) for j, idx in enumerate(order)}
            for j, name in enumerate(names):
                assert matrix[s, j] == model.correlated_component(name, draw)

    def test_bad_factor_array_shape_rejected(self):
        model = SpatialCorrelationModel(grid_size=4, levels=3)
        with pytest.raises(ValueError):
            model.correlated_components(["g"], np.zeros((5, 3)))


class TestAgainstFullSsta:
    def test_correlated_mc_moments_agree_with_fullssta(
        self, delay_model, variation_model, c17_circuit
    ):
        # FULLSSTA assumes independent gate delays and an additive
        # prop+random sigma; the correlated overlay keeps per-gate means but
        # combines the components in quadrature and correlates the joint
        # structure, so agreement is structural rather than exact: the MC
        # mean must track the engine within ~15 % and the MC sigma must stay
        # in the same regime (correlation widens the circuit-level sigma,
        # the tighter quadrature marginals narrow it).
        engine_rv = FULLSSTA(delay_model, variation_model).analyze(
            c17_circuit
        ).output_rv
        timer = MonteCarloTimer(
            delay_model,
            variation_model,
            correlation_model=SpatialCorrelationModel(correlated_fraction=0.5),
        )
        mc = timer.run(c17_circuit, num_samples=6000, seed=0)
        assert mc.mean == pytest.approx(engine_rv.mean, rel=0.15)
        assert 0.5 * engine_rv.sigma < mc.sigma < 2.0 * engine_rv.sigma


class TestCorrelatedVariation:
    def test_correlation_increases_sigma(self, delay_model, variation_model, c17_circuit):
        independent = MonteCarloTimer(delay_model, variation_model)
        correlated = MonteCarloTimer(
            delay_model,
            variation_model,
            correlation_model=SpatialCorrelationModel(correlated_fraction=0.9),
        )
        r_ind = independent.run(c17_circuit, num_samples=3000, seed=0)
        r_corr = correlated.run(c17_circuit, num_samples=3000, seed=0)
        assert r_corr.sigma > r_ind.sigma

    def test_correlated_mean_close_but_not_higher(self, delay_model, variation_model, c17_circuit):
        # Positive correlation between path delays lowers the mean of the max
        # slightly (less independent "diversity" pushing the maximum up); it
        # must never raise it, and it stays within a few percent.
        independent = MonteCarloTimer(delay_model, variation_model)
        correlated = MonteCarloTimer(
            delay_model,
            variation_model,
            correlation_model=SpatialCorrelationModel(correlated_fraction=0.5),
        )
        r_ind = independent.run(c17_circuit, num_samples=4000, seed=0)
        r_corr = correlated.run(c17_circuit, num_samples=4000, seed=0)
        assert r_corr.mean <= r_ind.mean * 1.01
        assert r_corr.mean == pytest.approx(r_ind.mean, rel=0.10)
