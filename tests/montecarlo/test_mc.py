"""Unit tests for the Monte-Carlo golden model."""

import numpy as np
import pytest

from repro.montecarlo.mc import MonteCarloTimer
from repro.sta.dsta import DeterministicSTA
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.model import VariationModel


@pytest.fixture
def timer(delay_model, variation_model):
    return MonteCarloTimer(delay_model, variation_model)


class TestBasicProperties:
    def test_reproducible_with_seed(self, timer, c17_circuit):
        r1 = timer.run(c17_circuit, num_samples=500, seed=11)
        r2 = timer.run(c17_circuit, num_samples=500, seed=11)
        assert np.array_equal(r1.samples, r2.samples)

    def test_different_seeds_differ(self, timer, c17_circuit):
        r1 = timer.run(c17_circuit, num_samples=500, seed=1)
        r2 = timer.run(c17_circuit, num_samples=500, seed=2)
        assert not np.array_equal(r1.samples, r2.samples)

    def test_sample_count_and_outputs(self, timer, c17_circuit):
        result = timer.run(c17_circuit, num_samples=256, seed=0)
        assert result.num_samples == 256
        assert set(result.per_output_mean) == set(c17_circuit.primary_outputs)
        assert all(s > 0 for s in result.per_output_sigma.values())

    def test_mean_close_to_deterministic(self, timer, delay_model, c17_circuit):
        nominal = DeterministicSTA(delay_model).max_delay(c17_circuit)
        result = timer.run(c17_circuit, num_samples=3000, seed=0)
        # The statistical mean of the max exceeds the nominal max but not wildly.
        assert result.mean >= nominal * 0.95
        assert result.mean <= nominal * 1.5

    def test_quantiles_and_cv(self, timer, c17_circuit):
        result = timer.run(c17_circuit, num_samples=2000, seed=0)
        assert result.quantile(0.99) > result.quantile(0.5) > result.quantile(0.01)
        assert result.cv == pytest.approx(result.sigma / result.mean)
        with pytest.raises(ValueError):
            result.quantile(1.5)

    def test_too_few_samples_rejected(self, timer, c17_circuit):
        with pytest.raises(ValueError):
            timer.run(c17_circuit, num_samples=1)

    def test_no_outputs_rejected(self, timer):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("none", primary_inputs=["a"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            timer.run(circuit, num_samples=10)


class TestAgainstAnalyticalChain:
    def test_chain_moments_match_theory(self, delay_model, variation_model, chain_circuit):
        # On a pure chain the circuit delay is the sum of independent normals,
        # so MC must match the analytic sum of moments.
        timer = MonteCarloTimer(delay_model, variation_model)
        result = timer.run(chain_circuit, num_samples=20_000, seed=3)
        dists = variation_model.all_gate_distributions(chain_circuit, delay_model)
        # out1 path: i1 -> i2 -> i3 ; out2 path: i1 -> i2 -> i4 (same moments)
        mean = dists["i1"].mean + dists["i2"].mean + dists["i3"].mean
        assert result.per_output_mean["out1"] == pytest.approx(mean, rel=0.02)
        var = dists["i1"].variance + dists["i2"].variance + dists["i3"].variance
        assert result.per_output_sigma["out1"] ** 2 == pytest.approx(var, rel=0.08)

    def test_zero_variation_gives_zero_sigma(self, delay_model, chain_circuit):
        timer = MonteCarloTimer(
            delay_model, VariationModel(proportional_alpha=0.0, random_sigma=0.0)
        )
        result = timer.run(chain_circuit, num_samples=100, seed=0)
        assert result.sigma == pytest.approx(0.0, abs=1e-9)


class TestUpsizingEffect:
    def test_upsizing_reduces_mc_sigma(self, timer, small_adder):
        before = timer.run(small_adder, num_samples=2000, seed=5)
        for name in small_adder.gates:
            small_adder.set_size(name, 5)
        after = timer.run(small_adder, num_samples=2000, seed=5)
        assert after.sigma < before.sigma


class TestCorrelatedVariation:
    def test_correlation_increases_sigma(self, delay_model, variation_model, c17_circuit):
        independent = MonteCarloTimer(delay_model, variation_model)
        correlated = MonteCarloTimer(
            delay_model,
            variation_model,
            correlation_model=SpatialCorrelationModel(correlated_fraction=0.9),
        )
        r_ind = independent.run(c17_circuit, num_samples=3000, seed=0)
        r_corr = correlated.run(c17_circuit, num_samples=3000, seed=0)
        assert r_corr.sigma > r_ind.sigma

    def test_correlated_mean_close_but_not_higher(self, delay_model, variation_model, c17_circuit):
        # Positive correlation between path delays lowers the mean of the max
        # slightly (less independent "diversity" pushing the maximum up); it
        # must never raise it, and it stays within a few percent.
        independent = MonteCarloTimer(delay_model, variation_model)
        correlated = MonteCarloTimer(
            delay_model,
            variation_model,
            correlation_model=SpatialCorrelationModel(correlated_fraction=0.5),
        )
        r_ind = independent.run(c17_circuit, num_samples=4000, seed=0)
        r_corr = correlated.run(c17_circuit, num_samples=4000, seed=0)
        assert r_corr.mean <= r_ind.mean * 1.01
        assert r_corr.mean == pytest.approx(r_ind.mean, rel=0.10)
