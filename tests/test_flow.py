"""Tests for the top-level convenience flow (repro.flow / package exports)."""

import pytest

import repro
from repro.circuits.adders import ripple_carry_adder
from repro.core.sizer import SizerConfig
from repro.flow import quick_flow, run_sizing_flow
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.library.delay_model import LinearRCDelayModel

FAST = SizerConfig(lam=3.0, max_iterations=4, max_outputs_per_pass=2, patience=2)


class TestPackageExports:
    def test_version(self):
        assert repro.__version__
        assert repro.FlowResult is not None

    def test_public_api_importable(self):
        from repro.core import StatisticalGreedySizer, FULLSSTA, FASSTA  # noqa: F401
        from repro.netlist import Circuit, parse_bench  # noqa: F401
        from repro.library import make_synthetic_90nm_library  # noqa: F401


class TestQuickFlow:
    def test_quick_flow_on_c17(self):
        result = quick_flow("c17", lam=3.0, sizer_config=FAST)
        assert result.circuit.num_gates() == 6
        assert result.original_rv.mean > 0
        assert result.final_rv.sigma <= result.original_rv.sigma + 1e-9
        assert result.sigma_reduction_pct >= 0.0
        assert result.lam == 3.0

    def test_quick_flow_with_monte_carlo(self):
        result = quick_flow("c17", lam=3.0, sizer_config=FAST, monte_carlo_samples=200)
        assert result.mc_original is not None
        assert result.mc_final is not None
        assert result.mc_original.num_samples == 200

    def test_final_wnss_trace_is_surfaced(self):
        result = quick_flow("c17", lam=3.0, sizer_config=FAST)
        wnss = result.final_wnss
        assert wnss is not None
        assert wnss.gates
        assert wnss.output_net in result.circuit.primary_outputs
        # One recorded decision per traced gate, each naming a real input
        # of its gate and a supported method.
        assert len(wnss.decisions) == len(wnss.gates)
        for decision in wnss.decisions:
            gate = result.circuit.gate(decision.gate)
            assert decision.chosen_net in gate.inputs
            assert decision.method in ("single", "dominance", "sensitivity")
            assert set(decision.candidates) == set(gate.inputs)

    def test_table1_row_dict(self):
        result = quick_flow("c17", lam=3.0, sizer_config=FAST)
        row = result.as_table1_row()
        assert row["gates"] == 6.0
        assert row["original_cv"] == pytest.approx(result.original_cv)
        assert row["sigma_reduction_pct"] == pytest.approx(-result.sigma_reduction_pct)


class TestRunSizingFlow:
    def test_custom_substrates(self):
        library = make_synthetic_90nm_library(sizes_per_cell=6)
        delay_model = LinearRCDelayModel(library)
        circuit = ripple_carry_adder(2)
        result = run_sizing_flow(
            circuit, lam=3.0, delay_model=delay_model, sizer_config=FAST
        )
        assert result.final_area > 0
        assert result.baseline.final_delay <= result.baseline.initial_delay + 1e-9

    def test_without_baseline(self):
        circuit = ripple_carry_adder(2)
        result = run_sizing_flow(circuit, lam=3.0, run_baseline=False, sizer_config=FAST)
        assert result.baseline.passes == 0
        assert result.baseline.initial_delay == pytest.approx(result.baseline.final_delay)

    def test_metrics_signs_consistent(self):
        circuit = ripple_carry_adder(3)
        result = run_sizing_flow(circuit, lam=3.0, sizer_config=FAST)
        # sigma reduction percentage and final/original sigma must agree.
        expected = 100.0 * (result.original_rv.sigma - result.final_rv.sigma) / result.original_rv.sigma
        assert result.sigma_reduction_pct == pytest.approx(expected)
        expected_area = 100.0 * (result.final_area - result.original_area) / result.original_area
        assert result.area_increase_pct == pytest.approx(expected_area)
