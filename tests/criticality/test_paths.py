"""Unit tests for top-k statistical path extraction."""

import pytest

from repro.core.fassta import FASSTA
from repro.criticality.analysis import CriticalityAnalyzer
from repro.criticality.paths import extract_top_paths, total_path_mass
from repro.netlist.circuit import Circuit


def _analysis(circuit, delay_model, variation_model):
    res = FASSTA(delay_model, variation_model, vectorized=True).analyze(circuit)
    crit = CriticalityAnalyzer(circuit).analyze(res.arrivals)
    return res, crit


class TestExtractTopPaths:
    def test_masses_non_increasing(self, c17_circuit, delay_model, variation_model):
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        paths = extract_top_paths(c17_circuit, crit, res.arrivals, k=8)
        masses = [p.criticality for p in paths]
        assert masses == sorted(masses, reverse=True)

    def test_all_paths_sum_to_one(self, c17_circuit, delay_model, variation_model):
        # With k larger than the number of structural paths the masses
        # partition the "which path is critical" event.
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        paths = extract_top_paths(c17_circuit, crit, res.arrivals, k=1000)
        assert total_path_mass(paths) == pytest.approx(1.0, abs=1e-9)

    def test_paths_are_structurally_valid(
        self, c17_circuit, delay_model, variation_model
    ):
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        for path in extract_top_paths(c17_circuit, crit, res.arrivals, k=5):
            # Ends at the output driver, starts at a gate fed by the source.
            assert c17_circuit.driver_of(path.output_net).name == path.gates[-1]
            assert path.source_net in c17_circuit.gate(path.gates[0]).inputs
            assert c17_circuit.driver_of(path.source_net) is None
            # Consecutive gates are actually connected.
            for upstream, downstream in zip(path.gates, path.gates[1:], strict=False):
                out_net = c17_circuit.gate(upstream).output
                assert out_net in c17_circuit.gate(downstream).inputs
            assert path.arrival_rv == res.arrivals[path.output_net]

    def test_path_mass_is_product_of_edge_probabilities(
        self, c17_circuit, delay_model, variation_model
    ):
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        for path in extract_top_paths(c17_circuit, crit, res.arrivals, k=4):
            mass = crit.output_probabilities[path.output_net]
            chosen = path.source_net
            for gate_name in path.gates:
                mass *= crit.edge_probabilities[gate_name][chosen]
                chosen = c17_circuit.gate(gate_name).output
            assert path.criticality == pytest.approx(mass, rel=1e-12)

    def test_single_path_circuit(self, delay_model, variation_model):
        circuit = Circuit("chain", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "n1")
        circuit.add("g2", "INV", ["n1"], "y")
        res, crit = _analysis(circuit, delay_model, variation_model)
        paths = extract_top_paths(circuit, crit, res.arrivals, k=5)
        assert len(paths) == 1
        assert paths[0].gates == ["g1", "g2"]
        assert paths[0].criticality == pytest.approx(1.0)
        assert paths[0].source_net == "a"

    def test_min_criticality_prunes(self, c17_circuit, delay_model, variation_model):
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        everything = extract_top_paths(c17_circuit, crit, res.arrivals, k=1000)
        floor = everything[1].criticality
        pruned = extract_top_paths(
            c17_circuit, crit, res.arrivals, k=1000, min_criticality=floor
        )
        assert len(pruned) < len(everything)
        for path in pruned:
            assert path.criticality >= floor

    def test_outputs_filter(self, c17_circuit, delay_model, variation_model):
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        only_n22 = extract_top_paths(
            c17_circuit, crit, res.arrivals, k=100, outputs=["N22"]
        )
        assert only_n22
        assert all(p.output_net == "N22" for p in only_n22)
        assert total_path_mass(only_n22) == pytest.approx(
            crit.output_probabilities["N22"], abs=1e-12
        )

    def test_invalid_arguments(self, c17_circuit, delay_model, variation_model):
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        with pytest.raises(ValueError):
            extract_top_paths(c17_circuit, crit, res.arrivals, k=0)
        with pytest.raises(ValueError):
            extract_top_paths(
                c17_circuit, crit, res.arrivals, k=1, min_criticality=-0.1
            )

    def test_expansion_budget_falls_back_to_greedy(
        self, c17_circuit, delay_model, variation_model
    ):
        res, crit = _analysis(c17_circuit, delay_model, variation_model)
        exact = extract_top_paths(c17_circuit, crit, res.arrivals, k=4)
        budgeted = extract_top_paths(
            c17_circuit, crit, res.arrivals, k=4, max_expansions=1
        )
        # One pop cannot complete anything on c17; the greedy fallback still
        # returns valid, structurally-connected paths flagged as inexact.
        assert budgeted
        assert all(not p.exact for p in budgeted)
        assert all(p.exact for p in exact)
        for path in budgeted:
            assert c17_circuit.driver_of(path.output_net).name == path.gates[-1]
            for upstream, downstream in zip(path.gates, path.gates[1:], strict=False):
                out_net = c17_circuit.gate(upstream).output
                assert out_net in c17_circuit.gate(downstream).inputs
        # The greedy top-1 follows locally-best edges, which on c17 is also
        # the globally heaviest path.
        assert budgeted[0].gates == exact[0].gates
        assert budgeted[0].criticality == pytest.approx(exact[0].criticality)
        with pytest.raises(ValueError):
            extract_top_paths(
                c17_circuit, crit, res.arrivals, k=1, max_expansions=0
            )

    def test_top1_on_larger_circuit_is_heaviest(
        self, delay_model, variation_model
    ):
        from repro.circuits.registry import build_benchmark

        circuit = build_benchmark("alu2")
        res, crit = _analysis(circuit, delay_model, variation_model)
        top3 = extract_top_paths(circuit, crit, res.arrivals, k=3)
        top50 = extract_top_paths(circuit, crit, res.arrivals, k=50)
        assert [p.criticality for p in top50[:3]] == pytest.approx(
            [p.criticality for p in top3]
        )
        assert total_path_mass(top50) <= 1.0 + 1e-9
