"""Analytic-vs-Monte-Carlo criticality agreement (the acceptance pin).

The analytic criticalities inherit the engines' Clark/independence
approximations; the MC backtrace is exact per draw.  These tests pin the
agreement on registry circuits: per-gate probabilities within a small mean
absolute error (sampling noise at 4000 draws is ~0.008), output selection
frequencies, and per-path frequencies on the exactly-tractable c17.
"""

import pytest

from repro.core.fassta import FASSTA
from repro.criticality.analysis import CriticalityAnalyzer
from repro.criticality.mc import MonteCarloCriticality
from repro.criticality.paths import extract_top_paths


@pytest.fixture(scope="module")
def mc_setup(delay_model, variation_model):
    def build(name, samples=4000, k=5):
        from repro.circuits.registry import build_benchmark

        circuit = build_benchmark(name)
        res = FASSTA(delay_model, variation_model, vectorized=True).analyze(
            circuit
        )
        crit = CriticalityAnalyzer(circuit).analyze(res.arrivals)
        paths = extract_top_paths(circuit, crit, res.arrivals, k=k)
        mc = MonteCarloCriticality(delay_model, variation_model).run(
            circuit, num_samples=samples, seed=7, paths=paths
        )
        return circuit, crit, paths, mc

    return build


class TestMonteCarloAgreement:
    def test_c17_gate_criticality_matches_closely(self, mc_setup):
        _, crit, _, mc = mc_setup("c17")
        assert mc.max_abs_gate_error(crit.gate_criticality) < 0.06
        assert mc.mean_abs_gate_error(crit.gate_criticality) < 0.03

    def test_c17_output_frequencies_match(self, mc_setup):
        _, crit, _, mc = mc_setup("c17")
        for net, prob in crit.output_probabilities.items():
            assert mc.output_frequency[net] == pytest.approx(prob, abs=0.05)

    def test_c17_path_frequencies_match(self, mc_setup):
        _, _, paths, mc = mc_setup("c17")
        assert len(mc.path_frequency) == len(paths)
        for freq, path in zip(mc.path_frequency, paths, strict=True):
            assert freq == pytest.approx(path.criticality, abs=0.06)

    @pytest.mark.parametrize("name", ["alu2", "c432"])
    def test_registry_gate_criticality_within_tolerance(self, mc_setup, name):
        # Reconvergent fanout correlation (ignored by the analytic model)
        # dominates the error here; the mean error stays small and even the
        # worst gate stays within the documented bound.
        _, crit, _, mc = mc_setup(name)
        assert mc.mean_abs_gate_error(crit.gate_criticality) < 0.04
        assert mc.max_abs_gate_error(crit.gate_criticality) < 0.35

    def test_registry_output_frequencies_track(self, mc_setup):
        # ALU outputs share most of their logic, so their arrivals are
        # strongly correlated and the independent-normal selection spreads
        # mass MC concentrates.  Ranking and aggregate deviation still pin
        # the agreement.
        circuit, crit, _, mc = mc_setup("alu2")
        analytic_top = max(
            crit.output_probabilities, key=crit.output_probabilities.get
        )
        mc_top = max(mc.output_frequency, key=mc.output_frequency.get)
        assert analytic_top == mc_top
        deviations = [
            abs(
                crit.output_probabilities.get(net, 0.0)
                - mc.output_frequency.get(net, 0.0)
            )
            for net in circuit.primary_outputs
        ]
        assert sum(deviations) / len(deviations) < 0.1

    def test_output_frequencies_sum_to_one(self, mc_setup):
        _, _, _, mc = mc_setup("c432", samples=2000)
        # Every draw selects exactly one slowest output.
        assert sum(mc.output_frequency.values()) == pytest.approx(1.0, abs=1e-12)

    def test_seeds_are_reproducible(self, delay_model, variation_model, c17_circuit):
        runner = MonteCarloCriticality(delay_model, variation_model)
        a = runner.run(c17_circuit, num_samples=500, seed=3)
        b = runner.run(c17_circuit, num_samples=500, seed=3)
        assert a.gate_frequency == b.gate_frequency
        assert a.output_frequency == b.output_frequency

    def test_invalid_sample_count(self, delay_model, variation_model, c17_circuit):
        runner = MonteCarloCriticality(delay_model, variation_model)
        with pytest.raises(ValueError):
            runner.run(c17_circuit, num_samples=1)
