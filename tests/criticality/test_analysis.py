"""Unit tests for the statistical criticality analyzer."""

import math

import pytest
from scipy.stats import norm

from repro.core.fassta import FASSTA
from repro.core.rv import NormalDelay
from repro.criticality.analysis import (
    CriticalityAnalyzer,
    selection_probabilities,
)
from repro.netlist.circuit import Circuit


def _fassta_arrivals(circuit, delay_model, variation_model):
    return FASSTA(delay_model, variation_model, vectorized=True).analyze(
        circuit
    )


class TestSelectionProbabilities:
    def test_two_rvs_match_closed_form(self):
        a = NormalDelay(100.0, 10.0)
        b = NormalDelay(90.0, 5.0)
        probs = selection_probabilities([a, b])
        expected = norm.cdf((a.mean - b.mean) / math.hypot(a.sigma, b.sigma))
        assert probs[0] == pytest.approx(expected, abs=1e-12)
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)

    def test_dominant_rv_takes_all_mass(self):
        probs = selection_probabilities(
            [NormalDelay(1000.0, 1.0), NormalDelay(10.0, 1.0)]
        )
        assert probs[0] == pytest.approx(1.0, abs=1e-9)

    def test_symmetric_rvs_split_evenly(self):
        rvs = [NormalDelay(50.0, 4.0)] * 4
        probs = selection_probabilities(rvs)
        for p in probs:
            assert p == pytest.approx(0.25, abs=1e-9)

    def test_single_rv(self):
        assert selection_probabilities([NormalDelay(5.0, 1.0)])[0] == 1.0

    def test_deterministic_tie_goes_to_first(self):
        # All-zero-variance ties route to the first position, matching the
        # Monte-Carlo argmax backtrace and the scalar max fold.
        probs = selection_probabilities(
            [NormalDelay(3.0, 0.0), NormalDelay(3.0, 0.0), NormalDelay(1.0, 0.0)]
        )
        assert list(probs) == [1.0, 0.0, 0.0]

    def test_deterministic_strict_order(self):
        probs = selection_probabilities(
            [NormalDelay(1.0, 0.0), NormalDelay(2.0, 0.0)]
        )
        assert list(probs) == [0.0, 1.0]


class TestCriticalityAnalyzer:
    def test_mass_conserved_on_registry_circuits(self, delay_model, variation_model):
        from repro.circuits.registry import build_benchmark

        for name in ("c17", "alu2", "c499"):
            circuit = build_benchmark(name)
            res = _fassta_arrivals(circuit, delay_model, variation_model)
            crit = CriticalityAnalyzer(circuit).analyze(res.arrivals)
            assert crit.total_source_mass() == pytest.approx(1.0, abs=1e-9)

    def test_single_output_cone_mass_is_one(
        self, c17_circuit, delay_model, variation_model
    ):
        res = _fassta_arrivals(c17_circuit, delay_model, variation_model)
        analyzer = CriticalityAnalyzer(c17_circuit)
        for net in c17_circuit.primary_outputs:
            cone = analyzer.analyze(res.arrivals, outputs=[net])
            assert cone.output_probabilities == {net: 1.0}
            assert cone.total_source_mass() == pytest.approx(1.0, abs=1e-12)

    def test_edge_probabilities_sum_to_one_per_gate(
        self, c17_circuit, delay_model, variation_model
    ):
        res = _fassta_arrivals(c17_circuit, delay_model, variation_model)
        crit = CriticalityAnalyzer(c17_circuit).analyze(res.arrivals)
        for gate_name, edges in crit.edge_probabilities.items():
            assert sum(edges.values()) == pytest.approx(1.0, abs=1e-9), gate_name

    def test_output_driver_inherits_output_probability(
        self, c17_circuit, delay_model, variation_model
    ):
        res = _fassta_arrivals(c17_circuit, delay_model, variation_model)
        crit = CriticalityAnalyzer(c17_circuit).analyze(res.arrivals)
        for net, prob in crit.output_probabilities.items():
            driver = c17_circuit.driver_of(net)
            assert crit.gate_criticality[driver.name] == pytest.approx(prob)

    def test_chain_criticality_is_one_everywhere(
        self, delay_model, variation_model
    ):
        circuit = Circuit("chain", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "n1")
        circuit.add("g2", "INV", ["n1"], "y")
        res = _fassta_arrivals(circuit, delay_model, variation_model)
        crit = CriticalityAnalyzer(circuit).analyze(res.arrivals)
        assert crit.gate_criticality == pytest.approx({"g1": 1.0, "g2": 1.0})
        assert crit.source_criticality["a"] == pytest.approx(1.0)

    def test_two_input_gate_matches_closed_form(
        self, delay_model, variation_model
    ):
        # One NAND2 fed by two inverters of very different drive: the input
        # selection probabilities must match the two-rv closed form.
        circuit = Circuit(
            "pair", primary_inputs=["a", "b"], primary_outputs=["y"]
        )
        circuit.add("slow", "INV", ["a"], "n1", size_index=0)
        circuit.add("fast", "INV", ["b"], "n2", size_index=6)
        circuit.add("g", "NAND2", ["n1", "n2"], "y")
        res = _fassta_arrivals(circuit, delay_model, variation_model)
        crit = CriticalityAnalyzer(circuit).analyze(res.arrivals)
        rv1 = res.arrivals["n1"]
        rv2 = res.arrivals["n2"]
        expected = selection_probabilities([rv1, rv2])
        edges = crit.edge_probabilities["g"]
        assert edges["n1"] == pytest.approx(float(expected[0]), abs=1e-12)
        assert edges["n2"] == pytest.approx(float(expected[1]), abs=1e-12)
        # And the inverters inherit exactly that split.
        assert crit.gate_criticality["slow"] == pytest.approx(edges["n1"])
        assert crit.gate_criticality["fast"] == pytest.approx(edges["n2"])

    def test_unknown_output_raises(self, c17_circuit, delay_model, variation_model):
        res = _fassta_arrivals(c17_circuit, delay_model, variation_model)
        with pytest.raises(KeyError):
            CriticalityAnalyzer(c17_circuit).analyze(
                res.arrivals, outputs=["nope"]
            )

    def test_negative_output_weight_rejected(
        self, c17_circuit, delay_model, variation_model
    ):
        res = _fassta_arrivals(c17_circuit, delay_model, variation_model)
        with pytest.raises(ValueError):
            CriticalityAnalyzer(c17_circuit).analyze(
                res.arrivals, output_weights={"N22": -0.5}
            )

    def test_plan_recompiles_after_structural_edit(
        self, delay_model, variation_model
    ):
        circuit = Circuit("grow", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y")
        analyzer = CriticalityAnalyzer(circuit)
        res = _fassta_arrivals(circuit, delay_model, variation_model)
        first = analyzer.analyze(res.arrivals)
        assert set(first.gate_criticality) == {"g1"}

        circuit.add("g2", "INV", ["a"], "z")
        circuit.add_primary_output("z")
        res = _fassta_arrivals(circuit, delay_model, variation_model)
        second = analyzer.analyze(res.arrivals)
        assert set(second.gate_criticality) == {"g1", "g2"}
        assert second.total_source_mass() == pytest.approx(1.0, abs=1e-12)

    def test_gates_above_and_top_gates(self, c17_circuit, delay_model, variation_model):
        res = _fassta_arrivals(c17_circuit, delay_model, variation_model)
        crit = CriticalityAnalyzer(c17_circuit).analyze(res.arrivals)
        top = crit.top_gates(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]
        floor = top[1][1]
        above = crit.gates_above(floor)
        assert set(g for g, v in top[:2]).issubset(set(above))
        for name in above:
            assert crit.gate_criticality[name] >= floor
