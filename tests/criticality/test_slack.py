"""Unit tests for statistical slack propagation and slack PDFs."""

import math

import pytest

from repro.core.fassta import FASSTA
from repro.core.rv import NormalDelay
from repro.criticality.slack import compute_slacks, statistical_min
from repro.netlist.circuit import Circuit


def _analysis(circuit, delay_model, variation_model):
    return FASSTA(delay_model, variation_model, vectorized=True).analyze(circuit)


class TestStatisticalMin:
    def test_min_is_negated_max(self):
        a = NormalDelay(10.0, 2.0)
        b = NormalDelay(12.0, 3.0)
        lo = statistical_min(a, b)
        hi = a.maximum(b)
        # E[min] + E[max] = E[A] + E[B] holds exactly for any pair.
        assert lo.mean + hi.mean == pytest.approx(a.mean + b.mean, abs=1e-9)
        assert lo.mean < min(a.mean, b.mean) + 1e-9

    def test_dominant_operand(self):
        a = NormalDelay(1.0, 0.5)
        b = NormalDelay(1000.0, 0.5)
        lo = statistical_min(a, b)
        assert lo.mean == pytest.approx(a.mean)
        assert lo.sigma == pytest.approx(a.sigma)


class TestComputeSlacks:
    def test_output_slack_matches_period_minus_arrival(
        self, c17_circuit, delay_model, variation_model
    ):
        res = _analysis(c17_circuit, delay_model, variation_model)
        period = 300.0
        slacks = compute_slacks(
            c17_circuit, res.arrivals, res.gate_delays, clock_period=period
        )
        for net in c17_circuit.primary_outputs:
            arr = res.arrivals[net]
            rv = slacks.slack_of(net)
            assert rv.mean == pytest.approx(period - arr.mean, abs=1e-9)
            assert rv.sigma == pytest.approx(arr.sigma, abs=1e-9)

    def test_default_period_is_worst_weighted_cost(
        self, c17_circuit, delay_model, variation_model
    ):
        res = _analysis(c17_circuit, delay_model, variation_model)
        lam = 3.0
        slacks = compute_slacks(
            c17_circuit, res.arrivals, res.gate_delays, lam=lam
        )
        expected = max(
            res.arrivals[net].mean + lam * res.arrivals[net].sigma
            for net in c17_circuit.primary_outputs
        )
        assert slacks.clock_period == pytest.approx(expected)
        # At that period every slack mean is non-negative on the chain to
        # the worst output only in expectation terms; the worst *weighted*
        # slack is zero by construction.
        worst_net = max(
            c17_circuit.primary_outputs,
            key=lambda n: res.arrivals[n].mean + lam * res.arrivals[n].sigma,
        )
        rv = slacks.slack_of(worst_net)
        assert rv.mean - lam * rv.sigma <= 1e-9

    def test_chain_required_times_accumulate_delays(
        self, delay_model, variation_model
    ):
        circuit = Circuit("chain", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "n1")
        circuit.add("g2", "INV", ["n1"], "y")
        res = _analysis(circuit, delay_model, variation_model)
        period = 100.0
        slacks = compute_slacks(
            circuit, res.arrivals, res.gate_delays, clock_period=period
        )
        d2 = res.gate_delays["g2"]
        r_n1 = slacks.required["n1"]
        assert r_n1.mean == pytest.approx(period - d2.mean, abs=1e-9)
        assert r_n1.sigma == pytest.approx(d2.sigma, abs=1e-9)
        d1 = res.gate_delays["g1"]
        r_a = slacks.required["a"]
        assert r_a.mean == pytest.approx(period - d2.mean - d1.mean, abs=1e-9)
        assert r_a.sigma == pytest.approx(
            math.sqrt(d1.variance + d2.variance), abs=1e-9
        )

    def test_fanout_takes_statistical_min(self, delay_model, variation_model):
        circuit = Circuit(
            "fan", primary_inputs=["a"], primary_outputs=["y1", "y2"]
        )
        circuit.add("g0", "INV", ["a"], "n")
        circuit.add("g1", "INV", ["n"], "y1", size_index=0)
        circuit.add("g2", "INV", ["n"], "y2", size_index=6)
        res = _analysis(circuit, delay_model, variation_model)
        period = 200.0
        slacks = compute_slacks(
            circuit, res.arrivals, res.gate_delays, clock_period=period
        )
        c1 = NormalDelay(
            period - res.gate_delays["g1"].mean, res.gate_delays["g1"].sigma
        )
        c2 = NormalDelay(
            period - res.gate_delays["g2"].mean, res.gate_delays["g2"].sigma
        )
        expected = statistical_min(c1, c2)
        assert slacks.required["n"].mean == pytest.approx(expected.mean, abs=1e-9)
        assert slacks.required["n"].sigma == pytest.approx(
            expected.sigma, abs=1e-9
        )

    def test_slack_pdfs_track_slack_moments(
        self, c17_circuit, delay_model, variation_model
    ):
        res = _analysis(c17_circuit, delay_model, variation_model)
        slacks = compute_slacks(c17_circuit, res.arrivals, res.gate_delays)
        assert set(slacks.slack_pdfs) == set(c17_circuit.gates)
        for name, pdf in slacks.slack_pdfs.items():
            rv = slacks.slack[c17_circuit.gate(name).output]
            assert pdf.mean() == pytest.approx(rv.mean, abs=1e-6)
            # Discretization trims tails slightly; allow a few percent.
            assert pdf.std() == pytest.approx(rv.sigma, rel=0.05)

    def test_negative_slack_probability(self, c17_circuit, delay_model, variation_model):
        res = _analysis(c17_circuit, delay_model, variation_model)
        tight = compute_slacks(
            c17_circuit, res.arrivals, res.gate_delays, clock_period=1.0
        )
        loose = compute_slacks(
            c17_circuit, res.arrivals, res.gate_delays, clock_period=1e6
        )
        worst_net = tight.worst_slacks(1)[0][0]
        assert tight.negative_slack_probability(worst_net) > 0.99
        assert loose.negative_slack_probability(worst_net) < 1e-6

    def test_dangling_gate_output_is_pinned_at_period(
        self, delay_model, variation_model
    ):
        # A gate feeding nothing (legal netlist state) must still get a
        # period-anchored slack, not a missing entry reported as 0±0.
        circuit = Circuit("dangle", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("g2", "INV", ["a"], "unused")
        res = _analysis(circuit, delay_model, variation_model)
        period = 150.0
        slacks = compute_slacks(
            circuit, res.arrivals, res.gate_delays, clock_period=period
        )
        arr = res.arrivals["unused"]
        rv = slacks.slack_of("unused")
        assert rv.mean == pytest.approx(period - arr.mean, abs=1e-9)
        assert rv.sigma == pytest.approx(arr.sigma, abs=1e-9)
        pdf = slacks.slack_pdfs["g2"]
        assert pdf.mean() == pytest.approx(rv.mean, abs=1e-6)

    def test_worst_slacks_sorted(self, c17_circuit, delay_model, variation_model):
        res = _analysis(c17_circuit, delay_model, variation_model)
        slacks = compute_slacks(c17_circuit, res.arrivals, res.gate_delays)
        means = [rv.mean for _, rv in slacks.worst_slacks(5)]
        assert means == sorted(means)
