"""Unit tests for Table-1 metrics."""

import pytest

from repro.analysis.metrics import Table1Row, summarize_rows
from repro.flow import quick_flow


def make_row(circuit="x", lam=3.0, sigma_change=-50.0, area=10.0, mean=2.0):
    return Table1Row(
        circuit=circuit,
        lam=lam,
        gates=100,
        original_cv=0.1,
        mean_increase_pct=mean,
        sigma_change_pct=sigma_change,
        final_cv=0.05,
        area_increase_pct=area,
        runtime_seconds=1.0,
    )


class TestTable1Row:
    def test_as_dict_fields(self):
        row = make_row()
        d = row.as_dict()
        assert d["circuit"] == "x"
        assert d["lambda"] == 3.0
        assert d["sigma_change_pct"] == -50.0

    def test_from_flow(self):
        flow = quick_flow("c17", lam=3.0)
        row = Table1Row.from_flow("c17", flow)
        assert row.circuit == "c17"
        assert row.gates == 6
        assert row.lam == 3.0
        assert row.original_cv == pytest.approx(flow.original_cv)
        assert row.sigma_change_pct == pytest.approx(-flow.sigma_reduction_pct)
        assert row.final_sigma == pytest.approx(flow.final_rv.sigma)


class TestSummarizeRows:
    def test_empty(self):
        summary = summarize_rows([])
        assert summary["num_circuits"] == 0
        assert summary["avg_sigma_reduction_pct"] == 0.0

    def test_averages(self):
        rows = [
            make_row("a", sigma_change=-40.0, area=10.0, mean=2.0),
            make_row("b", sigma_change=-60.0, area=30.0, mean=4.0),
        ]
        summary = summarize_rows(rows)
        assert summary["num_circuits"] == 2
        assert summary["avg_sigma_reduction_pct"] == pytest.approx(50.0)
        assert summary["avg_area_increase_pct"] == pytest.approx(20.0)
        assert summary["avg_mean_increase_pct"] == pytest.approx(3.0)
