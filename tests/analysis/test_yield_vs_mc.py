"""Yield agreement between the FULLSSTA engine and Monte Carlo.

The yield objective trusts FULLSSTA's discrete output pdf; these tests pin
that the target periods and parametric timing yields it reports agree with
the Monte-Carlo golden model on registry circuits, under both independent
and spatially correlated variation.

Tolerances follow the engines' seed-level accuracy pins (FULLSSTA sigma is
only guaranteed to ~40 % of MC on reconvergent circuits) and are asserted
on *periods* — relative clock-period error at each yield target.  The
engine errs on the conservative side (it over-, not under-estimates the
required period), so the guarantee the sizer relies on — at the engine's
target period, the empirical yield reaches the target — holds tightly at
the 99 % tail even where the median period is several percent off.
"""

import pytest

from repro.analysis.timing_yield import YieldReport, period_for_yield, timing_yield
from repro.circuits.registry import build_benchmark
from repro.core.fullssta import FULLSSTA
from repro.montecarlo.mc import MonteCarloTimer
from repro.variation.correlation import SpatialCorrelationModel

CIRCUITS = ["c17", "c1355"]
MC_SAMPLES = 4000
TARGETS = (0.5, 0.9, 0.99)

#: Relative period tolerance across all targets (independent / correlated).
PERIOD_RTOL_INDEPENDENT = 0.12
PERIOD_RTOL_CORRELATED = 0.20
#: Tighter tail tolerance at the 99 % target the sizer optimizes for.
TAIL_RTOL_INDEPENDENT = 0.05
TAIL_RTOL_CORRELATED = 0.15

CORRELATION = {"grid_size": 4, "correlated_fraction": 0.6, "levels": 3}


@pytest.fixture(scope="module")
def mc_cache():
    return {}


def _mc(name, delay_model, variation_model, correlation, cache):
    key = (name, correlation is not None)
    if key not in cache:
        circuit = build_benchmark(name)
        cache[key] = MonteCarloTimer(
            delay_model, variation_model, correlation_model=correlation
        ).run(circuit, num_samples=MC_SAMPLES, seed=11)
    return cache[key]


@pytest.mark.parametrize("name", CIRCUITS)
class TestIndependentVariation:
    def test_periods_match_monte_carlo(
        self, name, delay_model, variation_model, mc_cache
    ):
        circuit = build_benchmark(name)
        pdf = FULLSSTA(delay_model, variation_model, vectorized=True).analyze(
            circuit
        ).output_pdf
        mc = _mc(name, delay_model, variation_model, None, mc_cache)
        for target in TARGETS:
            rtol = TAIL_RTOL_INDEPENDENT if target == 0.99 else PERIOD_RTOL_INDEPENDENT
            assert period_for_yield(pdf, target) == pytest.approx(
                period_for_yield(mc.samples, target), rel=rtol
            ), target

    def test_tail_yield_guarantee_holds_empirically(
        self, name, delay_model, variation_model, mc_cache
    ):
        # The guarantee the yield sizer relies on: at the pdf's own target
        # period the empirical (MC) yield reaches (close to) the target.
        circuit = build_benchmark(name)
        pdf = FULLSSTA(delay_model, variation_model, vectorized=True).analyze(
            circuit
        ).output_pdf
        mc = _mc(name, delay_model, variation_model, None, mc_cache)
        report = YieldReport.from_distribution(pdf, clock_period=mc.mean)
        assert timing_yield(mc.samples, report.period_for_90) >= 0.90 - 0.06
        assert timing_yield(mc.samples, report.period_for_99) >= 0.985
        assert report.period_for_99 > report.period_for_90


@pytest.mark.parametrize("name", CIRCUITS)
class TestCorrelatedVariation:
    def test_periods_match_monte_carlo(
        self, name, delay_model, variation_model, mc_cache
    ):
        correlation = SpatialCorrelationModel(**CORRELATION)
        circuit = build_benchmark(name)
        # With a correlation overlay the engine reports the inflated-sigma
        # normal moments; the raw pdf still assumes independence.
        rv = FULLSSTA(
            delay_model, variation_model, correlation_model=correlation
        ).analyze(circuit).output_rv
        mc = _mc(name, delay_model, variation_model, correlation, mc_cache)
        for target in TARGETS:
            rtol = TAIL_RTOL_CORRELATED if target == 0.99 else PERIOD_RTOL_CORRELATED
            assert period_for_yield(rv, target) == pytest.approx(
                period_for_yield(mc.samples, target), rel=rtol
            ), target

    def test_tail_yield_guarantee_holds_empirically(
        self, name, delay_model, variation_model, mc_cache
    ):
        correlation = SpatialCorrelationModel(**CORRELATION)
        circuit = build_benchmark(name)
        rv = FULLSSTA(
            delay_model, variation_model, correlation_model=correlation
        ).analyze(circuit).output_rv
        mc = _mc(name, delay_model, variation_model, correlation, mc_cache)
        assert timing_yield(mc.samples, period_for_yield(rv, 0.99)) >= 0.985

    def test_correlation_widens_the_period_spread(
        self, name, delay_model, variation_model
    ):
        correlation = SpatialCorrelationModel(
            grid_size=4, correlated_fraction=0.8, levels=3
        )
        circuit = build_benchmark(name)
        independent = FULLSSTA(delay_model, variation_model).analyze(circuit).output_rv
        correlated = FULLSSTA(
            delay_model, variation_model, correlation_model=correlation
        ).analyze(circuit).output_rv
        spread = lambda rv: (
            period_for_yield(rv, 0.99) - period_for_yield(rv, 0.5)
        )
        assert spread(correlated) >= spread(independent) - 1e-9
