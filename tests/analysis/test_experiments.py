"""Tests for the experiment runners (Table 1, Figures 1, 3 and 4).

The runners are exercised on the smallest circuits with reduced iteration
budgets so the whole file stays fast; the full-scale regeneration lives in
the benchmark harness.
"""

import pytest

from repro.analysis.experiments import (
    run_fig1,
    run_fig3_example,
    run_fig4_sweep,
    run_table1,
    run_table1_row,
)
from repro.core.sizer import SizerConfig

FAST = SizerConfig(lam=3.0, max_iterations=4, max_outputs_per_pass=2, patience=2)


class TestTable1Runner:
    def test_single_row(self):
        row = run_table1_row("c17", lam=3.0, sizer_config=FAST)
        assert row.circuit == "c17"
        assert row.gates == 6
        assert row.original_cv > 0
        assert row.final_cv > 0
        assert row.sigma_change_pct <= 0.0  # sigma never increases
        assert row.runtime_seconds > 0

    def test_row_with_monte_carlo(self):
        row = run_table1_row("c17", lam=3.0, sizer_config=FAST, monte_carlo_samples=200)
        assert row.original_sigma > 0

    def test_multi_circuit_multi_lambda(self):
        rows = run_table1(["c17"], lams=(3.0, 9.0), sizer_config=FAST)
        assert len(rows) == 2
        assert {r.lam for r in rows} == {3.0, 9.0}
        # The lambda must actually be propagated into each run's config.
        for row in rows:
            assert row.sigma_change_pct <= 0.0


class TestFig1Runner:
    def test_curves_structure(self):
        curves = run_fig1("c17", lams=(3.0,), sizer_config=FAST, pdf_samples=21)
        assert curves.circuit == "c17"
        assert curves.original.num_samples > 5
        assert 3.0 in curves.optimized
        series = curves.series()
        assert "original" in series
        assert "lambda=3" in series
        assert all(len(points) > 0 for points in series.values())

    def test_optimized_pdf_is_tighter(self):
        curves = run_fig1("c17", lams=(9.0,), sizer_config=SizerConfig(lam=9.0, max_iterations=6, patience=2))
        assert curves.optimized[9.0].std() <= curves.original.std() + 1e-9


class TestFig3Runner:
    def test_decisions_match_paper_figure(self):
        result = run_fig3_example()
        # Node Y: (320, 27) vs (310, 45) — sensitivity comparison must pick
        # the high-sigma arc (the shaded WNSS arc of Fig. 3).
        assert result["node_y"]["method"] == "sensitivity"
        assert result["node_y"]["chosen"] == "arc_b"
        # Node Z: (392, 35) dominates (190, 41) outright.
        assert result["node_z"]["method"] == "dominance"
        assert result["node_z"]["chosen"] == "arc_d"
        # The sensitivities backing the node-Y decision are exposed.
        assert result["sensitivities_y"]["arc_b"] > result["sensitivities_y"]["arc_a"]

    def test_node_x_uses_sensitivity(self):
        result = run_fig3_example()
        assert result["node_x"]["method"] == "sensitivity"
        assert result["node_x"]["chosen"] in ("arc_c", "arc_d")


class TestFig4Runner:
    def test_sweep_points(self):
        points = run_fig4_sweep("c17", lams=(0.0, 3.0), sizer_config=FAST)
        assert len(points) == 2
        baseline = points[0]
        assert baseline.lam == 0.0
        assert baseline.normalized_mean == pytest.approx(1.0)
        for point in points:
            assert point.mean > 0 and point.sigma >= 0 and point.area > 0

    def test_sigma_decreases_along_sweep(self):
        points = run_fig4_sweep("c17", lams=(0.0, 9.0), sizer_config=SizerConfig(lam=9.0, max_iterations=6, patience=2))
        assert points[1].sigma <= points[0].sigma + 1e-9
