"""Tests for the experiment runners (Table 1, Figures 1, 3 and 4).

The runners are exercised on the smallest circuits with reduced iteration
budgets so the whole file stays fast; the full-scale regeneration lives in
the benchmark harness.
"""

import dataclasses

import pytest

from repro.analysis.experiments import (
    run_fig1,
    run_fig3_example,
    run_fig4_sweep,
    run_table1,
    run_table1_row,
)
from repro.core.sizer import SizerConfig, StatisticalGreedySizer
from repro.runner.sweep import SubstrateSpec

FAST = SizerConfig(lam=3.0, max_iterations=4, max_outputs_per_pass=2, patience=2)

#: A config whose non-lambda fields are all distinguishable from defaults —
#: used to prove the runners no longer clobber a caller's configuration.
CUSTOM = SizerConfig(
    lam=3.0,
    subcircuit_depth=1,
    max_iterations=2,
    max_outputs_per_pass=1,
    patience=1,
)


class _SizerSpy:
    """Capture every SizerConfig the experiment runners actually use."""

    def __init__(self, monkeypatch):
        self.configs = []
        spy = self

        class Spy(StatisticalGreedySizer):
            def __init__(self, delay_model, variation_model, config):
                spy.configs.append(config)
                super().__init__(delay_model, variation_model, config)

        import repro.core.sizer as sizer_module
        import repro.flow as flow_module

        monkeypatch.setattr(sizer_module, "StatisticalGreedySizer", Spy)
        monkeypatch.setattr(flow_module, "StatisticalGreedySizer", Spy)


class TestTable1Runner:
    def test_single_row(self):
        row = run_table1_row("c17", lam=3.0, sizer_config=FAST)
        assert row.circuit == "c17"
        assert row.gates == 6
        assert row.original_cv > 0
        assert row.final_cv > 0
        assert row.sigma_change_pct <= 0.0  # sigma never increases
        assert row.runtime_seconds > 0

    def test_row_with_monte_carlo(self):
        row = run_table1_row("c17", lam=3.0, sizer_config=FAST, monte_carlo_samples=200)
        assert row.original_sigma > 0

    def test_multi_circuit_multi_lambda(self):
        rows = run_table1(["c17"], lams=(3.0, 9.0), sizer_config=FAST)
        assert len(rows) == 2
        assert {r.lam for r in rows} == {3.0, 9.0}
        # The lambda must actually be propagated into each run's config.
        for row in rows:
            assert row.sigma_change_pct <= 0.0

    def test_config_fields_survive_lambda_replacement(self, monkeypatch):
        # Regression: a caller's config used to be swapped for a default
        # SizerConfig(lam=lam) whenever its lambda differed from the cell's,
        # silently dropping subcircuit_depth, max_iterations, etc.
        spy = _SizerSpy(monkeypatch)
        run_table1(["c17"], lams=(9.0,), sizer_config=CUSTOM)
        (config,) = spy.configs
        assert config.lam == 9.0
        expected = dataclasses.asdict(CUSTOM)
        expected["lam"] = 9.0
        assert dataclasses.asdict(config) == expected

    def test_substrates_take_effect(self):
        # With variation disabled through the substrates the original design
        # must measure a zero sigma/mu — the flags are not cosmetic.
        row = run_table1_row(
            "c17", lam=3.0, sizer_config=FAST,
            substrates=SubstrateSpec(proportional_alpha=0.0, random_sigma=0.0),
        )
        assert row.original_cv == pytest.approx(0.0, abs=1e-12)
        default_row = run_table1_row("c17", lam=3.0, sizer_config=FAST)
        assert default_row.original_cv > 0

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_table1(["c17"], lams=(3.0, 9.0), sizer_config=FAST)
        parallel = run_table1(
            ["c17"], lams=(3.0, 9.0), sizer_config=FAST, jobs=2,
            out_dir=tmp_path, resume=False,
        )
        for a, b in zip(serial, parallel, strict=True):
            a_dict, b_dict = dataclasses.asdict(a), dataclasses.asdict(b)
            a_dict.pop("runtime_seconds"), b_dict.pop("runtime_seconds")
            assert a_dict == b_dict
        # A resumed rerun reuses every artifact and returns the same rows.
        resumed = run_table1(
            ["c17"], lams=(3.0, 9.0), sizer_config=FAST, jobs=2,
            out_dir=tmp_path, resume=True,
        )
        assert [dataclasses.asdict(r) for r in resumed] == [
            dataclasses.asdict(r) for r in parallel
        ]


class TestFig1Runner:
    def test_curves_structure(self):
        curves = run_fig1("c17", lams=(3.0,), sizer_config=FAST, pdf_samples=21)
        assert curves.circuit == "c17"
        assert curves.original.num_samples > 5
        assert 3.0 in curves.optimized
        series = curves.series()
        assert "original" in series
        assert "lambda=3" in series
        assert all(len(points) > 0 for points in series.values())

    def test_optimized_pdf_is_tighter(self):
        curves = run_fig1("c17", lams=(9.0,), sizer_config=SizerConfig(lam=9.0, max_iterations=6, patience=2))
        assert curves.optimized[9.0].std() <= curves.original.std() + 1e-9

    def test_config_fields_survive_lambda_replacement(self, monkeypatch):
        spy = _SizerSpy(monkeypatch)
        run_fig1("c17", lams=(9.0,), sizer_config=CUSTOM, pdf_samples=11)
        (config,) = spy.configs
        assert config.lam == 9.0
        assert config.max_iterations == CUSTOM.max_iterations
        assert config.subcircuit_depth == CUSTOM.subcircuit_depth


class TestFig3Runner:
    def test_decisions_match_paper_figure(self):
        result = run_fig3_example()
        # Node Y: (320, 27) vs (310, 45) — sensitivity comparison must pick
        # the high-sigma arc (the shaded WNSS arc of Fig. 3).
        assert result["node_y"]["method"] == "sensitivity"
        assert result["node_y"]["chosen"] == "arc_b"
        # Node Z: (392, 35) dominates (190, 41) outright.
        assert result["node_z"]["method"] == "dominance"
        assert result["node_z"]["chosen"] == "arc_d"
        # The sensitivities backing the node-Y decision are exposed.
        assert result["sensitivities_y"]["arc_b"] > result["sensitivities_y"]["arc_a"]

    def test_node_x_uses_sensitivity(self):
        result = run_fig3_example()
        assert result["node_x"]["method"] == "sensitivity"
        assert result["node_x"]["chosen"] in ("arc_c", "arc_d")


class TestFig4Runner:
    def test_sweep_points(self):
        points = run_fig4_sweep("c17", lams=(0.0, 3.0), sizer_config=FAST)
        assert len(points) == 2
        baseline = points[0]
        assert baseline.lam == 0.0
        assert baseline.normalized_mean == pytest.approx(1.0)
        for point in points:
            assert point.mean > 0 and point.sigma >= 0 and point.area > 0

    def test_sigma_decreases_along_sweep(self):
        points = run_fig4_sweep("c17", lams=(0.0, 9.0), sizer_config=SizerConfig(lam=9.0, max_iterations=6, patience=2))
        assert points[1].sigma <= points[0].sigma + 1e-9

    def test_config_fields_survive_lambda_replacement(self, monkeypatch):
        spy = _SizerSpy(monkeypatch)
        run_fig4_sweep("c17", lams=(9.0,), sizer_config=CUSTOM)
        (config,) = spy.configs
        assert config.lam == 9.0
        assert config.max_iterations == CUSTOM.max_iterations
        assert config.subcircuit_depth == CUSTOM.subcircuit_depth

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_fig4_sweep("c17", lams=(0.0, 3.0), sizer_config=FAST)
        parallel = run_fig4_sweep(
            "c17", lams=(0.0, 3.0), sizer_config=FAST, jobs=2,
            out_dir=tmp_path, resume=False,
        )
        assert parallel == serial  # Fig4Point is a frozen value dataclass
