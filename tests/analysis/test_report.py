"""Tests for the plain-text report formatting."""

from repro.analysis.experiments import Fig4Point
from repro.analysis.metrics import Table1Row
from repro.analysis.report import format_fig4, format_pdf_curve, format_table, format_table1


def _row(circuit, lam):
    return Table1Row(
        circuit=circuit,
        lam=lam,
        gates=100,
        original_cv=0.1,
        mean_increase_pct=3.0,
        sigma_change_pct=-55.0,
        final_cv=0.045,
        area_increase_pct=12.0,
        runtime_seconds=1.5,
    )


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [("a", 1.23456), ("longer", 2.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestFormatTable1:
    def test_columns_and_summary(self):
        rows = [_row("c432", 3.0), _row("c499", 3.0), _row("c432", 9.0)]
        text = format_table1(rows)
        assert "orig s/m" in text
        assert "c432" in text and "c499" in text
        assert "average (lambda=3)" in text
        assert "average (lambda=9)" in text
        assert "sigma reduction 55.0%" in text

    def test_without_summary(self):
        text = format_table1([_row("c432", 3.0)], include_summary=False)
        assert "average" not in text


class TestFormatFig4:
    def test_fig4_table(self):
        points = [
            Fig4Point(lam=0.0, mean=500.0, sigma=25.0, normalized_mean=1.0,
                      normalized_sigma=0.05, area=1000.0),
            Fig4Point(lam=3.0, mean=510.0, sigma=15.0, normalized_mean=1.02,
                      normalized_sigma=0.03, area=1150.0),
        ]
        text = format_fig4(points)
        assert "sigma/mu0" in text
        assert "1.0200" in text


class TestFormatPdfCurve:
    def test_ascii_histogram(self):
        curve = format_pdf_curve([(100.0, 0.1), (110.0, 0.5), (120.0, 0.2)], width=10, label="orig")
        lines = curve.splitlines()
        assert lines[0] == "orig"
        assert "##########" in lines[2]  # the peak gets the full width

    def test_empty_curve(self):
        assert "(empty)" in format_pdf_curve([], label="x")
