"""Unit tests for parametric timing-yield analysis."""

import numpy as np
import pytest

from repro.analysis.timing_yield import (
    YieldReport,
    period_for_yield,
    timing_yield,
    yield_improvement,
)
from repro.core.discrete_pdf import DiscretePDF
from repro.core.rv import NormalDelay


class TestTimingYield:
    def test_normal_at_mean_is_half(self):
        rv = NormalDelay(1000.0, 50.0)
        assert timing_yield(rv, 1000.0) == pytest.approx(0.5)

    def test_normal_three_sigma(self):
        rv = NormalDelay(1000.0, 50.0)
        assert timing_yield(rv, 1150.0) == pytest.approx(0.99865, abs=1e-4)
        assert timing_yield(rv, 850.0) == pytest.approx(0.00135, abs=1e-4)

    def test_zero_sigma_step_function(self):
        rv = NormalDelay(1000.0, 0.0)
        assert timing_yield(rv, 999.0) == 0.0
        assert timing_yield(rv, 1000.0) == 1.0

    def test_discrete_pdf_input(self):
        pdf = DiscretePDF.from_normal(500.0, 20.0, num_samples=31)
        assert timing_yield(pdf, 500.0) == pytest.approx(0.5, abs=0.05)
        assert timing_yield(pdf, 600.0) == pytest.approx(1.0)

    def test_samples_input(self):
        samples = np.array([90.0, 100.0, 110.0, 120.0])
        assert timing_yield(samples, 105.0) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            timing_yield(NormalDelay(1.0, 1.0), -1.0)
        with pytest.raises(ValueError):
            timing_yield([], 1.0)


class TestPeriodForYield:
    def test_normal_quantile(self):
        rv = NormalDelay(1000.0, 50.0)
        assert period_for_yield(rv, 0.5) == pytest.approx(1000.0, abs=0.1)
        p99 = period_for_yield(rv, 0.99)
        assert timing_yield(rv, p99) == pytest.approx(0.99, abs=1e-3)

    def test_monotone_in_target(self):
        rv = NormalDelay(1000.0, 50.0)
        assert period_for_yield(rv, 0.99) > period_for_yield(rv, 0.9) > period_for_yield(rv, 0.5)

    def test_samples_quantile(self):
        samples = np.linspace(100.0, 200.0, 101)
        assert period_for_yield(samples, 0.5) == pytest.approx(150.0, abs=1.0)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            period_for_yield(NormalDelay(1.0, 1.0), 1.0)
        with pytest.raises(ValueError):
            period_for_yield(NormalDelay(1.0, 1.0), 0.0)

    def test_samples_period_achieves_target_yield(self):
        # The contract: the returned period's *empirical* yield reaches the
        # target.  np.quantile's default linear interpolation violates this
        # (it lands between samples, below the target ECDF step).
        rng = np.random.default_rng(17)
        samples = rng.normal(1000.0, 60.0, 997)
        for q in (0.5, 0.9, 0.95, 0.99, 0.999):
            period = period_for_yield(samples, q)
            assert timing_yield(samples, period) >= q
            # Inverted ECDF: the period is an actual sample, and the next
            # smaller sample must not reach the target.
            assert period in samples
            below = np.sort(samples)[np.sort(samples) < period]
            if below.size:
                assert timing_yield(samples, float(below[-1])) < q

    def test_samples_period_on_tiny_sample_sets(self):
        samples = np.array([100.0, 110.0, 120.0, 130.0])
        for q in (0.5, 0.75, 0.76, 0.9):
            period = period_for_yield(samples, q)
            assert timing_yield(samples, period) >= q
        assert period_for_yield(samples, 0.5) == 110.0
        assert period_for_yield(samples, 0.75) == 120.0
        assert period_for_yield(samples, 0.76) == 130.0

    def test_discrete_pdf_period_achieves_target_yield(self):
        pdf = DiscretePDF.from_normal(500.0, 25.0, num_samples=13)
        truncated = pdf.compact(7)
        for q in (0.5, 0.9, 0.99):
            for dist in (pdf, truncated):
                period = period_for_yield(dist, q)
                assert timing_yield(dist, period) >= q - 1e-12


class TestYieldImprovement:
    def test_fig1_argument(self):
        """A narrower distribution yields more parts at a tight period even
        with a slightly larger mean — the paper's Fig. 1 'optimization 1'."""
        original = NormalDelay(1000.0, 80.0)
        optimized = NormalDelay(1020.0, 25.0)
        period = 1060.0
        gain = yield_improvement(original, optimized, period)
        assert gain > 0.1

    def test_no_gain_at_very_loose_period(self):
        original = NormalDelay(1000.0, 80.0)
        optimized = NormalDelay(1020.0, 25.0)
        assert yield_improvement(original, optimized, 2000.0) == pytest.approx(0.0, abs=1e-6)


class TestYieldReport:
    def test_report_fields_consistent(self):
        rv = NormalDelay(800.0, 40.0)
        report = YieldReport.from_distribution(rv, clock_period=850.0)
        assert report.yield_fraction == pytest.approx(timing_yield(rv, 850.0))
        assert report.period_for_99 > report.period_for_90
        assert report.period_for_3sigma > report.period_for_99
        d = report.as_dict()
        assert d["clock_period"] == 850.0

    def test_report_from_optimization_results(self, delay_model, variation_model, c17_circuit):
        from repro.core.fullssta import FULLSSTA

        rv = FULLSSTA(delay_model, variation_model).analyze(c17_circuit).output_rv
        report = YieldReport.from_distribution(rv, clock_period=rv.mean)
        assert 0.4 < report.yield_fraction < 0.6
