"""Unit tests for the synthetic 90 nm-like library generator."""

import pytest

from repro.library.synthetic90nm import (
    make_cell_type,
    make_synthetic_90nm_library,
)


class TestLibraryContents:
    def test_default_sizes_per_cell(self, library):
        # The paper's library has 6-8 sizes per gate type; default is 7.
        for cell_name in library.cell_types:
            assert library.num_sizes(cell_name) == 7

    def test_expected_cell_families_present(self, library):
        for cell in ("INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "XOR2",
                     "XNOR2", "AND2", "OR2", "AOI21", "OAI21", "MUX2"):
            assert library.has_cell(cell), cell

    def test_wide_gates_up_to_max_fanin(self, library):
        assert library.has_cell("NAND9")
        assert library.has_cell("OR9")
        assert not library.has_cell("NAND10")

    def test_sizes_per_cell_parameter(self):
        lib6 = make_synthetic_90nm_library(sizes_per_cell=6)
        assert lib6.num_sizes("INV") == 6
        lib8 = make_synthetic_90nm_library(sizes_per_cell=8)
        assert lib8.num_sizes("INV") == 8

    def test_invalid_sizes_per_cell(self):
        with pytest.raises(ValueError):
            make_synthetic_90nm_library(sizes_per_cell=1)
        with pytest.raises(ValueError):
            make_synthetic_90nm_library(sizes_per_cell=20)


class TestScalingLaws:
    def test_drive_strictly_increasing(self, library):
        for cell_name in library.cell_types:
            drives = [s.drive for s in library.cell(cell_name).sizes]
            assert drives == sorted(drives)
            assert len(set(drives)) == len(drives)

    def test_area_and_cap_increase_with_drive(self, library):
        for cell_name in ("INV", "NAND2", "XOR2"):
            sizes = library.cell(cell_name).sizes
            areas = [s.area for s in sizes]
            caps = [s.input_cap for s in sizes]
            assert areas == sorted(areas)
            assert caps == sorted(caps)

    def test_resistance_decreases_with_drive(self, library):
        for cell_name in ("INV", "NAND2"):
            resistances = [s.drive_resistance for s in library.cell(cell_name).sizes]
            assert resistances == sorted(resistances, reverse=True)

    def test_delay_under_load_decreases_with_drive(self, library):
        load = 20.0
        for cell_name in ("INV", "NAND2", "NOR3"):
            delays = [
                library.delay(cell_name, idx, load)
                for idx in library.size_indices(cell_name)
            ]
            assert delays == sorted(delays, reverse=True)

    def test_delay_magnitudes_are_90nm_like(self, library):
        # A minimum-size inverter driving a typical 4 fF load should sit in
        # the tens-of-picoseconds range, not nanoseconds or femtoseconds.
        delay = library.delay("INV", 0, 4.0)
        assert 10.0 < delay < 100.0

    def test_wider_gates_are_slower(self, library):
        assert library.delay("NAND4", 0, 4.0) > library.delay("NAND2", 0, 4.0)

    def test_lookup_tables_match_rc_model(self, library):
        size = library.cell("NAND2").size(2)
        for load in (0.5, 3.0, 12.0, 40.0):
            assert library.delay("NAND2", 2, load) == pytest.approx(
                size.linear_delay(load), rel=1e-6
            )


class TestMakeCellType:
    def test_explicit_drives(self):
        cell = make_cell_type("INV", 1, drives=(1.0, 4.0))
        assert cell.num_sizes == 2
        assert cell.size(1).drive == 4.0

    def test_without_tables(self):
        cell = make_cell_type("INV", 1, with_tables=False)
        assert cell.size(0).delay_table == ()

    def test_extrapolated_wide_gate(self):
        cell = make_cell_type("NAND6", 6)
        base = make_cell_type("NAND4", 4)
        assert cell.size(0).intrinsic_delay > base.size(0).intrinsic_delay

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            make_cell_type("FOO3", 3)
