"""Unit tests for the cell-library data model."""

import pytest

from repro.library.cell import CellSize, CellType, Library, _interpolate_table


def make_size(name="INV_X1", drive=1.0, **overrides):
    params = {
        "name": name,
        "drive": drive,
        "area": 2.0,
        "input_cap": 1.5,
        "intrinsic_delay": 10.0,
        "drive_resistance": 6.0,
    }
    params.update(overrides)
    return CellSize(**params)


class TestCellSize:
    def test_linear_delay(self):
        size = make_size()
        assert size.linear_delay(0.0) == pytest.approx(10.0)
        assert size.linear_delay(4.0) == pytest.approx(10.0 + 6.0 * 4.0)

    def test_negative_load_clamped(self):
        assert make_size().linear_delay(-5.0) == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "field,value",
        [("drive", 0.0), ("drive", -1.0), ("area", 0.0), ("input_cap", 0.0),
         ("intrinsic_delay", -1.0), ("drive_resistance", -0.1)],
    )
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(ValueError):
            make_size(**{field: value})


class TestCellType:
    def test_add_sizes_in_order(self):
        cell = CellType("INV", 1)
        cell.add_size(make_size("INV_X1", 1.0))
        cell.add_size(make_size("INV_X2", 2.0))
        assert cell.num_sizes == 2
        assert cell.size(1).drive == 2.0
        assert list(cell.size_indices()) == [0, 1]

    def test_out_of_order_drive_rejected(self):
        cell = CellType("INV", 1)
        cell.add_size(make_size("INV_X2", 2.0))
        with pytest.raises(ValueError):
            cell.add_size(make_size("INV_X1", 1.0))

    def test_size_index_out_of_range(self):
        cell = CellType("INV", 1)
        cell.add_size(make_size())
        with pytest.raises(IndexError):
            cell.size(1)

    def test_function_derived_from_name(self):
        assert CellType("NAND3", 3).function == "NAND"
        assert CellType("INV", 1).function == "INV"

    def test_bad_num_inputs(self):
        with pytest.raises(ValueError):
            CellType("INV", 0)


class TestLibrary:
    @pytest.fixture
    def tiny(self):
        library = Library("tiny", default_output_load=2.0, wire_cap_per_fanout=0.1)
        inv = CellType("INV", 1)
        inv.add_size(make_size("INV_X1", 1.0))
        inv.add_size(make_size("INV_X2", 2.0, drive_resistance=3.0))
        library.add_cell(inv)
        return library

    def test_queries(self, tiny):
        assert tiny.has_cell("INV")
        assert "INV" in tiny
        assert not tiny.has_cell("NAND2")
        assert tiny.num_sizes("INV") == 2
        assert tiny.cell_types == ["INV"]
        assert len(tiny) == 1
        assert tiny.min_size_index("INV") == 0
        assert tiny.max_size_index("INV") == 1

    def test_area_cap_delay(self, tiny):
        assert tiny.area("INV", 0) == pytest.approx(2.0)
        assert tiny.input_cap("INV", 1) == pytest.approx(1.5)
        assert tiny.delay("INV", 0, 4.0) == pytest.approx(10.0 + 6.0 * 4.0)
        assert tiny.delay("INV", 1, 4.0) == pytest.approx(10.0 + 3.0 * 4.0)

    def test_unknown_cell_raises(self, tiny):
        with pytest.raises(KeyError):
            tiny.cell("NAND2")

    def test_duplicate_cell_rejected(self, tiny):
        with pytest.raises(ValueError):
            tiny.add_cell(CellType("INV", 1))

    def test_lut_delay_preferred_when_present(self):
        library = Library("lut")
        cell = CellType("INV", 1)
        cell.add_size(make_size(delay_table=((0.0, 5.0), (10.0, 25.0))))
        library.add_cell(cell)
        # Table says slope 2 ps/fF from intercept 5, not the RC expression.
        assert library.delay("INV", 0, 5.0) == pytest.approx(15.0)


class TestTableInterpolation:
    def test_interior_interpolation(self):
        table = ((0.0, 0.0), (10.0, 100.0))
        assert _interpolate_table(table, 5.0) == pytest.approx(50.0)

    def test_extrapolation_below_and_above(self):
        table = ((1.0, 10.0), (2.0, 20.0))
        assert _interpolate_table(table, 0.0) == pytest.approx(0.0)
        assert _interpolate_table(table, 3.0) == pytest.approx(30.0)

    def test_single_point_table(self):
        assert _interpolate_table(((4.0, 42.0),), 100.0) == pytest.approx(42.0)

    def test_extrapolation_below_is_floored_at_zero(self):
        # A steep two-point table crosses zero when extended below its
        # smallest load; a negative delay would corrupt downstream arrival
        # times, so the extrapolation is clamped at 0.
        steep = ((1.0, 50.0), (2.0, 200.0))
        assert _interpolate_table(steep, 1.5) == pytest.approx(125.0)
        assert _interpolate_table(steep, 0.0) == 0.0
        assert _interpolate_table(steep, 0.5) == 0.0
        # Just below the crossing point the clamp must not engage.
        assert _interpolate_table(steep, 0.7) == pytest.approx(5.0)

    def test_library_delay_never_negative_for_tiny_loads(self):
        library = Library("lut", default_output_load=0.0)
        cell = CellType("INV", 1)
        cell.add_size(make_size(delay_table=((2.0, 30.0), (4.0, 90.0))))
        library.add_cell(cell)
        assert library.delay("INV", 0, 0.0) == 0.0
        assert library.delay("INV", 0, 3.0) == pytest.approx(60.0)
