"""Unit tests for the delay models (load computation, gate delay, area)."""

import pytest

from repro.library.delay_model import (
    LinearRCDelayModel,
    LookupTableDelayModel,
    make_delay_model,
)


class TestLoadComputation:
    def test_load_counts_fanout_caps(self, delay_model, chain_circuit):
        # n1 drives only i2.
        i2 = chain_circuit.gate("i2")
        expected = delay_model.library.input_cap(i2.cell_type, i2.size_index)
        assert delay_model.load_on_net(chain_circuit, "n1") == pytest.approx(expected)

    def test_load_sums_multiple_fanouts(self, delay_model, chain_circuit):
        # n2 drives i3 and i4.
        caps = [
            delay_model.library.input_cap("INV", chain_circuit.gate(n).size_index)
            for n in ("i3", "i4")
        ]
        assert delay_model.load_on_net(chain_circuit, "n2") == pytest.approx(sum(caps))

    def test_primary_output_gets_default_load(self, delay_model, chain_circuit):
        assert delay_model.load_on_net(chain_circuit, "out1") == pytest.approx(
            delay_model.library.default_output_load
        )

    def test_load_increases_when_fanout_upsized(self, delay_model, chain_circuit):
        before = delay_model.load_on_net(chain_circuit, "n2")
        chain_circuit.set_size("i3", 5)
        after = delay_model.load_on_net(chain_circuit, "n2")
        assert after > before


class TestGateDelay:
    def test_upsizing_reduces_delay_under_load(self, delay_model, chain_circuit):
        gate = chain_circuit.gate("i2")
        d_small = delay_model.gate_delay_at_size(chain_circuit, gate, 0)
        d_large = delay_model.gate_delay_at_size(chain_circuit, gate, 6)
        assert d_large < d_small

    def test_gate_delay_matches_at_size(self, delay_model, chain_circuit):
        gate = chain_circuit.gate("i1")
        assert delay_model.gate_delay(chain_circuit, gate) == pytest.approx(
            delay_model.gate_delay_at_size(chain_circuit, gate, gate.size_index)
        )

    def test_all_gate_delays(self, delay_model, chain_circuit):
        delays = delay_model.all_gate_delays(chain_circuit)
        assert set(delays) == {"i1", "i2", "i3", "i4"}
        assert all(d > 0 for d in delays.values())

    def test_linear_and_lut_models_agree_on_synthetic_library(
        self, delay_model, linear_delay_model, chain_circuit
    ):
        # The synthetic library's tables are sampled from the RC expression,
        # so both models should agree to interpolation accuracy.
        for gate in chain_circuit.gates.values():
            lut = delay_model.gate_delay(chain_circuit, gate)
            lin = linear_delay_model.gate_delay(chain_circuit, gate)
            assert lut == pytest.approx(lin, rel=1e-6)


class TestArea:
    def test_circuit_area_sums_gate_areas(self, delay_model, chain_circuit):
        total = sum(
            delay_model.library.area(g.cell_type, g.size_index)
            for g in chain_circuit.gates.values()
        )
        assert delay_model.circuit_area(chain_circuit) == pytest.approx(total)

    def test_area_increases_with_upsizing(self, delay_model, chain_circuit):
        before = delay_model.circuit_area(chain_circuit)
        chain_circuit.set_size("i1", 6)
        assert delay_model.circuit_area(chain_circuit) > before


class TestFactory:
    def test_make_delay_model(self, library):
        assert isinstance(make_delay_model(library, "lut"), LookupTableDelayModel)
        assert isinstance(make_delay_model(library, "linear"), LinearRCDelayModel)
        with pytest.raises(ValueError):
            make_delay_model(library, "quantum")
