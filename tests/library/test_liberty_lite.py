"""Unit tests for the JSON library serialisation."""

import json

import pytest

from repro.library.liberty_lite import (
    library_from_json,
    library_to_json,
    load_library,
    save_library,
)


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, library):
        text = library_to_json(library)
        again = library_from_json(text)
        assert again.name == library.name
        assert again.default_output_load == library.default_output_load
        assert again.cell_types == library.cell_types
        for cell_name in library.cell_types:
            original = library.cell(cell_name)
            restored = again.cell(cell_name)
            assert restored.num_inputs == original.num_inputs
            assert restored.num_sizes == original.num_sizes
            for idx in range(original.num_sizes):
                a, b = original.size(idx), restored.size(idx)
                assert b.drive == a.drive
                assert b.area == pytest.approx(a.area)
                assert b.input_cap == pytest.approx(a.input_cap)
                assert b.intrinsic_delay == pytest.approx(a.intrinsic_delay)
                assert b.drive_resistance == pytest.approx(a.drive_resistance)
                assert b.delay_table == a.delay_table

    def test_delays_identical_after_roundtrip(self, library):
        again = library_from_json(library_to_json(library))
        for cell_name in ("INV", "NAND2", "XOR3"):
            for idx in library.size_indices(cell_name):
                for load in (1.0, 8.0, 30.0):
                    assert again.delay(cell_name, idx, load) == pytest.approx(
                        library.delay(cell_name, idx, load)
                    )

    def test_json_is_valid_and_versioned(self, library):
        doc = json.loads(library_to_json(library))
        assert doc["format_version"] == 1
        assert doc["name"] == library.name
        assert len(doc["cells"]) == len(library)

    def test_unsupported_version_rejected(self, library):
        doc = json.loads(library_to_json(library))
        doc["format_version"] = 99
        with pytest.raises(ValueError):
            library_from_json(json.dumps(doc))

    def test_save_and_load_file(self, library, tmp_path):
        path = tmp_path / "lib.json"
        save_library(library, path)
        again = load_library(path)
        assert again.cell_types == library.cell_types
