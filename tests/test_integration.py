"""End-to-end integration tests across all subsystems.

These tests run the complete paper flow — generate circuit, baseline
mean-delay sizing, FULLSSTA, StatisticalGreedy sizing, Monte-Carlo
validation — on small circuits and check the *qualitative* claims of the
paper hold: sigma drops, the drop is confirmed by Monte Carlo (not just by
the engine that optimized it), area rises, and the mean moves only modestly.
"""

import pytest

from repro.circuits.alu import alu
from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.fullssta import FULLSSTA
from repro.core.sizer import SizerConfig, StatisticalGreedySizer
from repro.montecarlo.mc import MonteCarloTimer
from repro.netlist.validate import validate_circuit


@pytest.fixture(scope="module")
def optimized_alu(delay_model_module, variation_model_module):
    """Run the full flow once on a small ALU and share the results."""
    delay_model = delay_model_module
    variation_model = variation_model_module
    circuit = alu(4)
    MeanDelaySizer(delay_model).optimize(circuit)
    fullssta = FULLSSTA(delay_model, variation_model)
    mc = MonteCarloTimer(delay_model, variation_model)

    original_rv = fullssta.analyze(circuit).output_rv
    original_area = delay_model.circuit_area(circuit)
    original_mc = mc.run(circuit, num_samples=1500, seed=0)
    original_sizes = circuit.sizes()

    sizer = StatisticalGreedySizer(
        delay_model, variation_model, SizerConfig(lam=3.0, max_iterations=12)
    )
    result = sizer.optimize(circuit)
    final_rv = fullssta.analyze(circuit).output_rv
    final_area = delay_model.circuit_area(circuit)
    final_mc = mc.run(circuit, num_samples=1500, seed=0)

    return {
        "circuit": circuit,
        "original_rv": original_rv,
        "original_area": original_area,
        "original_mc": original_mc,
        "original_sizes": original_sizes,
        "result": result,
        "final_rv": final_rv,
        "final_area": final_area,
        "final_mc": final_mc,
    }


# Module-scoped copies of the session fixtures (pytest cannot mix scopes here).
@pytest.fixture(scope="module")
def delay_model_module():
    from repro.library.delay_model import LookupTableDelayModel
    from repro.library.synthetic90nm import make_synthetic_90nm_library

    return LookupTableDelayModel(make_synthetic_90nm_library())


@pytest.fixture(scope="module")
def variation_model_module():
    from repro.variation.model import VariationModel

    return VariationModel()


class TestFullFlowOnAlu:
    def test_sigma_reduced_per_engine(self, optimized_alu):
        assert optimized_alu["final_rv"].sigma < optimized_alu["original_rv"].sigma

    def test_sigma_reduction_confirmed_by_monte_carlo(self, optimized_alu):
        # The claim must hold on the golden model, not only on the engine
        # that drove the optimization.
        assert optimized_alu["final_mc"].sigma < optimized_alu["original_mc"].sigma

    def test_area_increases(self, optimized_alu):
        assert optimized_alu["final_area"] >= optimized_alu["original_area"]

    def test_mean_changes_modestly(self, optimized_alu):
        # The paper reports single-digit percentage mean changes.
        original = optimized_alu["original_rv"].mean
        final = optimized_alu["final_rv"].mean
        assert abs(final - original) / original < 0.15

    def test_some_gates_were_upsized(self, optimized_alu):
        before = optimized_alu["original_sizes"]
        circuit = optimized_alu["circuit"]
        upsized = [
            name for name, size in before.items()
            if circuit.gate(name).size_index > size
        ]
        assert upsized

    def test_circuit_still_valid(self, optimized_alu, library):
        assert validate_circuit(optimized_alu["circuit"], library) == []

    def test_sizer_result_consistent_with_measurement(self, optimized_alu):
        result = optimized_alu["result"]
        assert result.final.sigma == pytest.approx(optimized_alu["final_rv"].sigma, rel=1e-6)


class TestLambdaTradeoffDirection:
    def test_lambda_nine_reduces_sigma_at_least_as_much_as_lambda_zero(
        self, delay_model_module, variation_model_module
    ):
        """Higher lambda must put more emphasis on sigma than a pure mean run."""
        results = {}
        for lam in (0.0, 9.0):
            circuit = alu(4)
            MeanDelaySizer(delay_model_module).optimize(circuit)
            fullssta = FULLSSTA(delay_model_module, variation_model_module)
            before = fullssta.analyze(circuit).output_rv
            StatisticalGreedySizer(
                delay_model_module,
                variation_model_module,
                SizerConfig(lam=lam, max_iterations=10),
            ).optimize(circuit)
            after = fullssta.analyze(circuit).output_rv
            results[lam] = (before.sigma - after.sigma) / before.sigma
        assert results[9.0] >= results[0.0] - 0.02


class TestBenchmarkFlowSmoke:
    @pytest.mark.slow
    def test_c432_class_flow(self, delay_model_module, variation_model_module):
        circuit = build_benchmark("c432")
        MeanDelaySizer(delay_model_module).optimize(circuit)
        fullssta = FULLSSTA(delay_model_module, variation_model_module)
        before = fullssta.analyze(circuit).output_rv
        StatisticalGreedySizer(
            delay_model_module,
            variation_model_module,
            SizerConfig(lam=3.0, max_iterations=6),
        ).optimize(circuit)
        after = fullssta.analyze(circuit).output_rv
        assert after.sigma <= before.sigma + 1e-9
