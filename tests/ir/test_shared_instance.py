"""One circuit structure, one CompiledCircuit — shared by every engine.

The whole point of the IR layer: FASSTA, FULLSSTA, DSTA, the Monte-Carlo
timers and the criticality analyzer must all consume the *same*
:class:`~repro.ir.compiled.CompiledCircuit` instance for a given circuit
structure, lowered exactly once.
"""

import pytest

import repro.ir.compiled as compiled_mod
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA
from repro.criticality.analysis import CriticalityAnalyzer
from repro.criticality.mc import MonteCarloCriticality
from repro.montecarlo.mc import MonteCarloTimer
from repro.sta.dsta import DeterministicSTA


@pytest.fixture
def lowering_counter(monkeypatch):
    """Count lower_circuit calls; Circuit.compiled imports it at call time."""
    calls = []
    real = compiled_mod.lower_circuit

    def counting(circuit):
        calls.append(circuit.name)
        return real(circuit)

    monkeypatch.setattr(compiled_mod, "lower_circuit", counting)
    return calls


class TestSharedInstance:
    def test_all_engines_share_one_lowering(
        self, delay_model, variation_model, c17_circuit, lowering_counter
    ):
        plan = c17_circuit.compiled()

        fassta = FASSTA(delay_model, variation_model, vectorized=True)
        fassta_result = fassta.analyze(c17_circuit)
        fullssta = FULLSSTA(delay_model, variation_model, vectorized=True)
        fullssta_result = fullssta.analyze(c17_circuit)
        DeterministicSTA(delay_model, vectorized=True).analyze(c17_circuit)
        MonteCarloTimer(delay_model, variation_model).run(
            c17_circuit, num_samples=16
        )
        MonteCarloCriticality(delay_model, variation_model).run(
            c17_circuit, num_samples=16
        )
        CriticalityAnalyzer(c17_circuit).analyze(fassta_result.arrivals)
        CriticalityAnalyzer(c17_circuit).analyze(fullssta_result.arrival_moments)

        # Every engine ran off the cached instance: exactly one lowering
        # (the explicit compiled() call above), and the cache still holds
        # the same object afterwards.
        assert lowering_counter == ["c17"]
        assert c17_circuit.compiled() is plan

    def test_size_changes_do_not_relower_mid_flow(
        self, delay_model, variation_model, c17_circuit, lowering_counter
    ):
        fassta = FASSTA(delay_model, variation_model, vectorized=True)
        plan = c17_circuit.compiled()
        before = fassta.analyze(c17_circuit).mean
        for name in c17_circuit.gates:
            c17_circuit.set_size(name, 4)
        after = fassta.analyze(c17_circuit).mean
        assert after != before  # sizes actually took effect
        assert c17_circuit.compiled() is plan  # refreshed, not relowered
        assert lowering_counter == ["c17"]

    def test_flow_run_lowers_once(self, lowering_counter):
        from repro.circuits.registry import c17
        from repro.flow import run_sizing_flow

        circuit = c17()
        run_sizing_flow(circuit, run_baseline=False, monte_carlo_samples=32)
        assert lowering_counter.count("c17") == 1
