"""Lowering invariants of the compiled array-native IR.

Every structural claim :class:`~repro.ir.compiled.CompiledCircuit` makes —
bijective ids, CSR adjacency mirroring the netlist, level-major gate order,
the PI / gate-output / floating net-slot layout — is checked here against
the source :class:`~repro.netlist.circuit.Circuit`, on every registry
benchmark and on Hypothesis-generated circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import ripple_carry_adder
from repro.circuits.alu import alu
from repro.circuits.multiplier import array_multiplier
from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark, c17
from repro.ir import CompiledCircuit, lower_circuit
from repro.netlist.circuit import Circuit

ALL_NAMES = ["c17", *BENCHMARK_NAMES]


def build(name):
    return c17() if name == "c17" else build_benchmark(name)


def assert_lowering_invariants(circuit, plan):
    """The full IR <-> netlist round-trip contract."""
    # --- id <-> name bijections -------------------------------------
    assert plan.num_gates == len(circuit.gates)
    assert len(plan.gate_names) == plan.num_gates
    assert len(set(plan.gate_names)) == plan.num_gates
    for gid, name in enumerate(plan.gate_names):
        assert plan.gate_index[name] == gid
    assert set(plan.gate_names) == set(circuit.gates)

    assert len(plan.net_names) == plan.num_nets
    assert len(set(plan.net_names)) == plan.num_nets
    for slot, net in enumerate(plan.net_names):
        assert plan.net_index[net] == slot

    # --- net-slot layout: PIs, then gate outputs, then floating ------
    assert plan.num_pis == len(circuit.primary_inputs)
    assert plan.net_names[: plan.num_pis] == list(circuit.primary_inputs)
    for gid, name in enumerate(plan.gate_names):
        slot = plan.gate_output_slot[gid]
        assert slot == plan.num_pis + gid
        assert plan.net_names[slot] == circuit.gate(name).output
    floating_start = plan.num_pis + plan.num_gates
    assert plan.floating == frozenset(plan.net_names[floating_start:])
    np.testing.assert_array_equal(
        plan.floating_mask, np.arange(plan.num_nets) >= floating_start
    )
    expected_boundary = np.zeros(plan.num_nets, dtype=bool)
    expected_boundary[: plan.num_pis] = True
    expected_boundary[floating_start:] = True
    np.testing.assert_array_equal(plan.boundary_mask, expected_boundary)
    # Floating nets really are undriven non-PI nets read by some gate.
    driven = {circuit.gate(n).output for n in plan.gate_names}
    read = {net for g in circuit for net in g.inputs}
    assert plan.floating == (read - driven - set(circuit.primary_inputs))

    # --- fanin CSR matches Gate.inputs in pin order ------------------
    for gid, name in enumerate(plan.gate_names):
        gate = circuit.gate(name)
        slots = plan.gate_fanin_slots(gid)
        assert [plan.net_names[s] for s in slots] == list(gate.inputs)
        assert plan.fanin_counts[gid] == len(gate.inputs)

    # --- dense padded fanin matrix mirrors the CSR -------------------
    if plan.num_gates:
        assert plan.fanin_matrix.shape == (
            plan.num_gates,
            int(plan.fanin_counts.max()),
        )
    for gid in range(plan.num_gates):
        n = plan.fanin_counts[gid]
        row = plan.fanin_matrix[gid]
        np.testing.assert_array_equal(row[:n], plan.gate_fanin_slots(gid))
        assert (row[n:] == plan.num_nets).all()  # sentinel padding

    # --- fanout CSR matches loads_of ---------------------------------
    for slot, net in enumerate(plan.net_names):
        readers = [plan.gate_names[g] for g in plan.net_fanout_gates(slot)]
        assert readers == [g.name for g in circuit.loads_of(net)]

    # --- level-major gate order --------------------------------------
    levels_map = circuit.levels()
    assert plan.level_values == sorted(set(levels_map.values()))
    assert plan.num_levels == len(plan.level_values)
    assert plan.level_offsets[0] == 0
    assert plan.level_offsets[-1] == plan.num_gates
    for li, level in enumerate(plan.level_values):
        start, stop = plan.level_offsets[li], plan.level_offsets[li + 1]
        assert start < stop
        for gid in range(start, stop):
            assert levels_map[plan.gate_names[gid]] == level
            assert plan.gate_level[gid] == level
    # Within a level, gates keep their relative topological order.
    topo_pos = {n: i for i, n in enumerate(circuit.topological_order())}
    for block in plan.levels:
        positions = [topo_pos[n] for n in block.names]
        assert positions == sorted(positions)
    # Ascending gate id is a valid topological order overall.
    for gid, _name in enumerate(plan.gate_names):
        for slot in plan.gate_fanin_slots(gid):
            if plan.num_pis <= slot < floating_start:
                assert slot - plan.num_pis < gid  # driver id < reader id

    # --- level blocks mirror the CSR ---------------------------------
    for li, block in enumerate(plan.levels):
        start, stop = plan.level_offsets[li], plan.level_offsets[li + 1]
        np.testing.assert_array_equal(block.gate_ids, np.arange(start, stop))
        assert block.names == plan.gate_names[start:stop]
        np.testing.assert_array_equal(
            block.out_slots, plan.gate_output_slot[start:stop]
        )
        for row, gid in enumerate(range(start, stop)):
            want = plan.gate_fanin_slots(gid)
            got = block.in_slots[row][block.in_mask[row]]
            np.testing.assert_array_equal(got, want)

    # --- per-gate arrays ---------------------------------------------
    for gid, name in enumerate(plan.gate_names):
        gate = circuit.gate(name)
        assert plan.cell_types[plan.cell_type_ids[gid]] == gate.cell_type
        assert plan.size_index[gid] == gate.size_index

    assert plan.num_slots == plan.num_nets
    assert plan.structure_version == circuit.structure_version


class TestLoweringRegistry:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_lowering_invariants(self, name):
        circuit = build(name)
        assert_lowering_invariants(circuit, circuit.compiled())


class TestLoweringProperties:
    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_adder_round_trip(self, width):
        circuit = ripple_carry_adder(width)
        assert_lowering_invariants(circuit, lower_circuit(circuit))

    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_multiplier_round_trip(self, width):
        circuit = array_multiplier(width)
        assert_lowering_invariants(circuit, lower_circuit(circuit))

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_alu_round_trip(self, width):
        circuit = alu(width)
        assert_lowering_invariants(circuit, lower_circuit(circuit))


class TestFloatingNets:
    def test_floating_inputs_take_the_slot_tail(self):
        circuit = Circuit("f", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "ghost1"], "n1")
        circuit.add("g2", "NAND2", ["n1", "ghost2"], "y")
        plan = circuit.compiled()
        assert plan.floating == {"ghost1", "ghost2"}
        assert plan.net_names[-2:] == ["ghost1", "ghost2"]
        assert plan.boundary_mask[plan.net_index["ghost1"]]
        assert plan.boundary_mask[plan.net_index["a"]]
        assert not plan.boundary_mask[plan.net_index["n1"]]
        assert_lowering_invariants(circuit, plan)


class TestCacheSemantics:
    def test_same_structure_reuses_instance(self, c17_circuit):
        plan = c17_circuit.compiled()
        assert c17_circuit.compiled() is plan

    def test_size_only_change_refreshes_in_place(self, c17_circuit):
        plan = c17_circuit.compiled()
        name = plan.gate_names[0]
        c17_circuit.set_size(name, 3)
        plan2 = c17_circuit.compiled()
        assert plan2 is plan  # no relower
        assert plan.size_index[plan.gate_index[name]] == 3

    def test_structural_edit_relowers(self, c17_circuit):
        plan = c17_circuit.compiled()
        c17_circuit.add("g_extra", "INV", ["N22"], "N90")
        c17_circuit.add_primary_output("N90")
        plan2 = c17_circuit.compiled()
        assert plan2 is not plan
        assert "g_extra" in plan2.gate_index
        assert_lowering_invariants(c17_circuit, plan2)

    def test_apply_sizes_bulk_refresh(self, c17_circuit):
        plan = c17_circuit.compiled()
        sizes = {name: 2 for name in c17_circuit.gates}
        c17_circuit.apply_sizes(sizes)
        plan2 = c17_circuit.compiled()
        assert plan2 is plan
        np.testing.assert_array_equal(
            plan.size_index, np.full(plan.num_gates, 2)
        )


class TestFanoutCone:
    @pytest.mark.parametrize("name", ["c17", "c432", "c880"])
    def test_cone_matches_transitive_fanout(self, name):
        circuit = build(name)
        plan = circuit.compiled()
        for seed in list(circuit.gates)[:: max(1, len(circuit) // 10)]:
            cone = plan.fanout_cone([plan.gate_index[seed]])
            got = {plan.gate_names[g] for g in cone}
            want = circuit.transitive_fanout(seed) | {seed}
            assert got == want
            # Ascending ids: a valid topological order of the cone.
            assert list(cone) == sorted(cone)

    def test_multi_seed_union(self):
        circuit = build("c432")
        plan = circuit.compiled()
        seeds = list(circuit.gates)[:3]
        cone = plan.fanout_cone(plan.gate_index[s] for s in seeds)
        got = {plan.gate_names[g] for g in cone}
        want = set(seeds)
        for s in seeds:
            want |= circuit.transitive_fanout(s)
        assert got == want


def test_lower_circuit_smoke_repr():
    plan = lower_circuit(c17())
    assert isinstance(plan, CompiledCircuit)
    assert "c17" in repr(plan)
