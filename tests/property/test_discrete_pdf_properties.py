"""Property-based tests for discrete PDFs (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discrete_pdf import DiscretePDF

means = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
sigmas = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
sample_counts = st.integers(min_value=5, max_value=21)


@st.composite
def discrete_pdfs(draw):
    """Arbitrary small discrete pdfs with positive probabilities."""
    n = draw(st.integers(min_value=1, max_value=12))
    values = draw(
        st.lists(
            st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    probs = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    return DiscretePDF(values, probs)


class TestInvariants:
    @given(discrete_pdfs())
    @settings(max_examples=150)
    def test_probabilities_normalised_and_sorted(self, pdf):
        assert pdf.probabilities.sum() == np.float64(1.0) or abs(pdf.probabilities.sum() - 1.0) < 1e-9
        assert np.all(np.diff(pdf.values) > 0)

    @given(discrete_pdfs())
    @settings(max_examples=150)
    def test_mean_within_support(self, pdf):
        lo, hi = pdf.support()
        assert lo - 1e-9 <= pdf.mean() <= hi + 1e-9

    @given(discrete_pdfs())
    @settings(max_examples=100)
    def test_variance_non_negative(self, pdf):
        assert pdf.variance() >= -1e-12

    @given(discrete_pdfs(), st.integers(min_value=3, max_value=15))
    @settings(max_examples=100)
    def test_compaction_preserves_mass_and_mean(self, pdf, budget):
        compacted = pdf.compact(budget)
        assert compacted.num_samples <= max(budget, pdf.num_samples if pdf.num_samples <= budget else budget)
        assert abs(compacted.probabilities.sum() - 1.0) < 1e-9
        assert compacted.mean() == np.float64(pdf.mean()) or abs(compacted.mean() - pdf.mean()) < 1e-6 * max(abs(pdf.mean()), 1.0)

    @given(discrete_pdfs())
    @settings(max_examples=100)
    def test_cdf_monotone(self, pdf):
        lo, hi = pdf.support()
        points = np.linspace(lo - 1.0, hi + 1.0, 7)
        cdf_values = [pdf.cdf(float(x)) for x in points]
        assert all(b >= a - 1e-12 for a, b in zip(cdf_values, cdf_values[1:], strict=False))
        assert cdf_values[-1] == 1.0 or abs(cdf_values[-1] - 1.0) < 1e-9


class TestAgainstAnalyticNormals:
    @given(means, sigmas, sample_counts)
    @settings(max_examples=100)
    def test_from_normal_moments(self, mu, sigma, n):
        pdf = DiscretePDF.from_normal(mu, sigma, num_samples=n)
        assert abs(pdf.mean() - mu) <= 0.05 * sigma + 1e-6
        assert abs(pdf.std() - sigma) <= 0.15 * sigma

    @given(means, sigmas, means, sigmas)
    @settings(max_examples=75)
    def test_sum_matches_normal_sum(self, mu_a, s_a, mu_b, s_b):
        a = DiscretePDF.from_normal(mu_a, s_a, 15)
        b = DiscretePDF.from_normal(mu_b, s_b, 15)
        c = a.add(b, num_samples=15)
        assert abs(c.mean() - (mu_a + mu_b)) <= 0.05 * (s_a + s_b) + 1e-6
        expected_sigma = math.sqrt(s_a ** 2 + s_b ** 2)
        assert abs(c.std() - expected_sigma) <= 0.2 * expected_sigma

    @given(means, sigmas, means, sigmas)
    @settings(max_examples=75)
    def test_max_mean_at_least_operand_means(self, mu_a, s_a, mu_b, s_b):
        a = DiscretePDF.from_normal(mu_a, s_a, 13)
        b = DiscretePDF.from_normal(mu_b, s_b, 13)
        m = a.maximum(b, num_samples=13)
        # Discretization can shave a little off the tail; allow a small slack
        # proportional to the operand sigmas.
        assert m.mean() >= max(mu_a, mu_b) - 0.2 * max(s_a, s_b) - 1e-6

    @given(means, sigmas, means, sigmas)
    @settings(max_examples=75)
    def test_max_against_clark(self, mu_a, s_a, mu_b, s_b):
        from repro.core.clark import clark_max_exact

        a = DiscretePDF.from_normal(mu_a, s_a, 21)
        b = DiscretePDF.from_normal(mu_b, s_b, 21)
        m = a.maximum(b, num_samples=21)
        mean, var = clark_max_exact(mu_a, s_a, mu_b, s_b)
        scale = max(s_a, s_b)
        assert abs(m.mean() - mean) <= 0.25 * scale + 1e-6
