"""Property-based tests for Clark's max approximations (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import clark
from repro.core.rv import NormalDelay

means = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False, allow_infinity=False)
sigmas = st.floats(min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False)
positive_sigmas = st.floats(min_value=0.01, max_value=200.0, allow_nan=False)


class TestCdfApproximation:
    @given(st.floats(min_value=-8.0, max_value=8.0))
    def test_quadratic_cdf_within_paper_accuracy(self, x):
        """The quadratic cdf is accurate to two decimal places everywhere."""
        exact = clark.capital_phi(x)
        assert abs(clark.capital_phi_quadratic(x) - exact) < 0.015

    @given(st.floats(min_value=-8.0, max_value=8.0))
    def test_quadratic_cdf_monotone_bounds(self, x):
        value = clark.capital_phi_quadratic(x)
        assert 0.0 <= value <= 1.0

    @given(st.floats(min_value=0.0, max_value=8.0))
    def test_quadratic_cdf_symmetry(self, x):
        assert clark.capital_phi_quadratic(-x) == pytest_approx(
            1.0 - clark.capital_phi_quadratic(x)
        )


def pytest_approx(value, tol=1e-12):
    """Tiny local helper so hypothesis examples print cleanly."""
    class _Approx:
        def __eq__(self, other):
            return abs(other - value) <= tol
        def __repr__(self):
            return f"approx({value})"
    return _Approx()


class TestClarkMaxProperties:
    @given(means, sigmas, means, sigmas)
    @settings(max_examples=200)
    def test_mean_of_max_at_least_max_of_means(self, mu_a, s_a, mu_b, s_b):
        mean, _ = clark.clark_max_exact(mu_a, s_a, mu_b, s_b)
        assert mean >= max(mu_a, mu_b) - 1e-6

    @given(means, sigmas, means, sigmas)
    @settings(max_examples=200)
    def test_variance_non_negative_and_bounded(self, mu_a, s_a, mu_b, s_b):
        _, var = clark.clark_max_exact(mu_a, s_a, mu_b, s_b)
        assert var >= 0.0
        # Var[max] cannot exceed the sum of the operand variances (for
        # independent normals it is bounded by max individual variance plus
        # the cross term; the sum is a safe upper bound).
        assert var <= s_a * s_a + s_b * s_b + 1e-6

    @given(means, sigmas, means, sigmas)
    @settings(max_examples=200)
    def test_symmetry(self, mu_a, s_a, mu_b, s_b):
        forward = clark.clark_max_exact(mu_a, s_a, mu_b, s_b)
        backward = clark.clark_max_exact(mu_b, s_b, mu_a, s_a)
        assert forward[0] == pytest_approx(backward[0], tol=1e-6)
        assert forward[1] == pytest_approx(backward[1], tol=1e-6)

    @given(means, positive_sigmas, means, positive_sigmas)
    @settings(max_examples=200)
    def test_fast_tracks_exact(self, mu_a, s_a, mu_b, s_b):
        """The fast approximation stays within a few percent of exact Clark."""
        exact_mean, exact_var = clark.clark_max_exact(mu_a, s_a, mu_b, s_b)
        fast_mean, fast_var = clark.clark_max_fast(mu_a, s_a, mu_b, s_b)
        scale = max(abs(exact_mean), 1.0)
        assert abs(fast_mean - exact_mean) <= 0.03 * scale
        # Variance error is bounded by a fraction of the total input variance.
        assert abs(fast_var - exact_var) <= 0.2 * (s_a * s_a + s_b * s_b) + 1e-9

    @given(means, positive_sigmas, means, positive_sigmas)
    @settings(max_examples=100)
    def test_dominance_consistency(self, mu_a, s_a, mu_b, s_b):
        """When the dominance test fires, the dominant operand's moments are returned."""
        dom = clark.dominance(mu_a, s_a, mu_b, s_b)
        mean, var = clark.clark_max_fast(mu_a, s_a, mu_b, s_b)
        if dom == 1:
            assert mean == mu_a and var == s_a * s_a
        elif dom == -1:
            assert mean == mu_b and var == s_b * s_b

    @given(means, positive_sigmas)
    @settings(max_examples=100)
    def test_max_with_self_increases_mean(self, mu, sigma):
        mean, var = clark.clark_max_exact(mu, sigma, mu, sigma)
        assert mean == pytest_approx(mu + sigma / math.sqrt(math.pi), tol=1e-6 * max(mu, 1.0) + 1e-6)
        assert var < sigma * sigma + 1e-9


class TestNormalDelayProperties:
    @given(means, sigmas, means, sigmas)
    @settings(max_examples=150)
    def test_addition_commutes(self, mu_a, s_a, mu_b, s_b):
        a = NormalDelay(mu_a, s_a)
        b = NormalDelay(mu_b, s_b)
        ab = a + b
        ba = b + a
        assert ab.mean == pytest_approx(ba.mean, tol=1e-9)
        assert ab.sigma == pytest_approx(ba.sigma, tol=1e-9)

    @given(means, sigmas, means, sigmas)
    @settings(max_examples=150)
    def test_maximum_commutes(self, mu_a, s_a, mu_b, s_b):
        a = NormalDelay(mu_a, s_a)
        b = NormalDelay(mu_b, s_b)
        ab = a.maximum(b)
        ba = b.maximum(a)
        assert ab.mean == pytest_approx(ba.mean, tol=1e-6)
        assert ab.sigma == pytest_approx(ba.sigma, tol=1e-6)

    @given(means, sigmas, st.floats(min_value=-100, max_value=100))
    @settings(max_examples=100)
    def test_shift_only_moves_mean(self, mu, sigma, offset):
        rv = NormalDelay(mu, sigma).shift(offset)
        assert rv.mean == pytest_approx(mu + offset, tol=1e-9)
        assert rv.sigma == pytest_approx(sigma, tol=1e-12)
