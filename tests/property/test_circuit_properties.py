"""Property-based tests on circuit structure and generator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import ripple_carry_adder
from repro.circuits.alu import alu
from repro.circuits.ecc import parity_tree
from repro.circuits.multiplier import array_multiplier
from repro.core.subcircuit import extract_subcircuit
from repro.netlist.simulate import drive_bus, read_bus, simulate
from repro.netlist.validate import validate_circuit

widths = st.integers(min_value=1, max_value=10)
small_widths = st.integers(min_value=2, max_value=5)


class TestTopologicalInvariants:
    @given(widths)
    @settings(max_examples=20, deadline=None)
    def test_topological_order_respects_edges(self, width):
        circuit = ripple_carry_adder(width)
        order = circuit.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for gate in circuit.gates.values():
            for net in gate.inputs:
                driver = circuit.driver_of(net)
                if driver is not None:
                    assert position[driver.name] < position[gate.name]

    @given(widths)
    @settings(max_examples=20, deadline=None)
    def test_levels_consistent_with_edges(self, width):
        circuit = ripple_carry_adder(width)
        levels = circuit.levels()
        for gate in circuit.gates.values():
            for net in gate.inputs:
                driver = circuit.driver_of(net)
                if driver is not None:
                    assert levels[driver.name] < levels[gate.name]

    @given(widths)
    @settings(max_examples=15, deadline=None)
    def test_generators_produce_valid_circuits(self, width):
        from repro.library.synthetic90nm import make_synthetic_90nm_library

        library = make_synthetic_90nm_library()
        circuit = alu(width)
        assert validate_circuit(circuit, library) == []


class TestSubcircuitProperties:
    @given(small_widths, st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_extraction_closure(self, width, depth):
        circuit = ripple_carry_adder(width)
        for seed in list(circuit.topological_order())[:: max(1, width)]:
            sub = extract_subcircuit(circuit, seed, depth=depth)
            member = set(sub.gate_names)
            assert seed in member
            # Every net read by a member gate is either a boundary input or
            # driven by a member gate — never dangling.
            driven_inside = {circuit.gate(n).output for n in member}
            for name in member:
                for net in circuit.gate(name).inputs:
                    assert net in driven_inside or net in sub.input_nets

    @given(small_widths)
    @settings(max_examples=15, deadline=None)
    def test_deeper_extraction_is_superset(self, width):
        circuit = ripple_carry_adder(width)
        seed = circuit.topological_order()[len(circuit) // 2]
        shallow = set(extract_subcircuit(circuit, seed, depth=1).gate_names)
        deep = set(extract_subcircuit(circuit, seed, depth=3).gate_names)
        assert shallow <= deep


class TestGeneratorFunctionalProperties:
    @given(
        small_widths,
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_adder_adds(self, width, a, b, cin):
        a %= 1 << width
        b %= 1 << width
        circuit = ripple_carry_adder(width)
        inputs = {**drive_bus("a", a, width), **drive_bus("b", b, width), "cin": cin}
        values = simulate(circuit, inputs)
        total = read_bus(values, "sum", width) + (values["cout"] << width)
        assert total == a + b + int(cin)

    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_multiplier_multiplies(self, width, a, b):
        a %= 1 << width
        b %= 1 << width
        circuit = array_multiplier(width)
        inputs = {**drive_bus("a", a, width), **drive_bus("b", b, width)}
        values = simulate(circuit, inputs)
        assert read_bus(values, "p", 2 * width) == a * b

    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=40, deadline=None)
    def test_parity_tree_parity(self, width, value):
        value %= 1 << width
        circuit = parity_tree(width)
        values = simulate(circuit, drive_bus("d", value, width))
        assert values["parity"] == (bin(value).count("1") % 2 == 1)
