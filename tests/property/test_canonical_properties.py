"""Property-based tests for net canonicalization (hypothesis).

The representative election is a pure function of alias-class *membership*,
so canonicalization must be (a) independent of the order and orientation of
the ``assign`` statements and (b) idempotent — re-running the front end on
its own output changes nothing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.ast import FlatDesign, FlatGate, RawNetlist
from repro.netlist.canonical import canonicalize_design
from repro.netlist.elaborate import elaborate_design


def _fingerprint(circuit):
    return (
        tuple(circuit.primary_inputs),
        tuple(circuit.primary_outputs),
        tuple(sorted(
            (g.name, g.cell_type, tuple(g.inputs), g.output)
            for g in circuit.gates.values()
        )),
    )


@st.composite
def designs(draw):
    """A random conflict-free FlatDesign with alias chains.

    Alias left-hand sides are always fresh names, so every alias class holds
    at most one driven net and canonicalization never has to reject the
    design — the properties then quantify over the full strategy domain.
    """
    n_pis = draw(st.integers(min_value=1, max_value=4))
    pis = [f"i{k}" for k in range(n_pis)]
    nets = list(pis)  # referencable names: real nets plus alias names
    gates = []
    aliases = []

    n_stmts = draw(st.integers(min_value=1, max_value=10))
    for k in range(n_stmts):
        make_alias = draw(st.booleans()) and nets
        if make_alias:
            target = draw(st.sampled_from(nets))
            alias = f"a{k}"
            aliases.append((alias, target))
            nets.append(alias)
        else:
            cell, fanin = draw(st.sampled_from(
                [("INV", 1), ("BUF", 1), ("NAND2", 2), ("AND2", 2)]
            ))
            inputs = [draw(st.sampled_from(nets)) for _ in range(fanin)]
            out = f"n{k}"
            gates.append(FlatGate(f"g{k}", cell, inputs, out))
            nets.append(out)

    gate_outputs = [g.output for g in gates]
    pos = gate_outputs[-1:] if gate_outputs else []
    design = FlatDesign(
        name="prop", primary_inputs=pis, primary_outputs=pos, gates=gates
    )
    for lhs, rhs in aliases:
        design.add_alias(lhs, rhs)
    return design


def _copy_with_aliases(design, alias_pairs):
    twin = FlatDesign(
        name=design.name,
        primary_inputs=list(design.primary_inputs),
        primary_outputs=list(design.primary_outputs),
        gates=[FlatGate(g.name, g.cell_type, list(g.inputs), g.output,
                        g.size_index) for g in design.gates],
    )
    for lhs, rhs in alias_pairs:
        twin.add_alias(lhs, rhs)
    return twin


class TestOrderIndependence:
    @given(designs(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_alias_order_does_not_matter(self, design, rng):
        baseline = canonicalize_design(design)
        shuffled_pairs = list(design.aliases)
        rng.shuffle(shuffled_pairs)
        shuffled = canonicalize_design(
            _copy_with_aliases(design, shuffled_pairs)
        )
        assert _fingerprint(shuffled.circuit) == _fingerprint(baseline.circuit)
        assert shuffled.net_map == baseline.net_map

    @given(designs())
    @settings(max_examples=60, deadline=None)
    def test_alias_orientation_does_not_matter(self, design):
        baseline = canonicalize_design(design)
        flipped = canonicalize_design(
            _copy_with_aliases(design,
                               [(r, l) for l, r in design.aliases])
        )
        assert _fingerprint(flipped.circuit) == _fingerprint(baseline.circuit)
        assert flipped.net_map == baseline.net_map


class TestIdempotence:
    @given(designs())
    @settings(max_examples=60, deadline=None)
    def test_frontend_is_idempotent_on_its_output(self, design):
        first = canonicalize_design(design).circuit
        again = elaborate_design(RawNetlist.from_circuit(first))
        assert again.merged_nets == 0
        assert not again.repairs and not again.deduplicated
        assert _fingerprint(again.circuit) == _fingerprint(first)
