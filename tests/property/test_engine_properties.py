"""Property-based tests for the statistical timing engines and the sizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import ripple_carry_adder
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA
from repro.core.sizer import SizerConfig, StatisticalGreedySizer
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.sta.dsta import DeterministicSTA
from repro.variation.model import VariationModel

_LIBRARY = make_synthetic_90nm_library()
_DELAY = LookupTableDelayModel(_LIBRARY)
_VARIATION = VariationModel()

widths = st.integers(min_value=1, max_value=6)
size_indices = st.integers(min_value=0, max_value=6)


class TestEngineConsistency:
    @given(widths, st.lists(size_indices, min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_fassta_mean_at_least_nominal(self, width, sizes):
        circuit = ripple_carry_adder(width)
        names = circuit.topological_order()
        for name, size in zip(names, sizes, strict=False):
            circuit.set_size(name, size)
        nominal = DeterministicSTA(_DELAY).max_delay(circuit)
        result = FASSTA(_DELAY, _VARIATION).analyze(circuit)
        assert result.output_rv.mean >= nominal - 1e-6

    @given(widths, st.lists(size_indices, min_size=1, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_fassta_and_fullssta_agree_on_mean(self, width, sizes):
        circuit = ripple_carry_adder(width)
        names = circuit.topological_order()
        for name, size in zip(names, sizes, strict=False):
            circuit.set_size(name, size)
        fast = FASSTA(_DELAY, _VARIATION).analyze(circuit).output_rv
        full = FULLSSTA(_DELAY, _VARIATION).analyze(circuit).output_rv
        assert abs(fast.mean - full.mean) <= 0.05 * full.mean
        assert abs(fast.sigma - full.sigma) <= 0.35 * full.sigma + 1.0

    @given(widths)
    @settings(max_examples=10, deadline=None)
    def test_arrival_monotone_along_paths(self, width):
        circuit = ripple_carry_adder(width)
        result = FASSTA(_DELAY, _VARIATION).analyze(circuit)
        for gate in circuit.gates.values():
            out_arrival = result.arrival(gate.output).mean
            for net in gate.inputs:
                assert out_arrival >= result.arrival(net).mean - 1e-9


class TestSizerProperties:
    @given(st.integers(min_value=1, max_value=3), st.sampled_from([0.0, 3.0, 9.0]))
    @settings(max_examples=8, deadline=None)
    def test_sizer_never_worsens_objective(self, width, lam):
        circuit = ripple_carry_adder(width)
        sizer = StatisticalGreedySizer(
            _DELAY, _VARIATION, SizerConfig(lam=lam, max_iterations=5, patience=2)
        )
        result = sizer.optimize(circuit)
        initial = result.initial.mean + lam * result.initial.sigma
        final = result.final.mean + lam * result.final.sigma
        assert final <= initial + 1e-6

    @given(st.integers(min_value=1, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_sizer_output_sizes_are_legal(self, width):
        circuit = ripple_carry_adder(width)
        sizer = StatisticalGreedySizer(
            _DELAY, _VARIATION, SizerConfig(lam=3.0, max_iterations=4, patience=2)
        )
        sizer.optimize(circuit)
        for gate in circuit.gates.values():
            assert 0 <= gate.size_index < _LIBRARY.num_sizes(gate.cell_type)
