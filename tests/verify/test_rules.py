"""Each DRC rule demonstrated on a minimal circuit seeding exactly its defect.

Every test asserts the *rule id* that fired, not message substrings — the
ids are the stable contract (see the catalogue in ``repro/verify/rules.py``).
"""

import pytest

from repro.netlist.circuit import Circuit
from repro.verify import (
    Rule,
    Severity,
    all_rules,
    error_rules,
    lint_circuit,
    register,
    rule_catalogue,
)


def _clean_pair():
    """in -> g1 -> g2 -> out, structurally clean."""
    circuit = Circuit("clean", primary_inputs=["a", "b"], primary_outputs=["y"])
    circuit.add("g1", "NAND2", ["a", "b"], "n1")
    circuit.add("g2", "INV", ["n1"], "y")
    return circuit


class TestCatalogue:
    def test_ten_rules_in_id_order(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [f"DRC{i:03d}" for i in range(1, 11)]
        assert ids == sorted(ids)

    def test_catalogue_rows_match_rules(self):
        rows = rule_catalogue()
        assert [r["rule_id"] for r in rows] == [r.rule_id for r in all_rules()]
        for row in rows:
            assert row["severity"] in ("ERROR", "WARNING", "INFO")
            assert row["title"]

    def test_error_rules_are_the_error_subset(self):
        assert {r.rule_id for r in error_rules()} == {
            r.rule_id for r in all_rules() if r.severity >= Severity.ERROR
        }

    def test_register_rejects_duplicate_id(self):
        with pytest.raises(ValueError, match="duplicate rule id"):
            @register
            class Dup(Rule):  # pragma: no cover - class body only
                rule_id = "DRC001"

    def test_register_rejects_missing_id(self):
        with pytest.raises(ValueError, match="no rule_id"):
            @register
            class NoId(Rule):  # pragma: no cover - class body only
                pass


class TestCleanCircuit:
    def test_no_diagnostics_without_library(self):
        report = lint_circuit(_clean_pair())
        assert report.diagnostics == []
        assert report.ok
        # Library-domain rules were skipped, and that is recorded.
        assert "DRC007" not in report.rules_run
        assert "DRC001" in report.rules_run

    def test_no_errors_with_library(self, library):
        report = lint_circuit(_clean_pair(), library=library)
        assert report.errors == []
        assert set(report.rules_run) == {f"DRC{i:03d}" for i in range(1, 11)}


class TestStructuralRules:
    def test_drc001_combinational_cycle(self):
        circuit = Circuit("loop", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "n2"], "n1")
        circuit.add("g2", "INV", ["n1"], "n2")
        circuit.add("g3", "INV", ["n1"], "y")
        report = lint_circuit(circuit)
        assert "DRC001" in report.rule_ids()
        (diag,) = report.by_rule("DRC001")
        assert diag.severity == Severity.ERROR
        assert "'g1'" in diag.message and "'g2'" in diag.message
        # The cycle blame set excludes the off-loop reader g3.
        assert "'g3'" not in diag.message

    def test_drc002_self_loop_not_drc001(self):
        circuit = Circuit("self", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "n1"], "n1")
        circuit.add("g2", "INV", ["n1"], "y")
        report = lint_circuit(circuit)
        assert report.by_rule("DRC002")
        # A pure self-loop is owned by DRC002 alone.
        assert not report.by_rule("DRC001")
        (diag,) = report.by_rule("DRC002")
        assert diag.gate == "g1" and diag.net == "n1"

    def test_drc003_multi_driver(self):
        circuit = Circuit("multi", primary_inputs=["a", "b"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("g2", "INV", ["b"], "z")
        circuit.gate("g2").output = "y"  # rewire behind the circuit's back
        report = lint_circuit(circuit)
        diags = report.by_rule("DRC003")
        assert len(diags) == 1
        assert diags[0].net == "y"

    def test_drc003_gate_driving_primary_input(self):
        circuit = Circuit("pi", primary_inputs=["a", "b"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "b"], "y")
        circuit.add("g2", "INV", ["a"], "z")
        circuit.gate("g2").output = "b"
        report = lint_circuit(circuit)
        assert any("primary input" in d.message for d in report.by_rule("DRC003"))

    def test_drc004_floating_input(self):
        circuit = Circuit("float", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "ghost"], "y")
        report = lint_circuit(circuit)
        (diag,) = report.by_rule("DRC004")
        assert diag.gate == "g1" and diag.net == "ghost"

    def test_drc005_undriven_output(self):
        circuit = Circuit("po", primary_inputs=["a"], primary_outputs=["y", "z"])
        circuit.add("g1", "INV", ["a"], "y")
        report = lint_circuit(circuit)
        (diag,) = report.by_rule("DRC005")
        assert diag.net == "z"

    def test_drc006_unreachable_gate_is_warning(self):
        circuit = Circuit("dead", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("g2", "INV", ["a"], "n_dead")
        report = lint_circuit(circuit)
        (diag,) = report.by_rule("DRC006")
        assert diag.severity == Severity.WARNING
        assert "'g2'" in diag.message
        assert report.ok  # warnings never make a report fail

    def test_cyclic_circuit_still_lints_other_rules(self):
        # The linter never calls topological_order, so a cyclic circuit
        # still gets its floating-input finding.
        circuit = Circuit("both", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "n2"], "n1")
        circuit.add("g2", "NAND2", ["n1", "ghost"], "n2")
        circuit.add("g3", "INV", ["n1"], "y")
        report = lint_circuit(circuit)
        assert "DRC001" in report.rule_ids()
        assert "DRC004" in report.rule_ids()


class TestLibraryRules:
    def test_drc007_unknown_cell(self, library):
        circuit = Circuit("cell", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "FROBNICATOR", ["a"], "y")
        report = lint_circuit(circuit, library=library)
        (diag,) = report.by_rule("DRC007")
        assert diag.gate == "g1"
        # DRC008-010 do not pile onto the same root cause.
        assert not report.by_rule("DRC008")

    def test_drc008_size_out_of_range(self, library):
        circuit = Circuit("size", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y", size_index=99)
        report = lint_circuit(circuit, library=library)
        (diag,) = report.by_rule("DRC008")
        assert diag.gate == "g1"

    def test_drc009_drive_limit(self, library):
        # One INV driving a wall of max-size inverters: far beyond twice
        # the strongest size's largest tabulated load.
        circuit = Circuit("drive", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g0", "INV", ["a"], "n0")
        inv = library.cell("INV")
        for i in range(40):
            out = "y" if i == 0 else f"n{i + 1}"
            circuit.add(f"load{i}", "INV", ["n0"], out,
                        size_index=inv.num_sizes - 1)
        report = lint_circuit(circuit, library=library)
        assert any(d.gate == "g0" for d in report.by_rule("DRC009"))

    def test_drc010_out_of_table_domain_is_warning(self, library):
        # Smallest INV driving several max-size loads: outside its own
        # table domain but within the DRC009 drive limit.
        circuit = Circuit("domain", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g0", "INV", ["a"], "n0", size_index=0)
        inv = library.cell("INV")
        for i in range(7):
            out = "y" if i == 0 else f"n{i + 1}"
            circuit.add(f"load{i}", "INV", ["n0"], out,
                        size_index=inv.num_sizes - 1)
        report = lint_circuit(circuit, library=library)
        diags = [d for d in report.by_rule("DRC010") if d.gate == "g0"]
        assert diags and diags[0].severity == Severity.WARNING
        assert not any(d.gate == "g0" for d in report.by_rule("DRC009"))
        assert report.ok

    def test_library_rules_skipped_without_library(self):
        circuit = Circuit("cell", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "FROBNICATOR", ["a"], "y")
        report = lint_circuit(circuit)
        assert not report.by_rule("DRC007")
        assert "DRC007" not in report.rules_run


class TestReport:
    def test_sorted_errors_first_then_rule_id(self, library):
        circuit = Circuit("mixed", primary_inputs=["a"], primary_outputs=["y", "z"])
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("dead", "INV", ["a"], "n_dead")  # DRC006 warning
        # DRC005: z undriven (error)
        report = lint_circuit(circuit, library=library)
        severities = [int(d.severity) for d in report.diagnostics]
        assert severities == sorted(severities, reverse=True)

    def test_exit_code_contract(self):
        circuit = Circuit("dead", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("g2", "INV", ["a"], "n_dead")
        report = lint_circuit(circuit)  # one warning, no errors
        assert report.exit_code() == 0
        assert report.exit_code(fail_on=Severity.WARNING) == 1

    def test_json_roundtrip(self, library):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "ghost"], "y")
        report = lint_circuit(circuit, library=library)
        import json

        payload = json.loads(report.to_json())
        assert payload["circuit"] == "bad"
        assert any(d["rule_id"] == "DRC004" for d in payload["diagnostics"])

    def test_format_text_mentions_rule_and_hint(self):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "ghost"], "y")
        text = lint_circuit(circuit).format_text()
        assert "DRC004" in text
        assert "hint:" in text


class TestValidateWrapperParity:
    def test_validate_circuit_is_the_error_subset(self, library):
        """netlist.validate must report exactly the ERROR diagnostics."""
        from repro.netlist.validate import validate_circuit

        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y", "z"])
        circuit.add("g1", "NAND2", ["a", "ghost"], "y")
        circuit.add("dead", "INV", ["a"], "n_dead")  # warning only
        problems = validate_circuit(circuit, library, raise_on_error=False)
        report = lint_circuit(circuit, library=library)
        assert problems == [d.message for d in report.errors]
