"""Property tests: inject a random defect, assert the owning rule fires.

Hypothesis builds random layered DAG circuits, then seeds exactly one class
of defect; the linter must attribute it to the exact rule id (and, for the
structural rules, must not report *other* error rules on an otherwise-clean
netlist).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.circuit import Circuit
from repro.verify import Severity, lint_circuit

CELLS = ["INV", "BUF", "NAND2", "NOR2"]


def _random_dag(draw) -> Circuit:
    """A clean layered circuit: every gate reads earlier nets; last net is the PO."""
    num_pis = draw(st.integers(min_value=1, max_value=4))
    num_gates = draw(st.integers(min_value=2, max_value=12))
    pis = [f"in{i}" for i in range(num_pis)]
    circuit = Circuit("rand", primary_inputs=pis,
                      primary_outputs=[f"n{num_gates - 1}"])
    nets = list(pis)
    for gid in range(num_gates):
        cell = draw(st.sampled_from(CELLS))
        fanin = 2 if cell in ("NAND2", "NOR2") else 1
        inputs = [draw(st.sampled_from(nets)) for _ in range(fanin)]
        out = f"n{gid}"
        circuit.add(f"g{gid}", cell, inputs, out)
        nets.append(out)
    return circuit



class TestDefectInjection:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_clean_dag_has_no_structural_errors(self, data):
        circuit = _random_dag(data.draw)
        report = lint_circuit(circuit)
        assert report.errors == [], report.format_text()

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_cycle_edge_fires_drc001(self, data):
        circuit = _random_dag(data.draw)
        gates = list(circuit.gates.values())
        # Rewire some early gate to read a strictly later gate's output:
        # a guaranteed feedback edge (self-loops excluded — DRC002 owns those).
        src = data.draw(st.integers(min_value=0, max_value=len(gates) - 2))
        dst = data.draw(st.integers(min_value=src + 1, max_value=len(gates) - 1))
        pin = data.draw(st.integers(min_value=0,
                                    max_value=len(gates[src].inputs) - 1))
        gates[src].inputs[pin] = gates[dst].output
        gates[dst].inputs[0] = gates[src].output
        report = lint_circuit(circuit)
        assert "DRC001" in report.rule_ids(), report.format_text()
        (diag,) = report.by_rule("DRC001")
        assert f"'{gates[src].name}'" in diag.message
        assert f"'{gates[dst].name}'" in diag.message

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_self_loop_fires_drc002_not_drc001(self, data):
        circuit = _random_dag(data.draw)
        gates = list(circuit.gates.values())
        victim = data.draw(st.sampled_from(gates))
        pin = data.draw(st.integers(min_value=0,
                                    max_value=len(victim.inputs) - 1))
        victim.inputs[pin] = victim.output
        report = lint_circuit(circuit)
        assert "DRC002" in report.rule_ids(), report.format_text()
        drc002 = report.by_rule("DRC002")
        assert any(d.gate == victim.name for d in drc002)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_duplicated_driver_fires_drc003(self, data):
        circuit = _random_dag(data.draw)
        gates = list(circuit.gates.values())
        a = data.draw(st.integers(min_value=0, max_value=len(gates) - 2))
        b = data.draw(st.integers(min_value=a + 1, max_value=len(gates) - 1))
        gates[b].output = gates[a].output  # rewire behind the circuit's back
        report = lint_circuit(circuit)
        drc003 = report.by_rule("DRC003")
        assert any(d.net == gates[a].output for d in drc003), report.format_text()

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_orphaned_input_fires_drc004(self, data):
        circuit = _random_dag(data.draw)
        gates = list(circuit.gates.values())
        victim = data.draw(st.sampled_from(gates))
        pin = data.draw(st.integers(min_value=0,
                                    max_value=len(victim.inputs) - 1))
        victim.inputs[pin] = "__nowhere__"
        report = lint_circuit(circuit)
        drc004 = report.by_rule("DRC004")
        assert any(d.gate == victim.name and d.net == "__nowhere__"
                   for d in drc004), report.format_text()

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_error_diagnostics_always_fail_preflight(self, data):
        """Any ERROR diagnostic must make preflight raise, and vice versa."""
        import pytest

        from repro.verify import PreflightError, preflight_circuit

        circuit = _random_dag(data.draw)
        defective = data.draw(st.booleans())
        if defective:
            gates = list(circuit.gates.values())
            victim = data.draw(st.sampled_from(gates))
            victim.inputs[0] = "__nowhere__"
        report = lint_circuit(circuit)
        if report.errors:
            with pytest.raises(PreflightError) as exc_info:
                preflight_circuit(circuit)
            assert not exc_info.value.report.ok
        else:
            assert preflight_circuit(circuit).ok

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_report_severity_ordering_invariant(self, data):
        circuit = _random_dag(data.draw)
        # Maybe add some dead logic (warning) and a floating input (error).
        if data.draw(st.booleans()):
            circuit.add("dead", "INV", [circuit.primary_inputs[0]], "n_dead")
        if data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(list(circuit.gates.values())))
            victim.inputs[0] = "__nowhere__"
        report = lint_circuit(circuit)
        severities = [int(d.severity) for d in report.diagnostics]
        assert severities == sorted(severities, reverse=True)
        assert report.ok == (not any(s >= Severity.ERROR for s in severities))
