"""Acceptance gate: every registry circuit is ERROR-clean under the DRC
catalogue, and every lowering satisfies the IR contract.

Warnings are allowed (c432/c2670/c3540 carry dangling/unreachable gates from
the paper's netlists; several circuits have loads outside the smallest
sizes' table domains) but errors are not — an error here means either a
registry regression or an over-eager rule.
"""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark, c17
from repro.verify import lint_circuit, verify_compiled

ALL_NAMES = ["c17", *BENCHMARK_NAMES]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_registry_circuit_is_error_clean(name, library):
    circuit = c17() if name == "c17" else build_benchmark(name)
    report = lint_circuit(circuit, library=library)
    assert report.ok, f"{name}:\n{report.format_text()}"
    # The whole catalogue actually ran (library rules included).
    assert set(report.rules_run) == {f"DRC{i:03d}" for i in range(1, 11)}


@pytest.mark.parametrize("name", ALL_NAMES)
def test_registry_lowering_satisfies_ir_contract(name):
    circuit = c17() if name == "c17" else build_benchmark(name)
    compiled = circuit.compiled(verify=False)
    assert verify_compiled(compiled, circuit) is compiled
