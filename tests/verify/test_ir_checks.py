"""Corrupt one compiled-IR field at a time; verify_compiled must name it.

Each test lowers a fresh c17, mutates exactly one invariant, and asserts
that :func:`ir_problems` reports it (and that :func:`verify_compiled`
raises :class:`IRVerificationError` carrying the same lines).
"""

import pytest

from repro.circuits.registry import build_benchmark, c17
from repro.verify import IRVerificationError, ir_problems, verify_compiled


@pytest.fixture
def compiled_pair():
    circuit = c17()
    return circuit, circuit.compiled(verify=False)


class TestCleanIR:
    def test_c17_verifies_with_and_without_circuit(self, compiled_pair):
        circuit, compiled = compiled_pair
        assert ir_problems(compiled) == []
        assert ir_problems(compiled, circuit) == []
        assert verify_compiled(compiled, circuit) is compiled

    def test_compiled_verify_flag_checks_cache_hits(self):
        circuit = c17()
        compiled = circuit.compiled(verify=True)
        compiled.gate_output_slot[0] += 1  # corrupt the cached instance
        with pytest.raises(IRVerificationError):
            circuit.compiled(verify=True)

    def test_registry_circuit_verifies(self):
        circuit = build_benchmark("alu1")
        verify_compiled(circuit.compiled(verify=False), circuit)


def _expect(compiled, circuit, needle):
    problems = ir_problems(compiled, circuit)
    assert problems, f"expected a problem mentioning {needle!r}"
    assert any(needle in p for p in problems), problems
    with pytest.raises(IRVerificationError) as exc_info:
        verify_compiled(compiled, circuit)
    assert needle in str(exc_info.value)


class TestCorruptions:
    def test_gate_output_slot(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.gate_output_slot[0] += 1
        _expect(compiled, circuit, "gate_output_slot")

    def test_level_offsets(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.level_offsets[1] += 1
        _expect(compiled, circuit, "level")

    def test_gate_level_monotonicity(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.gate_level[-1] = 0
        problems = ir_problems(compiled, circuit)
        assert problems

    def test_fanin_indptr(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.fanin_indptr[1] += 1
        _expect(compiled, circuit, "fanin_indptr")

    def test_fanin_slot_out_of_range(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.fanin_slots[0] = compiled.num_nets + 5
        _expect(compiled, circuit, "fanin_slots")

    def test_fanin_matrix_sentinel(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.fanin_matrix[0, 0] = compiled.num_nets
        _expect(compiled, circuit, "fanin_matrix")

    def test_fanout_symmetry(self, compiled_pair):
        circuit, compiled = compiled_pair
        if len(compiled.fanout_gates) >= 2:
            compiled.fanout_gates[:2] = compiled.fanout_gates[:2][::-1]
        problems = ir_problems(compiled, circuit)
        assert problems

    def test_boundary_mask(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.boundary_mask[compiled.num_pis] = True
        _expect(compiled, circuit, "boundary_mask")

    def test_floating_mask(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.floating_mask[0] = True
        _expect(compiled, circuit, "floating_mask")

    def test_net_index_bijection(self, compiled_pair):
        circuit, compiled = compiled_pair
        a, b = compiled.net_names[0], compiled.net_names[1]
        compiled.net_index[a], compiled.net_index[b] = (
            compiled.net_index[b],
            compiled.net_index[a],
        )
        _expect(compiled, circuit, "net_index")

    def test_size_index_vs_circuit(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.size_index[0] = compiled.size_index[0] + 1
        problems = ir_problems(compiled, circuit)
        assert any("size_index" in p for p in problems)

    def test_cell_type_id_out_of_vocab(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.cell_type_ids[0] = len(compiled.cell_types)
        _expect(compiled, circuit, "cell_type")

    def test_topological_soundness(self, compiled_pair):
        circuit, compiled = compiled_pair
        # Make the last gate's first input read its own output slot range:
        # a driver at an equal-or-higher level.
        last = compiled.num_gates - 1
        lo = compiled.fanin_indptr[last]
        compiled.fanin_slots[lo] = compiled.gate_output_slot[last]
        compiled.fanin_matrix[last, 0] = compiled.gate_output_slot[last]
        problems = ir_problems(compiled)
        assert problems

    def test_problem_lines_all_reported(self, compiled_pair):
        circuit, compiled = compiled_pair
        compiled.gate_output_slot[0] += 1
        compiled.boundary_mask[compiled.num_pis] = True
        with pytest.raises(IRVerificationError) as exc_info:
            verify_compiled(compiled, circuit)
        assert len(exc_info.value.problems) >= 2


class TestSizeRefreshStaysVerified:
    def test_size_change_then_verify(self):
        circuit = c17()
        circuit.compiled(verify=True)
        name = next(iter(circuit.gates))
        circuit.set_size(name, 3)
        compiled = circuit.compiled(verify=True)  # cache hit + size refresh
        gid = compiled.gate_index[name]
        assert int(compiled.size_index[gid]) == 3
