"""Unit tests for the spatial-correlation overlay."""

import numpy as np
import pytest

from repro.variation.correlation import SpatialCorrelationModel


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpatialCorrelationModel(grid_size=0)
        with pytest.raises(ValueError):
            SpatialCorrelationModel(correlated_fraction=1.5)
        with pytest.raises(ValueError):
            SpatialCorrelationModel(levels=0)


class TestAssignment:
    def test_assignment_is_deterministic_and_in_range(self):
        model = SpatialCorrelationModel(grid_size=4)
        a1 = model.assign("gate_42")
        a2 = model.assign("gate_42")
        assert a1 == a2
        assert 0 <= a1.row < 4 and 0 <= a1.col < 4

    def test_factor_indices_cover_all_levels(self):
        model = SpatialCorrelationModel(grid_size=4, levels=3)
        factors = model.factor_indices(model.assign("g"))
        assert len(factors) == 3
        assert factors[0] == (0, 0, 0)  # level 0 is the die-wide factor

    def test_num_factors(self):
        model = SpatialCorrelationModel(grid_size=4, levels=3)
        assert model.num_factors() == 1 + 4 + 16


class TestCorrelation:
    def test_self_correlation_is_one(self):
        model = SpatialCorrelationModel()
        assert model.correlation_between("a", "a") == 1.0

    def test_correlation_bounded_by_fraction(self):
        model = SpatialCorrelationModel(correlated_fraction=0.5)
        rho = model.correlation_between("gate_a", "gate_b")
        assert 0.0 <= rho <= 0.5

    def test_all_gates_share_die_level_factor(self):
        model = SpatialCorrelationModel(correlated_fraction=0.6, levels=3)
        rho = model.correlation_between("x1", "x2")
        assert rho >= 0.6 / 3 - 1e-12

    def test_split_sigma_preserves_variance(self):
        model = SpatialCorrelationModel(correlated_fraction=0.4)
        corr, ind = model.split_sigma(10.0)
        assert corr ** 2 + ind ** 2 == pytest.approx(100.0)

    def test_correlated_component_unit_variance(self):
        model = SpatialCorrelationModel(grid_size=4, levels=3)
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(4000):
            draw = model.sample_factors(rng)
            samples.append(model.correlated_component("some_gate", draw))
        samples = np.array(samples)
        assert abs(samples.mean()) < 0.1
        assert samples.std() == pytest.approx(1.0, abs=0.08)

    def test_sample_factors_keys(self):
        model = SpatialCorrelationModel(grid_size=4, levels=2)
        rng = np.random.default_rng(1)
        draw = model.sample_factors(rng)
        assert len(draw) == model.num_factors()
