"""Unit tests for the gate-delay variation model."""

import pytest

from repro.variation.model import GateDelayDistribution, VariationModel


class TestGateDelayDistribution:
    def test_variance_and_cv(self):
        dist = GateDelayDistribution(mean=50.0, sigma=10.0)
        assert dist.variance == pytest.approx(100.0)
        assert dist.cv == pytest.approx(0.2)

    def test_zero_mean_cv(self):
        # repro-lint: allow=RL004 -- cv is defined as exactly 0 at mean 0
        assert GateDelayDistribution(mean=0.0, sigma=1.0).cv == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            GateDelayDistribution(mean=-1.0, sigma=0.0)
        with pytest.raises(ValueError):
            GateDelayDistribution(mean=1.0, sigma=-0.1)


class TestSigmaFor:
    def test_two_component_structure(self):
        model = VariationModel(proportional_alpha=0.2, random_sigma=3.0, size_exponent=0.5)
        assert model.sigma_for(100.0, 1.0) == pytest.approx(0.2 * 100.0 + 3.0)
        assert model.sigma_for(100.0, 4.0) == pytest.approx(0.2 * 100.0 / 2.0 + 3.0)

    def test_sigma_decreases_with_drive(self, variation_model):
        sigmas = [variation_model.sigma_for(80.0, d) for d in (1.0, 2.0, 4.0, 8.0)]
        assert sigmas == sorted(sigmas, reverse=True)

    def test_random_floor_never_removed(self, variation_model):
        assert variation_model.sigma_for(80.0, 1e9) >= variation_model.random_sigma

    def test_zero_delay_gives_floor_only(self, variation_model):
        assert variation_model.sigma_for(0.0, 1.0) == pytest.approx(
            variation_model.random_sigma
        )

    def test_invalid_arguments(self, variation_model):
        with pytest.raises(ValueError):
            variation_model.sigma_for(-1.0, 1.0)
        with pytest.raises(ValueError):
            variation_model.sigma_for(1.0, 0.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            VariationModel(proportional_alpha=-0.1)
        with pytest.raises(ValueError):
            VariationModel(random_sigma=-1.0)
        with pytest.raises(ValueError):
            VariationModel(size_exponent=-1.0)


class TestCoupling:
    def test_default_coupling_equals_alpha(self):
        model = VariationModel(proportional_alpha=0.27)
        assert model.mean_sigma_coupling == pytest.approx(0.27)

    def test_explicit_coupling(self):
        model = VariationModel(proportional_alpha=0.3, mean_sigma_coupling=0.1)
        assert model.mean_sigma_coupling == pytest.approx(0.1)


class TestGateDistributions:
    def test_gate_distribution_uses_current_size(
        self, variation_model, delay_model, chain_circuit
    ):
        gate = chain_circuit.gate("i2")
        small = variation_model.gate_distribution(chain_circuit, gate, delay_model)
        big = variation_model.gate_distribution(chain_circuit, gate, delay_model, size_index=6)
        assert big.sigma < small.sigma
        assert big.mean < small.mean

    def test_all_gate_distributions(self, variation_model, delay_model, chain_circuit):
        dists = variation_model.all_gate_distributions(chain_circuit, delay_model)
        assert set(dists) == set(chain_circuit.gates)
        assert all(d.sigma > 0 and d.mean > 0 for d in dists.values())

    def test_upsizing_reduces_cv(self, variation_model, delay_model, chain_circuit):
        gate = chain_circuit.gate("i2")
        cv_small = variation_model.gate_distribution(chain_circuit, gate, delay_model, 0).cv
        cv_big = variation_model.gate_distribution(chain_circuit, gate, delay_model, 6).cv
        assert cv_big < cv_small
