"""Functional and structural tests for the ALU generator."""

import pytest

from repro.circuits.alu import alu
from repro.netlist.simulate import drive_bus, read_bus, simulate
from repro.netlist.validate import validate_circuit


def _run_alu(circuit, width, a, b, cin=0, s0=0, s1=0, sub=0):
    inputs = {}
    inputs.update(drive_bus("a", a, width))
    inputs.update(drive_bus("b", b, width))
    inputs["cin"] = bool(cin)
    inputs["s0"] = bool(s0)
    inputs["s1"] = bool(s1)
    inputs["sub"] = bool(sub)
    return simulate(circuit, inputs)


class TestAluLogicFunctions:
    """With s0=s1=0 the ALU outputs the AND of its operands; with s1=1 the OR."""

    @pytest.mark.parametrize("a,b", [(0, 0), (5, 3), (12, 10), (15, 9)])
    def test_and_function(self, a, b):
        circuit = alu(4)
        values = _run_alu(circuit, 4, a, b, s0=0, s1=0)
        assert read_bus(values, "f", 4) == (a & b)

    @pytest.mark.parametrize("a,b", [(0, 0), (5, 3), (12, 10), (8, 1)])
    def test_or_function(self, a, b):
        circuit = alu(4)
        values = _run_alu(circuit, 4, a, b, s0=0, s1=1)
        assert read_bus(values, "f", 4) == (a | b)

    @pytest.mark.parametrize("a,b", [(0, 0), (5, 3), (15, 15), (9, 6)])
    def test_xor_function(self, a, b):
        circuit = alu(4)
        values = _run_alu(circuit, 4, a, b, s0=1, s1=0)
        assert read_bus(values, "f", 4) == (a ^ b)

    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (5, 3, 0), (9, 6, 1), (15, 1, 0), (7, 7, 1)])
    def test_add_function(self, a, b, cin):
        circuit = alu(4)
        values = _run_alu(circuit, 4, a, b, cin=cin, s0=1, s1=1)
        total = a + b + cin
        assert read_bus(values, "f", 4) == total % 16
        assert values["cout"] == (total >= 16)

    def test_zero_flag(self):
        circuit = alu(4)
        values = _run_alu(circuit, 4, 0, 0, s0=0, s1=0)  # 0 AND 0 = 0
        assert values["zero"] is True
        values = _run_alu(circuit, 4, 5, 5, s0=0, s1=0)  # 5 AND 5 = 5
        assert values["zero"] is False


class TestAluStructure:
    def test_valid_and_sized_reasonably(self, library):
        circuit = alu(8)
        assert validate_circuit(circuit, library) == []
        # The alu1 stand-in: roughly the paper's 234 gates.
        assert 150 <= circuit.num_gates() <= 350

    def test_io_counts(self):
        circuit = alu(8)
        # 2*width operands + cin + s0 + s1 + sub inputs.
        assert len(circuit.primary_inputs) == 2 * 8 + 4
        # width result bits + cout + zero + ovf.
        assert len(circuit.primary_outputs) == 8 + 3

    def test_without_flags(self):
        circuit = alu(4, with_flags=False)
        assert len(circuit.primary_outputs) == 5

    def test_gate_count_scales_with_width(self):
        assert alu(4).num_gates() < alu(8).num_gates() < alu(16).num_gates()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            alu(0)
