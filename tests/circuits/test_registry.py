"""Tests for the benchmark registry (the Table 1 circuit set)."""

import pytest

from repro.circuits.registry import (
    BENCHMARK_NAMES,
    PAPER_GATE_COUNTS,
    benchmark_summary,
    build_benchmark,
    c17,
    merge_circuits,
)
from repro.netlist.validate import validate_circuit


class TestC17:
    def test_exact_structure(self):
        circuit = c17()
        assert circuit.num_gates() == 6
        assert all(g.cell_type == "NAND2" for g in circuit.gates.values())
        assert circuit.primary_outputs == ["N22", "N23"]


class TestRegistry:
    def test_all_table1_names_present(self):
        assert set(BENCHMARK_NAMES) == set(PAPER_GATE_COUNTS)
        assert len(BENCHMARK_NAMES) == 13

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_benchmark("c9999")

    def test_builds_are_fresh_instances(self):
        a = build_benchmark("c432")
        b = build_benchmark("c432")
        assert a is not b
        a.set_size(a.topological_order()[0], 3)
        assert b.gate(b.topological_order()[0]).size_index == 0

    @pytest.mark.parametrize("name", ["alu1", "alu2", "alu3", "c432", "c499", "c880", "c1355"])
    def test_small_benchmarks_valid_and_sized(self, name, library):
        circuit = build_benchmark(name)
        assert validate_circuit(circuit, library) == []
        paper = PAPER_GATE_COUNTS[name]
        # The stand-ins must be the same order of magnitude as the originals:
        # within a factor of ~2 of the paper's mapped gate count.
        assert paper / 2 <= circuit.num_gates() <= paper * 2

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["c1908", "c2670", "c3540", "c5315", "c6288", "c7552"])
    def test_large_benchmarks_valid_and_sized(self, name, library):
        circuit = build_benchmark(name)
        assert validate_circuit(circuit, library) == []
        paper = PAPER_GATE_COUNTS[name]
        assert paper / 2 <= circuit.num_gates() <= paper * 2

    def test_multiplier_is_deepest(self):
        # The paper singles out c6288 as the deepest circuit in the table.
        depths = {
            name: build_benchmark(name).logic_depth()
            for name in ("alu1", "c432", "c499", "c6288")
        }
        assert depths["c6288"] == max(depths.values())


class TestMergeCircuits:
    def test_merge_prefixes_and_preserves_counts(self):
        a = c17("a")
        b = c17("b")
        merged = merge_circuits("both", [("x", a), ("y", b)])
        assert merged.num_gates() == 12
        assert len(merged.primary_inputs) == 10
        assert len(merged.primary_outputs) == 4
        assert merged.has_gate("x_g22")
        assert merged.has_gate("y_g22")

    def test_merged_circuit_valid(self, library):
        merged = merge_circuits("both", [("x", c17("a")), ("y", c17("b"))])
        assert validate_circuit(merged, library) == []


class TestSummary:
    def test_summary_rows(self):
        rows = benchmark_summary(["c17", "alu2", "c432"])
        assert len(rows) == 3
        for row in rows:
            assert row["generated_gates"] > 0
            assert row["logic_depth"] > 0
        by_name = {row["name"]: row for row in rows}
        assert by_name["c432"]["paper_gates"] == 203
        assert by_name["c17"]["paper_gates"] is None
