"""Functional tests for the adder and multiplier generators.

Every generator is checked against its arithmetic specification with the
logic simulator, plus structural expectations (size, depth) that matter for
the paper's experiments.
"""

import pytest

from repro.circuits.adders import carry_select_adder, ripple_carry_adder
from repro.circuits.multiplier import array_multiplier
from repro.netlist.simulate import drive_bus, read_bus, simulate
from repro.netlist.validate import validate_circuit


def _check_adder(circuit, width, vectors, has_cin=True):
    for a, b, cin in vectors:
        inputs = {}
        inputs.update(drive_bus("a", a, width))
        inputs.update(drive_bus("b", b, width))
        if has_cin:
            inputs["cin"] = bool(cin)
        values = simulate(circuit, inputs)
        total = a + b + (cin if has_cin else 0)
        got = read_bus(values, "sum", width) + (values["cout"] << width)
        assert got == total, f"{a} + {b} + {cin} = {total}, got {got}"


ADDER_VECTORS = [
    (0, 0, 0),
    (1, 1, 0),
    (5, 9, 1),
    (15, 1, 0),
    (7, 8, 1),
    (12, 3, 0),
]


class TestRippleCarryAdder:
    def test_functionality_4bit(self):
        _check_adder(ripple_carry_adder(4), 4, ADDER_VECTORS)

    def test_functionality_8bit(self):
        vectors = [(0, 0, 0), (255, 1, 0), (170, 85, 1), (200, 55, 0), (128, 128, 1)]
        _check_adder(ripple_carry_adder(8), 8, vectors)

    def test_no_carry_in_variant(self):
        circuit = ripple_carry_adder(4, with_carry_in=False)
        vectors = [(a, b, 0) for a, b, _ in ADDER_VECTORS]
        _check_adder(circuit, 4, vectors, has_cin=False)

    def test_structure(self, library):
        circuit = ripple_carry_adder(8)
        assert validate_circuit(circuit, library) == []
        # ~5 gates per full adder plus output buffers.
        assert 40 <= circuit.num_gates() <= 60
        # The carry chain makes depth grow linearly with width.
        assert circuit.logic_depth() >= 8

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestCarrySelectAdder:
    def test_functionality(self):
        _check_adder(carry_select_adder(8, block_size=4), 8, [
            (0, 0, 0), (255, 1, 1), (100, 156, 0), (37, 219, 1), (128, 127, 0),
        ])

    def test_shallower_than_ripple(self):
        ripple = ripple_carry_adder(16)
        select = carry_select_adder(16, block_size=4)
        assert select.logic_depth() < ripple.logic_depth()
        assert select.num_gates() > ripple.num_gates()  # area for speed

    def test_structure_valid(self, library):
        assert validate_circuit(carry_select_adder(12), library) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            carry_select_adder(0)
        with pytest.raises(ValueError):
            carry_select_adder(8, block_size=0)


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive_small_widths(self, width):
        circuit = array_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                inputs = {}
                inputs.update(drive_bus("a", a, width))
                inputs.update(drive_bus("b", b, width))
                values = simulate(circuit, inputs)
                assert read_bus(values, "p", 2 * width) == a * b, f"{a}*{b}"

    def test_spot_check_8bit(self):
        circuit = array_multiplier(8)
        for a, b in [(0, 0), (255, 255), (17, 13), (200, 3), (128, 64)]:
            inputs = {}
            inputs.update(drive_bus("a", a, 8))
            inputs.update(drive_bus("b", b, 8))
            values = simulate(circuit, inputs)
            assert read_bus(values, "p", 16) == a * b

    def test_structure_is_c6288_like(self, library):
        circuit = array_multiplier(16)
        assert validate_circuit(circuit, library) == []
        # Quadratic gate count, deep carry-save array: the c6288 profile.
        assert circuit.num_gates() > 1200
        assert circuit.logic_depth() > 40

    def test_depth_grows_with_width(self):
        assert array_multiplier(8).logic_depth() < array_multiplier(12).logic_depth()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            array_multiplier(1)
