"""Unit tests for the CircuitBuilder helper."""

import itertools

import pytest

from repro.circuits.builder import CircuitBuilder
from repro.netlist.simulate import simulate_outputs
from repro.netlist.validate import validate_circuit


class TestIO:
    def test_inputs_and_outputs(self):
        builder = CircuitBuilder("t")
        nets = builder.inputs("a", 3)
        assert nets == ["a0", "a1", "a2"]
        y = builder.gate("AND", nets)
        builder.output(y)
        circuit = builder.build()
        assert circuit.primary_inputs == nets
        assert circuit.primary_outputs == [y]

    def test_fresh_net_names_unique(self):
        builder = CircuitBuilder("t")
        names = {builder.fresh_net() for _ in range(100)}
        assert len(names) == 100


class TestPrimitives:
    def test_gate_names_and_types(self):
        builder = CircuitBuilder("t")
        a, b = builder.inputs("i", 2)
        builder.output(builder.nand2(a, b))
        circuit = builder.build()
        gate = next(iter(circuit.gates.values()))
        assert gate.cell_type == "NAND2"

    def test_mux2_logic(self):
        builder = CircuitBuilder("t")
        a, b, s = builder.inputs("i", 3)
        builder.output(builder.mux2(a, b, s, "y"))
        circuit = builder.build()
        for va, vb, vs in itertools.product([False, True], repeat=3):
            out = simulate_outputs(circuit, {"i0": va, "i1": vb, "i2": vs})["y"]
            assert out == (vb if vs else va)

    def test_all_two_input_wrappers(self):
        builder = CircuitBuilder("t")
        a, b = builder.inputs("i", 2)
        for method in ("and2", "or2", "nand2", "nor2", "xor2", "xnor2"):
            getattr(builder, method)(a, b)
        builder.output(builder.inv(a))
        builder.output(builder.buf(b))
        assert builder.build().num_gates() == 8


class TestTrees:
    @pytest.mark.parametrize("width", [2, 3, 5, 8, 17])
    def test_xor_tree_is_parity(self, width):
        builder = CircuitBuilder("t")
        bits = builder.inputs("d", width)
        builder.output(builder.xor_tree(bits), )
        circuit = builder.build()
        out_net = circuit.primary_outputs[0]
        # Check a handful of vectors including all-zeros and all-ones.
        vectors = [0, (1 << width) - 1, 0b1011 % (1 << width), 0b0101 % (1 << width)]
        for value in vectors:
            inputs = {f"d{i}": bool((value >> i) & 1) for i in range(width)}
            expected = bin(value).count("1") % 2 == 1
            assert simulate_outputs(circuit, inputs)[out_net] == expected

    def test_and_or_tree_logic(self):
        builder = CircuitBuilder("t")
        bits = builder.inputs("d", 6)
        and_out = builder.and_tree(bits)
        or_out = builder.or_tree(bits)
        builder.outputs([and_out, or_out])
        circuit = builder.build()
        all_ones = {f"d{i}": True for i in range(6)}
        assert simulate_outputs(circuit, all_ones)[and_out] is True
        one_zero = dict(all_ones, d3=False)
        result = simulate_outputs(circuit, one_zero)
        assert result[and_out] is False
        assert result[or_out] is True

    def test_tree_single_net_passthrough(self):
        builder = CircuitBuilder("t")
        a = builder.input("a")
        assert builder.tree("AND", [a]) == "a"

    def test_tree_empty_rejected(self):
        with pytest.raises(ValueError):
            CircuitBuilder("t").tree("AND", [])


class TestArithmeticIdioms:
    def test_full_adder_truth_table(self):
        builder = CircuitBuilder("t")
        a, b, cin = builder.inputs("i", 3)
        s, cout = builder.full_adder(a, b, cin)
        builder.outputs([s, cout])
        circuit = builder.build()
        for va, vb, vc in itertools.product([False, True], repeat=3):
            out = simulate_outputs(circuit, {"i0": va, "i1": vb, "i2": vc})
            total = int(va) + int(vb) + int(vc)
            assert out[s] == bool(total % 2)
            assert out[cout] == (total >= 2)

    def test_half_adder_truth_table(self):
        builder = CircuitBuilder("t")
        a, b = builder.inputs("i", 2)
        s, c = builder.half_adder(a, b)
        builder.outputs([s, c])
        circuit = builder.build()
        for va, vb in itertools.product([False, True], repeat=2):
            out = simulate_outputs(circuit, {"i0": va, "i1": vb})
            assert out[s] == (va != vb)
            assert out[c] == (va and vb)

    def test_built_circuits_are_valid(self, library):
        builder = CircuitBuilder("t")
        a, b, cin = builder.inputs("i", 3)
        s, cout = builder.full_adder(a, b, cin)
        builder.outputs([s, cout])
        assert validate_circuit(builder.build(), library) == []
