"""Tests for the parameterized synthetic big-circuit generator."""

import pytest

from repro.circuits.registry import GENERATED_SPECS, build_benchmark
from repro.circuits.synthetic import (
    SyntheticSpec,
    generate,
    parse_generated_spec,
    synthetic_circuit,
)
from repro.netlist.validate import validate_circuit
from repro.verify import lint_circuit


class TestSpec:
    def test_gate_count_is_depth_times_width(self):
        spec = SyntheticSpec(depth=7, width=13)
        assert spec.num_gates == 91

    def test_display_name(self):
        assert SyntheticSpec(depth=5, width=9, seed=3).display_name == "gen_d5_w9_s3"
        assert SyntheticSpec(depth=5, width=9, name="x").display_name == "x"

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(depth=0, width=10)
        with pytest.raises(ValueError):
            SyntheticSpec(depth=1, width=1, fanin_min=3, fanin_max=2)


class TestParseSpec:
    def test_positional(self):
        spec = parse_generated_spec("8,50")
        assert (spec.depth, spec.width, spec.seed) == (8, 50, 0)

    def test_positional_with_seed(self):
        spec = parse_generated_spec("8, 50, 7")
        assert (spec.depth, spec.width, spec.seed) == (8, 50, 7)

    def test_keyword_form(self):
        spec = parse_generated_spec("depth=4,width=10,reconvergence=0.5")
        assert spec.depth == 4 and spec.reconvergence == 0.5

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown generator spec field"):
            parse_generated_spec("depth=4,width=10,bogus=1")

    def test_missing_dims_rejected(self):
        with pytest.raises(ValueError):
            parse_generated_spec("depth=4")
        with pytest.raises(ValueError):
            parse_generated_spec("1,2,3,4")


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate(6, 30, seed=5)
        b = generate(6, 30, seed=5)
        assert sorted(a.gates) == sorted(b.gates)
        for name, gate in a.gates.items():
            twin = b.gates[name]
            assert gate.inputs == twin.inputs and gate.output == twin.output

    def test_seed_changes_structure(self):
        a = generate(6, 30, seed=1)
        b = generate(6, 30, seed=2)
        assert any(
            a.gates[n].inputs != b.gates[n].inputs
            for n in a.gates if n in b.gates
        )

    def test_structure_matches_spec(self):
        circuit = generate(6, 30)
        assert circuit.num_gates() == 180
        assert len(circuit.primary_outputs) == 30
        assert circuit.logic_depth() == 6

    def test_structurally_valid(self):
        circuit = generate(8, 40, seed=3)
        assert validate_circuit(circuit, raise_on_error=False) == []

    def test_drc_clean_with_library(self, library):
        report = lint_circuit(generate(10, 50, seed=17), library=library)
        assert [str(d) for d in report.diagnostics] == []

    def test_max_fanout_respected(self):
        spec = SyntheticSpec(depth=8, width=40, seed=9, max_fanout=6)
        circuit = synthetic_circuit(spec)
        stats = circuit.stats()
        assert stats.max_fanout <= 6

    def test_no_floating_nets(self):
        circuit = generate(5, 25, seed=11)
        read = set()
        for gate in circuit.gates.values():
            read.update(gate.inputs)
        for pi in circuit.primary_inputs:
            assert pi in read
        for gate in circuit.gates.values():
            if gate.output not in circuit.primary_outputs:
                assert gate.output in read

    def test_aliases_are_canonicalized_away(self):
        spec = SyntheticSpec(depth=6, width=50, seed=2, alias_fraction=0.2)
        circuit = synthetic_circuit(spec)
        nets = {g.output for g in circuit.gates.values()}
        for gate in circuit.gates.values():
            nets.update(gate.inputs)
        assert not any(net.startswith("a") and "_" in net for net in nets
                       if net not in circuit.primary_inputs)


class TestRegistryIntegration:
    def test_named_scale_points_resolve(self):
        circuit = build_benchmark("gen1k")
        spec = GENERATED_SPECS["gen1k"]
        assert circuit.num_gates() == spec.num_gates
        assert circuit.name == "gen1k"

    def test_inline_spec_positional(self):
        assert build_benchmark("gen:4,25").num_gates() == 100

    def test_inline_spec_keyword(self):
        circuit = build_benchmark("gen:depth=3,width=10,seed=4")
        assert circuit.num_gates() == 30

    def test_bad_inline_spec_raises_keyerror(self):
        with pytest.raises(KeyError, match="bad generator spec"):
            build_benchmark("gen:nope=1")

    def test_unknown_name_lists_generated(self):
        with pytest.raises(KeyError, match="gen1k"):
            build_benchmark("definitely_not_a_circuit")
