"""Functional and structural tests for the ECC and control-logic generators."""

import pytest

from repro.circuits.control import magnitude_comparator, priority_interrupt_controller
from repro.circuits.ecc import parity_tree, sec_circuit
from repro.netlist.simulate import drive_bus, read_bus, simulate
from repro.netlist.validate import validate_circuit


class TestParityTree:
    @pytest.mark.parametrize("width,value", [(4, 0b1011), (8, 0b11110000), (16, 0xBEEF)])
    def test_parity_correct(self, width, value):
        circuit = parity_tree(width)
        values = simulate(circuit, drive_bus("d", value, width))
        assert values["parity"] == (bin(value).count("1") % 2 == 1)

    def test_structure(self, library):
        circuit = parity_tree(32)
        assert validate_circuit(circuit, library) == []
        assert circuit.num_gates() == 32  # 31 XORs + output buffer

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            parity_tree(1)


class TestSecCircuit:
    def test_c499_class_structure(self, library):
        circuit = sec_circuit(32, 8)
        assert validate_circuit(circuit, library) == []
        assert 250 <= circuit.num_gates() <= 500
        assert len(circuit.primary_inputs) == 40
        # 32 corrected bits plus the error flag.
        assert len(circuit.primary_outputs) == 33

    def test_expand_xor_increases_gate_count_same_function(self):
        plain = sec_circuit(16, 6, name="plain")
        expanded = sec_circuit(16, 6, expand_xor=True, name="expanded")
        assert expanded.num_gates() > plain.num_gates()
        # Same logical behaviour on a sample vector.
        inputs = {}
        inputs.update(drive_bus("d", 0b1010110011110000, 16))
        inputs.update(drive_bus("c", 0b010101, 6))
        out_plain = simulate(plain, inputs)
        out_expanded = simulate(expanded, inputs)
        for i in range(16):
            assert out_plain[f"q{i}"] == out_expanded[f"q{i}"]

    def test_zero_syndrome_means_no_correction(self):
        # With all-zero data and all-zero check bits every syndrome is zero,
        # so no data bit is flipped and the error flag stays low.
        circuit = sec_circuit(16, 6)
        inputs = {}
        inputs.update(drive_bus("d", 0, 16))
        inputs.update(drive_bus("c", 0, 6))
        values = simulate(circuit, inputs)
        assert read_bus(values, "q", 16) == 0
        assert values["err"] is False

    def test_ded_variant_has_extra_output(self, library):
        circuit = sec_circuit(16, 8, ded=True, expand_xor=True)
        assert "ded" in circuit.primary_outputs
        assert validate_circuit(circuit, library) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            sec_circuit(1, 4)
        with pytest.raises(ValueError):
            sec_circuit(8, 1)


class TestPriorityInterruptController:
    def test_highest_priority_channel_wins(self):
        circuit = priority_interrupt_controller(8)
        inputs = {f"r{i}": False for i in range(8)}
        inputs.update({f"e{i}": True for i in range(8)})
        inputs["m"] = True
        # Channels 2 and 5 request: channel 2 (lower index = higher priority) wins.
        inputs["r2"] = True
        inputs["r5"] = True
        values = simulate(circuit, inputs)
        assert values["irq"] is True
        encoded = sum((1 << b) for b in range(3) if values[f"id{b}"])
        assert encoded == 2

    def test_masked_controller_raises_nothing(self):
        circuit = priority_interrupt_controller(8)
        inputs = {f"r{i}": True for i in range(8)}
        inputs.update({f"e{i}": True for i in range(8)})
        inputs["m"] = False
        values = simulate(circuit, inputs)
        assert values["irq"] is False

    def test_disabled_channel_ignored(self):
        circuit = priority_interrupt_controller(8)
        inputs = {f"r{i}": False for i in range(8)}
        inputs.update({f"e{i}": False for i in range(8)})
        inputs["m"] = True
        inputs["r0"] = True  # requested but not enabled
        inputs["r3"] = True
        inputs["e3"] = True  # requested and enabled
        values = simulate(circuit, inputs)
        encoded = sum((1 << b) for b in range(3) if values[f"id{b}"])
        assert encoded == 3

    def test_c432_class_structure(self, library):
        circuit = priority_interrupt_controller(27)
        assert validate_circuit(circuit, library) == []
        assert 150 <= circuit.num_gates() <= 300
        # Long priority chain gives c432-like depth.
        assert circuit.logic_depth() > 20

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            priority_interrupt_controller(1)


class TestMagnitudeComparator:
    @pytest.mark.parametrize("a,b", [(0, 0), (5, 5), (7, 3), (3, 7), (255, 254), (128, 200)])
    def test_compare_8bit(self, a, b):
        circuit = magnitude_comparator(8)
        inputs = {}
        inputs.update(drive_bus("a", a, 8))
        inputs.update(drive_bus("b", b, 8))
        values = simulate(circuit, inputs)
        assert values["eq"] == (a == b)
        assert values["gt"] == (a > b)
        assert values["lt"] == (a < b)

    def test_structure(self, library):
        circuit = magnitude_comparator(32)
        assert validate_circuit(circuit, library) == []
        assert circuit.num_gates() > 150

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            magnitude_comparator(0)
