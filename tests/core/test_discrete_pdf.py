"""Unit tests for discrete sampled PDFs (the FULLSSTA value type)."""

import math

import numpy as np
import pytest

from repro.core.discrete_pdf import DEFAULT_SAMPLES, DiscretePDF


class TestConstruction:
    def test_normalisation(self):
        pdf = DiscretePDF([1.0, 2.0, 3.0], [2.0, 2.0, 4.0])
        assert pdf.probabilities.sum() == pytest.approx(1.0)
        assert pdf.probabilities[2] == pytest.approx(0.5)

    def test_sorting_and_merging_duplicates(self):
        pdf = DiscretePDF([3.0, 1.0, 3.0], [0.25, 0.5, 0.25])
        assert list(pdf.values) == [1.0, 3.0]
        assert pdf.probabilities[1] == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            DiscretePDF([], [])
        with pytest.raises(ValueError):
            DiscretePDF([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            DiscretePDF([1.0, 2.0], [-1.0, 0.5])
        with pytest.raises(ValueError):
            DiscretePDF([1.0, 2.0], [0.0, 0.0])

    def test_point(self):
        pdf = DiscretePDF.point(42.0)
        assert pdf.num_samples == 1
        assert pdf.mean() == 42.0
        assert pdf.std() == 0.0


class TestFromNormal:
    def test_moments_close_to_continuous(self):
        pdf = DiscretePDF.from_normal(100.0, 15.0, num_samples=13)
        assert pdf.num_samples == 13
        assert pdf.mean() == pytest.approx(100.0, abs=0.5)
        assert pdf.std() == pytest.approx(15.0, rel=0.05)

    def test_paper_sampling_range_10_to_15(self):
        for n in (10, 13, 15):
            pdf = DiscretePDF.from_normal(200.0, 30.0, num_samples=n)
            assert pdf.mean() == pytest.approx(200.0, abs=1.5)
            assert pdf.std() == pytest.approx(30.0, rel=0.08)

    def test_zero_sigma_is_point(self):
        pdf = DiscretePDF.from_normal(50.0, 0.0)
        assert pdf.num_samples == 1
        assert pdf.mean() == 50.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DiscretePDF.from_normal(0.0, 1.0, num_samples=0)
        with pytest.raises(ValueError):
            DiscretePDF.from_normal(0.0, -1.0)

    def test_from_samples(self):
        rng = np.random.default_rng(3)
        data = rng.normal(70.0, 9.0, 20_000)
        pdf = DiscretePDF.from_samples(data, num_bins=15)
        assert pdf.mean() == pytest.approx(70.0, abs=0.5)
        assert pdf.std() == pytest.approx(9.0, rel=0.1)

    def test_from_samples_degenerate(self):
        pdf = DiscretePDF.from_samples([5.0, 5.0, 5.0])
        assert pdf.num_samples == 1
        with pytest.raises(ValueError):
            DiscretePDF.from_samples([])


class TestStatistics:
    def test_cdf_and_quantile(self):
        pdf = DiscretePDF([1.0, 2.0, 3.0, 4.0], [0.25] * 4)
        assert pdf.cdf(0.5) == 0.0
        assert pdf.cdf(2.0) == pytest.approx(0.5)
        assert pdf.cdf(10.0) == pytest.approx(1.0)
        assert pdf.quantile(0.5) == 2.0
        assert pdf.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            pdf.quantile(0.0)

    def test_quantile_is_generalized_inverse_cdf(self):
        # quantile(q) is the smallest value whose cdf reaches q — pinned
        # exactly on a pdf whose cumulative hits q between and at samples.
        pdf = DiscretePDF([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert pdf.quantile(0.2) == 1.0   # cdf(1) = 0.2 reaches q exactly
        assert pdf.quantile(0.21) == 2.0  # 1.0 no longer suffices
        assert pdf.quantile(0.5) == 2.0
        assert pdf.quantile(0.51) == 3.0

    def test_quantile_boundaries(self):
        pdf = DiscretePDF([1.0, 2.0, 3.0, 4.0], [0.25] * 4)
        assert pdf.quantile(1.0) == 4.0
        single = DiscretePDF.point(7.5)
        assert single.quantile(1e-9) == 7.5
        assert single.quantile(0.5) == 7.5
        assert single.quantile(1.0) == 7.5

    def test_quantile_with_unnormalized_cumsum(self):
        # Force probabilities whose sum drifts off 1.0 (as after repeated
        # compact/truncation) and check the inverse CDF stays consistent:
        # the old un-normalized searchsorted could return the wrong bin.
        pdf = DiscretePDF.point(0.0)
        pdf.probabilities = np.full(10, 0.1 - 1e-13)
        pdf.values = np.arange(10.0)
        assert pdf.quantile(1.0) == 9.0
        # cdf and quantile normalize consistently: cdf(quantile(q)) >= q
        # (up to summation order).
        for q in (0.1, 0.3, 0.5, 0.9, 0.999, 1.0):
            v = pdf.quantile(q)
            assert pdf.cdf(v) >= q - 1e-12

    def test_quantile_after_compaction_consistent_with_cdf(self):
        rng = np.random.default_rng(5)
        pdf = DiscretePDF(rng.uniform(0, 100, 500), rng.uniform(0.1, 1, 500))
        compacted = pdf.compact(13)
        for q in (0.01, 0.25, 0.5, 0.9, 0.99, 1.0):
            v = compacted.quantile(q)
            assert compacted.cdf(v) >= q - 1e-12
            # Smallest such value: the previous sample must not reach q.
            below = compacted.values[compacted.values < v]
            if below.size:
                assert compacted.cdf(float(below[-1])) < q

    def test_support(self):
        pdf = DiscretePDF([5.0, 1.0, 3.0], [1, 1, 1])
        assert pdf.support() == (1.0, 5.0)

    def test_as_tuples(self):
        pdf = DiscretePDF([1.0, 2.0], [0.5, 0.5])
        assert pdf.as_tuples() == ((1.0, 0.5), (2.0, 0.5))


class TestOperations:
    def test_add_matches_analytic_normal_sum(self):
        a = DiscretePDF.from_normal(100.0, 10.0, 15)
        b = DiscretePDF.from_normal(50.0, 5.0, 15)
        c = a.add(b)
        assert c.mean() == pytest.approx(150.0, rel=0.01)
        assert c.std() == pytest.approx(math.sqrt(125.0), rel=0.08)
        assert c.num_samples <= DEFAULT_SAMPLES

    def test_add_point_is_shift(self):
        a = DiscretePDF.from_normal(100.0, 10.0)
        shifted = a.add(DiscretePDF.point(25.0))
        assert shifted.mean() == pytest.approx(125.0, rel=0.01)
        assert shifted.std() == pytest.approx(a.std(), rel=0.05)

    def test_shift(self):
        a = DiscretePDF.from_normal(10.0, 2.0)
        assert a.shift(5.0).mean() == pytest.approx(a.mean() + 5.0)

    def test_maximum_against_clark(self):
        from repro.core.clark import clark_max_exact

        a = DiscretePDF.from_normal(100.0, 10.0, 31)
        b = DiscretePDF.from_normal(102.0, 12.0, 31)
        m = a.maximum(b, num_samples=31)
        mean, var = clark_max_exact(100.0, 10.0, 102.0, 12.0)
        assert m.mean() == pytest.approx(mean, rel=0.02)
        assert m.std() == pytest.approx(math.sqrt(var), rel=0.12)

    def test_maximum_dominant_case(self):
        a = DiscretePDF.from_normal(500.0, 5.0)
        b = DiscretePDF.from_normal(100.0, 5.0)
        m = a.maximum(b)
        assert m.mean() == pytest.approx(500.0, rel=0.01)

    def test_maximum_of_list(self):
        pdfs = [DiscretePDF.from_normal(m, 3.0) for m in (10.0, 20.0, 90.0)]
        assert DiscretePDF.maximum_of(pdfs).mean() == pytest.approx(90.0, rel=0.02)
        with pytest.raises(ValueError):
            DiscretePDF.maximum_of([])


class TestCompaction:
    def test_compact_preserves_mass_and_mean(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 100.0, 400)
        probs = rng.uniform(0.1, 1.0, 400)
        pdf = DiscretePDF(values, probs)
        compacted = pdf.compact(13)
        assert compacted.num_samples <= 13
        assert compacted.probabilities.sum() == pytest.approx(1.0)
        assert compacted.mean() == pytest.approx(pdf.mean(), rel=1e-9)

    def test_compact_noop_when_small(self):
        pdf = DiscretePDF([1.0, 2.0], [0.5, 0.5])
        assert pdf.compact(13) is pdf

    def test_operations_keep_sample_budget(self):
        a = DiscretePDF.from_normal(10.0, 1.0, 15)
        b = DiscretePDF.from_normal(12.0, 1.5, 15)
        assert a.add(b, num_samples=11).num_samples <= 11
        assert a.maximum(b, num_samples=11).num_samples <= 11
