"""Unit tests for the FULLSSTA discrete-PDF engine."""


import pytest

from repro.core.discrete_pdf import DiscretePDF
from repro.core.fullssta import FULLSSTA
from repro.core.fassta import FASSTA
from repro.montecarlo.mc import MonteCarloTimer
from repro.sta.dsta import DeterministicSTA
from repro.variation.correlation import SpatialCorrelationModel


@pytest.fixture
def fullssta(delay_model, variation_model):
    return FULLSSTA(delay_model, variation_model)


class TestConstruction:
    def test_sample_budget_validation(self, delay_model, variation_model):
        with pytest.raises(ValueError):
            FULLSSTA(delay_model, variation_model, num_samples=2)

    def test_gate_delay_pdf_moments(self, fullssta, chain_circuit, delay_model, variation_model):
        pdf = fullssta.gate_delay_pdf(chain_circuit, "i1")
        dist = variation_model.gate_distribution(
            chain_circuit, chain_circuit.gate("i1"), delay_model
        )
        assert pdf.mean() == pytest.approx(dist.mean, rel=0.01)
        assert pdf.std() == pytest.approx(dist.sigma, rel=0.08)


class TestPropagation:
    def test_chain_moments(self, fullssta, fassta_pair, chain_circuit):
        fassta = fassta_pair
        full_result = fullssta.analyze(chain_circuit)
        fast_result = fassta.analyze(chain_circuit)
        # On a pure chain both engines are exact, so they must agree closely.
        assert full_result.arrival("out1").mean == pytest.approx(
            fast_result.arrival("out1").mean, rel=0.01
        )
        assert full_result.arrival("out1").sigma == pytest.approx(
            fast_result.arrival("out1").sigma, rel=0.08
        )

    def test_mean_at_least_deterministic(self, fullssta, delay_model, c17_circuit):
        nominal = DeterministicSTA(delay_model).max_delay(c17_circuit)
        assert fullssta.analyze(c17_circuit).output_rv.mean >= nominal - 1e-6

    def test_per_node_moments_recorded(self, fullssta, c17_circuit):
        result = fullssta.analyze(c17_circuit)
        for net in ("N10", "N16", "N22"):
            assert result.arrival(net).mean > 0
            assert result.arrival_pdf(net) is not None
        assert set(result.gate_delay_moments) == set(c17_circuit.gates)

    def test_against_monte_carlo_on_small_circuit(
        self, fullssta, delay_model, variation_model, c17_circuit
    ):
        mc = MonteCarloTimer(delay_model, variation_model).run(
            c17_circuit, num_samples=4000, seed=7
        )
        result = fullssta.analyze(c17_circuit)
        # Independence assumptions at reconvergent fanout bias both moments
        # (the paper defers correlation handling to the outer loop's PCA
        # hook); require agreement to ~10 % on the mean and the right order
        # of magnitude on sigma.
        assert result.output_rv.mean == pytest.approx(mc.mean, rel=0.10)
        assert result.output_rv.sigma == pytest.approx(mc.sigma, rel=0.40)

    def test_boundary_arrivals(self, fullssta, chain_circuit):
        base = fullssta.analyze(chain_circuit)
        boundary = {"in": DiscretePDF.from_normal(200.0, 10.0)}
        shifted = fullssta.analyze(chain_circuit, boundary_arrivals=boundary)
        assert shifted.arrival("out1").mean == pytest.approx(
            base.arrival("out1").mean + 200.0, rel=0.01
        )

    def test_no_outputs_raises(self, fullssta):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("no_outs", primary_inputs=["a"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            fullssta.analyze(circuit)

    def test_output_moments_shortcut(self, fullssta, c17_circuit):
        assert fullssta.output_moments(c17_circuit).mean == pytest.approx(
            fullssta.analyze(c17_circuit).output_rv.mean
        )


class TestSamplingRates:
    def test_more_samples_improve_sigma_stability(self, delay_model, variation_model, c17_circuit):
        coarse = FULLSSTA(delay_model, variation_model, num_samples=5)
        fine = FULLSSTA(delay_model, variation_model, num_samples=31)
        sigma_coarse = coarse.analyze(c17_circuit).output_rv.sigma
        sigma_fine = fine.analyze(c17_circuit).output_rv.sigma
        # Both should be in the same ballpark; the fine one is the reference.
        assert sigma_coarse == pytest.approx(sigma_fine, rel=0.3)


class TestCorrelationOverlay:
    def test_correlation_increases_output_sigma(self, delay_model, variation_model, c17_circuit):
        independent = FULLSSTA(delay_model, variation_model)
        correlated = FULLSSTA(
            delay_model,
            variation_model,
            correlation_model=SpatialCorrelationModel(correlated_fraction=0.8),
        )
        assert (
            correlated.analyze(c17_circuit).output_rv.sigma
            > independent.analyze(c17_circuit).output_rv.sigma
        )


@pytest.fixture
def fassta_pair(delay_model, variation_model):
    return FASSTA(delay_model, variation_model)


class TestOutputValidationAndRanking:
    def test_unknown_output_net_raises_key_error(self, delay_model, variation_model, c17_circuit):
        # Regression: this used to silently time the typo as a zero pdf.
        engine = FULLSSTA(delay_model, variation_model)
        with pytest.raises(KeyError, match="typo"):
            engine.analyze(c17_circuit, outputs=["typo"])

    def test_worst_key_threads_cost_criterion(self, delay_model, variation_model, c17_circuit):
        from repro.core.cost import WeightedCost

        cost = WeightedCost(50.0)
        engine = FULLSSTA(delay_model, variation_model, worst_key=cost.of)
        result = engine.analyze(c17_circuit)
        costs = {
            net: cost.of(result.arrival(net)) for net in c17_circuit.primary_outputs
        }
        assert result.worst_output == max(costs, key=costs.get)

    def test_worst_output_matches_sizer_objective(self, delay_model, variation_model, c17_circuit):
        # The sizer constructs its engines with its weighted cost, so the
        # reported worst output agrees with the mu + lambda*sigma objective.
        from repro.core.sizer import SizerConfig, StatisticalGreedySizer

        sizer = StatisticalGreedySizer(delay_model, variation_model, SizerConfig(lam=9.0))
        result = sizer.fullssta.analyze(c17_circuit)
        costs = {
            net: sizer.cost.of(result.arrival(net))
            for net in c17_circuit.primary_outputs
        }
        assert result.worst_output == max(costs, key=costs.get)
