"""Unit tests for the FASSTA fast moment-propagation engine."""


import pytest

from repro.core.fassta import FASSTA
from repro.core.rv import NormalDelay
from repro.sta.dsta import DeterministicSTA
from repro.variation.model import VariationModel


@pytest.fixture
def fassta(delay_model, variation_model):
    return FASSTA(delay_model, variation_model)


class TestGateDelayRV:
    def test_moments_match_variation_model(self, fassta, chain_circuit, delay_model, variation_model):
        rv = fassta.gate_delay_rv(chain_circuit, "i1")
        dist = variation_model.gate_distribution(
            chain_circuit, chain_circuit.gate("i1"), delay_model
        )
        assert rv.mean == pytest.approx(dist.mean)
        assert rv.sigma == pytest.approx(dist.sigma)

    def test_hypothetical_size(self, fassta, chain_circuit):
        small = fassta.gate_delay_rv(chain_circuit, "i2", size_index=0)
        large = fassta.gate_delay_rv(chain_circuit, "i2", size_index=6)
        assert large.mean < small.mean
        assert large.sigma < small.sigma


class TestChainPropagation:
    def test_chain_mean_is_sum_of_means(self, fassta, chain_circuit):
        result = fassta.analyze(chain_circuit)
        expected_mean = sum(
            fassta.gate_delay_rv(chain_circuit, g).mean for g in ("i1", "i2", "i3")
        )
        assert result.arrival("out1").mean == pytest.approx(expected_mean)

    def test_chain_variance_adds(self, fassta, chain_circuit):
        result = fassta.analyze(chain_circuit)
        expected_var = sum(
            fassta.gate_delay_rv(chain_circuit, g).variance for g in ("i1", "i2", "i3")
        )
        assert result.arrival("out1").variance == pytest.approx(expected_var)

    def test_single_input_gates_do_no_max(self, fassta, chain_circuit):
        # With one input there is no max operation, so arrival = input + delay.
        result = fassta.analyze(chain_circuit)
        i1 = fassta.gate_delay_rv(chain_circuit, "i1")
        assert result.arrival("n1").mean == pytest.approx(i1.mean)
        assert result.arrival("n1").sigma == pytest.approx(i1.sigma)


class TestCircuitLevel:
    def test_mean_at_least_deterministic_delay(self, fassta, delay_model, c17_circuit):
        nominal = DeterministicSTA(delay_model).max_delay(c17_circuit)
        result = fassta.analyze(c17_circuit)
        assert result.output_rv.mean >= nominal - 1e-6

    def test_worst_output_is_max_mean_output(self, fassta, c17_circuit):
        result = fassta.analyze(c17_circuit)
        means = {net: result.arrival(net).mean for net in c17_circuit.primary_outputs}
        assert result.worst_output == max(means, key=means.get)

    def test_output_moments_shortcut(self, fassta, c17_circuit):
        assert fassta.output_moments(c17_circuit).mean == pytest.approx(
            fassta.analyze(c17_circuit).output_rv.mean
        )

    def test_explicit_outputs_subset(self, fassta, c17_circuit):
        result = fassta.analyze(c17_circuit, outputs=["N22"])
        assert result.output_rv.mean == pytest.approx(result.arrival("N22").mean)

    def test_no_outputs_raises(self, fassta):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("no_outs", primary_inputs=["a"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            fassta.analyze(circuit)

    def test_zero_variation_reduces_to_deterministic(self, delay_model, c17_circuit):
        zero = VariationModel(proportional_alpha=0.0, random_sigma=0.0)
        engine = FASSTA(delay_model, zero)
        result = engine.analyze(c17_circuit)
        nominal = DeterministicSTA(delay_model).max_delay(c17_circuit)
        assert result.output_rv.mean == pytest.approx(nominal)
        assert result.output_rv.sigma == pytest.approx(0.0, abs=1e-9)


class TestBoundaryArrivals:
    def test_boundary_arrivals_shift_outputs(self, fassta, chain_circuit):
        base = fassta.analyze(chain_circuit)
        boundary = {"in": NormalDelay(100.0, 8.0)}
        shifted = fassta.analyze(chain_circuit, boundary_arrivals=boundary)
        assert shifted.arrival("out1").mean == pytest.approx(
            base.arrival("out1").mean + 100.0
        )
        assert shifted.arrival("out1").variance == pytest.approx(
            base.arrival("out1").variance + 64.0
        )

    def test_upsizing_reduces_output_sigma(self, fassta, chain_circuit):
        before = fassta.analyze(chain_circuit).output_rv
        for name in chain_circuit.gates:
            chain_circuit.set_size(name, 6)
        after = fassta.analyze(chain_circuit).output_rv
        assert after.sigma < before.sigma


class TestOutputValidation:
    def test_unknown_output_net_raises_key_error(self, fassta, c17_circuit):
        # Regression: this used to silently time the typo as ZERO_DELAY.
        with pytest.raises(KeyError, match="typo"):
            fassta.analyze(c17_circuit, outputs=["typo"])

    def test_known_outputs_still_work(self, fassta, c17_circuit):
        result = fassta.analyze(c17_circuit, outputs=["N22", "N23"])
        assert result.output_rv.mean > 0


class TestWorstOutputRanking:
    def test_default_ranks_by_mean(self, fassta, c17_circuit):
        result = fassta.analyze(c17_circuit)
        means = {net: result.arrival(net).mean for net in c17_circuit.primary_outputs}
        assert result.worst_output == max(means, key=means.get)

    def test_worst_key_threads_cost_criterion(self, delay_model, c17_circuit):
        # A sigma-heavy criterion must be able to flip the reported worst
        # output relative to pure-mean ranking when means are close.
        from repro.core.cost import WeightedCost

        variation = VariationModel()
        lam = 50.0
        cost = WeightedCost(lam)
        engine = FASSTA(delay_model, variation, worst_key=cost.of)
        result = engine.analyze(c17_circuit)
        costs = {
            net: cost.of(result.arrival(net)) for net in c17_circuit.primary_outputs
        }
        assert result.worst_output == max(costs, key=costs.get)
