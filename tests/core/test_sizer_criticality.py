"""Criticality-guided candidate pruning in the StatisticalGreedy sizer.

Pins the exactness contract of ``criticality_threshold``: at the default
threshold of 0 the optimizer's decisions are bit-identical to a run without
the feature, while positive thresholds prune low-criticality WNSS gates
from the inner loop and record how many were skipped.
"""

import pytest

from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.sizer import SizerConfig, StatisticalGreedySizer


def _sized(delay_model, variation_model, threshold, name="c432", iterations=4,
           **config_kwargs):
    circuit = build_benchmark(name)
    MeanDelaySizer(delay_model).optimize(circuit)
    config = SizerConfig(
        lam=3.0,
        max_iterations=iterations,
        criticality_threshold=threshold,
        **config_kwargs,
    )
    result = StatisticalGreedySizer(delay_model, variation_model, config).optimize(
        circuit
    )
    return circuit, result


class TestCriticalityThreshold:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SizerConfig(criticality_threshold=-0.1)
        with pytest.raises(ValueError):
            SizerConfig(criticality_threshold=1.0)
        assert SizerConfig(criticality_threshold=0.5).criticality_threshold == 0.5

    def test_zero_threshold_is_bit_identical(self, delay_model, variation_model):
        # Cross-config equivalence, not a self-comparison: the default fast
        # pipeline at threshold 0 must reproduce the from-scratch reference
        # pipeline's decisions exactly.
        fast_circuit, fast = _sized(delay_model, variation_model, 0.0)
        ref_circuit, ref = _sized(
            delay_model,
            variation_model,
            0.0,
            incremental_reanalysis=False,
            vectorized_fassta=False,
        )
        assert fast_circuit.sizes() == ref_circuit.sizes()
        assert fast.final.mean == pytest.approx(ref.final.mean, abs=1e-9)
        assert fast.final.sigma == pytest.approx(ref.final.sigma, abs=1e-9)
        assert [it.resized_gates for it in fast.iterations] == [
            it.resized_gates for it in ref.iterations
        ]
        # Pruning diagnostics only exist when the feature is active.
        assert "criticality_pruned_gates" not in fast.diagnostics

    def test_positive_threshold_prunes_and_reports(
        self, delay_model, variation_model
    ):
        circuit, result = _sized(delay_model, variation_model, 0.05)
        assert "criticality_pruned_gates" in result.diagnostics
        assert result.diagnostics["criticality_pruned_gates"] >= 0
        # The optimization still improves the objective from the baseline.
        assert result.final.mean + 3 * result.final.sigma <= (
            result.initial.mean + 3 * result.initial.sigma
        )

    def test_high_threshold_restricts_resizes_to_critical_gates(
        self, delay_model, variation_model
    ):
        from repro.core.fullssta import FULLSSTA
        from repro.criticality.analysis import CriticalityAnalyzer

        threshold = 0.2
        circuit = build_benchmark("c17")
        MeanDelaySizer(delay_model).optimize(circuit)
        # Criticality of the starting point: resizes of the very first pass
        # must all come from gates at/above the threshold.
        full = FULLSSTA(delay_model, variation_model).analyze(circuit)
        crit = CriticalityAnalyzer(circuit).analyze(full.arrival_moments)
        allowed = set(crit.gates_above(threshold))

        config = SizerConfig(
            lam=3.0, max_iterations=1, criticality_threshold=threshold
        )
        result = StatisticalGreedySizer(
            delay_model, variation_model, config
        ).optimize(circuit)
        if result.iterations:
            first_pass = set(result.iterations[0].resized_gates)
            assert first_pass <= allowed
