"""Unit tests for the NormalDelay random variable."""

import math

import pytest
from scipy.stats import norm

from repro.core.rv import NormalDelay, ZERO_DELAY


class TestConstruction:
    def test_fields_and_derived(self):
        rv = NormalDelay(100.0, 5.0)
        assert rv.mean == 100.0  # repro-lint: allow=RL004 -- stored verbatim
        assert rv.sigma == 5.0  # repro-lint: allow=RL004 -- stored verbatim
        assert rv.variance == pytest.approx(25.0)
        assert rv.cv == pytest.approx(0.05)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NormalDelay(1.0, -0.5)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            NormalDelay(float("nan"), 1.0)
        with pytest.raises(ValueError):
            NormalDelay(1.0, float("inf"))

    def test_zero_delay_constant(self):
        assert ZERO_DELAY.mean == 0.0  # repro-lint: allow=RL004 -- exact constant
        assert ZERO_DELAY.sigma == 0.0  # repro-lint: allow=RL004 -- exact constant


class TestArithmetic:
    def test_sum_of_independent_normals(self):
        a = NormalDelay(10.0, 3.0)
        b = NormalDelay(20.0, 4.0)
        c = a + b
        assert c.mean == pytest.approx(30.0)
        assert c.sigma == pytest.approx(5.0)  # sqrt(9 + 16)

    def test_sum_with_scalar(self):
        rv = NormalDelay(10.0, 2.0) + 5.0
        assert rv.mean == pytest.approx(15.0)
        assert rv.sigma == pytest.approx(2.0)
        rv2 = 5.0 + NormalDelay(10.0, 2.0)
        assert rv2.mean == pytest.approx(15.0)

    def test_shift_and_scale(self):
        rv = NormalDelay(10.0, 2.0)
        assert rv.shift(-3.0).mean == pytest.approx(7.0)
        scaled = rv.scale(2.0)
        assert scaled.mean == pytest.approx(20.0)
        assert scaled.sigma == pytest.approx(4.0)
        with pytest.raises(ValueError):
            rv.scale(-1.0)

    def test_quantile_matches_scipy(self):
        rv = NormalDelay(100.0, 15.0)
        for q in (0.01, 0.1, 0.5, 0.9, 0.99, 0.999):
            assert rv.quantile(q) == pytest.approx(norm.ppf(q, 100.0, 15.0), abs=1e-3)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            NormalDelay(0.0, 1.0).quantile(0.0)
        with pytest.raises(ValueError):
            NormalDelay(0.0, 1.0).quantile(1.0)


class TestMaximum:
    def test_max_of_identical_normals(self):
        a = NormalDelay(100.0, 10.0)
        result = a.maximum(a)
        # E[max(X, Y)] for iid normals = mu + sigma/sqrt(pi)
        assert result.mean == pytest.approx(100.0 + 10.0 / math.sqrt(math.pi), rel=0.02)
        assert result.sigma < 10.0  # max of two iid normals has smaller variance

    def test_dominant_operand_returned_directly(self):
        slow = NormalDelay(500.0, 5.0)
        fast = NormalDelay(100.0, 5.0)
        result = slow.maximum(fast)
        assert result.mean == pytest.approx(500.0)
        assert result.sigma == pytest.approx(5.0)

    def test_exact_and_fast_agree_when_dominant(self):
        slow = NormalDelay(500.0, 5.0)
        fast = NormalDelay(100.0, 5.0)
        exact = slow.maximum(fast, exact=True)
        approx = slow.maximum(fast, exact=False)
        assert exact.mean == pytest.approx(approx.mean, rel=1e-3)

    def test_maximum_of_list(self):
        rvs = [NormalDelay(m, 5.0) for m in (10.0, 50.0, 300.0)]
        result = NormalDelay.maximum_of(rvs)
        assert result.mean == pytest.approx(300.0, rel=0.01)

    def test_maximum_of_empty_raises(self):
        with pytest.raises(ValueError):
            NormalDelay.maximum_of([])

    def test_dominates(self):
        assert NormalDelay(500.0, 5.0).dominates(NormalDelay(100.0, 5.0))
        assert not NormalDelay(100.0, 5.0).dominates(NormalDelay(500.0, 5.0))
        assert not NormalDelay(105.0, 5.0).dominates(NormalDelay(100.0, 5.0))
