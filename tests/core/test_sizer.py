"""Unit tests for the StatisticalGreedy sizer."""

import pytest

from repro.circuits.adders import ripple_carry_adder
from repro.core.fullssta import FULLSSTA
from repro.core.sizer import SizerConfig, StatisticalGreedySizer
from repro.netlist.validate import validate_circuit


@pytest.fixture
def sizer(delay_model, variation_model):
    return StatisticalGreedySizer(delay_model, variation_model, SizerConfig(lam=3.0))


class TestSizerConfig:
    def test_defaults_match_paper_setup(self):
        config = SizerConfig()
        assert config.lam == 3.0
        assert config.subcircuit_depth == 2
        assert 10 <= config.pdf_samples <= 15

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lam": -1.0},
            {"subcircuit_depth": -1},
            {"max_iterations": 0},
            {"min_relative_gain": -1e-3},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SizerConfig(**kwargs)


class TestOptimizeSmallCircuits:
    def test_c17_sigma_never_increases(self, sizer, c17_circuit):
        result = sizer.optimize(c17_circuit)
        assert result.final.sigma <= result.initial.sigma + 1e-9
        assert result.sigma_reduction_pct >= 0.0

    def test_result_reflects_circuit_state(self, sizer, c17_circuit, delay_model, variation_model):
        result = sizer.optimize(c17_circuit)
        # The reported final moments must match a fresh FULLSSTA run on the
        # returned circuit (the best configuration is restored).
        check = FULLSSTA(delay_model, variation_model).analyze(c17_circuit).output_rv
        assert result.final.mean == pytest.approx(check.mean, rel=1e-6)
        assert result.final.sigma == pytest.approx(check.sigma, rel=1e-6)
        assert result.final_area == pytest.approx(delay_model.circuit_area(c17_circuit))

    def test_objective_improves(self, sizer, c17_circuit):
        lam = sizer.config.lam
        result = sizer.optimize(c17_circuit)
        initial_obj = result.initial.mean + lam * result.initial.sigma
        final_obj = result.final.mean + lam * result.final.sigma
        assert final_obj <= initial_obj + 1e-9

    def test_circuit_stays_valid(self, sizer, small_adder, library):
        sizer.optimize(small_adder)
        assert validate_circuit(small_adder, library) == []

    def test_iteration_records(self, sizer, small_adder):
        result = sizer.optimize(small_adder)
        for record in result.iterations:
            assert record.sigma >= 0
            assert record.area > 0
            assert record.wnss_length >= 1
            assert record.resized_gates

    def test_runtime_recorded(self, sizer, c17_circuit):
        result = sizer.optimize(c17_circuit)
        assert result.runtime_seconds > 0.0

    def test_metrics_properties(self, sizer, small_adder):
        result = sizer.optimize(small_adder)
        assert result.initial_cv == pytest.approx(result.initial.sigma / result.initial.mean)
        assert result.final_cv == pytest.approx(result.final.sigma / result.final.mean)
        # Area should not decrease: the algorithm only upsizes to reduce sigma.
        assert result.area_increase_pct >= -1.0


class TestLambdaBehaviour:
    def test_sigma_target_constraint_stops_early(self, delay_model, variation_model, small_adder):
        loose_target = 1e6  # already met before the first pass
        sizer = StatisticalGreedySizer(
            delay_model,
            variation_model,
            SizerConfig(lam=3.0, sigma_target=loose_target),
        )
        result = sizer.optimize(small_adder)
        assert result.converged
        assert result.iterations == []

    def test_lambda_zero_behaves_like_mean_optimizer(self, delay_model, variation_model):
        circuit = ripple_carry_adder(4)
        sizer = StatisticalGreedySizer(delay_model, variation_model, SizerConfig(lam=0.0))
        result = sizer.optimize(circuit)
        assert result.final.mean <= result.initial.mean + 1e-9

    def test_max_iterations_respected(self, delay_model, variation_model, small_adder):
        sizer = StatisticalGreedySizer(
            delay_model, variation_model, SizerConfig(lam=3.0, max_iterations=2)
        )
        result = sizer.optimize(small_adder)
        assert len(result.iterations) <= 2


class TestBestSizeSelection:
    def test_best_size_for_returns_none_or_valid_index(self, sizer, c17_circuit, library):
        full = sizer.fullssta.analyze(c17_circuit)
        for name in c17_circuit.topological_order():
            choice = sizer._best_size_for(c17_circuit, name, full)
            if choice is not None:
                gate = c17_circuit.gate(name)
                assert 0 <= choice < library.num_sizes(gate.cell_type)
                assert choice != gate.size_index
