"""Equivalence tests for the incremental/vectorized evaluation pipeline.

The whole point of the pipeline is that it is *exactness-preserving*: the
vectorized FASSTA path, the incremental FULLSSTA re-analysis and the sizer's
caches must reproduce the from-scratch engines' moments (to ~1e-9; in
practice they agree bitwise) while doing less work.  These tests pin that
contract across registry circuits and randomized resize sequences.
"""

import numpy as np
import pytest

from repro.circuits.registry import build_benchmark
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA, IncrementalReanalysis
from repro.core.sizer import SizerConfig, StatisticalGreedySizer
from repro.core.subcircuit import SubcircuitCache, extract_subcircuit
from repro.netlist.circuit import Circuit

TOL = 1e-9

#: Registry circuits used for equivalence sweeps (kept small enough that the
#: whole module runs in a few seconds; shapes cover wide/shallow c499,
#: reconvergent c432 and the larger c880).
EQUIV_CIRCUITS = ["alu1", "c432", "c499", "c880"]


def assert_results_close(reference, candidate, circuit, tol=TOL):
    """All per-net moments and the output moments agree within ``tol``."""
    for net in circuit.nets():
        ref = reference.arrival(net)
        cand = candidate.arrival(net)
        assert cand.mean == pytest.approx(ref.mean, abs=tol), net
        assert cand.sigma == pytest.approx(ref.sigma, abs=tol), net
    assert candidate.output_rv.mean == pytest.approx(reference.output_rv.mean, abs=tol)
    assert candidate.output_rv.sigma == pytest.approx(reference.output_rv.sigma, abs=tol)
    assert candidate.worst_output == reference.worst_output


class TestVectorizedFassta:
    @pytest.mark.parametrize("name", EQUIV_CIRCUITS)
    def test_matches_scalar_on_registry_circuits(self, name, delay_model, variation_model):
        circuit = build_benchmark(name)
        scalar = FASSTA(delay_model, variation_model).analyze(circuit)
        vectorized = FASSTA(delay_model, variation_model, vectorized=True).analyze(circuit)
        assert_results_close(scalar, vectorized, circuit)

    def test_matches_scalar_after_random_resizes(self, delay_model, variation_model):
        circuit = build_benchmark("c432")
        scalar_engine = FASSTA(delay_model, variation_model)
        vector_engine = FASSTA(delay_model, variation_model, vectorized=True)
        rng = np.random.default_rng(7)
        names = list(circuit.gates)
        for _ in range(5):
            for gate in rng.choice(names, size=4, replace=False):
                circuit.set_size(str(gate), int(rng.integers(0, 7)))
            assert_results_close(
                scalar_engine.analyze(circuit), vector_engine.analyze(circuit), circuit
            )

    def test_boundary_arrivals_respected(self, delay_model, variation_model, chain_circuit):
        from repro.core.rv import NormalDelay

        boundary = {"in": NormalDelay(42.0, 5.0)}
        scalar = FASSTA(delay_model, variation_model).analyze(
            chain_circuit, boundary_arrivals=boundary
        )
        vectorized = FASSTA(delay_model, variation_model, vectorized=True).analyze(
            chain_circuit, boundary_arrivals=boundary
        )
        assert_results_close(scalar, vectorized, chain_circuit)

    def test_plan_rebuilt_after_structural_change(self, delay_model, variation_model):
        circuit = build_benchmark("c17")
        engine = FASSTA(delay_model, variation_model, vectorized=True)
        engine.analyze(circuit)
        circuit.add("extra", "INV", ["N22"], "n_extra")
        circuit.add_primary_output("n_extra")
        fresh = FASSTA(delay_model, variation_model).analyze(circuit)
        assert_results_close(fresh, engine.analyze(circuit), circuit)

    def test_exact_max_falls_back_to_scalar_path(self, delay_model, variation_model, c17_circuit):
        exact_scalar = FASSTA(delay_model, variation_model, exact_max=True)
        exact_vector = FASSTA(
            delay_model, variation_model, exact_max=True, vectorized=True
        )
        assert_results_close(
            exact_scalar.analyze(c17_circuit), exact_vector.analyze(c17_circuit), c17_circuit
        )


class TestIncrementalReanalysis:
    @pytest.mark.parametrize("name", EQUIV_CIRCUITS)
    def test_random_resize_sequences_match_scratch(self, name, delay_model, variation_model):
        circuit = build_benchmark(name)
        engine = FULLSSTA(delay_model, variation_model)
        incremental = IncrementalReanalysis(engine, circuit)
        incremental.analyze()
        rng = np.random.default_rng(sum(map(ord, name)))
        names = list(circuit.gates)
        for _ in range(4):
            for gate in rng.choice(names, size=3, replace=False):
                circuit.set_size(str(gate), int(rng.integers(0, 7)))
            assert_results_close(incremental.analyze(), engine.analyze(circuit), circuit)

    def test_resize_and_revert_matches_original(self, delay_model, variation_model):
        circuit = build_benchmark("c432")
        engine = FULLSSTA(delay_model, variation_model)
        incremental = IncrementalReanalysis(engine, circuit)
        before = incremental.analyze()
        gate = next(iter(circuit.gates))
        original = circuit.gate(gate).size_index
        circuit.set_size(gate, 6)
        incremental.analyze()
        circuit.set_size(gate, original)
        after = incremental.analyze()
        assert_results_close(before, after, circuit, tol=0.0)

    def test_noop_resize_recomputes_nothing(self, delay_model, variation_model):
        circuit = build_benchmark("alu1")
        incremental = IncrementalReanalysis(
            FULLSSTA(delay_model, variation_model), circuit
        )
        incremental.analyze()
        retimed = incremental.gates_retimed
        gate = next(iter(circuit.gates))
        circuit.set_size(gate, circuit.gate(gate).size_index)  # same size: no-op
        incremental.analyze()
        assert incremental.gates_retimed == retimed

    def test_incremental_retimes_fewer_gates_than_scratch(self, delay_model, variation_model):
        circuit = build_benchmark("c880")
        incremental = IncrementalReanalysis(
            FULLSSTA(delay_model, variation_model), circuit
        )
        incremental.analyze()
        baseline = incremental.gates_retimed
        assert baseline == circuit.num_gates()
        # A single resize must not re-time the whole circuit.
        name = circuit.topological_order()[len(circuit) // 2]
        circuit.set_size(name, 6)
        incremental.analyze()
        assert incremental.gates_retimed - baseline < circuit.num_gates() // 2
        assert incremental.stats["incremental_runs"] == 1

    def test_structural_change_triggers_full_rebuild(self, delay_model, variation_model):
        circuit = build_benchmark("c17")
        engine = FULLSSTA(delay_model, variation_model)
        incremental = IncrementalReanalysis(engine, circuit)
        incremental.analyze()
        circuit.add("extra", "INV", ["N22"], "n_extra")
        circuit.add_primary_output("n_extra")
        result = incremental.analyze()
        assert incremental.full_runs == 2
        assert_results_close(engine.analyze(circuit), result, circuit)

    def test_invalidate_forces_rebuild(self, delay_model, variation_model, c17_circuit):
        incremental = IncrementalReanalysis(
            FULLSSTA(delay_model, variation_model), c17_circuit
        )
        incremental.analyze()
        incremental.invalidate()
        incremental.analyze()
        assert incremental.full_runs == 2


class TestSizerPipelineEquivalence:
    @pytest.mark.parametrize("name", ["c17", "alu2"])
    def test_fast_pipeline_matches_scratch_decisions(self, name, delay_model, variation_model):
        config_kwargs = {"lam": 3.0, "max_iterations": 4}
        scratch = StatisticalGreedySizer(
            delay_model,
            variation_model,
            SizerConfig(
                incremental_reanalysis=False, vectorized_fassta=False, **config_kwargs
            ),
        ).optimize(build_benchmark(name))
        fast = StatisticalGreedySizer(
            delay_model, variation_model, SizerConfig(**config_kwargs)
        ).optimize(build_benchmark(name))
        # Identical decisions, not merely similar quality.
        assert scratch.circuit.sizes() == fast.circuit.sizes()
        assert fast.final.mean == pytest.approx(scratch.final.mean, abs=1e-6)
        assert fast.final.sigma == pytest.approx(scratch.final.sigma, abs=1e-6)
        assert len(fast.iterations) == len(scratch.iterations)

    def test_diagnostics_populated(self, delay_model, variation_model, small_adder):
        result = StatisticalGreedySizer(
            delay_model, variation_model, SizerConfig(lam=3.0, max_iterations=3)
        ).optimize(small_adder)
        diag = result.diagnostics
        assert diag["full_runs"] >= 1
        assert diag["evaluation_cache_misses"] > 0
        assert diag["subcircuit_cache_misses"] > 0
        assert "incremental_runs" in diag


class TestSubcircuitCache:
    def test_returns_equivalent_subcircuits(self, delay_model, variation_model):
        circuit = build_benchmark("c432")
        cache = SubcircuitCache()
        for seed in list(circuit.gates)[:10]:
            cached = cache.get(circuit, seed, 2)
            fresh = extract_subcircuit(circuit, seed, 2)
            assert cached.gate_names == fresh.gate_names
            assert cached.input_nets == fresh.input_nets
            assert cached.output_nets == fresh.output_nets

    def test_hit_miss_accounting(self, c17_circuit):
        cache = SubcircuitCache()
        cache.get(c17_circuit, "g16", 2)
        cache.get(c17_circuit, "g16", 2)
        cache.get(c17_circuit, "g16", 1)  # different depth: a distinct region
        assert cache.hits == 1
        assert cache.misses == 2

    def test_structural_change_invalidates(self, c17_circuit):
        cache = SubcircuitCache()
        before = cache.get(c17_circuit, "g16", 2)
        c17_circuit.add("extra", "INV", ["N22"], "n_extra")
        after = cache.get(c17_circuit, "g16", 2)
        assert after is not before

    def test_context_signature_tracks_member_and_fringe_sizes(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=1)
        base = sub.context_signature()
        member = sub.gate_names[0]
        c17_circuit.set_size(member, 5)
        assert sub.context_signature() != base
        c17_circuit.set_size(member, 0)
        assert sub.context_signature() == base


class TestSizeChangeLog:
    def test_set_size_logs_only_real_changes(self, c17_circuit):
        cursor = c17_circuit.size_change_cursor
        c17_circuit.set_size("g10", c17_circuit.gate("g10").size_index)
        assert c17_circuit.size_changes_since(cursor) == []
        c17_circuit.set_size("g10", 4)
        c17_circuit.set_size("g11", 2)
        assert c17_circuit.size_changes_since(cursor) == ["g10", "g11"]

    def test_cursor_is_stable_snapshot(self, c17_circuit):
        c17_circuit.set_size("g10", 3)
        cursor = c17_circuit.size_change_cursor
        c17_circuit.set_size("g11", 5)
        assert c17_circuit.size_changes_since(cursor) == ["g11"]

    def test_apply_sizes_logs_through_set_size(self, c17_circuit):
        cursor = c17_circuit.size_change_cursor
        sizes = c17_circuit.sizes()
        sizes["g19"] = 6
        c17_circuit.apply_sizes(sizes)
        assert c17_circuit.size_changes_since(cursor) == ["g19"]

    def test_negative_cursor_rejected(self, c17_circuit):
        from repro.netlist.circuit import CircuitError

        with pytest.raises(CircuitError):
            c17_circuit.size_changes_since(-1)

    def test_structure_version_bumps_on_mutation(self):
        circuit = Circuit("v", primary_inputs=["a"], primary_outputs=["y"])
        v0 = circuit.structure_version
        circuit.add("g", "INV", ["a"], "y")
        assert circuit.structure_version > v0
        version = circuit.structure_version
        circuit.set_size("g", 3)  # resizes are not structural
        assert circuit.structure_version == version
        circuit.remove_gate("g")
        assert circuit.structure_version > version


class TestPreviewProtocol:
    def test_preview_matches_scratch_without_committing(self, delay_model, variation_model):
        circuit = build_benchmark("c432")
        engine = FULLSSTA(delay_model, variation_model)
        incremental = IncrementalReanalysis(engine, circuit)
        base = incremental.analyze()
        gate = circuit.topological_order()[3]
        circuit.set_size(gate, 6)
        previewed = incremental.preview()
        assert previewed is not None
        assert_results_close(engine.analyze(circuit), previewed, circuit)
        # Reverting discards the trial for free: the next analyze sees a
        # clean circuit and recomputes nothing.
        circuit.set_size(gate, 0)
        retimed = incremental.gates_retimed
        after = incremental.analyze()
        assert incremental.gates_retimed == retimed
        assert_results_close(base, after, circuit, tol=0.0)

    def test_commit_preview_folds_delta_in(self, delay_model, variation_model):
        circuit = build_benchmark("c432")
        engine = FULLSSTA(delay_model, variation_model)
        incremental = IncrementalReanalysis(engine, circuit)
        incremental.analyze()
        gate = circuit.topological_order()[3]
        circuit.set_size(gate, 6)
        previewed = incremental.preview()
        assert incremental.commit_preview()
        retimed = incremental.gates_retimed
        committed = incremental.analyze()
        assert incremental.gates_retimed == retimed  # nothing left to do
        assert_results_close(previewed, committed, circuit, tol=0.0)
        assert_results_close(engine.analyze(circuit), committed, circuit)

    def test_commit_preview_refused_after_further_resizes(self, delay_model, variation_model):
        circuit = build_benchmark("c17")
        incremental = IncrementalReanalysis(
            FULLSSTA(delay_model, variation_model), circuit
        )
        incremental.analyze()
        circuit.set_size("g10", 5)
        assert incremental.preview() is not None
        circuit.set_size("g11", 5)  # a resize the preview did not see
        assert not incremental.commit_preview()
        # The log-driven path still converges to the right answer.
        assert_results_close(
            FULLSSTA(delay_model, variation_model).analyze(circuit),
            incremental.analyze(),
            circuit,
        )

    def test_preview_without_prior_analysis_returns_none(self, delay_model, variation_model, c17_circuit):
        incremental = IncrementalReanalysis(
            FULLSSTA(delay_model, variation_model), c17_circuit
        )
        assert incremental.preview() is None


class TestFloatingNetConsistency:
    def test_floating_output_raises_in_both_fassta_paths(self, delay_model, variation_model):
        # A gate input that is neither a primary input nor driven by a gate:
        # both propagation paths must reject it as an output (it is not a
        # timeable net), not silently report a zero arrival.
        circuit = Circuit("floaty", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "NAND2", ["a", "dangling"], "y")
        for vectorized in (False, True):
            engine = FASSTA(delay_model, variation_model, vectorized=vectorized)
            with pytest.raises(KeyError, match="dangling"):
                engine.analyze(circuit, outputs=["dangling"])
            # With a boundary arrival the net becomes timeable in both paths.
            from repro.core.rv import NormalDelay

            result = engine.analyze(
                circuit,
                boundary_arrivals={"dangling": NormalDelay(5.0, 1.0)},
                outputs=["dangling"],
            )
            assert result.output_rv.mean == pytest.approx(5.0)
