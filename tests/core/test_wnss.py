"""Unit tests for WNSS (worst negative statistical slack) path tracing."""

import pytest

from repro.core.fullssta import FULLSSTA
from repro.core.rv import NormalDelay
from repro.core.wnss import WNSSTracer
from repro.netlist.circuit import Circuit


@pytest.fixture
def tracer(variation_model):
    return WNSSTracer(coupling=variation_model.mean_sigma_coupling, lam=3.0)


class TestPickDominantInput:
    def test_single_candidate(self, tracer):
        net, method = tracer.pick_dominant_input({"a": NormalDelay(10.0, 1.0)})
        assert net == "a"
        assert method == "single"

    def test_clear_dominance_picks_higher_mean(self, tracer):
        candidates = {
            "slow": NormalDelay(392.0, 35.0),
            "fast": NormalDelay(190.0, 41.0),
        }
        net, method = tracer.pick_dominant_input(candidates)
        assert net == "slow"
        assert method == "dominance"

    def test_fig3_sensitivity_case_prefers_high_sigma_input(self, tracer):
        # Paper Fig. 3: arrivals (320, 27) vs (310, 45).  The means are too
        # close for dominance; the higher-sigma input drives the output
        # variance and must be chosen.
        candidates = {
            "arc_a": NormalDelay(320.0, 27.0),
            "arc_b": NormalDelay(310.0, 45.0),
        }
        net, method = tracer.pick_dominant_input(candidates)
        assert method == "sensitivity"
        assert net == "arc_b"

    def test_close_means_and_sigmas_picks_either_but_uses_sensitivity(self, tracer):
        candidates = {
            "x": NormalDelay(357.0, 32.0),
            "y": NormalDelay(392.0, 35.0),
        }
        net, method = tracer.pick_dominant_input(candidates)
        assert method == "sensitivity"
        assert net in candidates

    def test_empty_candidates_rejected(self, tracer):
        with pytest.raises(ValueError):
            tracer.pick_dominant_input({})


class TestStartOutputSelection:
    def test_weighted_cost_selects_high_sigma_output(self, tracer):
        circuit = Circuit("two_out", primary_inputs=["a"], primary_outputs=["o1", "o2"])
        circuit.add("g1", "INV", ["a"], "o1")
        circuit.add("g2", "INV", ["a"], "o2")
        arrivals = {
            "o1": NormalDelay(100.0, 1.0),
            "o2": NormalDelay(99.0, 10.0),  # lower mean, much higher sigma
        }
        assert tracer.select_start_output(circuit, arrivals) == "o2"

    def test_lambda_zero_selects_worst_mean(self, variation_model):
        tracer = WNSSTracer(coupling=variation_model.mean_sigma_coupling, lam=0.0)
        circuit = Circuit("two_out", primary_inputs=["a"], primary_outputs=["o1", "o2"])
        circuit.add("g1", "INV", ["a"], "o1")
        circuit.add("g2", "INV", ["a"], "o2")
        arrivals = {
            "o1": NormalDelay(100.0, 1.0),
            "o2": NormalDelay(99.0, 10.0),
        }
        assert tracer.select_start_output(circuit, arrivals) == "o1"

    def test_no_outputs_raises(self, tracer):
        circuit = Circuit("none", primary_inputs=["a"])
        with pytest.raises(ValueError):
            tracer.select_start_output(circuit, {})


class TestTrace:
    def test_trace_reaches_primary_input(self, tracer, delay_model, variation_model, c17_circuit):
        full = FULLSSTA(delay_model, variation_model).analyze(c17_circuit)
        path = tracer.trace(c17_circuit, full.arrival_moments)
        assert len(path) >= 2
        first_gate = c17_circuit.gate(path.gates[0])
        # The first gate on the (input-to-output ordered) path must have at
        # least one primary-input pin.
        assert any(c17_circuit.is_primary_input(net) for net in first_gate.inputs)
        # The last gate drives the chosen output.
        assert c17_circuit.gate(path.gates[-1]).output == path.output_net

    def test_path_is_structurally_connected(self, tracer, delay_model, variation_model, c17_circuit):
        full = FULLSSTA(delay_model, variation_model).analyze(c17_circuit)
        path = tracer.trace(c17_circuit, full.arrival_moments)
        for upstream, downstream in zip(path.gates, path.gates[1:], strict=False):
            up = c17_circuit.gate(upstream)
            down = c17_circuit.gate(downstream)
            assert up.output in down.inputs

    def test_trace_records_decisions(self, tracer, delay_model, variation_model, c17_circuit):
        full = FULLSSTA(delay_model, variation_model).analyze(c17_circuit)
        path = tracer.trace(c17_circuit, full.arrival_moments)
        assert len(path.decisions) == len(path.gates)
        for decision in path.decisions:
            assert decision.method in ("single", "dominance", "sensitivity")
            assert decision.chosen_net in decision.candidates

    def test_trace_from_specific_output(self, tracer, delay_model, variation_model, c17_circuit):
        full = FULLSSTA(delay_model, variation_model).analyze(c17_circuit)
        path = tracer.trace(c17_circuit, full.arrival_moments, start_output="N23")
        assert path.output_net == "N23"
        assert c17_circuit.gate(path.gates[-1]).output == "N23"

    def test_wnss_differs_from_wns_when_variance_dominates(self, tracer):
        """Construct a circuit where the highest-mean path is NOT the WNSS path.

        Output gate X has two input branches: branch P has a slightly higher
        mean but tiny sigma; branch Q has a slightly lower mean but a huge
        sigma.  A deterministic tracer follows P; the statistical tracer must
        follow Q.
        """
        circuit = Circuit("diverge", primary_inputs=["a", "b"], primary_outputs=["y"])
        circuit.add("p", "BUF", ["a"], "np")
        circuit.add("q", "BUF", ["b"], "nq")
        circuit.add("x", "NAND2", ["np", "nq"], "y")
        arrivals = {
            "np": NormalDelay(320.0, 5.0),
            "nq": NormalDelay(310.0, 60.0),
            "y": NormalDelay(360.0, 55.0),
        }
        path = tracer.trace(circuit, arrivals)
        assert "q" in path.gates
        assert "p" not in path.gates

    def test_membership_and_iteration(self, tracer, delay_model, variation_model, c17_circuit):
        full = FULLSSTA(delay_model, variation_model).analyze(c17_circuit)
        path = tracer.trace(c17_circuit, full.arrival_moments)
        assert list(iter(path)) == path.gates
        assert path.gates[0] in path


class TestConstructionValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WNSSTracer(coupling=-0.1)
        with pytest.raises(ValueError):
            WNSSTracer(coupling=0.1, lam=-1.0)
