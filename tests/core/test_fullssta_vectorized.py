"""Exactness pinning for the levelized vectorized FULLSSTA path.

The batched discrete-pdf propagation replays the scalar engine's
canonicalize/compact arithmetic over padded arrays, so its per-net moments
must agree with the scalar path to ~1e-9 on every registry circuit — the
same contract the incremental-reanalysis cache carries.
"""

import numpy as np
import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark
from repro.core.discrete_pdf import (
    DiscretePDF,
    batched_combine,
    batched_from_normal,
)
from repro.core.fullssta import FULLSSTA

TOL = 1e-9


def assert_fullssta_results_close(reference, candidate, tol=TOL):
    assert set(candidate.arrival_pdfs) == set(reference.arrival_pdfs)
    for net, ref_pdf in reference.arrival_pdfs.items():
        cand_pdf = candidate.arrival_pdfs[net]
        assert cand_pdf.mean() == pytest.approx(ref_pdf.mean(), abs=tol), net
        assert cand_pdf.std() == pytest.approx(ref_pdf.std(), abs=tol), net
    assert candidate.output_rv.mean == pytest.approx(reference.output_rv.mean, abs=tol)
    assert candidate.output_rv.sigma == pytest.approx(reference.output_rv.sigma, abs=tol)
    assert candidate.worst_output == reference.worst_output
    assert candidate.gate_delay_moments == reference.gate_delay_moments


class TestBatchedPrimitives:
    """The padded-array primitives against their scalar counterparts."""

    def _random_pdfs(self, rng, count, num_samples=13):
        pdfs = []
        for _ in range(count):
            mean = rng.uniform(20.0, 400.0)
            sigma = rng.uniform(0.0, 25.0)
            pdfs.append(DiscretePDF.from_normal(mean, sigma, num_samples))
        pdfs.append(DiscretePDF.point(0.0))
        pdfs.append(DiscretePDF.point(rng.uniform(1.0, 50.0)))
        return pdfs

    @staticmethod
    def _to_batch(pdfs, width):
        values = np.zeros((len(pdfs), width))
        probs = np.zeros((len(pdfs), width))
        counts = np.zeros(len(pdfs), dtype=np.intp)
        for row, pdf in enumerate(pdfs):
            n = pdf.num_samples
            values[row, :n] = pdf.values
            values[row, n:] = pdf.values[-1]
            probs[row, :n] = pdf.probabilities
            counts[row] = n
        return values, probs, counts

    def test_batched_from_normal_matches_scalar(self):
        rng = np.random.default_rng(7)
        means = rng.uniform(10.0, 500.0, 50)
        sigmas = rng.uniform(0.0, 40.0, 50)
        sigmas[::7] = 0.0
        values, probs, counts = batched_from_normal(means, sigmas, 13)
        for row, (mean, sigma) in enumerate(zip(means, sigmas, strict=True)):
            ref = DiscretePDF.from_normal(mean, sigma, 13)
            n = counts[row]
            assert n == ref.num_samples
            np.testing.assert_allclose(values[row, :n], ref.values, atol=1e-12)
            np.testing.assert_allclose(probs[row, :n], ref.probabilities, atol=1e-12)
            assert np.all(probs[row, n:] == 0.0)

    @pytest.mark.parametrize("op,scalar_op", [
        ("add", DiscretePDF.add),
        ("max", DiscretePDF.maximum),
    ])
    def test_batched_combine_matches_scalar(self, op, scalar_op):
        rng = np.random.default_rng(11)
        pdfs_a = self._random_pdfs(rng, 30)
        pdfs_b = list(reversed(self._random_pdfs(rng, 30)))
        a = self._to_batch(pdfs_a, 13)
        b = self._to_batch(pdfs_b, 13)
        values, probs, counts = batched_combine(a[0], a[1], b[0], b[1], op, 13)
        assert values.shape == (len(pdfs_a), 13)
        for row, (pa, pb) in enumerate(zip(pdfs_a, pdfs_b, strict=True)):
            ref = scalar_op(pa, pb, 13)
            n = counts[row]
            assert n == ref.num_samples
            np.testing.assert_allclose(values[row, :n], ref.values, atol=1e-12)
            np.testing.assert_allclose(probs[row, :n], ref.probabilities, atol=1e-12)
            # Padding: zero mass, repeated last value (rows stay sorted).
            assert np.all(probs[row, n:] == 0.0)
            assert np.all(values[row, n:] == values[row, n - 1])

    def test_batched_combine_rejects_unknown_op(self):
        values = np.zeros((1, 2))
        probs = np.array([[1.0, 0.0]])
        with pytest.raises(ValueError):
            batched_combine(values, probs, values, probs, "sub", 13)


class TestVectorizedEngine:
    @pytest.mark.parametrize("name", [*BENCHMARK_NAMES, "c17"])
    def test_matches_scalar_on_registry_circuit(self, name, delay_model, variation_model):
        circuit = build_benchmark(name)
        scalar = FULLSSTA(delay_model, variation_model).analyze(circuit)
        vectorized = FULLSSTA(delay_model, variation_model, vectorized=True).analyze(
            circuit
        )
        assert_fullssta_results_close(scalar, vectorized)

    def test_matches_scalar_after_resizes(self, delay_model, variation_model):
        circuit = build_benchmark("alu1")
        scalar_engine = FULLSSTA(delay_model, variation_model)
        vector_engine = FULLSSTA(delay_model, variation_model, vectorized=True)
        rng = np.random.default_rng(3)
        names = list(circuit.gates)
        for _ in range(3):
            for gate in rng.choice(names, size=5, replace=False):
                circuit.set_size(str(gate), int(rng.integers(0, 7)))
            assert_fullssta_results_close(
                scalar_engine.analyze(circuit), vector_engine.analyze(circuit)
            )

    def test_boundary_arrivals_and_unknown_nets(self, delay_model, variation_model, chain_circuit):
        boundary = {
            "in": DiscretePDF.from_normal(120.0, 9.0, 13),
            "elsewhere": DiscretePDF.point(42.0),  # unknown to the circuit
        }
        scalar = FULLSSTA(delay_model, variation_model).analyze(
            chain_circuit, boundary_arrivals=boundary
        )
        vectorized = FULLSSTA(delay_model, variation_model, vectorized=True).analyze(
            chain_circuit, boundary_arrivals=boundary
        )
        assert_fullssta_results_close(scalar, vectorized)
        assert vectorized.arrival_pdfs["elsewhere"].mean() == 42.0

    def test_boundary_pdfs_wider_than_budget(
        self, delay_model, variation_model, chain_circuit
    ):
        # The scalar path folds over-budget boundary pdfs at full width and
        # only compacts the results; the vectorized path must match, not
        # pre-compact the boundary.
        boundary = {"in": DiscretePDF.from_normal(150.0, 12.0, 29)}
        scalar = FULLSSTA(delay_model, variation_model).analyze(
            chain_circuit, boundary_arrivals=boundary
        )
        vectorized = FULLSSTA(delay_model, variation_model, vectorized=True).analyze(
            chain_circuit, boundary_arrivals=boundary
        )
        assert_fullssta_results_close(scalar, vectorized)
        assert vectorized.arrival_pdfs["in"].num_samples == 29

    def test_plan_reuse_and_invalidation(self, delay_model, variation_model, c17_circuit):
        engine = FULLSSTA(delay_model, variation_model, vectorized=True)
        engine.analyze(c17_circuit)
        plan = c17_circuit.compiled()
        engine.analyze(c17_circuit)
        assert c17_circuit.compiled() is plan  # same structure: IR reused
        c17_circuit.add("g_extra", "INV", ["N22"], "N90")
        c17_circuit.add_primary_output("N90")
        engine.analyze(c17_circuit)
        assert c17_circuit.compiled() is not plan  # structural edit: relowered

    def test_selected_outputs_validate(self, delay_model, variation_model, c17_circuit):
        engine = FULLSSTA(delay_model, variation_model, vectorized=True)
        result = engine.analyze(c17_circuit, outputs=["N22"])
        assert result.worst_output == "N22"
        with pytest.raises(KeyError):
            engine.analyze(c17_circuit, outputs=["nope"])
