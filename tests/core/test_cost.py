"""Unit tests for the weighted cost (Eq. 7) and the subcircuit cost evaluator."""

import pytest

from repro.core.cost import CostComponents, CostEvaluator, WeightedCost
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA
from repro.core.rv import NormalDelay
from repro.core.subcircuit import extract_subcircuit


class TestWeightedCost:
    def test_equation_7(self):
        cost = WeightedCost(lam=3.0)
        assert cost.of(NormalDelay(100.0, 10.0)) == pytest.approx(130.0)
        assert cost.of_moments(50.0, 2.0) == pytest.approx(56.0)

    def test_lambda_zero_is_pure_mean(self):
        cost = WeightedCost(lam=0.0)
        assert cost.of(NormalDelay(100.0, 50.0)) == pytest.approx(100.0)

    def test_higher_lambda_penalises_sigma_more(self):
        rv = NormalDelay(100.0, 10.0)
        assert WeightedCost(9.0).of(rv) > WeightedCost(3.0).of(rv)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            WeightedCost(-1.0)

    def test_worst_over_outputs(self):
        cost = WeightedCost(3.0)
        arrivals = {
            "o1": NormalDelay(100.0, 1.0),   # cost 103
            "o2": NormalDelay(95.0, 5.0),    # cost 110
        }
        assert cost.worst(arrivals) == pytest.approx(110.0)
        with pytest.raises(ValueError):
            cost.worst({})

    def test_components(self):
        cost = WeightedCost(3.0)
        arrivals = {
            "o1": NormalDelay(100.0, 1.0),
            "o2": NormalDelay(95.0, 5.0),
        }
        comp = cost.components(arrivals)
        assert comp.worst == pytest.approx(110.0)
        assert comp.total == pytest.approx(213.0)


class TestCostComponents:
    def test_lower_worst_wins(self):
        assert CostComponents(10.0, 100.0).better_than(CostComponents(11.0, 50.0))

    def test_equal_worst_falls_back_to_total(self):
        assert CostComponents(10.0, 90.0).better_than(CostComponents(10.0, 100.0))
        assert not CostComponents(10.0, 100.0).better_than(CostComponents(10.0, 90.0))

    def test_identical_costs_not_better(self):
        comp = CostComponents(10.0, 100.0)
        assert not comp.better_than(CostComponents(10.0, 100.0))


class TestCostEvaluator:
    @pytest.fixture
    def evaluator(self, delay_model, variation_model):
        return CostEvaluator(FASSTA(delay_model, variation_model), WeightedCost(3.0))

    @pytest.fixture
    def boundary(self, delay_model, variation_model, c17_circuit):
        full = FULLSSTA(delay_model, variation_model).analyze(c17_circuit)
        return full.arrival_moments

    def test_subcircuit_cost_positive(self, evaluator, c17_circuit, boundary):
        sub = extract_subcircuit(c17_circuit, "g16", depth=2)
        cost = evaluator.subcircuit_cost(sub, boundary)
        assert cost > 0.0

    def test_candidate_size_restores_original(self, evaluator, c17_circuit, boundary):
        sub = extract_subcircuit(c17_circuit, "g16", depth=1)
        original_size = c17_circuit.gate("g16").size_index
        evaluator.candidate_size_cost(sub, boundary, 5)
        assert c17_circuit.gate("g16").size_index == original_size
        evaluator.candidate_size_cost_components(sub, boundary, 5)
        assert c17_circuit.gate("g16").size_index == original_size

    def test_subcircuit_arrivals_consistent_with_full_fassta(
        self, evaluator, delay_model, variation_model, c17_circuit
    ):
        # Propagating only the member gates with boundary arrivals taken from
        # a full-circuit FASSTA run must reproduce that run's arrival moments
        # at the subcircuit outputs exactly (same math, same inputs).
        fassta = FASSTA(delay_model, variation_model)
        full_arrivals = fassta.analyze(c17_circuit).arrivals
        sub = extract_subcircuit(c17_circuit, "g16", depth=2)
        boundary = {net: full_arrivals[net] for net in sub.input_nets}
        arrivals = evaluator.subcircuit_arrivals(sub, boundary)
        for net in sub.output_nets:
            assert arrivals[net].mean == pytest.approx(full_arrivals[net].mean)
            assert arrivals[net].sigma == pytest.approx(full_arrivals[net].sigma)

    def test_upsizing_high_fanout_gate_reduces_cost(self, evaluator, c17_circuit, boundary):
        # g11 drives two loads; upsizing it from minimum should reduce the
        # local weighted cost (its delay and sigma both drop).
        sub = extract_subcircuit(c17_circuit, "g11", depth=2)
        current = evaluator.subcircuit_cost_components(sub, boundary)
        better = evaluator.candidate_size_cost_components(sub, boundary, 3)
        assert better.better_than(current)

    def test_circuit_cost(self, evaluator):
        assert evaluator.circuit_cost(NormalDelay(10.0, 2.0)) == pytest.approx(16.0)
