"""Unit tests for the deterministic mean-delay baseline sizer."""

import pytest

from repro.circuits.adders import ripple_carry_adder
from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.netlist.validate import validate_circuit
from repro.sta.dsta import DeterministicSTA


@pytest.fixture
def baseline(delay_model):
    return MeanDelaySizer(delay_model)


class TestOptimize:
    def test_delay_never_increases(self, baseline, small_adder):
        result = baseline.optimize(small_adder)
        assert result.final_delay <= result.initial_delay + 1e-6
        assert result.delay_reduction_pct >= 0.0

    def test_reported_delay_matches_circuit(self, baseline, delay_model, small_adder):
        result = baseline.optimize(small_adder)
        actual = DeterministicSTA(delay_model).max_delay(small_adder)
        assert result.final_delay == pytest.approx(actual, rel=1e-9)

    def test_substantial_improvement_on_loaded_circuit(self, baseline, delay_model):
        # An 8-bit ripple adder at minimum sizes has heavily loaded carry
        # gates; mean-delay sizing should recover a significant fraction.
        circuit = ripple_carry_adder(8)
        result = baseline.optimize(circuit)
        assert result.delay_reduction_pct > 10.0

    def test_area_accounting(self, baseline, delay_model, small_adder):
        result = baseline.optimize(small_adder)
        assert result.final_area == pytest.approx(delay_model.circuit_area(small_adder))
        assert result.initial_area > 0

    def test_circuit_stays_valid(self, baseline, library, small_adder):
        baseline.optimize(small_adder)
        assert validate_circuit(small_adder, library) == []

    def test_runtime_and_passes_recorded(self, baseline, small_adder):
        result = baseline.optimize(small_adder)
        assert result.passes >= 1
        assert result.runtime_seconds > 0.0

    def test_not_every_gate_is_maxed_out(self, baseline, library):
        # A mean-delay optimizer with realistic load costs must not simply
        # saturate every gate at maximum size (the paper's "high usage of
        # smaller devices" observation about mean-optimized designs).
        circuit = build_benchmark("c432")
        baseline.optimize(circuit)
        max_indices = sum(
            1
            for g in circuit.gates.values()
            if g.size_index == library.max_size_index(g.cell_type)
        )
        assert max_indices < circuit.num_gates() * 0.5


class TestAreaRecovery:
    def test_area_recovery_reduces_area_without_hurting_delay(self, delay_model):
        circuit_a = ripple_carry_adder(6, name="with_recovery")
        circuit_b = ripple_carry_adder(6, name="without_recovery")
        with_recovery = MeanDelaySizer(delay_model, area_recovery=True).optimize(circuit_a)
        without_recovery = MeanDelaySizer(delay_model, area_recovery=False).optimize(circuit_b)
        assert with_recovery.final_area <= without_recovery.final_area * 1.05
        # Delay stays within the recovery tolerance of the no-recovery run.
        assert with_recovery.final_delay <= without_recovery.final_delay * 1.05

    def test_disabled_area_recovery(self, delay_model, small_adder):
        sizer = MeanDelaySizer(delay_model, area_recovery=False)
        result = sizer.optimize(small_adder)
        assert result.final_delay <= result.initial_delay + 1e-6
