"""Unit tests for Clark's max moments and the paper's approximations."""

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.core import clark


class TestNormalHelpers:
    def test_phi_is_standard_normal_pdf(self):
        for x in (-2.0, -0.5, 0.0, 1.0, 3.0):
            assert clark.phi(x) == pytest.approx(norm.pdf(x), rel=1e-12)

    def test_capital_phi_is_cdf(self):
        for x in (-3.0, -1.0, 0.0, 0.7, 2.5):
            assert clark.capital_phi(x) == pytest.approx(norm.cdf(x), rel=1e-9)

    def test_quadratic_cdf_two_decimal_accuracy(self):
        # The paper claims the quadratic approximation is accurate to two
        # decimal places; verify over the whole real line.
        for x in np.linspace(-5.0, 5.0, 201):
            assert abs(clark.capital_phi_quadratic(x) - norm.cdf(x)) < 0.012

    def test_quadratic_cdf_is_odd_about_half(self):
        for x in (0.1, 0.5, 1.3, 2.4, 3.0):
            assert clark.capital_phi_quadratic(-x) == pytest.approx(
                1.0 - clark.capital_phi_quadratic(x)
            )

    def test_quadratic_cdf_saturation(self):
        assert clark.capital_phi_quadratic(2.7) == 1.0
        assert clark.capital_phi_quadratic(-2.7) == 0.0
        assert clark.capital_phi_quadratic(2.4) == pytest.approx(0.99)

    def test_erf_quadratic_matches_math_erf(self):
        for x in np.linspace(-2.5, 2.5, 101):
            assert abs(clark.erf_quadratic(x) - math.erf(x)) < 0.025

    def test_erf_quadratic_odd(self):
        for x in (0.2, 0.9, 1.7):
            assert clark.erf_quadratic(-x) == pytest.approx(-clark.erf_quadratic(x))


class TestDominance:
    def test_a_dominates(self):
        assert clark.dominance(100.0, 3.0, 10.0, 4.0) == 1

    def test_b_dominates(self):
        assert clark.dominance(10.0, 3.0, 100.0, 4.0) == -1

    def test_no_dominance_when_close(self):
        assert clark.dominance(100.0, 10.0, 95.0, 10.0) == 0

    def test_threshold_is_2_6_normalized_sigmas(self):
        # a = sqrt(3^2 + 4^2) = 5; separation of exactly 13 = 2.6 * 5.
        assert clark.dominance(113.0, 3.0, 100.0, 4.0) == 1
        assert clark.dominance(112.9, 3.0, 100.0, 4.0) == 0

    def test_deterministic_degenerate_case(self):
        assert clark.dominance(5.0, 0.0, 3.0, 0.0) == 1
        assert clark.dominance(3.0, 0.0, 5.0, 0.0) == -1
        assert clark.dominance(5.0, 0.0, 5.0, 0.0) == 1


class TestClarkExact:
    def test_against_monte_carlo(self):
        rng = np.random.default_rng(42)
        cases = [
            (100.0, 10.0, 100.0, 10.0),
            (100.0, 10.0, 110.0, 5.0),
            (50.0, 20.0, 80.0, 3.0),
            (200.0, 1.0, 100.0, 40.0),
        ]
        for mu_a, s_a, mu_b, s_b in cases:
            a = rng.normal(mu_a, s_a, 200_000)
            b = rng.normal(mu_b, s_b, 200_000)
            samples = np.maximum(a, b)
            mean, var = clark.clark_max_exact(mu_a, s_a, mu_b, s_b)
            assert mean == pytest.approx(samples.mean(), rel=0.01)
            assert var == pytest.approx(samples.var(), rel=0.05)

    def test_iid_closed_form(self):
        # max of two iid N(0, 1): mean = 1/sqrt(pi), var = 1 - 1/pi.
        mean, var = clark.clark_max_exact(0.0, 1.0, 0.0, 1.0)
        assert mean == pytest.approx(1.0 / math.sqrt(math.pi))
        assert var == pytest.approx(1.0 - 1.0 / math.pi)

    def test_deterministic_inputs(self):
        mean, var = clark.clark_max_exact(7.0, 0.0, 3.0, 0.0)
        assert mean == 7.0
        assert var == 0.0

    def test_scipy_reference_agrees(self):
        for case in [(10.0, 2.0, 11.0, 3.0), (0.0, 1.0, 0.5, 0.2)]:
            exact = clark.clark_max_exact(*case)
            reference = clark.clark_max_scipy(*case)
            assert exact[0] == pytest.approx(reference[0], rel=1e-9)
            assert exact[1] == pytest.approx(reference[1], rel=1e-9)


class TestClarkFast:
    def test_matches_exact_in_overlap_region(self):
        cases = [
            (100.0, 10.0, 100.0, 10.0),
            (100.0, 10.0, 105.0, 12.0),
            (300.0, 30.0, 320.0, 25.0),
        ]
        for case in cases:
            exact_mean, exact_var = clark.clark_max_exact(*case)
            fast_mean, fast_var = clark.clark_max_fast(*case)
            assert fast_mean == pytest.approx(exact_mean, rel=0.02)
            assert fast_var == pytest.approx(exact_var, rel=0.15)

    def test_dominance_shortcut_returns_operand_moments(self):
        mean, var = clark.clark_max_fast(500.0, 5.0, 100.0, 7.0)
        assert mean == 500.0
        assert var == 25.0
        mean, var = clark.clark_max_fast(100.0, 7.0, 500.0, 5.0)
        assert mean == 500.0
        assert var == 25.0

    def test_mean_of_max_at_least_max_of_means(self):
        for case in [(100.0, 10.0, 100.0, 10.0), (90.0, 20.0, 100.0, 5.0)]:
            mean, _ = clark.clark_max_fast(*case)
            assert mean >= max(case[0], case[2]) - 1e-9

    def test_variance_never_negative(self):
        for case in [(0.0, 0.0, 0.0, 0.0), (10.0, 1e-9, 10.0, 1e-9), (5.0, 3.0, 5.0, 3.0)]:
            _, var = clark.clark_max_fast(*case)
            assert var >= 0.0


class TestSensitivities:
    def test_dominant_input_has_higher_sensitivity(self):
        # B has a slightly lower mean but a much larger sigma: perturbing B's
        # mean changes Var[max] more than perturbing A's (the Fig. 3 situation).
        sens_a, sens_b = clark.variance_sensitivities(
            320.0, 27.0, 310.0, 45.0, coupling=0.3
        )
        assert sens_b > sens_a

    def test_symmetric_case_is_symmetric(self):
        sens_a, sens_b = clark.variance_sensitivities(
            100.0, 10.0, 100.0, 10.0, coupling=0.2
        )
        assert sens_a == pytest.approx(sens_b, rel=0.05)

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            clark.variance_sensitivities(1.0, 1.0, 1.0, 1.0, 0.1, rel_step=0.0)

    def test_coupling_increases_sensitivity(self):
        low = clark.variance_sensitivities(100.0, 10.0, 98.0, 12.0, coupling=0.0)
        high = clark.variance_sensitivities(100.0, 10.0, 98.0, 12.0, coupling=0.5)
        # With coupling, increasing a mean also increases its sigma, which
        # contributes additional variance to the max.
        assert high[0] > low[0]
        assert high[1] > low[1]


class TestClarkMaxFastArrays:
    def test_elementwise_matches_scalar(self):
        import numpy as np

        rng = np.random.default_rng(11)
        mu_a = rng.uniform(-50.0, 500.0, 400)
        mu_b = rng.uniform(-50.0, 500.0, 400)
        sigma_a = rng.uniform(0.0, 40.0, 400)
        sigma_b = rng.uniform(0.0, 40.0, 400)
        mean, var = clark.clark_max_fast_arrays(mu_a, sigma_a, mu_b, sigma_b)
        for i in range(mu_a.size):
            ref_mean, ref_var = clark.clark_max_fast(
                mu_a[i], sigma_a[i], mu_b[i], sigma_b[i]
            )
            assert mean[i] == pytest.approx(ref_mean, abs=1e-12)
            assert var[i] == pytest.approx(ref_var, abs=1e-12)

    def test_deterministic_pairs_collapse_to_plain_max(self):
        import numpy as np

        mean, var = clark.clark_max_fast_arrays(
            np.array([3.0, 7.0]), np.zeros(2), np.array([5.0, 2.0]), np.zeros(2)
        )
        assert mean.tolist() == [5.0, 7.0]
        assert var.tolist() == [0.0, 0.0]

    def test_dominant_operand_passes_through(self):
        import numpy as np

        # Separation far beyond 2.6 normalized sigmas: Eq. 5 applies.
        mean, var = clark.clark_max_fast_arrays(
            np.array([1000.0]), np.array([5.0]), np.array([10.0]), np.array([5.0])
        )
        assert mean[0] == 1000.0
        assert var[0] == 25.0
