"""Tests for the yield-targeted optimization mode.

The sizer's ``objective="yield"`` minimizes the clock period achieving a
target parametric timing yield: the inner loop reuses the weighted cost at
the target's z-score, circuit-level decisions use the exact FULLSSTA
discrete-pdf quantile.
"""


import pytest

from repro.analysis.timing_yield import period_for_yield, timing_yield
from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.cost import WeightedCost, YieldObjective
from repro.core.discrete_pdf import DiscretePDF
from repro.core.fullssta import FULLSSTA
from repro.core.rv import NormalDelay
from repro.core.sizer import SizerConfig, StatisticalGreedySizer


class TestYieldObjective:
    def test_z_scores(self):
        assert YieldObjective(0.5).z == pytest.approx(0.0, abs=1e-9)
        assert YieldObjective(0.99).z == pytest.approx(2.3263478740, abs=1e-6)
        assert YieldObjective(0.99865).z == pytest.approx(3.0, abs=1e-3)

    def test_equivalent_cost_is_normal_quantile(self):
        objective = YieldObjective(0.95)
        rv = NormalDelay(1000.0, 40.0)
        assert objective.equivalent_cost().of(rv) == pytest.approx(
            rv.quantile(0.95), abs=1e-6
        )
        assert isinstance(objective.equivalent_cost(), WeightedCost)

    def test_period_for_dispatches_on_distribution(self):
        objective = YieldObjective(0.9)
        rv = NormalDelay(500.0, 20.0)
        pdf = DiscretePDF.from_normal(500.0, 20.0, 31)
        assert objective.period_for(rv) == period_for_yield(rv, 0.9)
        assert objective.period_for(pdf) == period_for_yield(pdf, 0.9)
        assert objective.period_for(pdf) == pytest.approx(
            objective.period_for(rv), rel=0.02
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            YieldObjective(0.4)  # below half rewards increasing variance
        with pytest.raises(ValueError):
            YieldObjective(1.0)
        with pytest.raises(ValueError):
            YieldObjective(0.99, max_area_ratio=0.5)


class TestSizerConfigValidation:
    def test_objective_names(self):
        with pytest.raises(ValueError):
            SizerConfig(objective="speed")
        assert SizerConfig(objective="yield").target_yield == 0.99

    def test_target_yield_range(self):
        with pytest.raises(ValueError):
            SizerConfig(objective="yield", target_yield=0.3)
        # The target is only validated when the yield objective is active.
        assert SizerConfig(objective="cost", target_yield=0.3).lam == 3.0

    def test_max_area_ratio_range(self):
        with pytest.raises(ValueError):
            SizerConfig(max_area_ratio=0.9)


class TestYieldModeSizer:
    TARGET = 0.99

    def _sized(self, name, config, delay_model, variation_model):
        circuit = build_benchmark(name)
        MeanDelaySizer(delay_model).optimize(circuit)
        original_pdf = FULLSSTA(delay_model, variation_model).analyze(circuit).output_pdf
        result = StatisticalGreedySizer(delay_model, variation_model, config).optimize(
            circuit
        )
        final_pdf = FULLSSTA(delay_model, variation_model).analyze(circuit).output_pdf
        return circuit, original_pdf, final_pdf, result

    def test_reduces_target_period_on_c17(self, delay_model, variation_model):
        config = SizerConfig(objective="yield", target_yield=self.TARGET,
                             max_iterations=8)
        _, original_pdf, final_pdf, result = self._sized(
            "c17", config, delay_model, variation_model
        )
        p_before = period_for_yield(original_pdf, self.TARGET)
        p_after = period_for_yield(final_pdf, self.TARGET)
        assert p_after < p_before
        # The sized design actually achieves the target at its period.
        assert timing_yield(final_pdf, p_after) >= self.TARGET - 1e-9
        assert result.objective == "yield"
        assert result.target_yield == self.TARGET
        # The recorded lambda is the target's z-score, not the config default.
        assert result.lam == pytest.approx(YieldObjective(self.TARGET).z)

    def test_area_constrained_variant(self, delay_model, variation_model):
        ratio = 1.10
        config = SizerConfig(objective="yield", target_yield=self.TARGET,
                             max_iterations=8, max_area_ratio=ratio)
        circuit = build_benchmark("c17")
        MeanDelaySizer(delay_model).optimize(circuit)
        start_area = delay_model.circuit_area(circuit)
        StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        assert delay_model.circuit_area(circuit) <= ratio * start_area * (1 + 1e-9)

    def test_area_constraint_applies_to_cost_objective_too(
        self, delay_model, variation_model
    ):
        config = SizerConfig(lam=9.0, max_iterations=8, max_area_ratio=1.05)
        circuit = build_benchmark("c17")
        MeanDelaySizer(delay_model).optimize(circuit)
        start_area = delay_model.circuit_area(circuit)
        StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        assert delay_model.circuit_area(circuit) <= 1.05 * start_area * (1 + 1e-9)

    def test_cost_mode_unchanged_by_new_fields(self, delay_model, variation_model):
        # The default config must still drive the paper's weighted cost.
        sizer = StatisticalGreedySizer(delay_model, variation_model, SizerConfig())
        assert sizer.yield_objective is None
        assert sizer.cost.lam == 3.0
        result = sizer.optimize(build_benchmark("c17"))
        assert result.objective == "cost"
        assert result.target_yield is None
        assert result.lam == 3.0

    def test_yield_flow_summary(self, delay_model, variation_model, library):
        from repro.flow import run_sizing_flow

        circuit = build_benchmark("c17")
        config = SizerConfig(objective="yield", target_yield=self.TARGET,
                             max_iterations=6)
        flow = run_sizing_flow(
            circuit,
            library=library,
            delay_model=delay_model,
            variation_model=variation_model,
            sizer_config=config,
        )
        assert flow.original_output_pdf is not None
        assert flow.final_output_pdf is not None
        summary = flow.yield_summary(self.TARGET)
        assert summary["final_period"] <= summary["original_period"]
        assert summary["final_yield_at_final_period"] >= self.TARGET - 1e-9
        assert summary["original_yield_at_final_period"] <= (
            summary["final_yield_at_final_period"] + 1e-9
        )

    def test_finer_pdf_sampling_sharpens_the_quantile(
        self, delay_model, variation_model
    ):
        # The yield objective is driven by the discrete-pdf quantile, so the
        # pdf_samples knob directly controls its resolution; the run must
        # simply remain well-behaved at a non-default budget.
        config = SizerConfig(objective="yield", target_yield=self.TARGET,
                             max_iterations=4, pdf_samples=21)
        _, original_pdf, final_pdf, _ = self._sized(
            "c17", config, delay_model, variation_model
        )
        assert period_for_yield(final_pdf, self.TARGET) <= period_for_yield(
            original_pdf, self.TARGET
        )
