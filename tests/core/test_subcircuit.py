"""Unit tests for subcircuit extraction."""

import pytest

from repro.circuits.registry import build_benchmark
from repro.core.subcircuit import extract_subcircuit, extraction_statistics


class TestExtraction:
    def test_seed_always_included(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=2)
        assert "g16" in sub
        assert sub.seed == "g16"

    def test_depth_zero_is_seed_only(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=0)
        assert sub.gate_names == ["g16"]
        assert set(sub.input_nets) == {"N2", "N11"}
        assert sub.output_nets == ["N16"]

    def test_depth_one_covers_direct_neighbours(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=1)
        assert set(sub.gate_names) == {"g11", "g16", "g22", "g23"}

    def test_depth_two_covers_paper_default(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=2)
        # Two levels of transitive fanin/fanout of g16: its fanin g11 and its
        # fanouts g22/g23.  Siblings (g10, g19) are not in either cone.
        assert set(sub.gate_names) == {"g11", "g16", "g22", "g23"}
        assert "g10" not in sub
        assert set(sub.input_nets) >= {"N2", "N10", "N19"}

    def test_gates_in_topological_order(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=2)
        topo = c17_circuit.topological_order()
        positions = [topo.index(name) for name in sub.gate_names]
        assert positions == sorted(positions)

    def test_input_nets_are_external(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=1)
        internal_outputs = {c17_circuit.gate(n).output for n in sub.gate_names}
        for net in sub.input_nets:
            assert net not in internal_outputs

    def test_output_nets_are_observed_outside(self, c17_circuit):
        sub = extract_subcircuit(c17_circuit, "g16", depth=1)
        member = set(sub.gate_names)
        for net in sub.output_nets:
            external_load = any(
                load.name not in member for load in c17_circuit.loads_of(net)
            )
            assert c17_circuit.is_primary_output(net) or external_load

    def test_unknown_seed_raises(self, c17_circuit):
        from repro.netlist.circuit import CircuitError

        with pytest.raises(CircuitError):
            extract_subcircuit(c17_circuit, "nope")

    def test_negative_depth_rejected(self, c17_circuit):
        with pytest.raises(ValueError):
            extract_subcircuit(c17_circuit, "g16", depth=-1)

    def test_subcircuit_much_smaller_than_circuit(self):
        circuit = build_benchmark("c432")
        sub = extract_subcircuit(circuit, circuit.topological_order()[len(circuit) // 2], depth=2)
        assert sub.num_gates < circuit.num_gates() / 2

    def test_repr_contains_seed(self, c17_circuit):
        assert "g16" in repr(extract_subcircuit(c17_circuit, "g16"))


class TestExtractionStatistics:
    def test_statistics_fields(self, c17_circuit):
        stats = extraction_statistics(c17_circuit, depth=1)
        assert stats["min_gates"] >= 1
        assert stats["avg_gates"] <= stats["max_gates"]
        assert stats["max_gates"] <= c17_circuit.num_gates()

    def test_bigger_depth_bigger_subcircuits(self, c17_circuit):
        shallow = extraction_statistics(c17_circuit, depth=1)
        deep = extraction_statistics(c17_circuit, depth=3)
        assert deep["avg_gates"] >= shallow["avg_gates"]
