"""Every malformed-netlist path raises with line/column and offending token.

Complements ``test_verilog.py`` / ``test_bench.py`` (which pin the error
*types*): here the :class:`FrontendError` location contract is pinned — the
reported line/column must point at the construct that caused the failure,
and the offending token must be carried when one exists.
"""

import pytest

from repro.netlist.ast import FrontendError
from repro.netlist.bench import BenchParseError, parse_bench
from repro.netlist.verilog import VerilogParseError, parse_verilog


def _verilog_error(text) -> VerilogParseError:
    with pytest.raises(VerilogParseError) as exc_info:
        parse_verilog(text)
    return exc_info.value


def _bench_error(text) -> BenchParseError:
    with pytest.raises(BenchParseError) as exc_info:
        parse_bench(text)
    return exc_info.value


class TestVerilogErrorLocations:
    def test_no_module_points_at_first_token(self):
        err = _verilog_error("wire x;")
        assert (err.line, err.col, err.token) == (1, 1, "wire")
        assert str(err).startswith("line 1, column 1:")

    def test_port_list_error_points_at_bad_token(self):
        err = _verilog_error("module m (input a output y);\nendmodule")
        assert (err.line, err.col, err.token) == (1, 19, "output")
        assert "')'" in err.message

    def test_missing_semicolon_points_at_next_token(self):
        err = _verilog_error(
            "module m (input a, output y);\n  BUF u (.Y(y), .A(a))\nendmodule"
        )
        assert (err.line, err.col, err.token) == (3, 1, "endmodule")

    def test_unterminated_module_reports_eof(self):
        err = _verilog_error("module m (input a, output y);\n  BUF u (.Y(y), .A(a));")
        assert err.token == "<eof>"
        assert "unterminated module 'm'" in err.message

    def test_constant_literal_on_net(self):
        err = _verilog_error("module m (input a, output y);\n  assign y = 1;\nendmodule")
        assert (err.line, err.col, err.token) == (2, 14, "1")

    def test_inout_port_rejected_with_location(self):
        err = _verilog_error("module m (inout a, output y);\nendmodule")
        assert (err.line, err.col, err.token) == (1, 11, "inout")

    def test_duplicate_pin_names_instance_and_pin(self):
        err = _verilog_error(
            "module m (input a, output y);\n  BUF u (.Y(y), .Y(a));\nendmodule"
        )
        assert (err.line, err.token) == (2, "Y")
        assert "connected twice on instance 'u'" in err.message

    def test_bad_parameter_expression(self):
        err = _verilog_error("module m #(parameter N = )(input a, output y);\nendmodule")
        assert err.token == ")"
        assert "index expression" in err.message

    def test_elaboration_errors_carry_instance_location(self):
        # The failing construct is the instance on line 3.
        err = _verilog_error(
            "module m (input a, output y);\n"
            "  wire w;\n"
            "  BUF u (.A(a));\n"
            "endmodule"
        )
        assert err.line == 3
        assert "no output pin" in err.message

    def test_is_a_frontend_error(self):
        assert issubclass(VerilogParseError, FrontendError)


class TestBenchErrorLocations:
    def test_dff_points_at_function_token(self):
        err = _bench_error("INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n")
        assert (err.line, err.col, err.token) == (3, 5, "DFF")
        assert "sequential element" in err.message

    def test_unknown_function_carries_name(self):
        err = _bench_error("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n")
        assert (err.line, err.col, err.token) == (3, 5, "MAJ")

    def test_operand_count_points_at_function(self):
        err = _bench_error("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n")
        assert (err.line, err.col, err.token) == (3, 5, "AND")
        assert "at least two operands" in err.message

    def test_unparsable_line_points_at_line_start(self):
        err = _bench_error("INPUT(a)\nOUTPUT(y)\nthis is garbage\n")
        assert (err.line, err.col, err.token) == (3, 1, "this")

    def test_blank_and_comment_lines_keep_numbering(self):
        err = _bench_error("# header\n\nINPUT(a)\n\n# note\ny = XYZ(a)\n")
        assert err.line == 6

    def test_is_a_frontend_error(self):
        assert issubclass(BenchParseError, FrontendError)
