"""Unit tests for the Gate data model."""

import pytest

from repro.netlist.gate import Gate, make_cell_type, strip_arity


class TestGateConstruction:
    def test_basic_fields(self):
        gate = Gate("g1", "NAND2", ["a", "b"], "y")
        assert gate.name == "g1"
        assert gate.cell_type == "NAND2"
        assert gate.inputs == ["a", "b"]
        assert gate.output == "y"
        assert gate.size_index == 0

    def test_fanin_property(self):
        gate = Gate("g1", "NAND3", ["a", "b", "c"], "y")
        assert gate.fanin == 3

    def test_function_strips_arity(self):
        assert Gate("g", "NAND3", ["a", "b", "c"], "y").function == "NAND"
        assert Gate("g", "INV", ["a"], "y").function == "INV"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Gate("", "INV", ["a"], "y")

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            Gate("g", "INV", ["a"], "")

    def test_no_inputs_rejected(self):
        with pytest.raises(ValueError):
            Gate("g", "INV", [], "y")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Gate("g", "INV", ["a"], "y", size_index=-1)

    def test_inputs_are_copied_to_list(self):
        gate = Gate("g", "NAND2", ("a", "b"), "y")
        assert isinstance(gate.inputs, list)


class TestGateOperations:
    def test_with_size_returns_new_gate(self):
        gate = Gate("g", "NAND2", ["a", "b"], "y", size_index=1)
        bigger = gate.with_size(4)
        assert bigger.size_index == 4
        assert gate.size_index == 1
        assert bigger.name == gate.name
        assert bigger.inputs == gate.inputs

    def test_copy_is_independent(self):
        gate = Gate("g", "NAND2", ["a", "b"], "y")
        dup = gate.copy()
        dup.inputs.append("c")
        assert gate.inputs == ["a", "b"]

    def test_key_is_hashable_identity(self):
        gate = Gate("g", "NAND2", ["a", "b"], "y", 2)
        assert gate.key() == ("g", "NAND2", ("a", "b"), "y", 2)
        assert hash(gate.key())


class TestCellTypeNames:
    def test_strip_arity(self):
        assert strip_arity("NAND4") == "NAND"
        assert strip_arity("XOR2") == "XOR"
        assert strip_arity("INV") == "INV"
        assert strip_arity("AOI21") == "AOI21"
        assert strip_arity("MUX2") == "MUX2"

    def test_make_cell_type_simple(self):
        assert make_cell_type("NAND", 3) == "NAND3"
        assert make_cell_type("nor", 2) == "NOR2"
        assert make_cell_type("INV", 1) == "INV"
        assert make_cell_type("BUF", 1) == "BUF"

    def test_make_cell_type_complex(self):
        assert make_cell_type("AOI21", 3) == "AOI21"
        assert make_cell_type("MUX2", 3) == "MUX2"

    def test_make_cell_type_bad_arity(self):
        with pytest.raises(ValueError):
            make_cell_type("INV", 2)
        with pytest.raises(ValueError):
            make_cell_type("NAND", 1)
        with pytest.raises(ValueError):
            make_cell_type("AOI21", 2)

    def test_make_cell_type_unknown_function(self):
        with pytest.raises(ValueError):
            make_cell_type("FOO", 2)
