"""Unit tests for the gate-level logic simulator."""

import itertools

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.simulate import (
    SimulationError,
    bits_to_int,
    drive_bus,
    int_to_bits,
    read_bus,
    simulate,
    simulate_outputs,
)


def _single_gate(cell_type, num_inputs):
    circuit = Circuit("t", primary_inputs=[f"i{k}" for k in range(num_inputs)], primary_outputs=["y"])
    circuit.add("g", cell_type, [f"i{k}" for k in range(num_inputs)], "y")
    return circuit


class TestPrimitives:
    @pytest.mark.parametrize(
        "cell,expected",
        [
            ("AND2", lambda a, b: a and b),
            ("NAND2", lambda a, b: not (a and b)),
            ("OR2", lambda a, b: a or b),
            ("NOR2", lambda a, b: not (a or b)),
            ("XOR2", lambda a, b: a != b),
            ("XNOR2", lambda a, b: a == b),
        ],
    )
    def test_two_input_gates(self, cell, expected):
        circuit = _single_gate(cell, 2)
        for a, b in itertools.product([False, True], repeat=2):
            out = simulate_outputs(circuit, {"i0": a, "i1": b})["y"]
            assert out == expected(a, b), f"{cell}({a},{b})"

    def test_inv_and_buf(self):
        inv = _single_gate("INV", 1)
        buf = _single_gate("BUF", 1)
        for v in (False, True):
            assert simulate_outputs(inv, {"i0": v})["y"] == (not v)
            assert simulate_outputs(buf, {"i0": v})["y"] == v

    def test_wide_gates(self):
        circuit = _single_gate("NAND4", 4)
        assert simulate_outputs(circuit, {f"i{k}": True for k in range(4)})["y"] is False
        values = {f"i{k}": True for k in range(4)}
        values["i2"] = False
        assert simulate_outputs(circuit, values)["y"] is True

    def test_complex_cells(self):
        aoi = _single_gate("AOI21", 3)
        # Y = not((A and B) or C)
        assert simulate_outputs(aoi, {"i0": True, "i1": True, "i2": False})["y"] is False
        assert simulate_outputs(aoi, {"i0": False, "i1": True, "i2": False})["y"] is True
        mux = _single_gate("MUX2", 3)
        # Y = sel ? B : A
        assert simulate_outputs(mux, {"i0": True, "i1": False, "i2": False})["y"] is True
        assert simulate_outputs(mux, {"i0": True, "i1": False, "i2": True})["y"] is False

    def test_missing_input_raises(self):
        circuit = _single_gate("INV", 1)
        with pytest.raises(SimulationError):
            simulate(circuit, {})

    def test_unknown_cell_raises(self):
        circuit = Circuit("t", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "MYSTERY", ["a"], "y")
        with pytest.raises(SimulationError):
            simulate(circuit, {"a": True})


class TestC17Truthfulness:
    def test_c17_known_vector(self, c17_circuit):
        # All inputs 0: first-level NANDs (which see a 0 input) output 1, so
        # the output NANDs see two 1s and output 0.
        values = simulate(c17_circuit, {n: False for n in c17_circuit.primary_inputs})
        assert values["N10"] is True
        assert values["N11"] is True
        assert values["N16"] is True
        assert values["N22"] is False
        assert values["N23"] is False

    def test_c17_exhaustive_consistency(self, c17_circuit):
        # N22 = NAND(N10, N16); check structural consistency over all vectors.
        for bits in itertools.product([False, True], repeat=5):
            inputs = dict(zip(["N1", "N2", "N3", "N6", "N7"], bits))
            values = simulate(c17_circuit, inputs)
            assert values["N22"] == (not (values["N10"] and values["N16"]))
            assert values["N23"] == (not (values["N16"] and values["N19"]))


class TestBusHelpers:
    def test_int_bits_roundtrip(self):
        for value in (0, 1, 5, 127, 200):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_drive_and_read_bus(self):
        assignment = drive_bus("a", 11, 4)
        assert assignment == {"a0": True, "a1": True, "a2": False, "a3": True}
        assert read_bus(assignment, "a", 4) == 11
