"""Tests for hierarchy elaboration (``repro.netlist.elaborate``).

Most cases build :class:`RawNetlist` structures through the Verilog parser
(the densest way to write them); a few build the IR directly to pin the
pure-API behaviour.
"""

import pytest

from repro.netlist.ast import (
    FrontendError,
    RawInstance,
    RawModule,
    RawNetlist,
    Select,
)
from repro.netlist.elaborate import flatten_netlist
from repro.netlist.verilog import parse_verilog, parse_verilog_raw

HIER = """
module half (input a, input b, output s, output c);
  XOR2 ux (.Y(s), .A(a), .B(b));
  AND2 uc (.Y(c), .A(a), .B(b));
endmodule

module top (input x, input y, output sum, output carry);
  half u0 (.a(x), .b(y), .s(sum), .c(carry));
endmodule
"""


class TestHierarchy:
    def test_instance_paths_prefix_gates_and_nets(self):
        circuit = parse_verilog(HIER, top="top")
        assert sorted(circuit.gates) == ["u0.uc", "u0.ux"]
        assert circuit.gate("u0.ux").inputs == ["x", "y"]
        assert circuit.gate("u0.ux").output == "sum"

    def test_ports_bind_without_extra_gates(self):
        circuit = parse_verilog(HIER, top="top")
        # Connecting through a port costs nothing: 2 gates total.
        assert circuit.num_gates() == 2

    def test_nested_hierarchy(self):
        text = HIER + """
module wrap (input p, input q, output o1, output o2);
  top inner (.x(p), .y(q), .sum(o1), .carry(o2));
endmodule
"""
        circuit = parse_verilog(text, top="wrap")
        assert sorted(circuit.gates) == ["inner.u0.uc", "inner.u0.ux"]

    def test_top_inferred_as_uninstantiated_root(self):
        circuit = parse_verilog(HIER)  # 'top' instantiates 'half'
        assert circuit.name == "top"

    def test_recursion_detected(self):
        text = """
module a (input i, output o);
  a u (.i(i), .o(o));
endmodule
"""
        with pytest.raises(FrontendError, match="recursive"):
            parse_verilog(text)


class TestParameters:
    TEXT = """
module rotate #(parameter N = 2) (input [N-1:0] d, output [N-1:0] q);
  assign q = {d[0], d[N-1:1]};
endmodule

module top (input [3:0] d, output [3:0] q);
  rotate #(.N(4)) u (.d(d), .q(q));
endmodule
"""

    def test_override_widens_bus(self):
        design = flatten_netlist(parse_verilog_raw(self.TEXT), top="top")
        assert design.primary_inputs == ["d[3]", "d[2]", "d[1]", "d[0]"]
        # q = {d[0], d[3:1]} — four alias pairs, MSB first.
        assert design.aliases == [
            ("q[3]", "d[0]"),
            ("q[2]", "d[3]"),
            ("q[1]", "d[2]"),
            ("q[0]", "d[1]"),
        ]

    def test_unknown_override_rejected(self):
        text = """
module leaf #(parameter N = 1) (input a, output y);
  BUF u (.Y(y), .A(a));
endmodule
module top (input a, output y);
  leaf #(.M(2)) u (.a(a), .y(y));
endmodule
"""
        with pytest.raises(FrontendError, match="unknown parameter 'M'"):
            parse_verilog(text, top="top")

    def test_default_may_reference_earlier_parameter(self):
        module = RawModule(name="m", params={"N": 3, "W": ("+", "N", 1)})
        module.add_port("a", "input", msb=("-", "W", 1), lsb=0)
        module.add_port("y", "output")
        module.add_instance(
            RawInstance(
                name="u", target="AND4",
                positional=["y", Select("a", 3), Select("a", 2),
                            Select("a", 1), Select("a", 0)],
            )
        )
        design = flatten_netlist(RawNetlist(modules={"m": module}, top="m"))
        assert design.primary_inputs == ["a[3]", "a[2]", "a[1]", "a[0]"]
        assert design.gates[0].inputs == ["a[3]", "a[2]", "a[1]", "a[0]"]


class TestPortBinding:
    def test_width_mismatch_rejected(self):
        text = """
module leaf (input [1:0] a, output y);
  AND2 u (.Y(y), .A(a[1]), .B(a[0]));
endmodule
module top (input [2:0] a, output y);
  leaf u (.a(a), .y(y));
endmodule
"""
        with pytest.raises(FrontendError,
                           match="2 bit\\(s\\) wide but is connected to 3"):
            parse_verilog(text, top="top")

    def test_unknown_port_rejected(self):
        text = """
module leaf (input a, output y);
  BUF u (.Y(y), .A(a));
endmodule
module top (input a, output y);
  leaf u (.a(a), .b(a), .y(y));
endmodule
"""
        with pytest.raises(FrontendError, match="unknown port 'b'"):
            parse_verilog(text, top="top")

    def test_too_many_positional_rejected(self):
        text = """
module leaf (input a, output y);
  BUF u (.Y(y), .A(a));
endmodule
module top (input a, output y);
  leaf u (a, y, a);
endmodule
"""
        with pytest.raises(FrontendError, match="has 3 connections"):
            parse_verilog(text, top="top")

    def test_unconnected_port_gets_fresh_nets(self):
        text = """
module leaf (input a, input b, output y);
  AND2 u (.Y(y), .A(a), .B(b));
endmodule
module top (input a, output y);
  leaf u0 (.a(a), .y(y));
endmodule
"""
        design = flatten_netlist(parse_verilog_raw(text), top="top")
        # Port b is unconnected: the gate reads a fresh per-instance net.
        assert design.gates[0].inputs == ["a", "u0.b"]


class TestSelectsAndConcats:
    def test_bit_select_respects_declared_range(self):
        text = """
module top (input [4:1] a, output y);
  AND2 u (.Y(y), .A(a[4]), .B(a[1]));
endmodule
"""
        circuit = parse_verilog(text)
        assert circuit.gate("u").inputs == ["a[4]", "a[1]"]

    def test_ascending_range(self):
        text = """
module top (input [0:2] a, output y);
  AND3 u (.Y(y), .A(a[0]), .B(a[1]), .C(a[2]))
  ;
endmodule
"""
        circuit = parse_verilog(text)
        assert circuit.primary_inputs == ["a[0]", "a[1]", "a[2]"]

    def test_out_of_range_index_rejected(self):
        text = """
module top (input [1:0] a, output y);
  BUF u (.Y(y), .A(a[5]));
endmodule
"""
        with pytest.raises(FrontendError, match="out of range"):
            parse_verilog(text)

    def test_bit_select_on_scalar_rejected(self):
        text = """
module top (input a, output y);
  wire w;
  BUF u (.Y(y), .A(w[0]));
endmodule
"""
        with pytest.raises(FrontendError, match="bit-select on scalar"):
            parse_verilog(text)

    def test_part_select_on_undeclared_rejected(self):
        text = """
module top (input a, output [1:0] y);
  assign y = ghost[1:0];
endmodule
"""
        with pytest.raises(FrontendError, match="part-select on undeclared"):
            parse_verilog(text)

    def test_assign_width_mismatch_rejected(self):
        text = """
module top (input [2:0] a, output [1:0] y);
  assign y = a;
endmodule
"""
        with pytest.raises(FrontendError, match="width mismatch"):
            parse_verilog(text)

    def test_concat_orders_msb_first(self):
        text = """
module top (input [1:0] a, input b, output [2:0] y);
  assign y = {a, b};
endmodule
"""
        design = flatten_netlist(parse_verilog_raw(text))
        assert design.aliases == [
            ("y[2]", "a[1]"),
            ("y[1]", "a[0]"),
            ("y[0]", "b"),
        ]


class TestLeafConventions:
    def test_named_pins_sorted_as_inputs(self):
        text = """
module top (input a, input b, input c, output y);
  AND3 u (.C(c), .Y(y), .A(a), .B(b));
endmodule
"""
        circuit = parse_verilog(text)
        assert circuit.gate("u").inputs == ["a", "b", "c"]

    def test_missing_output_pin_rejected(self):
        text = """
module top (input a, output y);
  BUF u (.A(a));
endmodule
"""
        with pytest.raises(FrontendError, match="no output pin"):
            parse_verilog(text)

    def test_positional_output_first(self):
        text = """
module top (input a, input b, output y);
  NAND2 u (y, a, b);
endmodule
"""
        circuit = parse_verilog(text)
        gate = circuit.gate("u")
        assert gate.output == "y"
        assert gate.inputs == ["a", "b"]

    def test_wide_pin_on_leaf_rejected(self):
        text = """
module top (input [1:0] a, output y);
  BUF u (.Y(y), .A(a));
endmodule
"""
        with pytest.raises(FrontendError, match="must be one bit wide"):
            parse_verilog(text)
