"""Parse/emit round-trip coverage for the netlist serialisers.

Every registry circuit is pushed through ``write -> parse -> write ->
parse`` for both the structural-Verilog and the ``.bench`` formats.  The
two parsed circuits must be structurally identical (the serialisation is a
fixed point after one round trip), and the first parse must preserve the
original circuit's connectivity.
"""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.verilog import parse_verilog, write_verilog

ALL_CIRCUITS = ["c17", *BENCHMARK_NAMES]


def _structure(circuit):
    """Hashable structural fingerprint: ports plus every gate's key."""
    return (
        circuit.name,
        tuple(circuit.primary_inputs),
        tuple(circuit.primary_outputs),
        tuple(sorted(g.key() for g in circuit.gates.values())),
    )


def _connectivity(circuit):
    """Name-independent fingerprint: what drives each net, and the ports."""
    return (
        tuple(circuit.primary_inputs),
        tuple(circuit.primary_outputs),
        tuple(
            sorted(
                (g.output, g.function, tuple(g.inputs))
                for g in circuit.gates.values()
            )
        ),
    )


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_verilog_roundtrip(name):
    original = build_benchmark(name)
    first = parse_verilog(write_verilog(original))
    second = parse_verilog(write_verilog(first))
    assert _structure(first) == _structure(second)
    # Verilog preserves instance names, cell types and pin order (sizes are
    # not serialised, so compare the as-parsed circuits against the original
    # with sizes zeroed).
    zeroed = original.copy()
    for gate_name in zeroed.gates:
        zeroed.set_size(gate_name, 0)
    assert _structure(first) == _structure(zeroed)


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_bench_roundtrip(name):
    original = build_benchmark(name)
    first = parse_bench(write_bench(original), name=original.name)
    second = parse_bench(write_bench(first), name=first.name)
    assert _structure(first) == _structure(second)
    # .bench renames instances after their output net, so compare the
    # name-independent connectivity against the original.
    assert _connectivity(first) == _connectivity(original)
