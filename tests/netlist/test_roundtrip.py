"""Parse/emit round-trip coverage for the netlist serialisers.

Every registry circuit is pushed through ``write -> parse -> write ->
parse`` for both the structural-Verilog and the ``.bench`` formats.  The
two parsed circuits must be structurally identical (the serialisation is a
fixed point after one round trip), and the first parse must preserve the
original circuit's connectivity.
"""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark
from repro.netlist.ast import RawNetlist
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.verilog import (
    parse_verilog,
    parse_verilog_raw,
    write_verilog,
    write_verilog_netlist,
)

ALL_CIRCUITS = ["c17", *BENCHMARK_NAMES]


def _structure(circuit):
    """Hashable structural fingerprint: ports plus every gate's key."""
    return (
        circuit.name,
        tuple(circuit.primary_inputs),
        tuple(circuit.primary_outputs),
        tuple(sorted(g.key() for g in circuit.gates.values())),
    )


def _connectivity(circuit):
    """Name-independent fingerprint: what drives each net, and the ports."""
    return (
        tuple(circuit.primary_inputs),
        tuple(circuit.primary_outputs),
        tuple(
            sorted(
                (g.output, g.function, tuple(g.inputs))
                for g in circuit.gates.values()
            )
        ),
    )


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_verilog_roundtrip(name):
    original = build_benchmark(name)
    first = parse_verilog(write_verilog(original))
    second = parse_verilog(write_verilog(first))
    assert _structure(first) == _structure(second)
    # Verilog preserves instance names, cell types and pin order (sizes are
    # not serialised, so compare the as-parsed circuits against the original
    # with sizes zeroed).
    zeroed = original.copy()
    for gate_name in zeroed.gates:
        zeroed.set_size(gate_name, 0)
    assert _structure(first) == _structure(zeroed)


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_bench_roundtrip(name):
    original = build_benchmark(name)
    first = parse_bench(write_bench(original), name=original.name)
    second = parse_bench(write_bench(first), name=first.name)
    assert _structure(first) == _structure(second)
    # .bench renames instances after their output net, so compare the
    # name-independent connectivity against the original.
    assert _connectivity(first) == _connectivity(original)


# ---------------------------------------------------------------------------
# Hierarchical round trips (emit -> parse -> emit, and emit -> flatten)
# ---------------------------------------------------------------------------
HIERARCHICAL = """
module cell #(parameter W = 2) (input [W-1:0] a, output y);
  AND2 u (.Y(y), .A(a[1]), .B(a[0]));
endmodule

module top (input [1:0] p, input [1:0] q, output o);
  wire w0, w1;
  wire [1:0] pair;
  cell c0 (.a(p), .y(w0));
  cell c1 (.a(q), .y(w1));
  assign pair = {w0, w1};
  cell c2 (.a(pair), .y(o));
endmodule
"""


def test_hierarchical_emit_is_fixed_point():
    raw = parse_verilog_raw(HIERARCHICAL)
    first = write_verilog_netlist(raw)
    second = write_verilog_netlist(parse_verilog_raw(first))
    assert first == second


def test_hierarchical_emit_preserves_elaboration():
    original = parse_verilog(HIERARCHICAL, top="top")
    emitted = write_verilog_netlist(parse_verilog_raw(HIERARCHICAL))
    reparsed = parse_verilog(emitted, top="top")
    assert _structure(original) == _structure(reparsed)


def test_flattened_emit_reparses_bit_identically():
    # Flatten the hierarchy, emit the flat circuit, parse it back: the flat
    # Verilog writer and the front end must agree on bit-blasted names.
    flat = parse_verilog(HIERARCHICAL, top="top")
    reparsed = parse_verilog(write_verilog(flat))
    assert _structure(flat) == _structure(reparsed)


def test_from_circuit_roundtrip_matches_flat_writer():
    # Registry circuit -> RawNetlist -> hierarchical writer -> parse must
    # equal the original (single-module netlists stay bit-identical).
    original = build_benchmark("c17")
    emitted = write_verilog_netlist(RawNetlist.from_circuit(original))
    assert _structure(parse_verilog(emitted)) == _structure(original)
