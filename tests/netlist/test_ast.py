"""Tests for the raw front-end IR (``repro.netlist.ast``)."""

import pytest

from repro.circuits.registry import c17
from repro.netlist.ast import (
    Concat,
    FrontendError,
    Id,
    RawInstance,
    RawModule,
    RawNetlist,
    Select,
    SourceLoc,
    bus_bits,
    eval_index,
    expand_range,
    format_expr,
)
from repro.netlist.elaborate import elaborate


class TestFrontendError:
    def test_plain_message(self):
        err = FrontendError("boom")
        assert str(err) == "boom"
        assert err.line is None and err.col is None

    def test_location_formatting(self):
        err = FrontendError("bad token", loc=SourceLoc(line=3, col=7))
        assert str(err) == "line 3, column 7: bad token"
        assert err.line == 3 and err.col == 7

    def test_token_formatting(self):
        err = FrontendError("unexpected", loc=SourceLoc(4, 1), token="endmodule")
        assert str(err) == "line 4, column 1: unexpected (at 'endmodule')"
        assert err.message == "unexpected"


class TestEvalIndex:
    def test_int_passthrough(self):
        assert eval_index(5, {}, None) == 5

    def test_parameter_lookup(self):
        assert eval_index("N", {"N": 8}, None) == 8

    def test_arithmetic_tree(self):
        # (N - 1) * 2 as a nested tuple expression
        expr = ("*", ("-", "N", 1), 2)
        assert eval_index(expr, {"N": 5}, None) == 8

    def test_unary_negation(self):
        assert eval_index(("neg", "N"), {"N": 3}, None) == -3

    def test_unknown_parameter(self):
        with pytest.raises(FrontendError, match="unknown parameter"):
            eval_index("M", {"N": 8}, SourceLoc(2, 4))

    def test_division_by_zero(self):
        with pytest.raises(FrontendError, match="division by zero"):
            eval_index(("/", 4, ("-", "N", "N")), {"N": 1}, None)


class TestRanges:
    def test_expand_range_descending(self):
        assert expand_range(3, 0) == [3, 2, 1, 0]

    def test_expand_range_ascending(self):
        assert expand_range(0, 2) == [0, 1, 2]

    def test_bus_bits_msb_first(self):
        assert bus_bits("a", 2, 0) == ["a[2]", "a[1]", "a[0]"]


class TestFormatExpr:
    def test_id(self):
        assert format_expr(Id("clk")) == "clk"

    def test_bit_select(self):
        assert format_expr(Select("a", 3)) == "a[3]"

    def test_part_select(self):
        assert format_expr(Select("a", 3, 1)) == "a[3:1]"

    def test_concat(self):
        expr = Concat((Id("x"), Select("y", 0)))
        assert format_expr(expr) == "{x, y[0]}"


class TestRawModule:
    def test_duplicate_port_rejected(self):
        module = RawModule(name="m")
        module.add_port("a", "input")
        with pytest.raises(FrontendError, match="declared twice"):
            module.add_port("a", "output")

    def test_port_direction_filters(self):
        module = RawModule(name="m")
        module.add_port("a", "input")
        module.add_port("y", "output")
        assert [p.name for p in module.input_ports()] == ["a"]
        assert [p.name for p in module.output_ports()] == ["y"]


class TestRawNetlist:
    def _one_module(self, name="m"):
        module = RawModule(name=name)
        module.add_port("a", "input")
        module.add_port("y", "output")
        module.add_instance(
            RawInstance(name="u0", target="BUF", positional=["y", "a"])
        )
        return module

    def test_duplicate_module_rejected(self):
        netlist = RawNetlist()
        netlist.add_module(self._one_module())
        with pytest.raises(FrontendError, match="defined twice"):
            netlist.add_module(self._one_module())

    def test_top_module_unique_uninstantiated(self):
        netlist = RawNetlist()
        netlist.add_module(self._one_module("alone"))
        assert netlist.top_module().name == "alone"

    def test_top_module_explicit_wins(self):
        netlist = RawNetlist()
        netlist.add_module(self._one_module("a"))
        netlist.add_module(self._one_module("b"))
        assert netlist.top_module("b").name == "b"

    def test_top_module_ambiguous(self):
        netlist = RawNetlist()
        netlist.add_module(self._one_module("a"))
        netlist.add_module(self._one_module("b"))
        with pytest.raises(FrontendError, match="cannot infer the top module"):
            netlist.top_module()

    def test_top_module_unknown(self):
        netlist = RawNetlist()
        netlist.add_module(self._one_module("a"))
        with pytest.raises(FrontendError, match="no module named"):
            netlist.top_module("zzz")


class TestFromCircuit:
    def test_roundtrip_preserves_structure(self):
        original = c17()
        rebuilt = elaborate(RawNetlist.from_circuit(original))
        assert rebuilt.primary_inputs == original.primary_inputs
        assert rebuilt.primary_outputs == original.primary_outputs
        assert sorted(rebuilt.gates) == sorted(original.gates)
        for name, gate in original.gates.items():
            twin = rebuilt.gate(name)
            assert twin.cell_type == gate.cell_type
            assert twin.inputs == gate.inputs
            assert twin.output == gate.output

    def test_sizes_survive(self):
        original = c17()
        original.set_size("g10", 3)
        rebuilt = elaborate(RawNetlist.from_circuit(original))
        assert rebuilt.gate("g10").size_index == 3
