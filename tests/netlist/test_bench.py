"""Unit tests for the ISCAS-85 .bench reader/writer."""

import pytest

from repro.circuits.registry import c17
from repro.netlist.bench import BenchParseError, parse_bench, parse_bench_file, write_bench

C17_BENCH = """
# c17 benchmark
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
"""


class TestParseBench:
    def test_parse_c17(self):
        circuit = parse_bench(C17_BENCH, name="c17")
        assert circuit.num_gates() == 6
        assert circuit.primary_inputs == ["N1", "N2", "N3", "N6", "N7"]
        assert circuit.primary_outputs == ["N22", "N23"]
        assert circuit.gate("g_N22").cell_type == "NAND2"

    def test_parse_not_and_buf(self):
        text = "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\ny = BUFF(n1)\n"
        circuit = parse_bench(text)
        assert circuit.gate("g_n1").cell_type == "INV"
        assert circuit.gate("g_y").cell_type == "BUF"

    def test_parse_wide_gate(self):
        text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AND(a, b, c, d)\n"
        circuit = parse_bench(text)
        assert circuit.gate("g_y").cell_type == "AND4"

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)  # trailing comment\n"
        assert parse_bench(text).num_gates() == 1

    def test_xor_xnor(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = XOR(a, b)\nz = XNOR(a, b)\n"
        circuit = parse_bench(text)
        assert circuit.gate("g_y").cell_type == "XOR2"
        assert circuit.gate("g_z").cell_type == "XNOR2"

    def test_dff_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_unknown_function_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n")

    def test_bad_line_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("this is not bench\n")

    def test_wrong_operand_count(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n")
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NAND(a)\n")


class TestWriteBench:
    def test_roundtrip_c17(self):
        original = parse_bench(C17_BENCH, name="c17")
        text = write_bench(original)
        again = parse_bench(text, name="c17")
        assert again.num_gates() == original.num_gates()
        assert again.primary_inputs == original.primary_inputs
        assert again.primary_outputs == original.primary_outputs
        assert {g.output for g in again.gates.values()} == {
            g.output for g in original.gates.values()
        }

    def test_roundtrip_registry_c17(self):
        circuit = c17()
        text = write_bench(circuit)
        again = parse_bench(text)
        assert again.num_gates() == 6

    def test_write_unsupported_cell_raises(self):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("m", primary_inputs=["a", "b", "s"], primary_outputs=["y"])
        circuit.add("g", "MUX2", ["a", "b", "s"], "y")
        with pytest.raises(BenchParseError):
            write_bench(circuit)


class TestParseFile:
    def test_parse_bench_file(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17_BENCH)
        circuit = parse_bench_file(path)
        assert circuit.name == "c17"
        assert circuit.num_gates() == 6
