"""Unit tests for the Circuit DAG."""

import pytest

from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.gate import Gate


@pytest.fixture
def simple():
    """a, b -> g1(NAND) -> n1 -> g2(INV) -> out ; n1 also feeds g3(INV) -> out2."""
    circuit = Circuit("simple", primary_inputs=["a", "b"], primary_outputs=["out", "out2"])
    circuit.add("g1", "NAND2", ["a", "b"], "n1")
    circuit.add("g2", "INV", ["n1"], "out")
    circuit.add("g3", "INV", ["n1"], "out2")
    return circuit


class TestConstruction:
    def test_add_and_query_gates(self, simple):
        assert simple.num_gates() == 3
        assert simple.gate("g1").cell_type == "NAND2"
        assert simple.has_gate("g2")
        assert not simple.has_gate("nope")

    def test_duplicate_gate_name_rejected(self, simple):
        with pytest.raises(CircuitError):
            simple.add("g1", "INV", ["a"], "x")

    def test_multiple_drivers_rejected(self, simple):
        with pytest.raises(CircuitError):
            simple.add("g4", "INV", ["a"], "n1")

    def test_driving_primary_input_rejected(self, simple):
        with pytest.raises(CircuitError):
            simple.add("g4", "INV", ["n1"], "a")

    def test_duplicate_primary_input_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("c", primary_inputs=["a", "a"])

    def test_unknown_gate_raises(self, simple):
        with pytest.raises(CircuitError):
            simple.gate("missing")

    def test_add_primary_io_after_construction(self):
        circuit = Circuit("c")
        circuit.add_primary_input("a")
        circuit.add("g", "INV", ["a"], "y")
        circuit.add_primary_output("y")
        assert circuit.primary_inputs == ["a"]
        assert circuit.primary_outputs == ["y"]

    def test_remove_gate(self, simple):
        removed = simple.remove_gate("g3")
        assert removed.name == "g3"
        assert not simple.has_gate("g3")
        assert simple.loads_of("n1") == [simple.gate("g2")]

    def test_remove_unknown_gate(self, simple):
        with pytest.raises(CircuitError):
            simple.remove_gate("nope")


class TestConnectivity:
    def test_driver_of(self, simple):
        assert simple.driver_of("n1").name == "g1"
        assert simple.driver_of("a") is None

    def test_loads_of(self, simple):
        loads = {g.name for g in simple.loads_of("n1")}
        assert loads == {"g2", "g3"}
        assert simple.loads_of("out") == []

    def test_fanin_fanout_gates(self, simple):
        assert [g.name for g in simple.fanout_gates("g1")] == ["g2", "g3"]
        assert [g.name for g in simple.fanin_gates("g2")] == ["g1"]
        assert simple.fanin_gates("g1") == []

    def test_nets(self, simple):
        assert set(simple.nets()) == {"a", "b", "n1", "out", "out2"}

    def test_is_primary_io(self, simple):
        assert simple.is_primary_input("a")
        assert not simple.is_primary_input("n1")
        assert simple.is_primary_output("out")
        assert not simple.is_primary_output("n1")


class TestOrdering:
    def test_topological_order(self, simple):
        order = simple.topological_order()
        assert order.index("g1") < order.index("g2")
        assert order.index("g1") < order.index("g3")
        assert len(order) == 3

    def test_reverse_topological_order(self, simple):
        assert simple.reverse_topological_order() == list(reversed(simple.topological_order()))

    def test_cycle_detection(self):
        circuit = Circuit("cyclic", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "n2"], "n1")
        circuit.add("g2", "INV", ["n1"], "n2")
        circuit.add("g3", "INV", ["n1"], "y")
        with pytest.raises(CircuitError):
            circuit.topological_order()

    def test_levels(self, simple):
        levels = simple.levels()
        assert levels["g1"] == 1
        assert levels["g2"] == 2
        assert levels["g3"] == 2

    def test_logic_depth(self, simple, c17_circuit):
        assert simple.logic_depth() == 2
        assert c17_circuit.logic_depth() == 3

    def test_iteration_is_topological(self, c17_circuit):
        names = [g.name for g in c17_circuit]
        assert names == c17_circuit.topological_order()

    def test_cache_invalidation_on_add(self, simple):
        simple.topological_order()
        simple.add("g4", "INV", ["out"], "out3")
        assert "g4" in simple.topological_order()


class TestCones:
    def test_transitive_fanin_unbounded(self, c17_circuit):
        cone = c17_circuit.transitive_fanin("g22")
        assert cone == {"g10", "g16", "g11"}

    def test_transitive_fanin_depth_limited(self, c17_circuit):
        assert c17_circuit.transitive_fanin("g22", depth=1) == {"g10", "g16"}

    def test_transitive_fanout(self, c17_circuit):
        assert c17_circuit.transitive_fanout("g11") == {"g16", "g19", "g22", "g23"}
        assert c17_circuit.transitive_fanout("g11", depth=1) == {"g16", "g19"}

    def test_output_cone(self, c17_circuit):
        cone = c17_circuit.output_cone("N22")
        assert cone == {"g22", "g10", "g16", "g11"}
        assert c17_circuit.output_cone("N1") == set()

    def test_unknown_seed_raises(self, c17_circuit):
        with pytest.raises(CircuitError):
            c17_circuit.transitive_fanin("nope")


class TestSizesAndCopy:
    def test_set_size_and_snapshot(self, simple):
        simple.set_size("g1", 3)
        sizes = simple.sizes()
        assert sizes["g1"] == 3
        simple.set_size("g1", 0)
        simple.apply_sizes(sizes)
        assert simple.gate("g1").size_index == 3

    def test_replace_gate_same_output(self, simple):
        replacement = Gate("g2", "INV", ["n1"], "out", size_index=5)
        simple.replace_gate(replacement)
        assert simple.gate("g2").size_index == 5

    def test_replace_gate_different_output_rejected(self, simple):
        with pytest.raises(CircuitError):
            simple.replace_gate(Gate("g2", "INV", ["n1"], "elsewhere"))

    def test_replace_gate_new_inputs_updates_loads(self, simple):
        simple.replace_gate(Gate("g3", "INV", ["out"], "out2"))
        assert {g.name for g in simple.loads_of("n1")} == {"g2"}
        assert {g.name for g in simple.loads_of("out")} == {"g3"}

    def test_copy_is_deep(self, simple):
        dup = simple.copy()
        dup.set_size("g1", 4)
        assert simple.gate("g1").size_index == 0
        assert dup.num_gates() == simple.num_gates()

    def test_stats(self, simple):
        stats = simple.stats()
        assert stats.num_gates == 3
        assert stats.num_primary_inputs == 2
        assert stats.num_primary_outputs == 2
        assert stats.logic_depth == 2
        assert stats.max_fanout == 2
        assert stats.avg_fanin == pytest.approx(4.0 / 3.0)

    def test_len_and_repr(self, simple):
        assert len(simple) == 3
        assert "simple" in repr(simple)
