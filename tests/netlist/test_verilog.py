"""Unit tests for the structural-Verilog reader/writer."""

import pytest

from repro.circuits.registry import c17
from repro.netlist.verilog import VerilogParseError, parse_verilog, write_verilog

SIMPLE_VERILOG = """
// a tiny mapped netlist
module top (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2 u1 (.Y(n1), .A(a), .B(b));
  INV u2 (.Y(y), .A(n1));
endmodule
"""


class TestParseVerilog:
    def test_parse_simple(self):
        circuit = parse_verilog(SIMPLE_VERILOG)
        assert circuit.name == "top"
        assert circuit.primary_inputs == ["a", "b"]
        assert circuit.primary_outputs == ["y"]
        assert circuit.num_gates() == 2
        assert circuit.gate("u1").cell_type == "NAND2"
        assert circuit.gate("u1").inputs == ["a", "b"]

    def test_positional_connections(self):
        text = (
            "module top (a, y);\n  input a;\n  output y;\n"
            "  INV u1 (y, a);\nendmodule\n"
        )
        circuit = parse_verilog(text)
        assert circuit.gate("u1").output == "y"
        assert circuit.gate("u1").inputs == ["a"]

    def test_block_comments_stripped(self):
        text = "/* header\n spans lines */\n" + SIMPLE_VERILOG
        assert parse_verilog(text).num_gates() == 2

    def test_missing_module_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("input a; output y;")

    def test_missing_output_pin_rejected(self):
        text = (
            "module top (a, y);\n  input a;\n  output y;\n"
            "  INV u1 (.A(a));\nendmodule\n"
        )
        with pytest.raises(VerilogParseError):
            parse_verilog(text)


class TestWriteVerilog:
    def test_roundtrip_c17(self):
        circuit = c17()
        text = write_verilog(circuit)
        again = parse_verilog(text)
        assert again.num_gates() == circuit.num_gates()
        assert again.primary_inputs == circuit.primary_inputs
        assert again.primary_outputs == circuit.primary_outputs
        # Connectivity is preserved gate by gate.
        for name, gate in circuit.gates.items():
            assert again.gate(name).inputs == gate.inputs
            assert again.gate(name).output == gate.output

    def test_output_contains_wire_declarations(self):
        text = write_verilog(c17())
        assert "wire" in text
        assert "module c17" in text
        assert text.strip().endswith("endmodule")
