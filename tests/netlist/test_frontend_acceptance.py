"""Acceptance test for the unified netlist front end.

A hierarchical Verilog design (module instantiation, parameterized widths,
buses, ``assign`` aliases, an aliased primary output) must lower to a
circuit *bit-identical* to its hand-flattened equivalent: same nets, same
gates, and — run through both timing engines — identical DSTA arrival
times and FASSTA moments to 1e-9.
"""

import pytest

from repro.core.fassta import FASSTA
from repro.netlist.verilog import parse_verilog
from repro.sta.dsta import DeterministicSTA

#: Two instantiations of a parameterized 2-bit stage, connected through
#: buses, with an internal alias (t = d) and an aliased primary output (z).
HIERARCHICAL = """
module stage #(parameter W = 2) (input [W-1:0] d, input en,
                                 output [W-1:0] q);
  wire [W-1:0] t;
  assign t = d;
  AND2 a0 (.Y(q[0]), .A(t[0]), .B(en));
  AND2 a1 (.Y(q[1]), .A(t[1]), .B(en));
endmodule

module top (input [1:0] x, input e, output [1:0] y, output z);
  wire [1:0] m;
  stage s0 (.d(x), .en(e), .q(m));
  stage s1 (.d(m), .en(e), .q(y));
  assign z = y[0];
endmodule
"""

#: The same design flattened by hand: instance-path gate names, bit-blasted
#: nets, aliases resolved, and the front end's PO repair buffer written out.
HAND_FLATTENED = """
module top (x[1], x[0], e, y[1], y[0], z);
  input x[1], x[0], e;
  output y[1], y[0], z;
  wire m[1], m[0];
  AND2 s0.a0 (.Y(m[0]), .A(x[0]), .B(e));
  AND2 s0.a1 (.Y(m[1]), .A(x[1]), .B(e));
  AND2 s1.a0 (.Y(y[0]), .A(m[0]), .B(e));
  AND2 s1.a1 (.Y(y[1]), .A(m[1]), .B(e));
  BUF __fe_buf_z (.Y(z), .A(y[0]));
endmodule
"""


@pytest.fixture(scope="module")
def hierarchical():
    return parse_verilog(HIERARCHICAL, top="top")


@pytest.fixture(scope="module")
def flattened():
    return parse_verilog(HAND_FLATTENED)


class TestBitIdentity:
    def test_ports_identical(self, hierarchical, flattened):
        assert hierarchical.primary_inputs == flattened.primary_inputs
        assert hierarchical.primary_outputs == flattened.primary_outputs

    def test_gates_identical(self, hierarchical, flattened):
        assert sorted(hierarchical.gates) == sorted(flattened.gates)
        for name, gate in hierarchical.gates.items():
            twin = flattened.gate(name)
            assert gate.cell_type == twin.cell_type
            assert gate.inputs == twin.inputs
            assert gate.output == twin.output

    def test_dsta_arrivals_match(self, hierarchical, flattened, delay_model):
        sta = DeterministicSTA(delay_model, vectorized=True)
        a = sta.analyze(hierarchical)
        b = sta.analyze(flattened)
        assert a.arrival.keys() == b.arrival.keys()
        for net in a.arrival:
            assert a.arrival[net] == pytest.approx(b.arrival[net], abs=1e-9)
        assert a.worst_output == b.worst_output

    def test_fassta_moments_match(self, hierarchical, flattened,
                                  delay_model, variation_model):
        engine = FASSTA(delay_model, variation_model, vectorized=True)
        a = engine.analyze(hierarchical)
        b = engine.analyze(flattened)
        for po in hierarchical.primary_outputs:
            rv_a, rv_b = a.arrivals[po], b.arrivals[po]
            assert rv_a.mean == pytest.approx(rv_b.mean, abs=1e-9)
            assert rv_a.sigma == pytest.approx(rv_b.sigma, abs=1e-9)


class TestFrontendWork:
    def test_alias_merging_happened(self, hierarchical):
        # The stage's internal t nets were canonicalized away entirely.
        nets = {g.output for g in hierarchical.gates.values()}
        for gate in hierarchical.gates.values():
            nets.update(gate.inputs)
        assert not any(".t[" in net for net in nets)

    def test_po_repair_buffer_present(self, hierarchical):
        gate = hierarchical.gate("__fe_buf_z")
        assert gate.cell_type == "BUF"
        assert gate.inputs == ["y[0]"]
        assert gate.output == "z"
