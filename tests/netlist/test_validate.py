"""Unit tests for structural circuit validation."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.validate import ValidationError, validate_circuit


class TestValidateCircuit:
    def test_valid_circuit_passes(self, c17_circuit, library):
        assert validate_circuit(c17_circuit, library) == []

    def test_undriven_input_detected(self):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "NAND2", ["a", "ghost"], "y")
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("undriven" in p for p in problems)

    def test_undriven_output_detected(self):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y", "z"])
        circuit.add("g", "INV", ["a"], "y")
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("no driver" in p for p in problems)

    def test_unknown_cell_type_detected(self, library):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "WEIRDCELL", ["a"], "y")
        problems = validate_circuit(circuit, library, raise_on_error=False)
        assert any("unknown cell type" in p for p in problems)

    def test_out_of_range_size_detected(self, library):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "INV", ["a"], "y", size_index=99)
        problems = validate_circuit(circuit, library, raise_on_error=False)
        assert any("out of range" in p for p in problems)

    def test_raise_on_error(self):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["missing"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(ValidationError) as excinfo:
            validate_circuit(circuit)
        assert excinfo.value.problems

    def test_generated_benchmarks_are_valid(self, library):
        from repro.circuits.registry import build_benchmark

        for name in ("c17", "alu2", "c432", "c499"):
            circuit = build_benchmark(name)
            assert validate_circuit(circuit, library) == []
