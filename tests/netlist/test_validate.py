"""Unit tests for structural circuit validation."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.validate import ValidationError, validate_circuit


class TestValidateCircuit:
    def test_valid_circuit_passes(self, c17_circuit, library):
        assert validate_circuit(c17_circuit, library) == []

    def test_undriven_input_detected(self):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "NAND2", ["a", "ghost"], "y")
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("undriven" in p for p in problems)

    def test_undriven_output_detected(self):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y", "z"])
        circuit.add("g", "INV", ["a"], "y")
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("no driver" in p for p in problems)

    def test_unknown_cell_type_detected(self, library):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "WEIRDCELL", ["a"], "y")
        problems = validate_circuit(circuit, library, raise_on_error=False)
        assert any("unknown cell type" in p for p in problems)

    def test_out_of_range_size_detected(self, library):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g", "INV", ["a"], "y", size_index=99)
        problems = validate_circuit(circuit, library, raise_on_error=False)
        assert any("out of range" in p for p in problems)

    def test_multi_driver_net_detected(self):
        # Circuit construction rejects duplicate drivers, so rewire a gate's
        # output behind the circuit's back — the mutable-Gate loophole the
        # validator exists to catch.
        circuit = Circuit("bad", primary_inputs=["a", "b"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("g2", "INV", ["b"], "z")
        circuit.gate("g2").output = "y"
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("driven by 2 gates" in p for p in problems)
        assert any("'g1'" in p and "'g2'" in p for p in problems)

    def test_gate_driving_primary_input_detected(self):
        circuit = Circuit("bad", primary_inputs=["a", "b"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "b"], "y")
        circuit.add("g2", "INV", ["a"], "z")
        circuit.gate("g2").output = "b"
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("primary input 'b' is also driven" in p for p in problems)

    def test_three_drivers_reported_once_with_all_names(self):
        circuit = Circuit(
            "bad", primary_inputs=["a"], primary_outputs=["y"]
        )
        circuit.add("g1", "INV", ["a"], "y")
        circuit.add("g2", "INV", ["a"], "n2")
        circuit.add("g3", "INV", ["a"], "n3")
        circuit.gate("g2").output = "y"
        circuit.gate("g3").output = "y"
        problems = validate_circuit(circuit, raise_on_error=False)
        multi = [p for p in problems if "driven by 3 gates" in p]
        assert len(multi) == 1
        assert "['g1', 'g2', 'g3']" in multi[0]

    def test_raise_on_error(self):
        circuit = Circuit("bad", primary_inputs=["a"], primary_outputs=["missing"])
        circuit.add("g", "INV", ["a"], "y")
        with pytest.raises(ValidationError) as excinfo:
            validate_circuit(circuit)
        assert excinfo.value.problems

    def test_generated_benchmarks_are_valid(self, library):
        from repro.circuits.registry import build_benchmark

        for name in ("c17", "alu2", "c432", "c499"):
            circuit = build_benchmark(name)
            assert validate_circuit(circuit, library) == []


class TestCycleDetection:
    """The historical validator missed cycles and self-loops entirely; the
    DRC-backed wrapper catches both (without hanging on levelization)."""

    def test_combinational_cycle_detected(self):
        circuit = Circuit("loop", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "n2"], "n1")
        circuit.add("g2", "INV", ["n1"], "n2")
        circuit.add("g3", "INV", ["n1"], "y")
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("combinational cycle" in p for p in problems)
        assert any("'g1'" in p and "'g2'" in p for p in problems)

    def test_self_loop_detected(self):
        circuit = Circuit("self", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "NAND2", ["a", "n1"], "n1")
        circuit.add("g2", "INV", ["n1"], "y")
        problems = validate_circuit(circuit, raise_on_error=False)
        assert any("reads its own output" in p for p in problems)

    def test_cycle_raises_validation_error_not_hang(self):
        circuit = Circuit("loop", primary_inputs=["a"], primary_outputs=["y"])
        circuit.add("g1", "INV", ["n2"], "n1")
        circuit.add("g2", "INV", ["n1"], "n2")
        circuit.add("g3", "INV", ["a"], "y")
        with pytest.raises(ValidationError):
            validate_circuit(circuit)
