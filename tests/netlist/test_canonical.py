"""Tests for net canonicalization (``repro.netlist.canonical``)."""

import pytest

from repro.netlist.ast import CanonicalizationError, FlatDesign, FlatGate
from repro.netlist.canonical import (
    CONFLICT_SUFFIX,
    REPAIR_PREFIX,
    DisjointSets,
    canonicalize_design,
)
from repro.netlist.validate import validate_circuit


def _design(**kwargs):
    defaults = dict(name="t", primary_inputs=[], primary_outputs=[], gates=[])
    defaults.update(kwargs)
    return FlatDesign(**defaults)


class TestDisjointSets:
    def test_find_is_reflexive(self):
        dsu = DisjointSets()
        assert dsu.find("a") == "a"

    def test_union_chains_collapse(self):
        dsu = DisjointSets()
        dsu.union("a", "b")
        dsu.union("b", "c")
        dsu.union("c", "d")
        assert len({dsu.find(n) for n in "abcd"}) == 1

    def test_classes_only_multi_member(self):
        dsu = DisjointSets()
        dsu.add("lone")
        dsu.union("a", "b")
        classes = dsu.classes()
        assert len(classes) == 1
        assert sorted(classes[0]) == ["a", "b"]


class TestAliasMerging:
    def test_chain_merges_to_driven_net(self):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["o"],
            gates=[
                FlatGate("g0", "INV", ["i"], "n1"),
                FlatGate("g1", "INV", ["n3"], "o"),
            ],
        )
        design.add_alias("n2", "n1")
        design.add_alias("n3", "n2")
        result = canonicalize_design(design)
        assert result.net_map == {"n2": "n1", "n3": "n1"}
        assert result.circuit.gate("g1").inputs == ["n1"]
        assert validate_circuit(result.circuit, raise_on_error=False) == []

    def test_pi_wins_over_wire(self):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["o"],
            gates=[FlatGate("g0", "BUF", ["w"], "o")],
        )
        design.add_alias("w", "i")
        result = canonicalize_design(design)
        assert result.net_map == {"w": "i"}
        assert result.circuit.gate("g0").inputs == ["i"]

    def test_election_ignores_alias_direction(self):
        for lhs, rhs in (("w", "i"), ("i", "w")):
            design = _design(
                primary_inputs=["i"],
                primary_outputs=["o"],
                gates=[FlatGate("g0", "BUF", ["w"], "o")],
            )
            design.add_alias(lhs, rhs)
            assert canonicalize_design(design).net_map == {"w": "i"}

    def test_shorted_pis_warn(self):
        design = _design(
            primary_inputs=["a", "b"],
            primary_outputs=["o"],
            gates=[FlatGate("g0", "BUF", ["b"], "o")],
        )
        design.add_alias("a", "b")
        result = canonicalize_design(design)
        assert result.net_map == {"b": "a"}
        assert result.circuit.gate("g0").inputs == ["a"]
        warnings = [d for d in result.diagnostics if d.severity == "warning"]
        assert len(warnings) == 1 and warnings[0].rule == "FE001"


class TestPoRepair:
    def test_aliased_po_gets_buffer(self):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["y", "z"],
            gates=[FlatGate("g0", "INV", ["i"], "y")],
        )
        design.add_alias("z", "y")
        result = canonicalize_design(design)
        buf = REPAIR_PREFIX + "z"
        assert result.repairs == [buf]
        gate = result.circuit.gate(buf)
        assert gate.cell_type == "BUF"
        assert gate.inputs == ["y"] and gate.output == "z"
        assert validate_circuit(result.circuit, raise_on_error=False) == []

    def test_po_to_po_alias_keeps_both_observable(self):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["p", "q"],
            gates=[FlatGate("g0", "BUF", ["i"], "p")],
        )
        design.add_alias("q", "p")
        circuit = canonicalize_design(design).circuit
        assert circuit.primary_outputs == ["p", "q"]
        assert validate_circuit(circuit, raise_on_error=False) == []

    def test_repaired_po_not_in_net_map(self):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["y", "z"],
            gates=[FlatGate("g0", "INV", ["i"], "y")],
        )
        design.add_alias("z", "y")
        result = canonicalize_design(design)
        # z is driven by the repair buffer, not merged away.
        assert "z" not in result.net_map


class TestDriverConflicts:
    def _parallel(self, second_type="INV"):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["o"],
            gates=[
                FlatGate("g0", "INV", ["i"], "n"),
                FlatGate("g1", second_type, ["i"], "m"),
                FlatGate("g2", "BUF", ["n"], "o"),
            ],
        )
        design.add_alias("m", "n")
        return design

    def test_identical_parallel_drivers_deduplicated(self):
        result = canonicalize_design(self._parallel())
        assert result.deduplicated == ["g1"]
        assert not result.circuit.has_gate("g1")
        assert validate_circuit(result.circuit, raise_on_error=False) == []

    def test_distinct_drivers_raise_in_strict_mode(self):
        with pytest.raises(CanonicalizationError, match="DRC003"):
            canonicalize_design(self._parallel(second_type="BUF"))

    def test_distinct_drivers_parked_in_nonstrict_mode(self):
        result = canonicalize_design(
            self._parallel(second_type="BUF"), strict=False
        )
        assert len(result.errors()) == 1
        parked = result.circuit.gate("g1").output
        assert parked.startswith("n" + CONFLICT_SUFFIX)

    def test_gate_driving_pi_raises(self):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["o"],
            gates=[
                FlatGate("g0", "INV", ["i"], "w"),
                FlatGate("g1", "BUF", ["w"], "o"),
            ],
        )
        design.add_alias("w", "i")
        with pytest.raises(CanonicalizationError, match="drive primary input"):
            canonicalize_design(design)


class TestIdempotence:
    def test_canonical_design_is_fixed_point(self):
        design = _design(
            primary_inputs=["i"],
            primary_outputs=["o"],
            gates=[
                FlatGate("g0", "INV", ["i"], "n1"),
                FlatGate("g1", "INV", ["n2"], "o"),
            ],
        )
        design.add_alias("n2", "n1")
        first = canonicalize_design(design).circuit
        rerun = _design(
            primary_inputs=list(first.primary_inputs),
            primary_outputs=list(first.primary_outputs),
            gates=[
                FlatGate(g.name, g.cell_type, list(g.inputs), g.output,
                         g.size_index)
                for g in first.gates.values()
            ],
        )
        second = canonicalize_design(rerun)
        assert second.merged_nets == 0
        assert sorted(second.circuit.gates) == sorted(first.gates)
