"""Tests for the trajectory tripwire (tools/bench_tripwire.py).

The tool is not a package; load it by path (same pattern as the repro_lint
tests).  Synthetic BENCH_*.json trajectories are written into tmp dirs so
every gate — perf drop, accuracy drift, lint errors, no-baseline skip,
malformed input — is exercised deterministically.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "bench_tripwire.py"

spec = importlib.util.spec_from_file_location("bench_tripwire", TOOL)
bench_tripwire = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_tripwire)


def _entry(speedup, mode="quick", circuit="c432", **metric_extra):
    metric = {"speedup": speedup, "scalar_ms": 10.0, "levelized_ms": 10.0 / speedup}
    metric.update(metric_extra)
    return {"date": "2026-01-01", "mode": mode,
            "circuits": [{"circuit": circuit, "fullssta": metric}]}


def _write(tmp_path, entries, name="BENCH_t.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"description": "test", "entries": entries}))
    return path


class TestSpeedupDiscovery:
    def test_nested_metrics_get_dotted_paths(self):
        record = {
            "circuit": "c432",
            "fassta": {"speedup": 2.0},
            "optimizer": {"inner": {"speedup": 3.0}},
            "gates": 160,
        }
        found = dict(bench_tripwire.iter_speedup_metrics(record))
        assert set(found) == {"fassta", "optimizer.inner"}
        assert found["optimizer.inner"]["speedup"] == 3.0


class TestPerfGate:
    def test_clean_candidate_passes(self, tmp_path, capsys):
        path = _write(tmp_path, [_entry(3.0), _entry(3.1), _entry(2.9)])
        assert bench_tripwire.main([str(path)]) == 0
        assert "tripwire clean" in capsys.readouterr().out

    def test_slowed_candidate_trips(self, tmp_path, capsys):
        path = _write(tmp_path, [_entry(3.0), _entry(3.1), _entry(1.0)])
        assert bench_tripwire.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "TRIPWIRE" in err
        assert "fell below" in err

    def test_drop_within_tolerance_passes(self, tmp_path):
        # 2.5 vs a 3.0 baseline is a 17% drop: inside the 20% tolerance.
        path = _write(tmp_path, [_entry(3.0), _entry(2.5)])
        assert bench_tripwire.main([str(path)]) == 0

    def test_near_unity_baselines_are_not_gated(self, tmp_path):
        # A 1.05x "speedup" collapsing to 0.5x is noise around parity, not
        # a regression in a claimed win.
        path = _write(tmp_path, [_entry(1.05), _entry(0.5)])
        assert bench_tripwire.main([str(path)]) == 0

    def test_other_modes_never_baseline_each_other(self, tmp_path):
        # Full-mode history must not gate a quick-mode candidate.
        path = _write(tmp_path, [_entry(5.0, mode="full"), _entry(1.0)])
        assert bench_tripwire.main([str(path)]) == 0

    def test_first_entry_skips_perf_gate_with_note(self, tmp_path, capsys):
        path = _write(tmp_path, [_entry(2.0)])
        assert bench_tripwire.main([str(path)]) == 0
        assert "perf gate skipped" in capsys.readouterr().out


class TestAccuracyGate:
    def test_bit_identical_false_trips(self, tmp_path, capsys):
        path = _write(tmp_path, [_entry(3.0, bit_identical=False)])
        assert bench_tripwire.main([str(path)]) == 1
        assert "bit_identical" in capsys.readouterr().err

    def test_moment_err_over_tolerance_trips(self, tmp_path, capsys):
        path = _write(tmp_path, [_entry(3.0, max_moment_err=1e-6)])
        assert bench_tripwire.main([str(path)]) == 1
        assert "max_moment_err" in capsys.readouterr().err

    def test_record_level_tolerance_wins(self, tmp_path):
        path = _write(
            tmp_path, [_entry(3.0, max_moment_err=1e-6, tolerance=1e-5)]
        )
        assert bench_tripwire.main([str(path)]) == 0

    def test_lint_errors_trip(self, tmp_path, capsys):
        entry = _entry(3.0)
        entry["circuits"][0]["lint_errors"] = 2
        path = _write(tmp_path, [entry])
        assert bench_tripwire.main([str(path)]) == 1
        assert "lint error" in capsys.readouterr().err


class TestUsageErrors:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert bench_tripwire.main([str(tmp_path / "BENCH_nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_malformed_trajectory_exits_two(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        # entries must be a list of entry objects; a bare object breaks
        # candidate selection and must surface as a usage error, not a pass.
        path.write_text(json.dumps({"entries": {"mode": "quick"}}))
        assert bench_tripwire.main([str(path)]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_empty_trajectory_is_a_note_not_an_error(self, tmp_path, capsys):
        path = _write(tmp_path, [])
        assert bench_tripwire.main([str(path)]) == 0
        assert "empty trajectory" in capsys.readouterr().out


class TestCheckedInTrajectories:
    def test_repo_trajectories_are_clean(self):
        """The invariant the CI job enforces on every checked-in BENCH file."""
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert paths, "expected at least BENCH_engines.json at the repo root"
        assert bench_tripwire.main([str(p) for p in paths]) == 0
