"""Tests for the repo-invariant AST linter (tools/repro_lint.py).

The tool is not a package; load it by path.  Seeded-defect snippets are
written into tmp directories shaped like the real tree (the RL001/RL003/
RL004 rules key off path components like ``repro/core`` or ``tests``).
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "repro_lint.py"

spec = importlib.util.spec_from_file_location("repro_lint", TOOL)
repro_lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(repro_lint)


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def _rules(findings):
    return [f.rule for f in findings]


class TestRL001:
    def test_topological_order_in_hot_path_flagged(self, tmp_path):
        path = _write(tmp_path, "src/repro/core/engine.py",
                      "def f(c):\n    return c.topological_order()\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL001"]

    def test_reverse_topological_order_flagged(self, tmp_path):
        path = _write(tmp_path, "src/repro/criticality/x.py",
                      "def f(c):\n    return c.reverse_topological_order()\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL001"]

    def test_outside_hot_paths_allowed(self, tmp_path):
        path = _write(tmp_path, "src/repro/netlist/x.py",
                      "def f(c):\n    return c.topological_order()\n")
        assert repro_lint.lint_file(path) == []

    def test_pragma_on_line_suppresses(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/engine.py",
            "def f(c):\n"
            "    return c.topological_order()  # repro-lint: allow=RL001\n",
        )
        assert repro_lint.lint_file(path) == []

    def test_pragma_in_comment_block_above_suppresses(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/engine.py",
            "def f(c):\n"
            "    # This pass is an optimizer, not an engine loop.\n"
            "    # repro-lint: allow=RL001\n"
            "    return c.topological_order()\n",
        )
        assert repro_lint.lint_file(path) == []


class TestRL002:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        path = _write(tmp_path, "src/repro/analysis/x.py",
                      "import numpy as np\nrng = np.random.default_rng()\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL002"]

    def test_seeded_default_rng_allowed(self, tmp_path):
        path = _write(tmp_path, "src/repro/analysis/x.py",
                      "import numpy as np\nrng = np.random.default_rng(42)\n")
        assert repro_lint.lint_file(path) == []

    def test_legacy_global_state_flagged(self, tmp_path):
        path = _write(tmp_path, "src/repro/analysis/x.py",
                      "import numpy as np\nx = np.random.normal(0, 1)\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL002"]

    def test_stdlib_random_call_flagged(self, tmp_path):
        path = _write(tmp_path, "src/repro/analysis/x.py",
                      "import random\nx = random.random()\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL002"]

    def test_seeded_random_instance_allowed(self, tmp_path):
        path = _write(tmp_path, "src/repro/analysis/x.py",
                      "import random\nrng = random.Random(7)\n")
        assert repro_lint.lint_file(path) == []


class TestRL003:
    def test_bare_except_in_runner_flagged(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/runner/x.py",
            "try:\n    pass\nexcept:\n    pass\n",
        )
        assert _rules(repro_lint.lint_file(path)) == ["RL003"]

    def test_typed_except_allowed(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/runner/x.py",
            "try:\n    pass\nexcept ValueError:\n    pass\n",
        )
        assert repro_lint.lint_file(path) == []

    def test_bare_except_outside_runner_not_rl003(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/analysis/x.py",
            "try:\n    pass\nexcept:\n    pass\n",
        )
        assert "RL003" not in _rules(repro_lint.lint_file(path))


class TestRL004:
    def test_float_equality_on_moment_flagged(self, tmp_path):
        path = _write(tmp_path, "tests/test_x.py",
                      "def test_m(rv):\n    assert rv.mean == 103.7\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL004"]

    def test_reversed_operands_flagged(self, tmp_path):
        path = _write(tmp_path, "tests/test_x.py",
                      "def test_m(rv):\n    assert -1.5 != rv.sigma\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL004"]

    def test_approx_comparison_allowed(self, tmp_path):
        path = _write(
            tmp_path, "tests/test_x.py",
            "import pytest\n"
            "def test_m(rv):\n"
            "    assert rv.mean == pytest.approx(103.7)\n",
        )
        assert repro_lint.lint_file(path) == []

    def test_integer_equality_allowed(self, tmp_path):
        # Integer-valued moments (e.g. exact zero checks) are not flagged.
        path = _write(tmp_path, "tests/test_x.py",
                      "def test_m(rv):\n    assert rv.mean == 0\n")
        assert repro_lint.lint_file(path) == []

    def test_outside_tests_not_flagged(self, tmp_path):
        path = _write(tmp_path, "src/repro/analysis/x.py",
                      "def f(rv):\n    return rv.mean == 103.7\n")
        assert "RL004" not in _rules(repro_lint.lint_file(path))


class TestRL005:
    def test_perf_counter_in_src_flagged(self, tmp_path):
        path = _write(tmp_path, "src/repro/flow.py",
                      "import time\ndef f():\n    return time.perf_counter()\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL005"]

    def test_reference_without_call_flagged(self, tmp_path):
        # `clock = time.perf_counter` aliases outside obs/ dodge the one
        # timing source just as effectively as direct calls.
        path = _write(tmp_path, "src/repro/core/x.py",
                      "import time\nclock = time.perf_counter\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL005"]

    def test_inside_obs_allowed(self, tmp_path):
        path = _write(tmp_path, "src/repro/obs/trace.py",
                      "import time\nclock = time.perf_counter\n")
        assert repro_lint.lint_file(path) == []

    def test_outside_src_allowed(self, tmp_path):
        path = _write(tmp_path, "benchmarks/bench_x.py",
                      "import time\nt = time.perf_counter()\n")
        assert "RL005" not in _rules(repro_lint.lint_file(path))

    def test_pragma_suppresses(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/flow.py",
            "import time\n"
            "t = time.perf_counter()  # repro-lint: allow=RL005\n",
        )
        assert repro_lint.lint_file(path) == []


class TestDriver:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = _write(tmp_path, "src/repro/core/x.py", "def broken(:\n")
        assert _rules(repro_lint.lint_file(path)) == ["RL000"]

    def test_main_over_seeded_tree_exits_one(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/core/engine.py",
               "def f(c):\n    return c.topological_order()\n")
        assert repro_lint.main([str(tmp_path)]) == 1
        out = capsys.readouterr()
        assert "RL001" in out.out
        assert "1 finding(s)" in out.err

    def test_repository_is_clean(self):
        """The invariant the CI job enforces: zero findings over src+tests."""
        assert repro_lint.main([str(REPO_ROOT / "src"),
                                str(REPO_ROOT / "tests")]) == 0
