#!/usr/bin/env python3
"""Validate the statistical timing engines against Monte Carlo.

The paper's optimization rests on two nested engines — FULLSSTA (discrete
pdfs) and FASSTA (Clark-max moments) — both of which assume independent gate
delays.  This example quantifies how well each tracks a Monte-Carlo golden
model on a benchmark circuit, and times them, reproducing the accuracy/speed
trade-off argument of section 4.3.

Usage::

    python examples/engine_validation.py [benchmark] [mc_samples]
"""

import sys
import time

from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.montecarlo.mc import MonteCarloTimer
from repro.variation.model import VariationModel


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "c432"
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    library = make_synthetic_90nm_library()
    delay_model = LookupTableDelayModel(library)
    variation_model = VariationModel()

    circuit = build_benchmark(benchmark)
    MeanDelaySizer(delay_model).optimize(circuit)
    print(f"circuit {benchmark!r}: {circuit.num_gates()} gates, "
          f"depth {circuit.logic_depth()}\n")

    engines = {
        "FASSTA (Clark moments)": FASSTA(delay_model, variation_model),
        "FULLSSTA (discrete pdfs)": FULLSSTA(delay_model, variation_model),
    }
    results = {}
    for name, engine in engines.items():
        start = time.perf_counter()
        rv = engine.analyze(circuit).output_rv
        elapsed = time.perf_counter() - start
        results[name] = (rv, elapsed)

    start = time.perf_counter()
    mc = MonteCarloTimer(delay_model, variation_model).run(circuit, num_samples=samples, seed=0)
    mc_time = time.perf_counter() - start

    print(f"{'engine':28s} {'mean (ps)':>10s} {'sigma (ps)':>11s} {'runtime':>10s}")
    print("-" * 64)
    for name, (rv, elapsed) in results.items():
        print(f"{name:28s} {rv.mean:10.1f} {rv.sigma:11.2f} {elapsed*1e3:8.1f} ms")
    print(f"{'Monte Carlo (' + str(samples) + ' samples)':28s} {mc.mean:10.1f} "
          f"{mc.sigma:11.2f} {mc_time*1e3:8.1f} ms")

    fassta_rv, fassta_t = results["FASSTA (Clark moments)"]
    full_rv, full_t = results["FULLSSTA (discrete pdfs)"]
    print("\nobservations:")
    print(f"  FASSTA is {full_t / max(fassta_t, 1e-9):.1f}x faster than FULLSSTA "
          "(which is why it runs in the sizer's inner loop).")
    print(f"  mean error vs MC : FASSTA {100*(fassta_rv.mean-mc.mean)/mc.mean:+.1f} %, "
          f"FULLSSTA {100*(full_rv.mean-mc.mean)/mc.mean:+.1f} %")
    print(f"  sigma error vs MC: FASSTA {100*(fassta_rv.sigma-mc.sigma)/mc.sigma:+.1f} %, "
          f"FULLSSTA {100*(full_rv.sigma-mc.sigma)/mc.sigma:+.1f} % "
          "(both underestimate when reconvergent paths correlate).")


if __name__ == "__main__":
    main()
