#!/usr/bin/env python3
"""Mean/variance trade-off sweep — the paper's Fig. 4.

Re-sizes one circuit at several values of the Eq. 7 weight lambda and prints
the normalized (mean, sigma) points, reproducing the shape of the paper's
Fig. 4 plot for C432: as lambda grows, sigma/mu0 falls while mean/mu0 creeps
up, until the unsystematic variation floor is reached and larger lambda buys
nothing more.

Usage::

    python examples/tradeoff_sweep.py [benchmark] [lambda ...]

e.g. ``python examples/tradeoff_sweep.py c432 0 3 6 9``.
"""

import sys

from repro.analysis.experiments import run_fig4_sweep
from repro.analysis.report import format_fig4


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "c432"
    lams = [float(x) for x in sys.argv[2:]] or [0.0, 3.0, 6.0, 9.0]

    print(f"Sweeping lambda over {lams} on {benchmark!r} (this re-runs the "
          "optimizer once per lambda)...\n")
    points = run_fig4_sweep(benchmark, lams=lams)
    print(format_fig4(points))

    print("\nASCII mean-sigma plot (x = mean/mu0, y = sigma/mu0):")
    xs = [p.normalized_mean for p in points]
    ys = [p.normalized_sigma for p in points]
    y_max = max(ys) or 1.0
    rows = 12
    for row in range(rows, -1, -1):
        threshold = y_max * row / rows
        line = f"{threshold:7.3f} | "
        for x, y in zip(xs, ys):
            line += " X " if abs(y - threshold) <= y_max / (2 * rows) else "   "
        print(line)
    labels = "          " + "".join(f"{x:5.2f}" for x in xs)
    print(labels + "   (mean / mu0, one column per lambda "
          f"{', '.join(f'{p.lam:g}' for p in points)})")


if __name__ == "__main__":
    main()
