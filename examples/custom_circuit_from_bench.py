#!/usr/bin/env python3
"""Run the statistical sizing flow on a user-supplied ISCAS .bench netlist.

The paper evaluates on ISCAS-85 circuits; this repository ships parametric
stand-ins, but if you have the real ``.bench`` files you can drop them
straight into the same flow.  Without an argument the example writes the
c17 netlist to a temporary file first, so it is runnable out of the box.

Usage::

    python examples/custom_circuit_from_bench.py [path/to/circuit.bench] [lambda]
"""

import sys
import tempfile
from pathlib import Path

from repro.circuits.registry import c17
from repro.flow import run_sizing_flow
from repro.netlist.bench import parse_bench_file, write_bench
from repro.netlist.validate import validate_circuit
from repro.library.synthetic90nm import make_synthetic_90nm_library


def main() -> None:
    lam = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0
    if len(sys.argv) > 1:
        bench_path = Path(sys.argv[1])
    else:
        # No netlist given: demonstrate the round trip with c17.
        bench_path = Path(tempfile.gettempdir()) / "c17_demo.bench"
        bench_path.write_text(write_bench(c17()))
        print(f"(no .bench given; wrote a demo c17 netlist to {bench_path})\n")

    circuit = parse_bench_file(bench_path)
    library = make_synthetic_90nm_library()
    problems = validate_circuit(circuit, library, raise_on_error=False)
    if problems:
        print("netlist problems found:")
        for problem in problems:
            print(f"  - {problem}")
        sys.exit(1)

    stats = circuit.stats()
    print(f"loaded {circuit.name!r}: {stats.num_gates} gates, "
          f"{stats.num_primary_inputs} inputs, {stats.num_primary_outputs} outputs, "
          f"depth {stats.logic_depth}")

    result = run_sizing_flow(circuit, lam=lam, library=library)
    print(f"\nafter mean-delay baseline + StatisticalGreedy (lambda={lam:g}):")
    print(f"  sigma     : {result.original_rv.sigma:8.2f} -> {result.final_rv.sigma:8.2f} ps "
          f"({-result.sigma_reduction_pct:+.1f} %)")
    print(f"  mean      : {result.original_rv.mean:8.1f} -> {result.final_rv.mean:8.1f} ps "
          f"({result.mean_increase_pct:+.1f} %)")
    print(f"  area      : {result.original_area:8.0f} -> {result.final_area:8.0f} um^2 "
          f"({result.area_increase_pct:+.1f} %)")

    sizes = {}
    for gate in circuit.gates.values():
        cell = library.size(gate.cell_type, gate.size_index).name
        sizes[cell] = sizes.get(cell, 0) + 1
    print("\nfinal cell-size histogram:")
    for cell, count in sorted(sizes.items()):
        print(f"  {cell:16s} x {count}")


if __name__ == "__main__":
    main()
