#!/usr/bin/env python3
"""Quickstart: statistical gate sizing on a small benchmark in ~20 lines.

Runs the complete paper flow on an ALU-class circuit:

1. build the circuit and the synthetic 90 nm library,
2. size it for minimum mean delay (the "original" design point),
3. re-size it with the StatisticalGreedy optimizer at lambda = 3,
4. print the change in mean delay, delay sigma, sigma/mu and area.

Usage::

    python examples/quickstart.py [benchmark] [lambda]

e.g. ``python examples/quickstart.py alu2 9``.
"""

import sys

from repro import quick_flow


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "alu2"
    lam = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0

    print(f"Running the statistical sizing flow on {benchmark!r} with lambda={lam:g} ...")
    result = quick_flow(benchmark, lam=lam, monte_carlo_samples=1000)

    original = result.original_rv
    final = result.final_rv
    print(f"\ncircuit: {benchmark}  ({result.circuit.num_gates()} gates)")
    print(f"  baseline mean-delay sizing: {result.baseline.initial_delay:8.1f} ps "
          f"-> {result.baseline.final_delay:8.1f} ps")
    print("\n                       original      optimized")
    print(f"  mean delay (ps)    {original.mean:10.1f}    {final.mean:10.1f}"
          f"   ({result.mean_increase_pct:+.1f} %)")
    print(f"  delay sigma (ps)   {original.sigma:10.2f}    {final.sigma:10.2f}"
          f"   ({-result.sigma_reduction_pct:+.1f} %)")
    print(f"  sigma / mu         {result.original_cv:10.4f}    {result.final_cv:10.4f}")
    print(f"  cell area (um^2)   {result.original_area:10.0f}    {result.final_area:10.0f}"
          f"   ({result.area_increase_pct:+.1f} %)")
    if result.mc_original and result.mc_final:
        print("\n  Monte-Carlo validation (1000 samples):")
        print(f"  MC sigma (ps)      {result.mc_original.sigma:10.2f}    "
              f"{result.mc_final.sigma:10.2f}")
    print(f"\n  optimizer: {len(result.sizer_result.iterations)} passes, "
          f"{result.sizer_result.runtime_seconds:.1f} s")


if __name__ == "__main__":
    main()
