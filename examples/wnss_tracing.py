#!/usr/bin/env python3
"""Worst Negative Statistical Slack (WNSS) tracing — the paper's Fig. 3.

Shows why statistical critical-path tracing differs from deterministic
tracing:

* Part 1 reproduces the paper's Fig. 3 decision problem with hand-specified
  arrival moments: when two inputs have means too close for the 2.6-sigma
  dominance test, the input whose mean perturbation moves Var[max] the most
  (evaluated with the finite-difference sensitivities of section 4.4) is the
  statistically critical one — even if its mean is *lower*.
* Part 2 traces both the deterministic WNS path and the statistical WNSS
  path through a real benchmark circuit and prints where they diverge.

Usage::

    python examples/wnss_tracing.py [benchmark]
"""

import sys

from repro.analysis.experiments import run_fig3_example
from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.fullssta import FULLSSTA
from repro.core.wnss import WNSSTracer
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.sta.dsta import DeterministicSTA
from repro.variation.model import VariationModel


def part1_fig3() -> None:
    print("=" * 70)
    print("Part 1: the Fig. 3 decision problem")
    print("=" * 70)
    result = run_fig3_example()
    print("arc arrival moments (mean ps, sigma ps):")
    for name, rv in result["arrivals"].items():
        print(f"  {name}: ({rv.mean:.0f}, {rv.sigma:.0f})")
    print()
    for node in ("node_x", "node_y", "node_z"):
        info = result[node]
        print(f"  {node}: chose {info['chosen']:>6}  via {info['method']}")
    sens = result["sensitivities_y"]
    print("\n  sensitivities at node_y (dVar[max]/dmu):")
    for arc, value in sens.items():
        print(f"    {arc}: {value:8.2f}")
    print("  -> the lower-mean, higher-sigma arc dominates the output variance.")


def part2_benchmark(benchmark: str) -> None:
    print()
    print("=" * 70)
    print(f"Part 2: WNS vs WNSS path on {benchmark!r}")
    print("=" * 70)
    library = make_synthetic_90nm_library()
    delay_model = LookupTableDelayModel(library)
    variation_model = VariationModel()

    circuit = build_benchmark(benchmark)
    MeanDelaySizer(delay_model).optimize(circuit)

    wns_path = DeterministicSTA(delay_model).critical_path(circuit)
    full = FULLSSTA(delay_model, variation_model).analyze(circuit)
    tracer = WNSSTracer(coupling=variation_model.mean_sigma_coupling, lam=3.0)
    wnss_path = tracer.trace(circuit, full.arrival_moments)

    print(f"  deterministic WNS path : {len(wns_path)} gates ending at "
          f"{circuit.gate(wns_path[-1]).output}")
    print(f"  statistical WNSS path  : {len(wnss_path)} gates ending at "
          f"{wnss_path.output_net}")
    shared = set(wns_path) & set(wnss_path.gates)
    print(f"  gates shared by both   : {len(shared)}")
    only_wnss = [g for g in wnss_path.gates if g not in set(wns_path)]
    if only_wnss:
        print(f"  gates only on the WNSS path (variance-driven): {only_wnss[:8]}"
              f"{' ...' if len(only_wnss) > 8 else ''}")
    print("\n  decision methods used along the WNSS trace:")
    methods = {}
    for decision in wnss_path.decisions:
        methods[decision.method] = methods.get(decision.method, 0) + 1
    for method, count in sorted(methods.items()):
        print(f"    {method:12s}: {count}")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "c432"
    part1_fig3()
    part2_benchmark(benchmark)


if __name__ == "__main__":
    main()
