#!/usr/bin/env python3
"""Output-delay PDF before/after variance optimization — the paper's Fig. 1.

Computes the discrete output-delay pdf (FULLSSTA) of one circuit at three
design points — the mean-delay-optimized original and two variance-optimized
variants (lambda = 3 and lambda = 9) — and renders them as ASCII histograms,
mirroring the paper's Fig. 1: the optimized curves are visibly narrower even
though their centres move slightly right.

Usage::

    python examples/output_pdf_comparison.py [benchmark]
"""

import sys

from repro.analysis.experiments import run_fig1
from repro.analysis.report import format_pdf_curve


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "alu2"
    print(f"Computing output-delay pdfs for {benchmark!r} (original, lambda=3, lambda=9)...\n")
    curves = run_fig1(benchmark, lams=(3.0, 9.0))

    for label, points in curves.series().items():
        pdf = curves.original if label == "original" else None
        print(format_pdf_curve(points, width=46, label=f"--- {label} ---"))
        print()

    print("summary:")
    print(f"  original : mean {curves.original.mean():8.1f} ps   "
          f"sigma {curves.original.std():6.2f} ps")
    for lam, pdf in sorted(curves.optimized.items()):
        print(f"  lambda={lam:<3g}: mean {pdf.mean():8.1f} ps   sigma {pdf.std():6.2f} ps")


if __name__ == "__main__":
    main()
