"""CI tripwire over the checked-in ``BENCH_*.json`` perf/accuracy trajectories.

Every ``benchmarks/bench_*.py`` appends normalized entries to a trajectory
file at the repo root (see ``benchmarks/trajectory.py``).  This tool makes
regressions in those trajectories a CI failure instead of commit-message
prose:

* **Performance** is gated on the dimensionless ``"speedup"`` metrics only
  (scalar-vs-levelized, scratch-vs-incremental, ...), never on absolute
  wall-clock: speedups compare two implementations on the *same* machine in
  the *same* run, so they are comparable across the heterogeneous machines
  that wrote the trajectory.  The newest entry is the candidate; its
  baseline is the median of every earlier same-mode entry's value for the
  same (circuit, metric).  A speedup that drops more than
  ``--drop-tolerance`` (default 20%) below a baseline that meaningfully
  exceeded 1.0 (``--min-speedup``, default 1.2x) fails — near-1.0 ratios
  are noise, not a claim worth guarding.
* **Accuracy** is absolute and checked on the candidate alone: any
  ``"bit_identical": false``, any ``"max_moment_err"`` above the record's
  own ``"tolerance"`` (default ``--moment-tolerance`` = 1e-9), and any
  nonzero ``"lint_errors"`` fail immediately.

Exit status: 0 clean, 1 tripped, 2 usage/malformed trajectory.

Re-baselining after an intentional trade-off: rerun the bench so the new
entry documents the new level, then delete the stale entries it should no
longer be compared against (the diff of ``BENCH_*.json`` is the reviewable
record of the decision).

Run from the repo root::

    python tools/bench_tripwire.py                     # every BENCH_*.json
    python tools/bench_tripwire.py BENCH_engines.json  # one trajectory
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DROP_TOLERANCE = 0.20
DEFAULT_MIN_SPEEDUP = 1.2
DEFAULT_MOMENT_TOLERANCE = 1e-9


def iter_speedup_metrics(record: Dict) -> Iterator[Tuple[str, Dict]]:
    """Yield ``(dotted.path, metric_dict)`` for every nested speedup block."""
    for key, value in record.items():
        if not isinstance(value, dict):
            continue
        if "speedup" in value:
            yield key, value
        for sub_path, sub_value in iter_speedup_metrics(value):
            yield f"{key}.{sub_path}", sub_value


def check_accuracy(
    circuit: str, path: str, metric: Dict, moment_tolerance: float
) -> List[str]:
    """Absolute accuracy violations of one candidate metric block."""
    problems = []
    if metric.get("bit_identical") is False:
        problems.append(f"{circuit} {path}: bit_identical is false")
    err = metric.get("max_moment_err")
    if err is not None:
        bound = float(metric.get("tolerance", moment_tolerance))
        if float(err) > bound:
            problems.append(
                f"{circuit} {path}: max_moment_err {err:.3e} exceeds {bound:g}"
            )
    return problems


def check_trajectory(
    path: Path,
    drop_tolerance: float,
    min_speedup: float,
    moment_tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Check one trajectory file; returns (violations, notes)."""
    trajectory = json.loads(path.read_text())
    entries = trajectory.get("entries", [])
    if not entries:
        return [], [f"{path.name}: empty trajectory, nothing to check"]

    candidate = entries[-1]
    mode = candidate.get("mode")
    pool = [e for e in entries[:-1] if e.get("mode") == mode]

    # Baseline per (circuit, metric path): median speedup across the pool.
    baselines: Dict[Tuple[str, str], List[float]] = {}
    for entry in pool:
        for record in entry.get("circuits", []):
            for metric_path, metric in iter_speedup_metrics(record):
                key = (record.get("circuit", "?"), metric_path)
                baselines.setdefault(key, []).append(float(metric["speedup"]))

    violations: List[str] = []
    notes: List[str] = []
    checked = 0
    for record in candidate.get("circuits", []):
        circuit = record.get("circuit", "?")
        if record.get("lint_errors"):
            violations.append(
                f"{circuit}: {record['lint_errors']} lint error(s) in the "
                f"candidate entry"
            )
        for metric_path, metric in iter_speedup_metrics(record):
            violations.extend(
                check_accuracy(circuit, metric_path, metric, moment_tolerance)
            )
            history = baselines.get((circuit, metric_path))
            if not history:
                continue
            baseline = statistics.median(history)
            if baseline < min_speedup:
                continue  # near-1.0 ratios are noise, not a guarded claim
            checked += 1
            current = float(metric["speedup"])
            floor = (1.0 - drop_tolerance) * baseline
            if current < floor:
                violations.append(
                    f"{circuit} {metric_path}: speedup {current:.2f}x fell "
                    f"below {floor:.2f}x (baseline {baseline:.2f}x over "
                    f"{len(history)} prior '{mode}' entr(y/ies), "
                    f"tolerance {100 * drop_tolerance:.0f}%)"
                )
    if not pool:
        notes.append(
            f"{path.name}: no prior '{mode}' entries — accuracy checked, "
            f"perf gate skipped"
        )
    else:
        notes.append(
            f"{path.name}: {checked} speedup metric(s) gated against "
            f"{len(pool)} prior '{mode}' entr(y/ies)"
        )
    return violations, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trajectories", nargs="*", type=Path,
        help="BENCH_*.json files (default: every BENCH_*.json at the repo root)",
    )
    parser.add_argument(
        "--drop-tolerance", type=float, default=DEFAULT_DROP_TOLERANCE,
        help="fractional speedup drop that trips (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help="only gate metrics whose baseline speedup reaches this "
             "(default 1.2x)",
    )
    parser.add_argument(
        "--moment-tolerance", type=float, default=DEFAULT_MOMENT_TOLERANCE,
        help="max_moment_err bound for records that carry no own tolerance",
    )
    args = parser.parse_args(argv)

    paths = args.trajectories or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        print("error: no BENCH_*.json trajectories found", file=sys.stderr)
        return 2

    all_violations: List[str] = []
    for path in paths:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        try:
            violations, notes = check_trajectory(
                path, args.drop_tolerance, args.min_speedup,
                args.moment_tolerance,
            )
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: {path}: malformed trajectory ({exc})", file=sys.stderr)
            return 2
        for note in notes:
            print(note)
        all_violations.extend(violations)

    if all_violations:
        print(f"\nTRIPWIRE: {len(all_violations)} regression(s):", file=sys.stderr)
        for violation in all_violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print("tripwire clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
