#!/usr/bin/env python3
"""Repo-invariant AST lints (run in CI alongside ruff/mypy).

Generic linters cannot see this repository's engine contracts; these checks
can, because they encode them directly:

RL001  engine hot paths must consume the compiled IR, not re-walk the
       netlist: no ``topological_order()`` / ``reverse_topological_order()``
       calls inside ``src/repro/{core,sta,montecarlo,criticality,ir}/``.
RL002  no unseeded randomness in ``src/``: ``np.random.default_rng()``
       without a seed argument, any legacy ``np.random.<fn>()`` global-state
       call, and any stdlib ``random.<fn>()`` call are all flagged —
       reproducibility is a stated invariant of every engine.
RL003  no bare ``except:`` in ``src/repro/runner/``: the fault-tolerant
       sweep machinery must never be able to swallow ``KeyboardInterrupt``
       (graceful-interrupt draining depends on it propagating).
RL004  no float-literal equality on statistical moments in ``tests/``:
       ``assert rv.mean == 103.7`` style comparisons (attributes ``mean`` /
       ``sigma`` / ``variance`` / ``cv`` against a float literal) are
       brittle; use ``pytest.approx``.  Exact-by-construction comparisons
       carry an explicit pragma instead.
RL005  one timing source: no raw ``time.perf_counter`` in ``src/`` outside
       ``repro/obs/`` — use ``repro.obs.clock`` / ``stopwatch`` / spans so
       every duration flows through the instrumentation layer.

Suppression: append ``# repro-lint: allow=RL00x`` (comma-separate several
ids) to the offending line, or put the comment alone on the line directly
above.  Every pragma is an auditable, deliberate exception.

Usage: ``python tools/repro_lint.py [paths...]`` (default: ``src tests``
relative to the repository root).  Exits 1 if any finding is reported.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Sequence, Set

REPO_ROOT = Path(__file__).resolve().parent.parent

_PRAGMA_RE = re.compile(r"#.*?repro-lint:\s*allow=([A-Z0-9, ]+)")

#: Hot-path packages whose code must consume the compiled IR (RL001).
HOT_PATH_PARTS = ("core", "sta", "montecarlo", "criticality", "ir")

#: Moment attributes whose float-literal equality is brittle (RL004).
MOMENT_ATTRS = frozenset({"mean", "sigma", "variance", "cv"})


class Finding(NamedTuple):
    path: Path
    line: int
    rule: str
    message: str

    def format(self) -> str:
        rel = self.path
        try:
            rel = self.path.relative_to(REPO_ROOT)
        except ValueError:
            pass
        return f"{rel}:{self.line}: {self.rule} {self.message}"


def _pragma_allows(source_lines: Sequence[str], lineno: int) -> Set[str]:
    """Rule ids allowed at ``lineno``.

    A pragma counts when it sits on the offending line itself or anywhere in
    the block of pure-comment lines directly above it.
    """
    allowed: Set[str] = set()

    def _collect(line: str) -> None:
        match = _PRAGMA_RE.search(line)
        if match:
            allowed.update(part.strip() for part in match.group(1).split(","))

    if 0 <= lineno - 1 < len(source_lines):
        _collect(source_lines[lineno - 1])
    idx = lineno - 2
    while 0 <= idx < len(source_lines) and source_lines[idx].strip().startswith("#"):
        _collect(source_lines[idx])
        idx -= 1
    return allowed


def _is_np_random(node: ast.expr) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------
def check_rl001(tree: ast.AST, path: Path) -> Iterator[Finding]:
    """Hot-path code must not re-walk the netlist per analysis."""
    rel_parts = path.parts
    if "repro" not in rel_parts:
        return
    pkg = rel_parts[rel_parts.index("repro"):]
    if len(pkg) < 2 or pkg[1] not in HOT_PATH_PARTS:
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("topological_order", "reverse_topological_order")
        ):
            yield Finding(
                path, node.lineno, "RL001",
                f"{node.func.attr}() in an engine hot path -- use the "
                f"compiled IR (Circuit.compiled()) instead of re-walking "
                f"the netlist",
            )


def check_rl002(tree: ast.AST, path: Path) -> Iterator[Finding]:
    """No unseeded randomness in library code."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        func = node.func
        if _is_np_random(func.value):
            if func.attr == "default_rng":
                if not node.args and not node.keywords:
                    yield Finding(
                        path, node.lineno, "RL002",
                        "np.random.default_rng() without a seed -- "
                        "deterministic engines must thread an explicit seed",
                    )
            else:
                yield Finding(
                    path, node.lineno, "RL002",
                    f"np.random.{func.attr}() uses the legacy global RNG "
                    f"state -- use np.random.default_rng(seed)",
                )
        elif isinstance(func.value, ast.Name) and func.value.id == "random":
            if func.attr == "Random" and (node.args or node.keywords):
                continue  # random.Random(seed) is explicitly seeded
            yield Finding(
                path, node.lineno, "RL002",
                f"stdlib random.{func.attr}() call -- use a seeded "
                f"np.random.default_rng / random.Random instance",
            )


def check_rl003(tree: ast.AST, path: Path) -> Iterator[Finding]:
    """No bare ``except:`` in the fault-tolerant runner."""
    parts = path.parts
    if "repro" not in parts:
        return
    pkg = parts[parts.index("repro"):]
    if len(pkg) < 2 or pkg[1] != "runner":
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                path, node.lineno, "RL003",
                "bare 'except:' in runner/ can swallow KeyboardInterrupt "
                "and break graceful-interrupt draining -- name the "
                "exception types",
            )


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -3.5 parses as UnaryOp(USub, Constant(3.5))
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    )


def _is_moment_attr(node: ast.expr) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in MOMENT_ATTRS


def check_rl004(tree: ast.AST, path: Path) -> Iterator[Finding]:
    """No float-literal equality on statistical moments in tests."""
    if "tests" not in path.parts:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        # Chained comparisons: ops is one shorter than operands by design.
        for op, lhs, rhs in zip(node.ops, operands, operands[1:], strict=False):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (lhs, rhs)
            if any(_is_moment_attr(a) and _is_float_literal(b)
                   for a, b in (pair, pair[::-1])):
                yield Finding(
                    path, node.lineno, "RL004",
                    "float-literal equality on a statistical moment -- use "
                    "pytest.approx (or pragma exact-by-construction cases)",
                )
                break


def check_rl005(tree: ast.AST, path: Path) -> Iterator[Finding]:
    """One timing source: raw ``time.perf_counter`` only inside repro/obs/."""
    parts = path.parts
    if "repro" not in parts:
        return  # src/-only rule; benchmarks and tools time themselves freely
    pkg = parts[parts.index("repro"):]
    if len(pkg) >= 2 and pkg[1] == "obs":
        return  # the blessed home of the clock
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "perf_counter"
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
        ):
            yield Finding(
                path, node.lineno, "RL005",
                "raw time.perf_counter outside repro/obs/ -- use "
                "repro.obs.clock / stopwatch / spans so timing stays unified",
            )


ALL_CHECKS = (check_rl001, check_rl002, check_rl003, check_rl004, check_rl005)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def lint_file(path: Path) -> List[Finding]:
    """All non-suppressed findings for one Python file."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "RL000",
                        f"file does not parse: {exc.msg}")]
    lines = source.splitlines()
    findings: List[Finding] = []
    for check in ALL_CHECKS:
        for finding in check(tree, path):
            if finding.rule in _pragma_allows(lines, finding.line):
                continue
            findings.append(finding)
    return findings


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Repo-invariant AST lints (RL001-RL005)."
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src tests)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [REPO_ROOT / "src", REPO_ROOT / "tests"]

    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(path))

    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    for finding in findings:
        print(finding.format())
    print(
        f"repro-lint: {checked} file(s) checked, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
