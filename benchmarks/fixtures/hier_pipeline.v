// Hierarchical front-end smoke fixture: module instantiation with
// parameter overrides, vector ports, bit/part-selects, concatenation and
// assign aliases (including an aliased primary output that exercises the
// canonicalizer's PO repair).  Used by the CI frontend-smoke job and free
// for local experiments:
//
//   PYTHONPATH=src python -m repro.cli info benchmarks/fixtures/hier_pipeline.v \
//       --top top --frontend

module full_adder (input a, input b, input cin, output s, output cout);
  wire p, g, t;
  XOR2 u_p (.Y(p), .A(a), .B(b));
  XOR2 u_s (.Y(s), .A(p), .B(cin));
  AND2 u_g (.Y(g), .A(a), .B(b));
  AND2 u_t (.Y(t), .A(p), .B(cin));
  OR2  u_c (.Y(cout), .A(g), .B(t));
endmodule

module adder #(parameter W = 2) (input [W-1:0] a, input [W-1:0] b,
                                 input cin, output [W-1:0] s, output cout);
  wire [W-1:0] carry;
  full_adder fa0 (.a(a[0]), .b(b[0]), .cin(cin),      .s(s[0]), .cout(carry[0]));
  full_adder fa1 (.a(a[1]), .b(b[1]), .cin(carry[0]), .s(s[1]), .cout(carry[1]));
  assign cout = carry[W-1];
endmodule

module top (input [1:0] x, input [1:0] y, input [1:0] z, input c0,
            output [1:0] sum, output carry, output flag);
  wire [1:0] partial;
  wire mid;
  wire [1:0] staged;
  adder #(.W(2)) stage1 (.a(x), .b(y), .cin(c0), .s(partial), .cout(mid));
  assign staged = {partial[1], partial[0]};
  adder #(.W(2)) stage2 (.a(staged), .b(z), .cin(mid), .s(sum), .cout(carry));
  // Aliased primary output: the front end must insert a repair buffer so
  // 'flag' stays observable and singly driven.
  assign flag = sum[0];
endmodule
