"""Engine benchmarks: FASSTA vs FULLSSTA vs Monte Carlo (the nested-engine rationale).

Section 4 of the paper justifies its nested architecture — a slow, accurate
discrete-pdf engine (FULLSSTA) in the outer loop and a fast moment engine
(FASSTA) in the inner loop — by the cost of evaluating full pdfs for every
candidate gate size.  These benchmarks measure all three analysis engines on
the same circuit so that the speed gap (and the accuracy cost) backing that
design choice is visible, and write the comparison to
``benchmarks/results/engines.txt``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_result
from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA
from repro.montecarlo.mc import MonteCarloTimer

CIRCUIT = "c880"


@pytest.fixture(scope="module")
def prepared_circuit(substrates):
    _, delay_model, _ = substrates
    circuit = build_benchmark(CIRCUIT)
    MeanDelaySizer(delay_model).optimize(circuit)
    return circuit


@pytest.mark.benchmark(group="engines")
def test_fassta_full_circuit(benchmark, substrates, prepared_circuit):
    _, delay_model, variation_model = substrates
    engine = FASSTA(delay_model, variation_model)
    rv = benchmark(lambda: engine.analyze(prepared_circuit).output_rv)
    assert rv.mean > 0


@pytest.mark.benchmark(group="engines")
def test_fullssta_full_circuit(benchmark, substrates, prepared_circuit):
    _, delay_model, variation_model = substrates
    engine = FULLSSTA(delay_model, variation_model)
    rv = benchmark(lambda: engine.analyze(prepared_circuit).output_rv)
    assert rv.mean > 0


@pytest.mark.benchmark(group="engines")
def test_montecarlo_1000_samples(benchmark, substrates, prepared_circuit):
    _, delay_model, variation_model = substrates
    timer = MonteCarloTimer(delay_model, variation_model)
    result = benchmark.pedantic(
        lambda: timer.run(prepared_circuit, num_samples=1000, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.sigma > 0


@pytest.mark.benchmark(group="engines")
def test_engine_comparison_summary(benchmark, substrates, prepared_circuit):
    """Accuracy/speed summary of the three engines on one circuit."""
    _, delay_model, variation_model = substrates

    def compare():
        rows = []
        for name, run in (
            ("FASSTA", lambda: FASSTA(delay_model, variation_model).analyze(prepared_circuit).output_rv),
            ("FULLSSTA", lambda: FULLSSTA(delay_model, variation_model).analyze(prepared_circuit).output_rv),
        ):
            start = time.perf_counter()
            rv = run()
            elapsed = time.perf_counter() - start
            rows.append((name, rv.mean, rv.sigma, elapsed))
        start = time.perf_counter()
        mc = MonteCarloTimer(delay_model, variation_model).run(
            prepared_circuit, num_samples=2000, seed=0
        )
        rows.append(("MonteCarlo-2000", mc.mean, mc.sigma, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = [
        f"Timing-engine comparison on {CIRCUIT} ({prepared_circuit.num_gates()} gates)",
        "",
        f"{'engine':18s} {'mean (ps)':>10s} {'sigma (ps)':>11s} {'runtime (ms)':>13s}",
    ]
    for name, mean, sigma, elapsed in rows:
        lines.append(f"{name:18s} {mean:10.1f} {sigma:11.2f} {elapsed * 1e3:13.1f}")
    fassta_time = rows[0][3]
    fullssta_time = rows[1][3]
    lines.append("")
    lines.append(
        f"FASSTA speedup over FULLSSTA: {fullssta_time / max(fassta_time, 1e-9):.1f}x "
        "(this gap is why the inner loop uses FASSTA)"
    )
    report = "\n".join(lines)
    print("\n" + report)
    write_result("engines.txt", report)

    # The architectural claim: the moment engine is significantly faster.
    assert fassta_time < fullssta_time
