"""Scalar vs IR-levelized engine benchmark (the compiled-IR rationale).

Every analysis engine now consumes the circuit's compiled array-native IR
(:meth:`Circuit.compiled() <repro.netlist.circuit.Circuit.compiled>`).  This
benchmark measures what that buys on real registry circuits, engine by
engine:

* **DSTA**    — scalar per-gate walk vs levelized forward pass,
* **FASSTA**  — scalar Clark folds vs levelized ``clark_max_fast_arrays``,
* **FULLSSTA**— scalar discrete-pdf folds vs batched levelized propagation,
* **MC**      — the historical per-gate dict propagation (inlined below as
  the reference) vs the levelized all-samples-at-once program.

The MC comparison times the *propagation stage* on shared pre-drawn gate
delays — the code the IR refactor actually rewrote; the Gaussian draws are
bit-identical in both paths (same generator stream) and would otherwise
dominate the wall clock and dilute the comparison.  The end-to-end run
(draws + propagation) is reported alongside for transparency.  Propagation
is gather-bound: the levelized program wins while the arrival matrix stays
cache-resident (hundreds of samples on the largest circuits), which is why
the default sample count is moderate rather than huge.

Equivalence is asserted, not assumed: DSTA arrivals and MC sample streams
must be bit-identical, FASSTA/FULLSSTA moments must agree to 1e-9.  The
report goes to ``benchmarks/results/engines.txt`` and a machine-readable
entry is appended to the checked-in ``BENCH_engines.json`` perf trajectory
at the repo root.

A second axis, ``--generated depth,width[,seed]``, times the front-end scale
path on synthetic circuits instead: generate -> elaborate/canonicalize ->
lint -> compile -> vectorized DSTA, stage by stage.  At 100k gates the
scalar reference engines are the bottleneck, so this axis tracks pipeline
linearity rather than the scalar/levelized ratio; its records land in the
same ``BENCH_engines.json`` trajectory tagged ``"kind": "frontend-scale"``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_engines.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_engines.py           # largest circuits
    PYTHONPATH=src python benchmarks/bench_engines.py \\
        --circuits "" --generated 100,1000,17                   # 100k-gate scale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

# Allow running as a plain script from the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.trajectory import append_entry  # noqa: E402
from repro.circuits.registry import build_benchmark  # noqa: E402
from repro.core.fassta import FASSTA  # noqa: E402
from repro.core.fullssta import FULLSSTA  # noqa: E402
from repro.library.delay_model import LookupTableDelayModel  # noqa: E402
from repro.library.synthetic90nm import make_synthetic_90nm_library  # noqa: E402
from repro.montecarlo.mc import MonteCarloTimer, propagate_levelized  # noqa: E402
from repro.obs import clock  # noqa: E402
from repro.sta.dsta import DeterministicSTA  # noqa: E402
from repro.variation.model import VariationModel  # noqa: E402

#: Full benchmark: the two largest registry circuits.
FULL_CIRCUITS = ["c6288", "c7552"]
#: Quick (CI smoke) configuration.
QUICK_CIRCUITS = ["c432"]

MOMENT_TOLERANCE = 1e-9
REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_engines.json"


def _substrates():
    library = make_synthetic_90nm_library()
    return LookupTableDelayModel(library), VariationModel()


def _best_of(fn, rounds: int) -> Tuple[float, object]:
    """Best wall-clock of ``rounds`` calls, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = clock()
        value = fn()
        best = min(best, clock() - start)
    return best, value


def _reference_mc_samples(timer, circuit, num_samples, seed):
    """The historical per-gate dict-propagation Monte-Carlo path.

    Same generator stream as :meth:`MonteCarloTimer.run` (draws in
    topological order), propagation one gate at a time — the exact code the
    levelized path replaced, kept here as the bit-identity reference.
    """
    rng = np.random.default_rng(seed)
    order = circuit.topological_order()
    distributions = timer.variation_model.all_gate_distributions(
        circuit, timer.delay_model
    )
    gate_samples = {}
    for name in order:
        dist = distributions[name]
        gate_samples[name] = rng.normal(dist.mean, dist.sigma, num_samples)
    arrivals = {net: np.zeros(num_samples) for net in circuit.primary_inputs}
    for name in order:
        gate = circuit.gate(name)
        worst = None
        for net in gate.inputs:
            arr = arrivals.setdefault(net, np.zeros(num_samples))
            worst = arr if worst is None else np.maximum(worst, arr)
        arrivals[gate.output] = worst + gate_samples[name]
    delay = None
    for net in circuit.primary_outputs:
        arr = arrivals[net]
        delay = arr if delay is None else np.maximum(delay, arr)
    return delay


def _draw_gate_delays(timer, circuit, plan, num_samples, seed):
    """Pre-draw the (num_gates, num_samples) delay matrix in IR gate order.

    Same generator stream as both propagation paths (draws in topological
    order), so the propagation-stage comparison below starts from literally
    the same numbers.
    """
    rng = np.random.default_rng(seed)
    distributions = timer.variation_model.all_gate_distributions(
        circuit, timer.delay_model
    )
    delay = np.empty((plan.num_gates, num_samples))
    for name in circuit.topological_order():
        dist = distributions[name]
        delay[plan.gate_index[name]] = rng.normal(
            dist.mean, dist.sigma, num_samples
        )
    return delay


def _pergate_propagation(circuit, plan, delay):
    """The historical per-gate dict propagation over pre-drawn delays.

    The exact propagation loop the levelized array program replaced, fed
    from the shared delay matrix so only propagation is timed.
    """
    num_samples = delay.shape[1]
    arrivals = {net: np.zeros(num_samples) for net in circuit.primary_inputs}
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        worst = None
        for net in gate.inputs:
            arr = arrivals.setdefault(net, np.zeros(num_samples))
            worst = arr if worst is None else np.maximum(worst, arr)
        arrivals[gate.output] = worst + delay[plan.gate_index[name]]
    return np.stack([arrivals[net] for net in circuit.primary_outputs])


def bench_circuit(
    name: str,
    delay_model,
    variation_model,
    mc_samples: int,
    rounds: int,
) -> Tuple[Dict[str, object], List[str], bool]:
    """Benchmark all four engines on one circuit; returns (record, lines, ok)."""
    circuit = build_benchmark(name)
    circuit.compiled()  # lower once up front; every path below shares it
    ok = True
    record: Dict[str, object] = {
        "circuit": name,
        "gates": circuit.num_gates(),
        "levels": circuit.logic_depth(),
        "mc_samples": mc_samples,
    }
    lines = [
        f"{name} ({circuit.num_gates()} gates, depth {circuit.logic_depth()}):"
    ]

    def row(label, t_scalar, t_vector, note):
        speedup = t_scalar / max(t_vector, 1e-12)
        lines.append(
            f"  {label:9s} scalar {t_scalar * 1e3:9.1f} ms   "
            f"levelized {t_vector * 1e3:9.1f} ms   "
            f"speedup {speedup:6.2f}x   {note}"
        )
        return speedup

    # --- DSTA ---------------------------------------------------------
    dsta_scalar = DeterministicSTA(delay_model)
    dsta_vector = DeterministicSTA(delay_model, vectorized=True)
    t_s, ref = _best_of(lambda: dsta_scalar.arrival_times(circuit), rounds)
    t_v, vec = _best_of(lambda: dsta_vector.arrival_times(circuit), rounds)
    identical = ref[0] == vec[0] and ref[1] == vec[1]
    ok = ok and identical
    speedup = row("DSTA", t_s, t_v, "bit-identical" if identical else "MISMATCH")
    record["dsta"] = {
        "scalar_ms": t_s * 1e3, "levelized_ms": t_v * 1e3,
        "speedup": speedup, "bit_identical": identical,
    }

    # --- FASSTA -------------------------------------------------------
    fassta_scalar = FASSTA(delay_model, variation_model)
    fassta_vector = FASSTA(delay_model, variation_model, vectorized=True)
    t_s, ref = _best_of(lambda: fassta_scalar.analyze(circuit), rounds)
    t_v, vec = _best_of(lambda: fassta_vector.analyze(circuit), rounds)
    err = max(
        max(
            abs(ref.arrivals[n].mean - vec.arrivals[n].mean),
            abs(ref.arrivals[n].sigma - vec.arrivals[n].sigma),
        )
        for n in ref.arrivals
    )
    matched = err <= MOMENT_TOLERANCE
    ok = ok and matched
    speedup = row(
        "FASSTA", t_s, t_v,
        f"max moment err {err:.1e}" + ("" if matched else "  << MISMATCH"),
    )
    record["fassta"] = {
        "scalar_ms": t_s * 1e3, "levelized_ms": t_v * 1e3,
        "speedup": speedup, "max_moment_err": err,
    }

    # --- FULLSSTA -----------------------------------------------------
    full_scalar = FULLSSTA(delay_model, variation_model)
    full_vector = FULLSSTA(delay_model, variation_model, vectorized=True)
    t_s, ref = _best_of(lambda: full_scalar.analyze(circuit), rounds)
    t_v, vec = _best_of(lambda: full_vector.analyze(circuit), rounds)
    err = max(
        abs(ref.output_rv.mean - vec.output_rv.mean),
        abs(ref.output_rv.sigma - vec.output_rv.sigma),
        max(
            abs(ref.arrival_moments[n].mean - vec.arrival_moments[n].mean)
            for n in ref.arrival_moments
        ),
    )
    matched = err <= MOMENT_TOLERANCE
    ok = ok and matched
    speedup = row(
        "FULLSSTA", t_s, t_v,
        f"max moment err {err:.1e}" + ("" if matched else "  << MISMATCH"),
    )
    record["fullssta"] = {
        "scalar_ms": t_s * 1e3, "levelized_ms": t_v * 1e3,
        "speedup": speedup, "max_moment_err": err,
    }

    # --- Monte Carlo --------------------------------------------------
    timer = MonteCarloTimer(delay_model, variation_model)
    plan = circuit.compiled()

    # Propagation stage on a shared pre-drawn delay matrix: the per-gate
    # dict loop vs the production levelized program, bit-identity asserted.
    delay = _draw_gate_delays(timer, circuit, plan, mc_samples, seed=0)
    t_s, ref_po = _best_of(lambda: _pergate_propagation(circuit, plan, delay), rounds)
    t_v, arr = _best_of(lambda: propagate_levelized(plan, delay), rounds)
    out_rows = [plan.net_index[net] for net in circuit.primary_outputs]
    identical = np.array_equal(arr[out_rows], ref_po)
    ok = ok and identical
    speedup = row(
        "MC-prop", t_s, t_v,
        f"{mc_samples} samples, "
        + ("bit-identical" if identical else "MISMATCH"),
    )
    record["mc"] = {
        "scalar_ms": t_s * 1e3, "levelized_ms": t_v * 1e3,
        "speedup": speedup, "bit_identical": identical,
    }

    # End-to-end (draws + propagation), for transparency: the Gaussian
    # draws are identical work in both paths and dominate the wall clock.
    t_es, ref_samples = _best_of(
        lambda: _reference_mc_samples(timer, circuit, mc_samples, seed=0), rounds
    )
    t_ev, result = _best_of(
        lambda: timer.run(circuit, num_samples=mc_samples, seed=0), rounds
    )
    e2e_identical = np.array_equal(result.samples, ref_samples)
    ok = ok and e2e_identical
    e2e_speedup = row(
        "MC-e2e", t_es, t_ev,
        "incl. identical draws, "
        + ("bit-identical stream" if e2e_identical else "STREAM MISMATCH"),
    )
    record["mc"]["end_to_end"] = {
        "scalar_ms": t_es * 1e3, "levelized_ms": t_ev * 1e3,
        "speedup": e2e_speedup, "bit_identical": e2e_identical,
    }

    return record, lines, ok


def bench_generated(
    spec_text: str,
    delay_model,
    rounds: int,
) -> Tuple[Dict[str, object], List[str], bool]:
    """Front-end scale benchmark on one generated circuit.

    Times the full pipeline stage by stage — generate (raw netlist),
    elaborate + canonicalize, DRC lint, compile to the array IR, vectorized
    DSTA — rather than the scalar/levelized engine comparison: at the 100k
    gate scale the scalar reference engines are the bottleneck, and what
    this axis tracks is that the front end and compiled path stay linear.
    """
    from repro.circuits.synthetic import parse_generated_spec, synthetic_raw
    from repro.netlist.elaborate import elaborate
    from repro.verify import lint_circuit

    spec = parse_generated_spec(spec_text)
    stages: Dict[str, float] = {}

    start = clock()
    raw = synthetic_raw(spec)
    stages["generate_s"] = clock() - start

    start = clock()
    circuit = elaborate(raw, name=spec.display_name)
    stages["elaborate_s"] = clock() - start

    start = clock()
    lint = lint_circuit(circuit, library=delay_model.library)
    stages["lint_s"] = clock() - start
    ok = lint.ok

    start = clock()
    circuit.compiled()
    stages["compile_s"] = clock() - start

    dsta = DeterministicSTA(delay_model, vectorized=True)
    stages["dsta_levelized_s"], _ = _best_of(
        lambda: dsta.arrival_times(circuit), rounds
    )

    record: Dict[str, object] = {
        "circuit": f"gen:{spec_text}",
        "kind": "frontend-scale",
        "gates": circuit.num_gates(),
        "levels": circuit.logic_depth(),
        "lint_errors": len(lint.errors),
        "stages": stages,
    }
    lines = [
        f"gen:{spec_text} ({circuit.num_gates()} gates, "
        f"depth {circuit.logic_depth()}):",
        "  " + "   ".join(
            f"{stage.rsplit('_', 1)[0]} {seconds:6.2f} s"
            for stage, seconds in stages.items()
        )
        + f"   lint {'clean' if ok else f'{len(lint.errors)} error(s)'}",
    ]
    return record, lines, ok


def append_trajectory(records: List[Dict[str, object]], mode: str) -> None:
    """Append one entry to the checked-in BENCH_engines.json trajectory."""
    append_entry(
        "engines", records, mode,
        description="scalar vs IR-levelized engine runtimes (bench_engines.py)",
    )


def run(
    circuits: List[str], mc_samples: int, rounds: int,
    generated: Optional[List[str]] = None,
) -> Tuple[str, List[Dict[str, object]], bool]:
    delay_model, variation_model = _substrates()
    lines = [
        "Engines on the compiled IR: scalar vs levelized paths",
        f"(equivalence asserted per run: DSTA/MC bit-identical, "
        f"FASSTA/FULLSSTA moments to {MOMENT_TOLERANCE:g}; "
        f"best of {rounds} rounds)",
        "",
    ]
    records = []
    ok = True
    for name in circuits:
        record, circuit_lines, circuit_ok = bench_circuit(
            name, delay_model, variation_model, mc_samples, rounds
        )
        records.append(record)
        lines.extend(circuit_lines)
        lines.append("")
        ok = ok and circuit_ok
    for spec_text in generated or []:
        record, circuit_lines, circuit_ok = bench_generated(
            spec_text, delay_model, rounds
        )
        records.append(record)
        lines.extend(circuit_lines)
        lines.append("")
        ok = ok and circuit_ok
    return "\n".join(lines).rstrip() + "\n", records, ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: one small circuit, fewer samples",
    )
    parser.add_argument(
        "--circuits",
        default=None,
        help="comma-separated registry circuit names (overrides the mode default)",
    )
    parser.add_argument(
        "--generated",
        action="append",
        default=None,
        metavar="DEPTH,WIDTH[,SEED]",
        help="additionally run the front-end scale benchmark on a generated "
             "circuit (repeatable; any SyntheticSpec keyword form works, "
             "e.g. 'depth=100,width=1000,seed=17')",
    )
    parser.add_argument(
        "--mc-samples",
        type=int,
        default=None,
        help="Monte-Carlo samples (default: 128 — cache-resident regime "
        "for the propagation comparison; see module docstring)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds per path (default: 2 quick / 3 full)",
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="skip appending to BENCH_engines.json (CI smoke uses this)",
    )
    args = parser.parse_args(argv)

    circuits = (
        [name.strip() for name in args.circuits.split(",") if name.strip()]
        if args.circuits
        else (QUICK_CIRCUITS if args.quick else FULL_CIRCUITS)
    )
    if args.circuits == "":
        circuits = []
    mc_samples = args.mc_samples or 128
    rounds = args.rounds or (2 if args.quick else 5)

    report, records, ok = run(circuits, mc_samples, rounds,
                              generated=args.generated)
    print(report)

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engines.txt").write_text(report)
    if not args.no_trajectory:
        append_trajectory(records, "quick" if args.quick else "full")
        print(f"trajectory appended to {TRAJECTORY_PATH}")

    if not ok:
        print(
            "FAILED: a levelized path diverged from its scalar engine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
