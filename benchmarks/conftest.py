"""Shared configuration for the benchmark harness.

Every figure/table of the paper has a ``bench_*.py`` module here.  The
benchmarks serve two purposes:

* **regeneration** — they produce the same rows/series the paper reports
  (written to ``benchmarks/results/*.txt`` and printed when run with ``-s``),
* **timing** — pytest-benchmark measures the runtime of the key kernels
  (optimizer passes, SSTA engines, max approximations).

The paper's full Table 1 covers 13 circuits up to ~3000 gates; regenerating
all of it takes tens of minutes in pure Python, so by default the harness
runs a representative subset and the full sweep is opt-in:

* ``REPRO_BENCH_FULL=1``      — run every Table 1 circuit at both lambdas.
* ``REPRO_BENCH_CIRCUITS=a,b``— run an explicit comma-separated circuit list.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.circuits.registry import BENCHMARK_NAMES

#: Subset used by default so the harness finishes in a few minutes.
DEFAULT_CIRCUITS = ["alu1", "alu2", "alu3", "c432", "c499"]

RESULTS_DIR = Path(__file__).parent / "results"


def selected_circuits() -> list:
    """Circuit list controlled by the REPRO_BENCH_* environment variables."""
    explicit = os.environ.get("REPRO_BENCH_CIRCUITS")
    if explicit:
        names = [name.strip() for name in explicit.split(",") if name.strip()]
        unknown = [n for n in names if n not in BENCHMARK_NAMES and n != "c17"]
        if unknown:
            raise ValueError(f"unknown benchmark circuits requested: {unknown}")
        return names
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return list(BENCHMARK_NAMES)
    return list(DEFAULT_CIRCUITS)


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated table/series under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def substrates():
    """(library, delay_model, variation_model) shared across benchmarks."""
    from repro.library.delay_model import LookupTableDelayModel
    from repro.library.synthetic90nm import make_synthetic_90nm_library
    from repro.variation.model import VariationModel

    library = make_synthetic_90nm_library()
    return library, LookupTableDelayModel(library), VariationModel()
