"""Normalized perf-trajectory records shared by every ``bench_*.py``.

Each benchmark appends one *entry* per run to a checked-in ``BENCH_*.json``
file at the repo root::

    {
      "description": "<what this trajectory tracks>",
      "entries": [
        {"date": "YYYY-MM-DD", "mode": "quick"|"full", "circuits": [...]},
        ...
      ]
    }

Per-circuit records are benchmark-specific, but comparable metrics follow
one convention so ``tools/bench_tripwire.py`` can police them generically:

* a dimensionless ``"speedup"`` key (scalar-vs-levelized, scratch-vs-fast,
  ...) wherever two implementations of the same computation are compared —
  machine-independent, so CI can compare against entries recorded anywhere;
* ``"bit_identical"`` (bool) / ``"max_moment_err"`` (float) wherever an
  equivalence is asserted — the accuracy half of the tripwire.

Absolute wall-clock (``*_ms``, ``*_s``) is recorded for humans but never
gated: it only reflects whichever machine ran the bench last.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent


def trajectory_path(name: str) -> Path:
    """Repo-root path of one trajectory file (``name`` like ``"engines"``)."""
    return REPO_ROOT / f"BENCH_{name}.json"


def append_entry(
    name: str,
    records: List[Dict[str, object]],
    mode: str,
    description: str,
) -> Path:
    """Append one normalized entry to ``BENCH_<name>.json`` and return it."""
    path = trajectory_path(name)
    if path.exists():
        trajectory = json.loads(path.read_text())
    else:
        trajectory = {"description": description, "entries": []}
    trajectory["entries"].append(
        {
            "date": time.strftime("%Y-%m-%d"),
            "mode": mode,
            "circuits": records,
        }
    )
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return path
