"""Serial vs parallel sweep-orchestration benchmark.

Runs the same Table-1 (circuit, lambda) grid three times through
:func:`repro.runner.sweep.run_cells`:

1. **serial** — ``jobs=1``, the historical single-process path;
2. **parallel** — ``jobs=N`` across a process pool;
3. **resume** — ``jobs=N`` again over the parallel run's artifact
   directory with ``resume=True``, which must complete with **zero**
   recomputed cells.

The benchmark asserts that serial and parallel produce identical Table-1
rows (everything except the measured wall-clock runtimes), that the resumed
run reuses every artifact, and that the parallel sweep is at least
``MIN_SPEEDUP``x faster than the serial one.  The speedup assertion only
arms in full (non ``--quick``) mode with >= 4 effective workers
(``min(jobs, usable cores)``): on fewer cores a process pool cannot reach
2x, and the quick grid is dominated by its largest cell (its serial total /
longest cell ratio sits below 2), so in those configurations the speedup is
reported but not asserted.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_sweep.py            # acceptance set

The report is written to ``benchmarks/results/sweep.txt``.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple

# Allow running as a plain script from the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.report import format_table1  # noqa: E402
from repro.core.sizer import SizerConfig  # noqa: E402
from repro.obs import clock  # noqa: E402
from repro.runner.sweep import run_cells, table1_specs  # noqa: E402

#: Acceptance grid: >= 5 circuits x 2 lambdas (ISSUE 3 acceptance criteria).
FULL_CIRCUITS = ["alu1", "alu2", "alu3", "c432", "c499"]
FULL_LAMS = (3.0, 9.0)
#: Quick (CI smoke) configuration.
QUICK_CIRCUITS = ["c17", "alu1"]
QUICK_LAMS = (3.0, 9.0)

MIN_SPEEDUP = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _rows_without_runtime(results) -> List[dict]:
    rows = []
    for result in results:
        row = dict(result.result)
        row.pop("runtime_seconds", None)
        rows.append(row)
    return rows


def run(
    circuits: List[str],
    lams: Tuple[float, ...],
    jobs: int,
    max_iterations: int,
    assert_speedup: bool = True,
) -> Tuple[str, bool]:
    """Run the benchmark; returns (report text, all-checks-passed)."""
    config = SizerConfig(lam=lams[0], max_iterations=max_iterations)
    specs = table1_specs(circuits, lams, sizer_config=config)
    cores = _usable_cores()
    lines = [
        "Parallel sweep orchestration (repro.runner)",
        f"({len(circuits)} circuits x {len(lams)} lambdas = {len(specs)} cells, "
        f"max_iterations = {max_iterations}, jobs = {jobs}, "
        f"usable cores = {cores})",
        "",
    ]
    ok = True
    workdir = Path(tempfile.mkdtemp(prefix="bench_sweep_"))
    try:
        serial_dir = workdir / "serial"
        parallel_dir = workdir / "parallel"

        start = clock()
        serial = run_cells(specs, jobs=1, out_dir=serial_dir)
        t_serial = clock() - start

        start = clock()
        parallel = run_cells(specs, jobs=jobs, out_dir=parallel_dir)
        t_parallel = clock() - start

        identical = _rows_without_runtime(serial.results) == _rows_without_runtime(
            parallel.results
        )
        ok = ok and identical
        speedup = t_serial / max(t_parallel, 1e-12)
        lines.append(
            f"serial   (jobs=1) : {t_serial:8.1f} s   "
            f"({serial.computed} computed / {serial.skipped} reused)"
        )
        lines.append(
            f"parallel (jobs={jobs}) : {t_parallel:8.1f} s   "
            f"({parallel.computed} computed / {parallel.skipped} reused)"
        )
        lines.append(
            f"speedup           : {speedup:8.2f}x   rows identical: "
            f"{'yes' if identical else 'NO  << MISMATCH'}"
        )
        effective_workers = min(jobs, cores)
        if assert_speedup and effective_workers >= 4:
            met = speedup >= MIN_SPEEDUP
            ok = ok and met
            lines.append(
                f"speedup target    : >= {MIN_SPEEDUP:.1f}x "
                f"{'met' if met else 'NOT MET  << FAILURE'}"
            )
        else:
            reason = (
                f"only {effective_workers} effective worker(s) = "
                f"min(jobs={jobs}, cores={cores})"
                if effective_workers < 4
                else "quick mode"
            )
            lines.append(f"speedup target    : reported only ({reason})")

        start = clock()
        resumed = run_cells(specs, jobs=jobs, out_dir=parallel_dir, resume=True)
        t_resume = clock() - start
        zero_recomputed = resumed.computed == 0 and resumed.skipped == len(specs)
        ok = ok and zero_recomputed
        lines.append(
            f"resume   (jobs={jobs}) : {t_resume:8.1f} s   "
            f"({resumed.computed} computed / {resumed.skipped} reused) "
            f"{'-- zero re-sized cells' if zero_recomputed else '<< RECOMPUTED CELLS'}"
        )
        resumed_identical = _rows_without_runtime(
            resumed.results
        ) == _rows_without_runtime(parallel.results)
        ok = ok and resumed_identical
        if not resumed_identical:
            lines.append("resume rows DIVERGED from the parallel run  << FAILURE")

        lines.append("")
        lines.append(format_table1([r.table1_row() for r in serial.results]))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return "\n".join(lines), ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny circuits, few passes (finishes in ~1 min)",
    )
    parser.add_argument(
        "--circuits",
        default=None,
        help="comma-separated registry circuit names (overrides the mode default)",
    )
    parser.add_argument("--lam", type=float, nargs="+", default=None)
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker processes for the parallel run")
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="outer-loop pass cap per cell (default: 3 quick / 8 full)",
    )
    args = parser.parse_args(argv)

    circuits = (
        [name.strip() for name in args.circuits.split(",") if name.strip()]
        if args.circuits
        else (QUICK_CIRCUITS if args.quick else FULL_CIRCUITS)
    )
    lams = tuple(args.lam) if args.lam else (QUICK_LAMS if args.quick else FULL_LAMS)
    max_iterations = (
        args.max_iterations
        if args.max_iterations is not None
        else (3 if args.quick else 8)
    )

    report, ok = run(
        circuits, lams, args.jobs, max_iterations, assert_speedup=not args.quick
    )
    print(report)

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "sweep.txt").write_text(report + "\n")

    if not ok:
        print("FAILED: sweep benchmark checks did not pass", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
