"""Regenerate Table 1: per-circuit sigma reduction / mean / area at lambda = 3 and 9.

The paper's Table 1 reports, for 13 circuits, the original sigma/mu of the
mean-delay-optimized design and — for lambda = 3 and lambda = 9 — the change
in mean delay, the change in sigma, the resulting sigma/mu, the area change
and the runtime.  ``test_regenerate_table1`` reproduces those rows for the
selected circuit subset (see ``conftest.selected_circuits``) and writes them
to ``benchmarks/results/table1.txt``; the timed benchmark measures one
representative optimization run.

Paper headline to compare against: at lambda = 9 an *average* sigma
reduction of ~72 % for ~20 % average area increase; at lambda = 3 roughly
-55 % sigma for ~12 % area.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import selected_circuits, write_result
from repro.analysis.experiments import run_table1
from repro.analysis.metrics import summarize_rows
from repro.analysis.report import format_table1
from repro.circuits.registry import build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.sizer import SizerConfig, StatisticalGreedySizer


@pytest.mark.benchmark(group="table1")
def test_regenerate_table1(benchmark):
    """Regenerate the Table 1 rows for the selected circuits (both lambdas)."""
    circuits = selected_circuits()
    rows = benchmark.pedantic(
        lambda: run_table1(circuits, lams=(3.0, 9.0)), rounds=1, iterations=1
    )
    text = format_table1(rows)
    lines = ["Table 1 reproduction (selected circuits)", "", text, ""]
    for lam in (3.0, 9.0):
        summary = summarize_rows([r for r in rows if r.lam == lam])
        paper = "(paper: -72 % sigma / +20 % area)" if lam == 9.0 else "(paper: ~-55 % sigma / ~+12 % area)"
        lines.append(
            f"lambda={lam:g}: avg sigma {-summary['avg_sigma_reduction_pct']:.1f} %, "
            f"avg area {summary['avg_area_increase_pct']:+.1f} %, "
            f"avg mean {summary['avg_mean_increase_pct']:+.1f} %  {paper}"
        )
    report = "\n".join(lines)
    print("\n" + report)
    write_result("table1.txt", report)

    # Qualitative shape checks (the quantitative record lives in EXPERIMENTS.md):
    # sigma is consistently reduced, never increased, and area does not shrink.
    for row in rows:
        assert row.sigma_change_pct <= 1e-9, row
        assert row.area_increase_pct >= -1.0, row


@pytest.mark.benchmark(group="table1")
def test_statistical_greedy_runtime(benchmark, substrates):
    """Time one full StatisticalGreedy run on the c432-class circuit (lambda=3)."""
    _, delay_model, variation_model = substrates

    def run_once():
        circuit = build_benchmark("c432")
        MeanDelaySizer(delay_model).optimize(circuit)
        sizer = StatisticalGreedySizer(
            delay_model, variation_model, SizerConfig(lam=3.0)
        )
        return sizer.optimize(circuit).sigma_reduction_pct

    reduction = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert reduction >= 0.0


@pytest.mark.benchmark(group="table1")
def test_baseline_sizer_runtime(benchmark, substrates):
    """Time the deterministic mean-delay baseline on the c432-class circuit."""
    _, delay_model, _ = substrates

    def run_once():
        circuit = build_benchmark("c432")
        return MeanDelaySizer(delay_model).optimize(circuit).delay_reduction_pct

    reduction = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert reduction > 0.0
