"""Regenerate Figure 4: normalized mean vs sigma trade-off for C432.

The paper's Fig. 4 sweeps the Eq. 7 weight lambda over {3, 6, 9} for circuit
C432 and plots the resulting (mean/mu0, sigma/mu0) points against the
mean-optimized original.  The expected shape:

* the original (lambda = 0) point has the largest sigma/mu0,
* increasing lambda moves points down (smaller sigma) and slightly right
  (mean creeps up within a few percent),
* beyond some lambda the curve flattens because the unsystematic variation
  floor cannot be optimized away.

Results are written to ``benchmarks/results/fig4.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig4_sweep
from repro.analysis.report import format_fig4

CIRCUIT = "c432"
LAMS = (0.0, 3.0, 6.0, 9.0)


@pytest.mark.benchmark(group="fig4")
def test_regenerate_fig4(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig4_sweep(CIRCUIT, lams=LAMS), rounds=1, iterations=1
    )
    report = (
        f"Figure 4 reproduction: normalized mean-sigma sweep for {CIRCUIT}\n\n"
        + format_fig4(points)
        + "\n\npaper (C432): lambda 3 -> -58 % sigma, lambda 9 -> -75 % sigma, "
        "with +2 %/+4 % mean."
    )
    print("\n" + report)
    write_result("fig4.txt", report)

    by_lam = {p.lam: p for p in points}
    # The original point is the normalization reference.
    assert by_lam[0.0].normalized_mean == pytest.approx(1.0)
    # Every statistical point has lower sigma than the original.
    for lam in LAMS[1:]:
        assert by_lam[lam].sigma <= by_lam[0.0].sigma + 1e-9
    # The best sigma across the sweep is meaningfully below the original
    # (the curve bends down, as in the paper's figure).
    best_sigma = min(p.sigma for p in points)
    assert best_sigma < 0.9 * by_lam[0.0].sigma
    # Mean stays within a modest band of the original.
    for p in points:
        assert p.normalized_mean < 1.2
