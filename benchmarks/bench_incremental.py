"""From-scratch vs incremental/vectorized sizing-pipeline benchmark.

Measures the wall-clock effect of the exactness-preserving evaluation
pipeline on full :class:`~repro.core.sizer.StatisticalGreedySizer` runs:

* **baseline** — ``SizerConfig(incremental_reanalysis=False,
  vectorized_fassta=False)``: every outer-loop analysis re-propagates the
  whole circuit and every inner-loop evaluation re-extracts and re-times
  its subcircuit from scratch;
* **fast** — the default pipeline: incremental FULLSSTA re-analysis over
  dirty cones, memoized subcircuit extraction and whole-gate evaluations,
  shared delay moments across candidate sizes, vectorized FASSTA.

Because every layer is exactness-preserving the two configurations take
identical sizing decisions; the benchmark asserts the final mu/sigma match
to 1e-6 and reports the speedup.  A second section times the raw engines
(scalar vs vectorized FASSTA; from-scratch vs incremental FULLSSTA under
random resize sequences).

Run directly::

    PYTHONPATH=src python benchmarks/bench_incremental.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_incremental.py           # largest circuit

The report is written to ``benchmarks/results/incremental.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

# Allow running as a plain script from the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.trajectory import append_entry  # noqa: E402
from repro.circuits.registry import build_benchmark  # noqa: E402
from repro.core.fassta import FASSTA  # noqa: E402
from repro.core.fullssta import FULLSSTA, IncrementalReanalysis  # noqa: E402
from repro.core.sizer import SizerConfig, SizerResult, StatisticalGreedySizer  # noqa: E402
from repro.library.delay_model import LookupTableDelayModel  # noqa: E402
from repro.library.synthetic90nm import make_synthetic_90nm_library  # noqa: E402
from repro.obs import clock  # noqa: E402
from repro.variation.model import VariationModel  # noqa: E402

#: Default circuit for the full benchmark: the largest registry circuit.
FULL_CIRCUITS = ["c6288"]
#: Quick (CI smoke) configuration.
QUICK_CIRCUITS = ["c432"]

MOMENT_TOLERANCE = 1e-6


def _substrates():
    library = make_synthetic_90nm_library()
    return LookupTableDelayModel(library), VariationModel()


def _run_sizer(
    circuit_name: str,
    delay_model,
    variation_model,
    max_iterations: int,
    lam: float,
    fast: bool,
) -> Tuple[SizerResult, float]:
    circuit = build_benchmark(circuit_name)
    config = SizerConfig(
        lam=lam,
        max_iterations=max_iterations,
        incremental_reanalysis=fast,
        vectorized_fassta=fast,
    )
    sizer = StatisticalGreedySizer(delay_model, variation_model, config)
    start = clock()
    result = sizer.optimize(circuit)
    return result, clock() - start


def _time_engines(circuit_name: str, delay_model, variation_model):
    """Raw-engine comparison: FASSTA scalar/vectorized, FULLSSTA scratch/incremental."""
    circuit = build_benchmark(circuit_name)
    rounds = 3

    scalar = FASSTA(delay_model, variation_model)
    vectorized = FASSTA(delay_model, variation_model, vectorized=True)
    scalar.analyze(circuit)
    vectorized.analyze(circuit)  # warm the levelized plan
    start = clock()
    for _ in range(rounds):
        ref = scalar.analyze(circuit)
    t_scalar = (clock() - start) / rounds
    start = clock()
    for _ in range(rounds):
        vec = vectorized.analyze(circuit)
    t_vector = (clock() - start) / rounds
    moment_err = abs(ref.mean - vec.mean) + abs(ref.sigma - vec.sigma)

    engine = FULLSSTA(delay_model, variation_model)
    incremental = IncrementalReanalysis(engine, circuit)
    incremental.analyze()
    rng = np.random.default_rng(2026)
    names = list(circuit.gates)
    t_full = t_inc = 0.0
    steps = 8
    for _ in range(steps):
        for gate in rng.choice(names, size=3, replace=False):
            circuit.set_size(str(gate), int(rng.integers(0, 7)))
        start = clock()
        inc_result = incremental.analyze()
        t_inc += clock() - start
        start = clock()
        full_result = engine.analyze(circuit)
        t_full += clock() - start
        assert abs(inc_result.mean - full_result.mean) <= MOMENT_TOLERANCE
        assert abs(inc_result.sigma - full_result.sigma) <= MOMENT_TOLERANCE

    lines = [
        f"Raw engines on {circuit_name} ({circuit.num_gates()} gates):",
        f"  FASSTA   scalar {t_scalar * 1e3:8.1f} ms   vectorized {t_vector * 1e3:8.1f} ms   "
        f"speedup {t_scalar / max(t_vector, 1e-12):.2f}x   moment err {moment_err:.2e}",
        f"  FULLSSTA scratch {t_full / steps * 1e3:7.1f} ms   incremental {t_inc / steps * 1e3:7.1f} ms   "
        f"speedup {t_full / max(t_inc, 1e-12):.2f}x   (3 random resizes per step)",
    ]
    record = {
        "circuit": circuit_name,
        "gates": circuit.num_gates(),
        "kind": "engines",
        "fassta": {
            "scalar_ms": t_scalar * 1e3,
            "levelized_ms": t_vector * 1e3,
            "speedup": t_scalar / max(t_vector, 1e-12),
            "max_moment_err": moment_err,
            "tolerance": MOMENT_TOLERANCE,
        },
        "fullssta_incremental": {
            "scratch_ms": t_full / steps * 1e3,
            "incremental_ms": t_inc / steps * 1e3,
            "speedup": t_full / max(t_inc, 1e-12),
        },
    }
    return lines, record


def run(
    circuits: List[str],
    max_iterations: int,
    lam: float,
    engine_circuit: Optional[str] = None,
) -> Tuple[str, List[dict], bool]:
    """Run the benchmark; returns (report text, trajectory records, ok)."""
    delay_model, variation_model = _substrates()
    lines = [
        "Incremental & vectorized SSTA evaluation pipeline",
        f"(lam = {lam}, max_iterations = {max_iterations}; "
        f"tolerance on final moments = {MOMENT_TOLERANCE:g})",
        "",
        f"{'circuit':8s} {'gates':>6s} {'scratch (s)':>12s} {'fast (s)':>10s} "
        f"{'speedup':>8s} {'mu diff':>9s} {'sigma diff':>10s}",
    ]
    ok = True
    speedups = []
    records = []
    for name in circuits:
        baseline, t_base = _run_sizer(
            name, delay_model, variation_model, max_iterations, lam, fast=False
        )
        fast, t_fast = _run_sizer(
            name, delay_model, variation_model, max_iterations, lam, fast=True
        )
        mu_diff = abs(baseline.final.mean - fast.final.mean)
        sigma_diff = abs(baseline.final.sigma - fast.final.sigma)
        matched = mu_diff <= MOMENT_TOLERANCE and sigma_diff <= MOMENT_TOLERANCE
        ok = ok and matched
        speedup = t_base / max(t_fast, 1e-12)
        speedups.append(speedup)
        num_gates = build_benchmark(name).num_gates()
        records.append({
            "circuit": name,
            "gates": num_gates,
            "kind": "optimizer",
            "optimizer": {
                "scratch_s": t_base,
                "fast_s": t_fast,
                "speedup": speedup,
                "max_moment_err": max(mu_diff, sigma_diff),
                "tolerance": MOMENT_TOLERANCE,
            },
        })
        lines.append(
            f"{name:8s} {num_gates:6d} {t_base:12.2f} {t_fast:10.2f} "
            f"{speedup:7.2f}x {mu_diff:9.2e} {sigma_diff:10.2e}"
            + ("" if matched else "  << MOMENT MISMATCH")
        )
        diag = fast.diagnostics
        lines.append(
            f"         eval cache {diag.get('evaluation_cache_hits', 0)}/{diag.get('evaluation_cache_hits', 0) + diag.get('evaluation_cache_misses', 0)} hits, "
            f"reanalysis {diag.get('incremental_runs', 0)} incremental / {diag.get('full_runs', 0)} full, "
            f"{diag.get('gates_retimed', 0)} gates retimed over {len(fast.iterations)} passes"
        )

    lines.append("")
    engine_lines, engine_record = _time_engines(
        engine_circuit or circuits[-1], delay_model, variation_model
    )
    lines.extend(engine_lines)
    records.append(engine_record)
    if speedups:
        lines.append("")
        lines.append(
            f"Optimizer speedup: min {min(speedups):.2f}x / max {max(speedups):.2f}x "
            f"(identical sizing decisions in both configurations)"
        )
    return "\n".join(lines), records, ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small circuit, few passes (finishes in ~1 min)",
    )
    parser.add_argument(
        "--circuits",
        default=None,
        help="comma-separated registry circuit names (overrides the mode default)",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="outer-loop pass cap for both configurations (default: 4 quick / 10 full)",
    )
    parser.add_argument("--lam", type=float, default=3.0, help="cost weight lambda")
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="skip appending to BENCH_incremental.json (CI smoke uses this)",
    )
    args = parser.parse_args(argv)

    circuits = (
        [name.strip() for name in args.circuits.split(",") if name.strip()]
        if args.circuits
        else (QUICK_CIRCUITS if args.quick else FULL_CIRCUITS)
    )
    if args.max_iterations is not None:
        max_iterations = args.max_iterations
    else:
        max_iterations = 4 if args.quick else 10

    report, records, ok = run(circuits, max_iterations, args.lam)
    print(report)

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "incremental.txt").write_text(report + "\n")
    if not args.no_trajectory:
        path = append_entry(
            "incremental", records, "quick" if args.quick else "full",
            description="from-scratch vs incremental/vectorized sizing "
                        "pipeline (bench_incremental.py)",
        )
        print(f"trajectory appended to {path}")

    if not ok:
        print("FAILED: incremental/vectorized pipeline diverged from the "
              "from-scratch engines", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
