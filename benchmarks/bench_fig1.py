"""Regenerate Figure 1: circuit output-delay PDF at different optimization points.

The paper's Fig. 1 plots the output-delay pdf of a circuit optimized purely
for mean delay ("original", the widest curve) against two statistically
optimized variants whose pdfs are visibly narrower.  This benchmark
regenerates the three curves with FULLSSTA for one ALU-class circuit and
writes them (plus an ASCII rendering) to ``benchmarks/results/fig1.txt``.

Shape check: every variance-optimized curve must have a smaller standard
deviation than the original, with sigma shrinking (weakly) as lambda grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig1
from repro.analysis.report import format_pdf_curve

CIRCUIT = "alu2"
LAMS = (3.0, 9.0)


@pytest.mark.benchmark(group="fig1")
def test_regenerate_fig1(benchmark):
    curves = benchmark.pedantic(
        lambda: run_fig1(CIRCUIT, lams=LAMS), rounds=1, iterations=1
    )

    lines = [f"Figure 1 reproduction: output-delay pdfs for {CIRCUIT}", ""]
    lines.append(
        f"original    : mean {curves.original.mean():8.1f} ps   "
        f"sigma {curves.original.std():6.2f} ps"
    )
    for lam, pdf in sorted(curves.optimized.items()):
        lines.append(
            f"lambda={lam:<4g}: mean {pdf.mean():8.1f} ps   sigma {pdf.std():6.2f} ps"
        )
    lines.append("")
    for label, points in curves.series().items():
        lines.append(format_pdf_curve(points, width=40, label=f"--- {label} ---"))
        lines.append("")
    report = "\n".join(lines)
    print("\n" + report)
    write_result("fig1.txt", report)

    # Shape assertions: optimization narrows the output pdf.
    sigma_original = curves.original.std()
    for lam, pdf in curves.optimized.items():
        assert pdf.std() <= sigma_original + 1e-9, (lam, pdf.std(), sigma_original)
