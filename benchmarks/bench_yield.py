"""Yield-mode benchmark: vectorized discrete-PDF engine + yield-targeted sizing.

Two sections:

* **engine** — scalar vs levelized-vectorized FULLSSTA wall-clock on
  registry circuits.  Both paths perform the same canonicalize/compact
  arithmetic, so the benchmark asserts their output moments agree to 1e-9
  and reports the speedup;
* **sizer** — ``SizerConfig(objective="yield")`` against the paper's
  weighted-cost sizer from the same mean-delay baseline.  The comparison
  metric is the acceptance criterion of the yield mode: the yield-sized
  circuit's parametric timing yield at its own target period must be at
  least the cost-sized circuit's.

Run directly::

    PYTHONPATH=src python benchmarks/bench_yield.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_yield.py           # larger circuits

The report is written to ``benchmarks/results/yield.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

# Allow running as a plain script from the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.timing_yield import period_for_yield, timing_yield  # noqa: E402
from repro.circuits.registry import build_benchmark  # noqa: E402
from repro.core.baseline import MeanDelaySizer  # noqa: E402
from repro.core.fullssta import FULLSSTA  # noqa: E402
from repro.core.sizer import SizerConfig, StatisticalGreedySizer  # noqa: E402
from repro.library.delay_model import LookupTableDelayModel  # noqa: E402
from repro.library.synthetic90nm import make_synthetic_90nm_library  # noqa: E402
from repro.obs import clock  # noqa: E402
from repro.variation.model import VariationModel  # noqa: E402

#: Engine-comparison circuits (full / CI smoke).
FULL_ENGINE_CIRCUITS = ["c880", "c2670", "c6288"]
QUICK_ENGINE_CIRCUITS = ["c432"]

#: Sizer-comparison circuit: the yield objective's discrete-pdf quantile
#: pays off on c432's wide, many-output priority-controller structure.
SIZER_CIRCUIT = "c432"

MOMENT_TOLERANCE = 1e-9
TARGET_YIELD = 0.99


def _substrates():
    library = make_synthetic_90nm_library()
    return LookupTableDelayModel(library), VariationModel()


def _bench_engines(circuits: List[str], delay_model, variation_model) -> Tuple[List[str], bool]:
    lines = [
        "Scalar vs vectorized FULLSSTA (discrete-pdf propagation)",
        f"(moment tolerance {MOMENT_TOLERANCE:g})",
        "",
        f"{'circuit':8s} {'gates':>6s} {'scalar (ms)':>12s} {'vector (ms)':>12s} "
        f"{'speedup':>8s} {'moment err':>11s}",
    ]
    ok = True
    rounds = 3
    for name in circuits:
        circuit = build_benchmark(name)
        scalar = FULLSSTA(delay_model, variation_model)
        vectorized = FULLSSTA(delay_model, variation_model, vectorized=True)
        scalar.analyze(circuit)
        vectorized.analyze(circuit)  # warm the levelized plan
        start = clock()
        for _ in range(rounds):
            ref = scalar.analyze(circuit)
        t_scalar = (clock() - start) / rounds
        start = clock()
        for _ in range(rounds):
            vec = vectorized.analyze(circuit)
        t_vector = (clock() - start) / rounds
        err = max(abs(ref.mean - vec.mean), abs(ref.sigma - vec.sigma))
        matched = err <= MOMENT_TOLERANCE
        ok = ok and matched
        lines.append(
            f"{name:8s} {circuit.num_gates():6d} {t_scalar * 1e3:12.1f} "
            f"{t_vector * 1e3:12.1f} {t_scalar / max(t_vector, 1e-12):7.2f}x "
            f"{err:11.2e}" + ("" if matched else "  << MOMENT MISMATCH")
        )
    return lines, ok


def _bench_sizer(
    delay_model, variation_model, max_iterations: int
) -> Tuple[List[str], bool]:
    referee = FULLSSTA(delay_model, variation_model, num_samples=31, vectorized=True)

    def sized(config: SizerConfig):
        circuit = build_benchmark(SIZER_CIRCUIT)
        MeanDelaySizer(delay_model).optimize(circuit)
        start = clock()
        StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        runtime = clock() - start
        return referee.analyze(circuit).output_pdf, runtime

    yield_pdf, t_yield = sized(
        SizerConfig(objective="yield", target_yield=TARGET_YIELD,
                    max_iterations=max_iterations)
    )
    cost_pdf, t_cost = sized(SizerConfig(lam=3.0, max_iterations=max_iterations))

    target_period = period_for_yield(yield_pdf, TARGET_YIELD)
    yield_at_target = timing_yield(yield_pdf, target_period)
    cost_at_target = timing_yield(cost_pdf, target_period)
    ok = yield_at_target >= cost_at_target - 1e-12
    lines = [
        f"Yield-objective vs weighted-cost sizer on {SIZER_CIRCUIT} "
        f"(target yield {TARGET_YIELD:g}, {max_iterations} pass cap)",
        "",
        f"  yield-sized : period@{100 * TARGET_YIELD:g}% "
        f"{target_period:8.1f} ps   runtime {t_yield:6.1f} s",
        f"  cost-sized  : period@{100 * TARGET_YIELD:g}% "
        f"{period_for_yield(cost_pdf, TARGET_YIELD):8.1f} ps   "
        f"runtime {t_cost:6.1f} s   (lambda = 3)",
        f"  yield at the yield-sized target period ({target_period:.1f} ps): "
        f"yield-sized {100 * yield_at_target:.2f} %  vs  "
        f"cost-sized {100 * cost_at_target:.2f} %"
        + ("" if ok else "  << YIELD REGRESSION"),
    ]
    return lines, ok


def run(engine_circuits: List[str], max_iterations: int) -> Tuple[str, bool]:
    """Run the benchmark; returns (report text, all-checks-passed)."""
    delay_model, variation_model = _substrates()
    engine_lines, engines_ok = _bench_engines(
        engine_circuits, delay_model, variation_model
    )
    sizer_lines, sizer_ok = _bench_sizer(delay_model, variation_model, max_iterations)
    return "\n".join(engine_lines + [""] + sizer_lines), engines_ok and sizer_ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small circuits, capped sizer budget",
    )
    parser.add_argument(
        "--circuits",
        default=None,
        help="comma-separated engine-comparison circuits (overrides the mode default)",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="outer-loop pass cap for both sizers (default: 12 quick / 60 full)",
    )
    args = parser.parse_args(argv)

    circuits = (
        [name.strip() for name in args.circuits.split(",") if name.strip()]
        if args.circuits
        else (QUICK_ENGINE_CIRCUITS if args.quick else FULL_ENGINE_CIRCUITS)
    )
    max_iterations = (
        args.max_iterations
        if args.max_iterations is not None
        else (12 if args.quick else 60)
    )

    report, ok = run(circuits, max_iterations)
    print(report)

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "yield.txt").write_text(report + "\n")

    if not ok:
        print("FAILED: vectorized engine diverged or the yield objective lost "
              "to the weighted-cost sizer", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
