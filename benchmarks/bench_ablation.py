"""Ablation benchmarks for the design choices DESIGN.md calls out.

The paper makes several engineering choices whose effect is asserted but not
isolated; these benchmarks isolate them on a mid-size circuit:

* **subcircuit depth** — §4.5 claims two levels of transitive fanin/fanout
  are "sufficiently accurate without being too costly"; the ablation sweeps
  depth 1/2/3 and reports sigma reduction vs runtime.
* **dominance threshold** — §4.3's shortcut fires at 2.6 normalized sigmas;
  the ablation compares 2.6 against an always-evaluate variant (threshold
  inf) and a sloppier 1.5 to show accuracy is insensitive but cost is not.
* **pdf sampling rate** — §4.2 uses 10-15 samples per pdf; the ablation
  sweeps 7/13/25 samples and reports the sigma estimate drift and runtime.

Results are written to ``benchmarks/results/ablation.txt``.
"""

from __future__ import annotations


import pytest

from benchmarks.conftest import write_result
from repro.circuits.registry import build_benchmark
from repro.core import clark
from repro.core.baseline import MeanDelaySizer
from repro.core.fullssta import FULLSSTA
from repro.core.sizer import SizerConfig, StatisticalGreedySizer
from repro.obs import clock  # noqa: E402

CIRCUIT = "alu2"


def _prepared(substrates):
    _, delay_model, _ = substrates
    circuit = build_benchmark(CIRCUIT)
    MeanDelaySizer(delay_model).optimize(circuit)
    return circuit


@pytest.mark.benchmark(group="ablation")
def test_subcircuit_depth_ablation(benchmark, substrates):
    """Sigma reduction and runtime of the sizer at extraction depth 1, 2, 3."""
    _, delay_model, variation_model = substrates
    base = _prepared(substrates)
    base_sizes = base.sizes()

    def sweep():
        rows = []
        for depth in (1, 2, 3):
            circuit = base.copy()
            circuit.apply_sizes(base_sizes)
            start = clock()
            result = StatisticalGreedySizer(
                delay_model,
                variation_model,
                SizerConfig(lam=3.0, subcircuit_depth=depth),
            ).optimize(circuit)
            rows.append((depth, result.sigma_reduction_pct,
                         result.area_increase_pct, clock() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"Ablation: subcircuit extraction depth on {CIRCUIT} (lambda=3)",
        "",
        f"{'depth':>5s} {'sigma reduction %':>18s} {'area increase %':>16s} {'runtime (s)':>12s}",
    ]
    for depth, sigma_red, area_inc, elapsed in rows:
        lines.append(f"{depth:5d} {sigma_red:18.1f} {area_inc:16.1f} {elapsed:12.1f}")
    lines.append("")
    lines.append("paper §4.5: depth 2 is the accuracy/cost sweet spot.")
    report = "\n".join(lines)
    print("\n" + report)
    write_result("ablation_depth.txt", report)

    # All depths must reduce sigma; the sweep exists to expose the trade-off.
    for depth, sigma_red, _, _ in rows:
        assert sigma_red >= 0.0


@pytest.mark.benchmark(group="ablation")
def test_dominance_threshold_ablation(benchmark):
    """Accuracy/speed of the fast max at different dominance thresholds."""
    import random

    rng = random.Random(1)
    pairs = []
    for _ in range(3000):
        mu_a = rng.uniform(100.0, 1200.0)
        pairs.append(
            (mu_a, rng.uniform(2.0, 60.0), mu_a + rng.uniform(-250.0, 250.0), rng.uniform(2.0, 60.0))
        )

    def sweep():
        rows = []
        for threshold in (1.5, 2.6, float("inf")):
            start = clock()
            error = 0.0
            for pair in pairs:
                exact_mean, _ = clark.clark_max_exact(*pair)
                fast_mean, _ = clark.clark_max_fast(*pair, threshold=threshold)
                error += abs(fast_mean - exact_mean) / max(exact_mean, 1e-9)
            rows.append((threshold, 100.0 * error / len(pairs), clock() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation: dominance threshold of the fast max (Eqs. 5/6)",
        "",
        f"{'threshold':>10s} {'avg mean error %':>17s} {'runtime (s)':>12s}",
    ]
    for threshold, err, elapsed in rows:
        label = "inf" if threshold == float("inf") else f"{threshold:g}"
        lines.append(f"{label:>10s} {err:17.4f} {elapsed:12.2f}")
    lines.append("")
    lines.append("2.6 keeps the error at the accuracy of the quadratic cdf while "
                 "skipping the arithmetic whenever one input clearly dominates.")
    report = "\n".join(lines)
    print("\n" + report)
    write_result("ablation_dominance.txt", report)

    errors = {row[0]: row[1] for row in rows}
    # Tightening the threshold to 2.6 must not be meaningfully worse than
    # always evaluating Clark's formulae.
    assert errors[2.6] <= errors[float("inf")] + 0.5


@pytest.mark.benchmark(group="ablation")
def test_pdf_samples_ablation(benchmark, substrates):
    """FULLSSTA sigma estimate and runtime at 7, 13 and 25 samples per pdf."""
    _, delay_model, variation_model = substrates
    circuit = _prepared(substrates)

    def sweep():
        rows = []
        for samples in (7, 13, 25):
            engine = FULLSSTA(delay_model, variation_model, num_samples=samples)
            start = clock()
            rv = engine.analyze(circuit).output_rv
            rows.append((samples, rv.mean, rv.sigma, clock() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"Ablation: pdf samples per arrival time (FULLSSTA) on {CIRCUIT}",
        "",
        f"{'samples':>8s} {'mean (ps)':>10s} {'sigma (ps)':>11s} {'runtime (ms)':>13s}",
    ]
    for samples, mean, sigma, elapsed in rows:
        lines.append(f"{samples:8d} {mean:10.1f} {sigma:11.2f} {elapsed * 1e3:13.1f}")
    lines.append("")
    lines.append("paper §4.2: 10-15 samples per pdf is a reasonable accuracy/speed tradeoff.")
    report = "\n".join(lines)
    print("\n" + report)
    write_result("ablation_pdf_samples.txt", report)

    reference_sigma = rows[-1][2]
    mid_sigma = rows[1][2]
    # 13 samples stays close to the 25-sample reference (within ~15 %).
    assert abs(mid_sigma - reference_sigma) <= 0.15 * reference_sigma
