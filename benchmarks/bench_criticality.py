"""Criticality benchmark: analytic-vs-MC agreement + criticality-pruned sizing.

Two sections:

* **agreement** — analytic gate-criticality probabilities
  (:class:`~repro.criticality.analysis.CriticalityAnalyzer`) against the
  empirical Monte-Carlo critical-path frequencies
  (:class:`~repro.criticality.mc.MonteCarloCriticality`) on the largest
  registry circuits.  Asserts that criticality mass is conserved (sources
  sum to ~1) and that the mean absolute per-gate deviation stays below the
  documented tolerance;
* **sizer** — StatisticalGreedy wall-clock at criticality pruning
  thresholds {0, 0.01, 0.05}.  The threshold-0 run is asserted bit-identical
  to an independently-configured reference sizer (the from-scratch
  pipeline: ``incremental_reanalysis=False, vectorized_fassta=False`` —
  a genuine cross-config equivalence check, not a self-comparison), and
  some positive threshold must actually prune gate visits (a deterministic
  property).  Wall-clock and the resulting speedup are *reported* but not
  asserted — timing on a shared CI runner is too noisy to gate on.

Run directly::

    PYTHONPATH=src python benchmarks/bench_criticality.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_criticality.py           # larger circuits

The report is written to ``benchmarks/results/criticality.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

# Allow running as a plain script from the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits.registry import build_benchmark  # noqa: E402
from repro.core.baseline import MeanDelaySizer  # noqa: E402
from repro.core.fassta import FASSTA  # noqa: E402
from repro.core.sizer import SizerConfig, StatisticalGreedySizer  # noqa: E402
from repro.criticality import (  # noqa: E402
    CriticalityAnalyzer,
    MonteCarloCriticality,
    extract_top_paths,
    total_path_mass,
)
from repro.library.delay_model import LookupTableDelayModel  # noqa: E402
from repro.library.synthetic90nm import make_synthetic_90nm_library  # noqa: E402
from repro.obs import clock  # noqa: E402
from repro.variation.model import VariationModel  # noqa: E402

#: Agreement-section circuits: the largest registry stand-ins (full mode).
FULL_AGREEMENT_CIRCUITS = ["c2670", "c5315", "c6288", "c7552"]
QUICK_AGREEMENT_CIRCUITS = ["c432", "c499"]

#: Sizer-section circuit per mode (deep WNSS paths make pruning bite).
FULL_SIZER_CIRCUIT = "c1908"
QUICK_SIZER_CIRCUIT = "c432"

#: Criticality pruning thresholds compared in the sizer section.
THRESHOLDS = (0.0, 0.01, 0.05)

MASS_TOLERANCE = 1e-6
MEAN_ABS_TOLERANCE = 0.05


def _substrates():
    library = make_synthetic_90nm_library()
    return LookupTableDelayModel(library), VariationModel()


def _bench_agreement(
    circuits: List[str], mc_samples: int, delay_model, variation_model
) -> Tuple[List[str], bool]:
    lines = [
        "Analytic vs Monte-Carlo criticality "
        f"({mc_samples} draws; mean-|err| tolerance {MEAN_ABS_TOLERANCE:g})",
        "",
        f"{'circuit':8s} {'gates':>6s} {'mass':>10s} {'top5 mass':>10s} "
        f"{'mean |err|':>11s} {'max |err|':>10s} {'analytic (ms)':>14s} "
        f"{'mc (ms)':>10s}",
    ]
    ok = True
    for name in circuits:
        circuit = build_benchmark(name)
        engine = FASSTA(delay_model, variation_model, vectorized=True)
        analysis = engine.analyze(circuit)  # warm the levelized plan
        analyzer = CriticalityAnalyzer(circuit)
        start = clock()
        analysis = engine.analyze(circuit)
        crit = analyzer.analyze(analysis.arrivals)
        t_analytic = clock() - start
        paths = extract_top_paths(circuit, crit, analysis.arrivals, k=5)

        start = clock()
        mc = MonteCarloCriticality(delay_model, variation_model).run(
            circuit, num_samples=mc_samples, seed=0, paths=paths
        )
        t_mc = clock() - start

        mass = crit.total_source_mass()
        mean_err = mc.mean_abs_gate_error(crit.gate_criticality)
        max_err = mc.max_abs_gate_error(crit.gate_criticality)
        good = abs(mass - 1.0) <= MASS_TOLERANCE and mean_err <= MEAN_ABS_TOLERANCE
        ok = ok and good
        lines.append(
            f"{name:8s} {circuit.num_gates():6d} {mass:10.6f} "
            f"{total_path_mass(paths):10.4f} {mean_err:11.5f} {max_err:10.4f} "
            f"{t_analytic * 1e3:14.1f} {t_mc * 1e3:10.1f}"
            + ("" if good else "  << AGREEMENT FAILURE")
        )
    return lines, ok


def _bench_sizer(
    circuit_name: str, max_iterations: int, delay_model, variation_model
) -> Tuple[List[str], bool]:
    lines = [
        f"Criticality-pruned StatisticalGreedy on {circuit_name} "
        f"(lambda = 3, {max_iterations} pass cap)",
        "",
        f"{'threshold':>9s} {'time (s)':>9s} {'speedup':>8s} {'passes':>7s} "
        f"{'pruned':>7s} {'mu+3sigma (ps)':>15s} {'identical':>10s}",
    ]

    # Independent reference: the from-scratch evaluation pipeline at
    # threshold 0.  Its sizing decisions define "the plain sizer's output";
    # the fast threshold-0 run below must match them exactly.  (Not timed
    # into the speedup column — it is deliberately the slow path.)
    reference_circuit = build_benchmark(circuit_name)
    MeanDelaySizer(delay_model).optimize(reference_circuit)
    StatisticalGreedySizer(
        delay_model,
        variation_model,
        SizerConfig(
            lam=3.0,
            max_iterations=max_iterations,
            incremental_reanalysis=False,
            vectorized_fassta=False,
        ),
    ).optimize(reference_circuit)
    reference_sizes = reference_circuit.sizes()

    baseline_time = None
    results = []
    for threshold in THRESHOLDS:
        circuit = build_benchmark(circuit_name)
        MeanDelaySizer(delay_model).optimize(circuit)
        config = SizerConfig(
            lam=3.0,
            max_iterations=max_iterations,
            criticality_threshold=threshold,
        )
        start = clock()
        result = StatisticalGreedySizer(
            delay_model, variation_model, config
        ).optimize(circuit)
        elapsed = clock() - start
        if threshold == 0.0:
            baseline_time = elapsed
        results.append((threshold, elapsed, result, circuit.sizes()))

    # Exactness pin: the fast threshold-0 run must reproduce the reference
    # pipeline's decisions (cross-config equivalence, pinned independently
    # by tests/core/test_sizer_criticality.py).  The gating checks are
    # deterministic — identical threshold-0 decisions and actual pruned
    # gate visits at some positive threshold; the speedup column is
    # informational (CI runners are too noisy to assert on wall-clock).
    identical_ok = True
    pruning_seen = False
    for threshold, elapsed, result, sizes in results:
        identical = sizes == reference_sizes
        if threshold == 0.0 and not identical:
            identical_ok = False
        speedup = baseline_time / max(elapsed, 1e-12)
        pruned = result.diagnostics.get("criticality_pruned_gates", 0)
        if threshold > 0.0 and pruned > 0:
            pruning_seen = True
        objective = result.final.mean + 3.0 * result.final.sigma
        lines.append(
            f"{threshold:9.2f} {elapsed:9.2f} {speedup:7.2f}x "
            f"{len(result.iterations):7d} {pruned:7d} {objective:15.2f} "
            f"{'yes' if identical else 'no':>10s}"
        )
    if not pruning_seen:
        lines.append("  << NO GATE VISITS PRUNED at any positive threshold")
    return lines, identical_ok and pruning_seen


def run(
    circuits: List[str], sizer_circuit: str, mc_samples: int, max_iterations: int
) -> Tuple[str, bool]:
    """Run the benchmark; returns (report text, all-checks-passed)."""
    delay_model, variation_model = _substrates()
    agreement_lines, agreement_ok = _bench_agreement(
        circuits, mc_samples, delay_model, variation_model
    )
    sizer_lines, sizer_ok = _bench_sizer(
        sizer_circuit, max_iterations, delay_model, variation_model
    )
    return "\n".join(agreement_lines + [""] + sizer_lines), agreement_ok and sizer_ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small circuits, fewer MC draws, capped sizer budget",
    )
    parser.add_argument(
        "--circuits",
        default=None,
        help="comma-separated agreement circuits (overrides the mode default)",
    )
    parser.add_argument(
        "--mc-samples",
        type=int,
        default=None,
        help="Monte-Carlo draws per circuit (default: 1000 quick / 4000 full)",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="sizer outer-loop pass cap (default: 4 quick / 8 full)",
    )
    args = parser.parse_args(argv)

    circuits = (
        [name.strip() for name in args.circuits.split(",") if name.strip()]
        if args.circuits
        else (QUICK_AGREEMENT_CIRCUITS if args.quick else FULL_AGREEMENT_CIRCUITS)
    )
    mc_samples = (
        args.mc_samples if args.mc_samples is not None else (1000 if args.quick else 4000)
    )
    max_iterations = (
        args.max_iterations if args.max_iterations is not None else (4 if args.quick else 8)
    )
    sizer_circuit = QUICK_SIZER_CIRCUIT if args.quick else FULL_SIZER_CIRCUIT

    report, ok = run(circuits, sizer_circuit, mc_samples, max_iterations)
    print(report)

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "criticality.txt").write_text(report + "\n")

    if not ok:
        print(
            "FAILED: criticality mass/agreement out of tolerance, threshold-0 "
            "decisions diverged, or no gate visits pruned at any positive "
            "threshold",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
