"""Benchmark harness package (pytest-benchmark based).

One ``bench_*.py`` module per table/figure of the paper plus engine and
ablation benchmarks; see ``conftest.py`` for the environment variables that
control the circuit subset.
"""
