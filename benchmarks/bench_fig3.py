"""Regenerate Figure 3: tracing the worst-negative-statistical-slack path.

The paper's Fig. 3 is a six-gate example whose arcs carry (mean, sigma)
arrival annotations — (320, 27), (310, 45), (357, 32), (392, 35), (190, 41)
— and whose shaded gates mark the WNSS path chosen by the sensitivity-based
tracing of section 4.4.  The key behaviours to reproduce:

* when one input's normalized mean separation exceeds 2.6 it dominates and
  is chosen outright (the (392, 35) vs (190, 41) pair);
* otherwise the finite-difference sensitivity of Var[max] decides, and the
  *lower-mean but higher-sigma* arc (310, 45) beats (320, 27) — the decision
  a deterministic tracer gets wrong.

The timed benchmarks measure the tracer itself and the sensitivity kernel.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig3_example
from repro.circuits.registry import build_benchmark
from repro.core import clark
from repro.core.baseline import MeanDelaySizer
from repro.core.fullssta import FULLSSTA
from repro.core.wnss import WNSSTracer


@pytest.mark.benchmark(group="fig3")
def test_regenerate_fig3(benchmark):
    result = benchmark.pedantic(run_fig3_example, rounds=1, iterations=1)

    lines = ["Figure 3 reproduction: WNSS tracing decisions", ""]
    lines.append("arc arrival (mean, sigma) annotations from the paper:")
    for name, rv in result["arrivals"].items():
        lines.append(f"  {name}: ({rv.mean:.0f}, {rv.sigma:.0f})")
    lines.append("")
    for node in ("node_x", "node_y", "node_z"):
        info = result[node]
        lines.append(f"{node}: chose {info['chosen']} via {info['method']}")
    sens = result["sensitivities_y"]
    lines.append("")
    lines.append(
        "sensitivities at node_y: "
        + ", ".join(f"{k}={v:.2f}" for k, v in sens.items())
    )
    report = "\n".join(lines)
    print("\n" + report)
    write_result("fig3.txt", report)

    # The paper's headline decisions.
    assert result["node_y"]["chosen"] == "arc_b"          # high-sigma arc wins
    assert result["node_y"]["method"] == "sensitivity"
    assert result["node_z"]["chosen"] == "arc_d"          # clear dominance
    assert result["node_z"]["method"] == "dominance"


@pytest.mark.benchmark(group="fig3")
def test_wnss_trace_runtime(benchmark, substrates):
    """Time a full WNSS trace (FULLSSTA annotation excluded) on c432."""
    _, delay_model, variation_model = substrates
    circuit = build_benchmark("c432")
    MeanDelaySizer(delay_model).optimize(circuit)
    full = FULLSSTA(delay_model, variation_model).analyze(circuit)
    tracer = WNSSTracer(coupling=variation_model.mean_sigma_coupling, lam=3.0)

    path = benchmark(lambda: tracer.trace(circuit, full.arrival_moments))
    assert len(path) >= 2


@pytest.mark.benchmark(group="fig3")
def test_sensitivity_kernel_runtime(benchmark):
    """Time the finite-difference Var[max] sensitivity pair (the §4.4 kernel)."""
    result = benchmark(
        lambda: clark.variance_sensitivities(320.0, 27.0, 310.0, 45.0, coupling=0.5)
    )
    assert result[1] > result[0]
