"""Section 4.3 claims: speed and accuracy of the fast max approximation.

The paper derives a fast approximation of the max of two normal random
variables — Clark's formulae with a quadratic cdf plus a ±2.6-sigma
dominance shortcut — and claims (a) it is much cheaper than evaluating the
exact expressions, (b) "in the vast majority [of] cases" one of the
dominance conditions applies so no arithmetic is needed at all, and (c) the
approximation stays accurate enough for subcircuit evaluation.

These benchmarks quantify all three on randomly drawn operand pairs and on
operand pairs harvested from a real circuit's arrival times, writing a
summary to ``benchmarks/results/fassta_accuracy.txt``.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core import clark
from repro.core.baseline import MeanDelaySizer
from repro.core.fullssta import FULLSSTA
from repro.circuits.registry import build_benchmark


def _random_pairs(n, seed=0):
    rng = random.Random(seed)
    pairs = []
    for _ in range(n):
        mu_a = rng.uniform(50.0, 1500.0)
        mu_b = mu_a + rng.uniform(-300.0, 300.0)
        pairs.append((mu_a, rng.uniform(1.0, 80.0), max(mu_b, 0.0), rng.uniform(1.0, 80.0)))
    return pairs


def _circuit_pairs(substrates):
    """Operand pairs taken from sibling-input arrival times of a real circuit."""
    _, delay_model, variation_model = substrates
    circuit = build_benchmark("c432")
    MeanDelaySizer(delay_model).optimize(circuit)
    moments = FULLSSTA(delay_model, variation_model).analyze(circuit).arrival_moments
    pairs = []
    for gate in circuit.gates.values():
        nets = [n for n in gate.inputs if n in moments]
        for a, b in zip(nets, nets[1:]):
            ra, rb = moments[a], moments[b]
            pairs.append((ra.mean, max(ra.sigma, 1e-3), rb.mean, max(rb.sigma, 1e-3)))
    return pairs


RANDOM_PAIRS = _random_pairs(2000)


@pytest.mark.benchmark(group="fassta-accuracy")
def test_fast_max_speed(benchmark):
    """Throughput of the paper's fast max over 2000 operand pairs."""
    def run():
        total = 0.0
        for pair in RANDOM_PAIRS:
            mean, _ = clark.clark_max_fast(*pair)
            total += mean
        return total

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="fassta-accuracy")
def test_exact_max_speed(benchmark):
    """Throughput of the exact Clark evaluation (scipy cdf) for comparison."""
    def run():
        total = 0.0
        for pair in RANDOM_PAIRS:
            mean, _ = clark.clark_max_exact(*pair)
            total += mean
        return total

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="fassta-accuracy")
def test_accuracy_and_dominance_rate(benchmark, substrates):
    """Error of the fast max vs exact Clark, and how often dominance fires."""
    def analyze():
        rows = []
        for label, pairs in (
            ("random", RANDOM_PAIRS),
            ("c432 arrival pairs", _circuit_pairs(substrates)),
        ):
            mean_errors, sigma_errors = [], []
            dominated = 0
            for mu_a, s_a, mu_b, s_b in pairs:
                if clark.dominance(mu_a, s_a, mu_b, s_b) != 0:
                    dominated += 1
                exact_mean, exact_var = clark.clark_max_exact(mu_a, s_a, mu_b, s_b)
                fast_mean, fast_var = clark.clark_max_fast(mu_a, s_a, mu_b, s_b)
                mean_errors.append(abs(fast_mean - exact_mean) / max(exact_mean, 1e-9))
                sigma_errors.append(
                    abs(math.sqrt(fast_var) - math.sqrt(exact_var))
                    / max(math.sqrt(exact_var), 1e-9)
                )
            rows.append(
                (
                    label,
                    len(pairs),
                    100.0 * dominated / len(pairs),
                    100.0 * float(np.mean(mean_errors)),
                    100.0 * float(np.max(mean_errors)),
                    100.0 * float(np.mean(sigma_errors)),
                )
            )
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    lines = [
        "FASSTA max approximation: accuracy and dominance-shortcut rate",
        "",
        f"{'pair source':22s} {'pairs':>6s} {'dominance %':>12s} "
        f"{'mean err avg %':>15s} {'mean err max %':>15s} {'sigma err avg %':>16s}",
    ]
    for label, n, dom, mean_avg, mean_max, sigma_avg in rows:
        lines.append(
            f"{label:22s} {n:6d} {dom:12.1f} {mean_avg:15.3f} {mean_max:15.2f} {sigma_avg:16.2f}"
        )
    lines.append("")
    lines.append("paper claim: dominance applies in 'the vast majority' of real cases;")
    lines.append("the quadratic erf approximation is accurate to two decimal places.")
    report = "\n".join(lines)
    print("\n" + report)
    write_result("fassta_accuracy.txt", report)

    by_label = {row[0]: row for row in rows}
    # The dominance shortcut must fire on a meaningful fraction of real
    # arrival pairs (the paper says "the vast majority"; with this
    # reproduction's variation magnitudes we measure ~25 % on c432 — the
    # deviation is recorded in EXPERIMENTS.md).
    assert by_label["c432 arrival pairs"][2] > 5.0
    # Mean error of the approximation stays small everywhere.
    assert by_label["random"][3] < 1.0
