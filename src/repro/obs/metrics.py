"""Counters, gauges and histograms — always on, merge-able across processes.

Unlike spans (which are opt-in because they read the clock), metric updates
are a dict write and stay enabled everywhere: cache hit/miss counts,
dirty-cone sizes, retry totals and the like cost integers, not syscalls.

The module-level :data:`METRICS` registry is the process-wide default.
Sweep workers reset it per cell and ship ``snapshot()`` dicts back to the
parent over the existing result pipe; the parent folds them into a
campaign-level registry with :meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class MetricsRegistry:
    """A flat namespace of counters, gauges and summary histograms."""

    __slots__ = ("_counters", "_gauges", "_hists")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, min, max]
        self._hists: Dict[str, List[float]] = {}

    # -- updates -----------------------------------------------------------
    def counter(self, name: str, inc: int = 1) -> None:
        """Add ``inc`` to a monotonically growing count."""
        self._counters[name] = self._counters.get(name, 0) + inc

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time quantity."""
        self._gauges[name] = float(value)

    def histogram(self, name: str, value: float) -> None:
        """Fold ``value`` into a (count, sum, min, max) summary."""
        hist = self._hists.get(name)
        if hist is None:
            self._hists[name] = [1, float(value), float(value), float(value)]
        else:
            hist[0] += 1
            hist[1] += value
            if value < hist[2]:
                hist[2] = value
            if value > hist[3]:
                hist[3] = value

    # -- reads -------------------------------------------------------------
    def get_counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def get_gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def get_histogram(self, name: str) -> Optional[Dict[str, float]]:
        hist = self._hists.get(name)
        if hist is None:
            return None
        count, total, lo, hi = hist
        return {
            "count": int(count),
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able copy of everything (the wire/artifact format)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: self.get_histogram(name) for name in sorted(self._hists)
            },
        }

    # -- lifecycle ---------------------------------------------------------
    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, histograms combine their summaries, gauges last-write
        wins (they are point-in-time readings, not totals).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name, int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, summary in snapshot.get("histograms", {}).items():
            if not summary or not summary.get("count"):
                continue
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = [
                    int(summary["count"]), float(summary["sum"]),
                    float(summary["min"]), float(summary["max"]),
                ]
            else:
                hist[0] += int(summary["count"])
                hist[1] += float(summary["sum"])
                hist[2] = min(hist[2], float(summary["min"]))
                hist[3] = max(hist[3], float(summary["max"]))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._hists)


#: Process-wide default registry (what instrumented library code updates).
METRICS = MetricsRegistry()
