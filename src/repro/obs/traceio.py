"""The persisted ``trace.json`` artifact: schema, validation, campaign merge.

Payload layout (``TRACE_SCHEMA`` 1)::

    {
      "schema": 1,
      "name": "<run label>",
      "created_unix": <float>,
      "spans": [
        {"id": "<pid-hex>.<seq-hex>", "parent": "<id>"|null, "name": str,
         "start_unix": <float>, "duration_s": <float>, "attrs": {...}},
        ...
      ],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

Single flows persist one payload (``repro-sizer size --trace``); sweeps
persist one per cell beside its artifact plus a merged campaign
``trace.json`` whose cell sub-trees are re-rooted under a synthetic
campaign root (worker span ids are pid-scoped, so the merge additionally
prefixes them with the cell ordinal to make collisions impossible when a
pid is recycled).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

TRACE_SCHEMA = 1

#: Fields every span record must carry.
_SPAN_FIELDS = ("id", "parent", "name", "start_unix", "duration_s", "attrs")


def trace_payload(
    name: str,
    spans: Sequence[Any],
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one schema-1 payload from spans (dicts or Span objects).

    Spans whose parent is not part of this payload (e.g. a flow recorded
    while an enclosing sweep-cell span was open) are re-rooted: their
    parent is normalized to ``None`` so every payload is self-contained.
    """
    records = [
        dict(s) if isinstance(s, dict) else s.to_dict() for s in spans
    ]
    ids = {r["id"] for r in records}
    for record in records:
        if record.get("parent") is not None and record["parent"] not in ids:
            record["parent"] = None
    return {
        "schema": TRACE_SCHEMA,
        "name": name,
        "created_unix": time.time(),
        "spans": records,
        "metrics": metrics or {"counters": {}, "gauges": {}, "histograms": {}},
    }


def write_trace(path: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Persist one payload atomically (tmp-file + rename, like artifacts)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    payload = json.loads(Path(path).read_text())
    problems = validate_trace(payload)
    if problems:
        raise ValueError(f"{path}: invalid trace ({'; '.join(problems)})")
    return payload


def validate_trace(payload: Any) -> List[str]:
    """Structural problems of one payload (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != TRACE_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, expected {TRACE_SCHEMA}")
    if not isinstance(payload.get("name"), str):
        problems.append("missing run name")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        return [*problems, "spans is not a list"]
    ids = set()
    for i, record in enumerate(spans):
        if not isinstance(record, dict):
            problems.append(f"span[{i}] is not an object")
            continue
        missing = [f for f in _SPAN_FIELDS if f not in record]
        if missing:
            problems.append(f"span[{i}] missing field(s): {', '.join(missing)}")
            continue
        if not isinstance(record["id"], str) or not record["id"]:
            problems.append(f"span[{i}] has a non-string id")
            continue
        if record["id"] in ids:
            problems.append(f"span id {record['id']!r} is duplicated")
        ids.add(record["id"])
        if not isinstance(record["duration_s"], (int, float)) or record["duration_s"] < 0:
            problems.append(f"span {record['id']!r} has a negative duration")
        if not isinstance(record["attrs"], dict):
            problems.append(f"span {record['id']!r} attrs is not an object")
    for record in spans:
        if not isinstance(record, dict):
            continue
        parent = record.get("parent")
        if parent is not None and parent not in ids:
            problems.append(
                f"span {record.get('id')!r} references unknown parent {parent!r}"
            )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or any(
        key not in metrics for key in ("counters", "gauges", "histograms")
    ):
        problems.append("metrics must carry counters/gauges/histograms")
    return problems


def merge_traces(
    children: Iterable[Dict[str, Any]],
    name: str = "campaign",
    metrics: Optional[Dict[str, Any]] = None,
    extra_spans: Sequence[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """One campaign payload from per-cell payloads (+ synthesized spans).

    Every child's spans are id-prefixed with its ordinal (worker pids can
    be recycled across cells) and re-rooted: spans whose parent is missing
    from their own payload hang off the synthetic campaign root.
    ``extra_spans`` (e.g. spans synthesized for crashed attempts that could
    never ship theirs) attach to the root likewise.
    """
    root_id = "campaign.0"
    merged: List[Dict[str, Any]] = []
    starts: List[float] = []
    ends: List[float] = []

    def _adopt(records: Sequence[Dict[str, Any]], prefix: str) -> None:
        local_ids = {r["id"] for r in records}
        for record in records:
            adopted = dict(record)
            adopted["id"] = prefix + record["id"]
            parent = record.get("parent")
            adopted["parent"] = (
                prefix + parent if parent in local_ids else root_id
            )
            merged.append(adopted)
            starts.append(float(record.get("start_unix", 0.0)))
            ends.append(
                float(record.get("start_unix", 0.0))
                + float(record.get("duration_s", 0.0))
            )

    for i, child in enumerate(children):
        _adopt(child.get("spans", []), f"c{i}/")
    _adopt(list(extra_spans), "x/")

    start = min(starts) if starts else time.time()
    duration = max(0.0, (max(ends) - start)) if ends else 0.0
    root = {
        "id": root_id,
        "parent": None,
        "name": name,
        "start_unix": start,
        "duration_s": duration,
        "attrs": {"cells": sum(1 for s in merged if s["parent"] == root_id)},
    }
    payload = trace_payload(name, [root, *merged], metrics=metrics)
    return payload


def span_tree_coverage(payload: Dict[str, Any]) -> Dict[str, float]:
    """How much of the root span's wall-clock its children account for.

    Returns ``{"root_s": ..., "children_s": ..., "coverage": ...}`` where
    ``coverage`` is the summed duration of the root's *direct* children over
    the root's own duration — the acceptance metric for "the span tree
    covers >= 95% of measured wall-clock".
    """
    spans = payload.get("spans", [])
    roots = [s for s in spans if s.get("parent") is None]
    if not roots:
        return {"root_s": 0.0, "children_s": 0.0, "coverage": 0.0}
    root = max(roots, key=lambda s: float(s.get("duration_s", 0.0)))
    children = sum(
        float(s.get("duration_s", 0.0))
        for s in spans
        if s.get("parent") == root["id"]
    )
    root_s = float(root.get("duration_s", 0.0))
    return {
        "root_s": root_s,
        "children_s": children,
        "coverage": children / root_s if root_s > 0 else 0.0,
    }
