"""Rendering of traces and campaign directories: ``stats`` and ``dashboard``.

``repro-sizer stats`` summarizes one trace payload (or a sweep directory's
campaign ``trace.json``): per-span-name aggregates, root coverage and the
metrics registry snapshot, as text or JSON.

``repro-sizer dashboard`` walks a sweep output directory — cell artifacts,
per-cell ``*.trace.json`` files, the merged campaign trace and the failure
ledger — and renders one self-contained markdown or HTML status page.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.traceio import load_trace, span_tree_coverage

#: Files in a sweep directory that are not cell artifacts.
_RESERVED = ("trace.json", "failures.json", "checkpoint.json")


# ---------------------------------------------------------------------------
# Span aggregation (stats)
# ---------------------------------------------------------------------------
def aggregate_spans(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-span-name aggregates of one payload, sorted by total time.

    Each entry carries ``name``, ``count``, ``total_s``, ``mean_s`` and
    ``max_s``.  Durations are *inclusive* (a parent counts its children),
    so the table answers "where does the wall-clock go" per layer, not as
    a flat sum.
    """
    buckets: Dict[str, List[float]] = {}
    for record in payload.get("spans", []):
        buckets.setdefault(record["name"], []).append(float(record["duration_s"]))
    rows = [
        {
            "name": name,
            "count": len(durations),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
            "max_s": max(durations),
        }
        for name, durations in buckets.items()
    ]
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows


def resolve_trace_path(path: Union[str, Path]) -> Path:
    """Accept either a trace file or a sweep directory holding one."""
    path = Path(path)
    if path.is_dir():
        candidate = path / "trace.json"
        if not candidate.is_file():
            raise FileNotFoundError(f"{path} has no trace.json")
        return candidate
    return path


def stats_data(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Everything ``stats`` reports, as one JSON-able object."""
    return {
        "name": payload.get("name"),
        "spans": len(payload.get("spans", [])),
        "coverage": span_tree_coverage(payload),
        "by_name": aggregate_spans(payload),
        "metrics": payload.get("metrics", {}),
    }


def format_stats_text(data: Dict[str, Any], top: int = 20) -> str:
    """Human-readable ``stats`` rendering."""
    lines: List[str] = []
    coverage = data["coverage"]
    lines.append(f"trace      : {data['name']} ({data['spans']} spans)")
    lines.append(
        f"root span  : {coverage['root_s']:.3f} s, direct children cover "
        f"{100.0 * coverage['coverage']:.1f} %"
    )
    lines.append("")
    lines.append(f"{'span':<28s} {'count':>7s} {'total_s':>10s} {'mean_s':>10s} {'max_s':>10s}")
    for row in data["by_name"][:top]:
        lines.append(
            f"{row['name']:<28s} {row['count']:>7d} {row['total_s']:>10.3f} "
            f"{row['mean_s']:>10.4f} {row['max_s']:>10.4f}"
        )
    dropped = len(data["by_name"]) - top
    if dropped > 0:
        lines.append(f"... {dropped} more span name(s); use --top to widen")
    metrics = data.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<40s} {counters[name]}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<40s} {gauges[name]:g}")
    hists = metrics.get("histograms", {})
    if hists:
        lines.append("histograms:")
        for name in sorted(hists):
            h = hists[name]
            if not h:
                continue
            lines.append(
                f"  {name:<40s} n={h['count']} mean={h['mean']:g} "
                f"min={h['min']:g} max={h['max']:g}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Campaign dashboard
# ---------------------------------------------------------------------------
def _load_json(path: Path) -> Optional[Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def dashboard_data(out_dir: Union[str, Path]) -> Dict[str, Any]:
    """Collect everything in a sweep directory into one report object."""
    out_path = Path(out_dir)
    if not out_path.is_dir():
        raise FileNotFoundError(f"{out_path} is not a directory")

    cells: List[Dict[str, Any]] = []
    for path in sorted(out_path.glob("*.json")):
        if path.name in _RESERVED or path.name.endswith(".trace.json"):
            continue
        artifact = _load_json(path)
        if not isinstance(artifact, dict) or "result" not in artifact:
            continue
        spec = artifact.get("spec", {})
        trace_file = path.with_suffix(".trace.json")
        coverage = None
        if trace_file.is_file():
            trace = _load_json(trace_file)
            if trace:
                coverage = span_tree_coverage(trace)["coverage"]
        cells.append(
            {
                "cell": path.stem,
                "kind": spec.get("kind"),
                "circuit": spec.get("circuit"),
                "lam": spec.get("lam"),
                "target_yield": spec.get("target_yield"),
                "runtime_seconds": float(artifact.get("runtime_seconds", 0.0)),
                "trace_coverage": coverage,
            }
        )

    campaign = None
    campaign_file = out_path / "trace.json"
    if campaign_file.is_file():
        try:
            campaign = load_trace(campaign_file)
        except ValueError:
            campaign = None

    ledger = _load_json(out_path / "failures.json")
    failures = []
    quarantines = []
    if isinstance(ledger, dict):
        failures = ledger.get("events", [])
        quarantines = ledger.get("quarantines", [])

    return {
        "out_dir": str(out_path),
        "cells": cells,
        "campaign": stats_data(campaign) if campaign else None,
        "failures": failures,
        "quarantines": quarantines,
    }


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join([" --- "] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _cell_rows(data: Dict[str, Any]) -> Tuple[List[str], List[List[str]]]:
    headers = ["cell", "kind", "circuit", "axis", "runtime (s)", "trace coverage"]
    rows = []
    for cell in data["cells"]:
        if cell["target_yield"] is not None:
            axis = f"y={cell['target_yield']:g}"
        else:
            axis = f"lam={cell['lam']:g}" if cell["lam"] is not None else "-"
        coverage = (
            f"{100.0 * cell['trace_coverage']:.1f} %"
            if cell["trace_coverage"] is not None
            else "-"
        )
        rows.append(
            [
                cell["cell"], str(cell["kind"]), str(cell["circuit"]), axis,
                f"{cell['runtime_seconds']:.2f}", coverage,
            ]
        )
    return headers, rows


def _failure_rows(data: Dict[str, Any]) -> Tuple[List[str], List[List[str]]]:
    headers = ["cell", "attempt", "category", "error", "retried"]
    rows = [
        [
            str(f.get("cell")), str(f.get("attempt")), str(f.get("category")),
            str(f.get("error")), "yes" if f.get("retried") else "no",
        ]
        for f in data["failures"]
    ]
    return headers, rows


def _span_rows(data: Dict[str, Any], top: int = 12) -> Tuple[List[str], List[List[str]]]:
    headers = ["span", "count", "total (s)", "mean (s)"]
    rows = [
        [
            row["name"], str(row["count"]),
            f"{row['total_s']:.3f}", f"{row['mean_s']:.4f}",
        ]
        for row in data["campaign"]["by_name"][:top]
    ]
    return headers, rows


def render_dashboard_markdown(data: Dict[str, Any]) -> str:
    lines: List[str] = [f"# Sweep dashboard — `{data['out_dir']}`", ""]
    lines.append(
        f"{len(data['cells'])} cell artifact(s), {len(data['failures'])} "
        f"failed attempt(s), {len(data['quarantines'])} quarantined "
        f"artifact(s)."
    )
    lines.append("")

    lines.append("## Cells")
    lines.append("")
    if data["cells"]:
        lines.extend(_md_table(*_cell_rows(data)))
    else:
        lines.append("No cell artifacts found.")
    lines.append("")

    if data["failures"]:
        lines.append("## Failures")
        lines.append("")
        lines.extend(_md_table(*_failure_rows(data)))
        lines.append("")

    if data["campaign"]:
        coverage = data["campaign"]["coverage"]
        lines.append("## Campaign trace")
        lines.append("")
        lines.append(
            f"Root span {coverage['root_s']:.2f} s; direct children cover "
            f"{100.0 * coverage['coverage']:.1f} % of it."
        )
        lines.append("")
        lines.extend(_md_table(*_span_rows(data)))
        lines.append("")
        counters = data["campaign"]["metrics"].get("counters", {})
        if counters:
            lines.append("## Metrics")
            lines.append("")
            lines.extend(
                _md_table(
                    ["counter", "value"],
                    [[name, str(counters[name])] for name in sorted(counters)],
                )
            )
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _html_table(headers: List[str], rows: List[List[str]]) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_dashboard_html(data: Dict[str, Any]) -> str:
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Sweep dashboard — {html.escape(data['out_dir'])}</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "th,td{border:1px solid #999;padding:4px 10px;text-align:left}"
        "th{background:#eee}</style>",
        "</head><body>",
        f"<h1>Sweep dashboard — <code>{html.escape(data['out_dir'])}</code></h1>",
        f"<p>{len(data['cells'])} cell artifact(s), "
        f"{len(data['failures'])} failed attempt(s), "
        f"{len(data['quarantines'])} quarantined artifact(s).</p>",
        "<h2>Cells</h2>",
    ]
    if data["cells"]:
        parts.append(_html_table(*_cell_rows(data)))
    else:
        parts.append("<p>No cell artifacts found.</p>")
    if data["failures"]:
        parts.append("<h2>Failures</h2>")
        parts.append(_html_table(*_failure_rows(data)))
    if data["campaign"]:
        coverage = data["campaign"]["coverage"]
        parts.append("<h2>Campaign trace</h2>")
        parts.append(
            f"<p>Root span {coverage['root_s']:.2f} s; direct children "
            f"cover {100.0 * coverage['coverage']:.1f} % of it.</p>"
        )
        parts.append(_html_table(*_span_rows(data)))
        counters = data["campaign"]["metrics"].get("counters", {})
        if counters:
            parts.append("<h2>Metrics</h2>")
            parts.append(
                _html_table(
                    ["counter", "value"],
                    [[name, str(counters[name])] for name in sorted(counters)],
                )
            )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
