"""Nested timing spans with near-zero overhead when disabled.

Design constraints (in priority order):

1. **Free when off.**  The default tracer is disabled; its ``span()``
   returns one shared :data:`NULL_SPAN` instance whose enter/exit are
   no-ops, so an instrumented hot path costs one attribute check and one
   call — no allocation, no clock read.  ``bench_engines.py`` timings with
   tracing off are the acceptance test for this.
2. **Correct nesting everywhere.**  The current span stack lives in a
   ``contextvars.ContextVar`` shared by every tracer, so spans nest
   correctly across threads and regardless of which tracer records them
   (a flow's local tracer and the global tracer interleave into one tree).
3. **Mergeable across processes.**  Span ids embed the pid, and every span
   carries a wall-clock ``start_unix`` (``time.time``) next to its
   monotonic ``duration_s`` (``perf_counter`` delta), so worker spans
   shipped over a pipe align with the parent's timeline.

``clock`` (the bare :func:`time.perf_counter`) and :func:`stopwatch` are
the blessed primitives for code that needs a raw duration without a span
(repo lint RL005 forbids ``time.perf_counter()`` outside this package).
"""

from __future__ import annotations

import functools
import itertools
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: The one monotonic clock every duration in the repository comes from.
clock = time.perf_counter

#: Current span-id stack (immutable tuple: cheap to read, contextvar-safe).
_STACK: ContextVar[Tuple[str, ...]] = ContextVar("repro_obs_span_stack", default=())


class Span:
    """One timed region.  Use as a context manager; reentrant it is not."""

    __slots__ = (
        "tracer", "name", "attrs", "id", "parent_id",
        "start_unix", "duration_s", "_t0", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.start_unix = 0.0
        self.duration_s = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (e.g. counts known only at the end)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _STACK.get()
        self.parent_id = stack[-1] if stack else None
        self.id = f"{os.getpid():x}.{next(self.tracer._ids):x}"
        self._token = _STACK.set(stack + (self.id,))
        self.start_unix = time.time()
        self._t0 = clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration_s = clock() - self._t0
        _STACK.reset(self._token)
        self.tracer._records.append(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "parent": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op span returned by disabled tracers (never recorded)."""

    __slots__ = ()
    id = None
    parent_id = None
    name = ""
    start_unix = 0.0
    duration_s = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans (append-only; thread-safe under the GIL)."""

    def __init__(self, enabled: bool = True, name: str = "trace") -> None:
        self.enabled = enabled
        self.name = name
        self._records: List[Span] = []
        self._ids = itertools.count(1)

    # -- recording ---------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def wrap(self, name: Optional[str] = None) -> Callable:
        """Decorator form: the whole call body becomes one span."""

        def decorate(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def inner(*args: Any, **kwargs: Any) -> Any:
                with self.span(label):
                    return fn(*args, **kwargs)

            return inner

        return decorate

    # -- reading -----------------------------------------------------------
    def mark(self) -> int:
        """Bookmark the record list (see :meth:`records_since`)."""
        return len(self._records)

    def records_since(self, mark: int = 0) -> List[Dict[str, Any]]:
        """Finished spans recorded after ``mark``, as plain dicts."""
        return [span.to_dict() for span in self._records[mark:]]

    @property
    def spans(self) -> List[Span]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()


# ---------------------------------------------------------------------------
# Current tracer (module-level so instrumented code needs no plumbing)
# ---------------------------------------------------------------------------
def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() in ("1", "true", "on", "yes")


_current: Tracer = Tracer(enabled=_env_enabled())


def get_tracer() -> Tracer:
    return _current


def set_tracer(tracer: Tracer) -> Tracer:
    global _current
    _current = tracer
    return tracer


def tracing_enabled() -> bool:
    return _current.enabled


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the current one for the duration of the block."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous


def span(name: str, **attrs: Any):
    """A span on the *current* tracer (the null span when disabled)."""
    tracer = _current
    if not tracer.enabled:
        return NULL_SPAN
    return Span(tracer, name, attrs)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator recording one span per call on the tracer current *at call time*."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            with span(label):
                return fn(*args, **kwargs)

        return inner

    return decorate


# ---------------------------------------------------------------------------
# Raw durations without a span
# ---------------------------------------------------------------------------
class Stopwatch:
    """Context manager measuring one wall-clock duration (``.elapsed_s``)."""

    __slots__ = ("started_at", "elapsed_s")

    def __init__(self) -> None:
        self.started_at = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Stopwatch":
        self.started_at = clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_s = clock() - self.started_at


def stopwatch() -> Stopwatch:
    return Stopwatch()
