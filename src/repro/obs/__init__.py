"""Zero-dependency instrumentation layer: tracing spans + metrics.

Every other layer of the reproduction measures itself through this package
(repo lint RL005 forbids raw ``time.perf_counter()`` anywhere else in
``src/``), so there is exactly one timing source:

* :mod:`repro.obs.trace` — nested timing spans with a context-manager and
  decorator API.  The module-level :func:`span` helper records into the
  *current* tracer; the default tracer is disabled and returns a shared
  null span, so instrumentation is free when tracing is off.  Set
  ``REPRO_TRACE=1`` (inherited by sweep workers) to enable it globally.
* :mod:`repro.obs.metrics` — an always-on registry of counters, gauges and
  histograms (cache hits, dirty-cone sizes, retries, ...).  Snapshots
  merge across processes, which is how sweep workers ship their numbers
  back to the parent.
* :mod:`repro.obs.traceio` — the persisted ``trace.json`` artifact:
  schema, validation, and the campaign merge that re-roots per-cell
  worker traces under one tree.
* :mod:`repro.obs.report` — rendering: ``repro-sizer stats`` (per-span
  aggregates + metrics of one trace) and ``repro-sizer dashboard`` (one
  markdown/HTML page for a whole sweep directory).
"""

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Stopwatch,
    Tracer,
    activate,
    clock,
    get_tracer,
    set_tracer,
    span,
    stopwatch,
    traced,
    tracing_enabled,
)
from repro.obs.traceio import (
    TRACE_SCHEMA,
    load_trace,
    merge_traces,
    span_tree_coverage,
    trace_payload,
    validate_trace,
    write_trace,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Stopwatch",
    "TRACE_SCHEMA",
    "Tracer",
    "activate",
    "clock",
    "get_tracer",
    "load_trace",
    "merge_traces",
    "set_tracer",
    "span",
    "span_tree_coverage",
    "stopwatch",
    "trace_payload",
    "traced",
    "tracing_enabled",
    "validate_trace",
    "write_trace",
]
