"""High-level convenience flow tying all the pieces together.

``run_sizing_flow`` reproduces the paper's experimental procedure for one
circuit:

1. build (or accept) a circuit and a standard-cell library;
2. size it deterministically for minimum mean delay — the "original" design
   point of Table 1 / Fig. 1;
3. measure the original statistical performance with FULLSSTA (and
   optionally Monte Carlo);
4. run the StatisticalGreedy sizer at the requested lambda;
5. report the changes in mean, sigma, sigma/mu and area.

``quick_flow`` is the one-liner used in the README quickstart: it accepts a
benchmark name, builds the default library and variation model, and runs the
whole flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.circuits.registry import build_benchmark
from repro.core.baseline import BaselineResult, MeanDelaySizer
from repro.core.discrete_pdf import DiscretePDF
from repro.core.fullssta import FULLSSTA
from repro.core.rv import NormalDelay
from repro.core.sizer import SizerConfig, SizerResult, StatisticalGreedySizer
from repro.core.wnss import WNSSPath
from repro.library.cell import Library
from repro.library.delay_model import BaseDelayModel, LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.montecarlo.mc import MonteCarloResult, MonteCarloTimer
from repro.netlist.circuit import Circuit
from repro.obs import METRICS, Tracer, activate, get_tracer, span, trace_payload
from repro.runner.errors import ensure_finite_moments
from repro.variation.model import VariationModel


@dataclass
class FlowResult:
    """Everything measured during one end-to-end sizing flow."""

    circuit: Circuit
    lam: float
    baseline: BaselineResult
    original_rv: NormalDelay
    original_area: float
    sizer_result: SizerResult
    final_rv: NormalDelay
    final_area: float
    mc_original: Optional[MonteCarloResult] = None
    mc_final: Optional[MonteCarloResult] = None
    #: Schema-1 trace payload of this flow (see :mod:`repro.obs.traceio`):
    #: a ``flow`` root span with one child per stage (baseline, analyses,
    #: sizer, MC), recorded even when global tracing is off.
    trace: Optional[Dict[str, Any]] = None
    #: Circuit-level output arrival pdfs of the original and final designs
    #: (the distributions yield numbers are computed from).
    original_output_pdf: Optional[DiscretePDF] = None
    final_output_pdf: Optional[DiscretePDF] = None
    #: WNSS trace of the *final* design, including the per-gate
    #: :class:`~repro.core.wnss.TraceDecision` records — how each
    #: dominance-vs-sensitivity choice was made is inspectable through the
    #: CLI (``size --explain-path``) and reports.
    final_wnss: Optional[WNSSPath] = None

    @property
    def total_runtime_seconds(self) -> float:
        """Wall-clock of the whole flow (baseline + analyses + sizer + MC).

        Derived from the trace's root ``flow`` span — the tracer is the
        single timing source.  The paper's Table-1 runtime column only
        counts the sizer itself (``sizer_result.runtime_seconds``), which
        hides the analysis/MC cost from sweep accounting.
        """
        if not self.trace:
            return 0.0
        roots = [
            s for s in self.trace.get("spans", []) if s.get("parent") is None
        ]
        return max(
            (float(s.get("duration_s", 0.0)) for s in roots), default=0.0
        )

    # -- Table 1 style metrics -------------------------------------------
    @property
    def original_cv(self) -> float:
        """sigma/mu of the mean-delay-optimized design (Table 1 "original")."""
        return self.original_rv.sigma / self.original_rv.mean if self.original_rv.mean else 0.0

    @property
    def final_cv(self) -> float:
        return self.final_rv.sigma / self.final_rv.mean if self.final_rv.mean else 0.0

    @property
    def mean_increase_pct(self) -> float:
        if self.original_rv.mean == 0:
            return 0.0
        return 100.0 * (self.final_rv.mean - self.original_rv.mean) / self.original_rv.mean

    @property
    def sigma_reduction_pct(self) -> float:
        if self.original_rv.sigma == 0:
            return 0.0
        return 100.0 * (self.original_rv.sigma - self.final_rv.sigma) / self.original_rv.sigma

    @property
    def area_increase_pct(self) -> float:
        if self.original_area == 0:
            return 0.0
        return 100.0 * (self.final_area - self.original_area) / self.original_area

    def yield_summary(self, target_yield: float) -> Dict[str, float]:
        """Fig. 1 style yield comparison of the original vs final design.

        Periods come from the exact discrete-pdf quantiles when the flow
        recorded output pdfs, falling back to the normal moments otherwise.
        """
        # Imported lazily: repro.analysis's package __init__ pulls in the
        # experiment runners, which import this module — a top-level import
        # would be circular.
        from repro.analysis.timing_yield import period_for_yield, timing_yield

        original = self.original_output_pdf or self.original_rv
        final = self.final_output_pdf or self.final_rv
        original_period = period_for_yield(original, target_yield)
        final_period = period_for_yield(final, target_yield)
        return {
            "target_yield": target_yield,
            "original_period": original_period,
            "final_period": final_period,
            "period_reduction_pct": (
                100.0 * (original_period - final_period) / original_period
                if original_period
                else 0.0
            ),
            "original_yield_at_final_period": timing_yield(original, final_period),
            "final_yield_at_final_period": timing_yield(final, final_period),
        }

    def as_table1_row(self) -> Dict[str, float]:
        """The quantities the paper reports per circuit and lambda."""
        return {
            "gates": float(self.circuit.num_gates()),
            "original_cv": self.original_cv,
            "mean_increase_pct": self.mean_increase_pct,
            "sigma_reduction_pct": -self.sigma_reduction_pct,  # paper reports negative deltas
            "final_cv": self.final_cv,
            "area_increase_pct": self.area_increase_pct,
            "runtime_seconds": self.sizer_result.runtime_seconds,
        }


def run_sizing_flow(
    circuit: Circuit,
    lam: float = 3.0,
    library: Optional[Library] = None,
    delay_model: Optional[BaseDelayModel] = None,
    variation_model: Optional[VariationModel] = None,
    sizer_config: Optional[SizerConfig] = None,
    run_baseline: bool = True,
    monte_carlo_samples: int = 0,
    seed: Optional[int] = 0,
    preflight: bool = True,
) -> FlowResult:
    """Run the full paper flow on ``circuit`` (sized in place).

    Parameters
    ----------
    circuit:
        The technology-mapped circuit to optimize.
    lam:
        The Eq. 7 weight trading sigma against mean (paper uses 3 and 9).
    library / delay_model / variation_model:
        Substrates; defaults are the synthetic 90 nm library, its LUT delay
        model and the default variation model.
    sizer_config:
        Full sizer configuration; when given, its ``lam`` takes precedence.
    run_baseline:
        Size for minimum mean delay first (the paper's starting point).
    monte_carlo_samples:
        When positive, validate the original and final designs with this
        many Monte-Carlo samples.
    preflight:
        Lint the circuit against the DRC catalogue before any analysis
        (see :mod:`repro.verify.preflight`); ERROR diagnostics raise
        :class:`~repro.runner.errors.DeterministicError` up front instead
        of surfacing as mid-flow engine failures.
    """
    # The flow always records its own span tree — FlowResult.trace feeds
    # the runtime properties and the trace artifacts.  When a tracer is
    # already active (e.g. inside a sweep cell) its spans land there too,
    # so the cell trace sees the flow stages without double bookkeeping.
    current = get_tracer()
    local = current if current.enabled else Tracer(enabled=True)
    mark = local.mark()
    with activate(local):
        with local.span(
            "flow",
            circuit=circuit.name,
            lam=(sizer_config.lam if sizer_config is not None else lam),
        ):
            result = _run_flow_stages(
                circuit,
                lam=lam,
                library=library,
                delay_model=delay_model,
                variation_model=variation_model,
                sizer_config=sizer_config,
                run_baseline=run_baseline,
                monte_carlo_samples=monte_carlo_samples,
                seed=seed,
                preflight=preflight,
            )
    result.trace = trace_payload(
        f"flow {circuit.name}",
        local.records_since(mark),
        metrics=METRICS.snapshot(),
    )
    return result


def _run_flow_stages(
    circuit: Circuit,
    lam: float,
    library: Optional[Library],
    delay_model: Optional[BaseDelayModel],
    variation_model: Optional[VariationModel],
    sizer_config: Optional[SizerConfig],
    run_baseline: bool,
    monte_carlo_samples: int,
    seed: Optional[int],
    preflight: bool,
) -> FlowResult:
    with span("flow.setup"):
        if library is None and delay_model is None:
            library = make_synthetic_90nm_library()
        if delay_model is None:
            delay_model = LookupTableDelayModel(library)
        variation_model = variation_model or VariationModel()
        config = sizer_config or SizerConfig(lam=lam)

    if preflight:
        with span("flow.preflight"):
            # Imported lazily: repro.verify is a leaf consumer of the netlist
            # and library layers, and flow is imported by nearly everything.
            from repro.verify.preflight import preflight_circuit

            preflight_circuit(circuit, library=library or delay_model.library)

    baseline_sizer = MeanDelaySizer(delay_model)
    if run_baseline:
        baseline = baseline_sizer.optimize(circuit)
    else:
        from repro.sta.dsta import DeterministicSTA

        nominal = DeterministicSTA(delay_model).max_delay(circuit)
        baseline = BaselineResult(
            circuit=circuit,
            initial_delay=nominal,
            final_delay=nominal,
            initial_area=delay_model.circuit_area(circuit),
            final_area=delay_model.circuit_area(circuit),
            passes=0,
            runtime_seconds=0.0,
        )

    # The flow's own before/after analyses are standalone full-circuit runs,
    # so they use the levelized vectorized FULLSSTA path.
    fullssta = FULLSSTA(
        delay_model, variation_model, num_samples=config.pdf_samples, vectorized=True
    )
    with span("flow.analyze_original"):
        original_full = fullssta.analyze(circuit)
        original_rv = original_full.output_rv
        original_area = delay_model.circuit_area(circuit)
        # Fail loudly on numerically-poisoned analyses: a NaN here would
        # otherwise flow silently into every downstream metric and artifact.
        ensure_finite_moments(
            original_rv.mean, original_rv.sigma,
            context=f"{circuit.name}: original FULLSSTA", area=original_area,
        )

    mc_original = None
    if monte_carlo_samples > 0:
        mc_original = MonteCarloTimer(delay_model, variation_model).run(
            circuit, num_samples=monte_carlo_samples, seed=seed
        )

    sizer = StatisticalGreedySizer(delay_model, variation_model, config)
    sizer_result = sizer.optimize(circuit)

    with span("flow.analyze_final"):
        final_full = fullssta.analyze(circuit)
        final_rv = final_full.output_rv
        final_area = delay_model.circuit_area(circuit)
        ensure_finite_moments(
            final_rv.mean, final_rv.sigma,
            context=f"{circuit.name}: final FULLSSTA", area=final_area,
        )

    # Trace the final design's WNSS path with the sizer's own tracer so the
    # recorded TraceDecisions use the exact lambda/coupling the run used.
    with span("flow.wnss_trace"):
        final_wnss = sizer.tracer.trace(circuit, final_full.arrival_moments)

    mc_final = None
    if monte_carlo_samples > 0:
        mc_final = MonteCarloTimer(delay_model, variation_model).run(
            circuit, num_samples=monte_carlo_samples, seed=seed
        )

    return FlowResult(
        circuit=circuit,
        lam=config.lam,
        baseline=baseline,
        original_rv=original_rv,
        original_area=original_area,
        sizer_result=sizer_result,
        final_rv=final_rv,
        final_area=final_area,
        mc_original=mc_original,
        mc_final=mc_final,
        original_output_pdf=original_full.output_pdf,
        final_output_pdf=final_full.output_pdf,
        final_wnss=final_wnss,
    )


def quick_flow(
    benchmark: str = "c17",
    lam: float = 3.0,
    seed: Optional[int] = 0,
    monte_carlo_samples: int = 0,
    sizer_config: Optional[SizerConfig] = None,
) -> FlowResult:
    """Build a named benchmark and run :func:`run_sizing_flow` with defaults."""
    circuit = build_benchmark(benchmark)
    return run_sizing_flow(
        circuit,
        lam=lam,
        sizer_config=sizer_config,
        monte_carlo_samples=monte_carlo_samples,
        seed=seed,
    )
