"""Pre-flight validation: lint circuits *before* compute is spent on them.

Expensive campaigns used to discover bad inputs dynamically — a multi-driver
net surfaced as a mid-sweep exception, a combinational cycle hung
levelization inside a worker, an out-of-table load silently extrapolated a
delay.  :func:`preflight_circuit` runs the DRC catalogue up front and turns
ERROR diagnostics into :class:`~repro.runner.errors.DeterministicError` (the
never-retryable category), so a defective netlist fails in the parent
process before a single worker is spawned or a single level is timed.

Wired into :func:`repro.flow.run_sizing_flow` (``preflight=`` parameter) and
:func:`repro.runner.sweep.run_cells` (``preflight=`` parameter, CLI
``--no-preflight`` opt-out).  Warnings are reported through ``warn`` (a
callable, by default collected silently) and never block the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.netlist.circuit import Circuit
from repro.runner.errors import DeterministicError
from repro.verify.diagnostics import LintReport
from repro.verify.rules import lint_circuit

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.library.cell import Library


class PreflightError(DeterministicError):
    """A circuit failed pre-flight DRC; retrying cannot help.

    Carries the full :class:`~repro.verify.diagnostics.LintReport` so
    callers (and tests) can inspect exactly which rules fired.
    """

    def __init__(self, report: LintReport) -> None:
        self.report = report
        first = report.errors[0]
        extra = len(report.errors) - 1
        message = f"pre-flight DRC failed for {report.circuit!r}: {first.format()}"
        if extra:
            message += f" (+{extra} more error(s))"
        super().__init__(message)


def preflight_circuit(
    circuit: Circuit,
    library: Optional[Library] = None,
    warn: Optional[Callable[[str], None]] = None,
) -> LintReport:
    """Lint ``circuit`` and raise :class:`PreflightError` on any ERROR.

    WARNING diagnostics are passed line-by-line to ``warn`` when given
    (e.g. ``print`` or a logger) and otherwise left in the returned report
    for the caller to surface.  Returns the report on success so callers
    can still inspect warnings.
    """
    report = lint_circuit(circuit, library=library)
    if not report.ok:
        raise PreflightError(report)
    if warn is not None:
        for diag in report.warnings:
            warn(f"preflight: {diag.format()}")
    return report
