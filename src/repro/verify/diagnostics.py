"""Diagnostic data model for the static-verification layer.

Every check in :mod:`repro.verify` — circuit design rules, IR invariant
verification, pre-flight hooks — reports problems as :class:`Diagnostic`
records instead of ad-hoc strings or exceptions.  A diagnostic carries a
stable rule id (``DRC001`` ...), a :class:`Severity`, the location (gate
and/or net) and a fix hint, so the CLI can render text or JSON, the
pre-flight hooks can decide what is fatal, and tests can assert *which*
rule caught a seeded defect rather than pattern-matching messages.

Severity / exit-code contract
-----------------------------
* ``ERROR``   — the circuit violates an invariant the engines rely on;
  running any analysis on it would crash or silently produce garbage.
  Pre-flight turns these into
  :class:`~repro.runner.errors.DeterministicError`; ``repro-sizer lint``
  exits 1.
* ``WARNING`` — legal but suspicious: results will be computed, but a
  documented accuracy or performance hazard applies (e.g. a load outside
  its ``liberty_lite`` table domain is silently extrapolated).  Exit 0
  unless ``--fail-on warning``.
* ``INFO``    — informational findings; never affect the exit code.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one location."""

    rule_id: str                      #: stable id, e.g. ``"DRC001"``
    severity: Severity
    message: str                      #: human-readable, one line
    gate: Optional[str] = None        #: offending gate name, when localised
    net: Optional[str] = None         #: offending net name, when localised
    fix_hint: Optional[str] = None    #: short actionable suggestion

    def location(self) -> str:
        """``gate g7 / net n3`` style location fragment (may be empty)."""
        parts = []
        if self.gate is not None:
            parts.append(f"gate {self.gate!r}")
        if self.net is not None:
            parts.append(f"net {self.net!r}")
        return " / ".join(parts)

    def format(self) -> str:
        """One text line: severity, id, location, message, hint."""
        loc = self.location()
        text = f"{str(self.severity):7s} {self.rule_id}"
        if loc:
            text += f" [{loc}]"
        text += f": {self.message}"
        if self.fix_hint:
            text += f" (hint: {self.fix_hint})"
        return text

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "gate": self.gate,
            "net": self.net,
            "fix_hint": self.fix_hint,
        }


@dataclass
class LintReport:
    """All diagnostics produced by one lint run over one circuit."""

    circuit: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: rule ids that actually ran (so "clean" is distinguishable from
    #: "rule skipped for lack of a library").
    rules_run: List[str] = field(default_factory=list)

    # -- queries ---------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics were produced."""
        return not self.errors

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def rule_ids(self) -> List[str]:
        """Sorted unique rule ids that fired."""
        return sorted({d.rule_id for d in self.diagnostics})

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """CLI exit-code contract: 1 iff any diagnostic at/above ``fail_on``."""
        return 1 if any(d.severity >= fail_on for d in self.diagnostics) else 0

    # -- rendering -------------------------------------------------------
    def summary(self) -> str:
        n_err, n_warn = len(self.errors), len(self.warnings)
        if not self.diagnostics:
            return f"{self.circuit}: clean ({len(self.rules_run)} rule(s) checked)"
        return (
            f"{self.circuit}: {n_err} error(s), {n_warn} warning(s) "
            f"({len(self.rules_run)} rule(s) checked)"
        )

    def format_text(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "rules_run": list(self.rules_run),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)
