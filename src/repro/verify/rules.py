"""Circuit design-rule checks (DRC) run before any engine touches a netlist.

Each rule is a small class with a stable id, a severity and a ``check``
method yielding :class:`~repro.verify.diagnostics.Diagnostic` records.
Rules never raise on bad circuits — they *describe* the defect — and they
never rely on :meth:`Circuit.topological_order`, which raises on exactly
the cyclic circuits the linter must be able to analyse.

Rule catalogue
--------------
========  ========  ==========================================================
id        severity  finding
========  ========  ==========================================================
DRC001    ERROR     combinational cycle (gates on a feedback loop)
DRC002    ERROR     self-loop gate (reads its own output net)
DRC003    ERROR     multi-driver net, incl. a gate driving a primary input
DRC004    ERROR     floating gate input (net with no driver and no PI decl)
DRC005    ERROR     undriven primary output
DRC006    WARNING   unreachable gate (feeds no primary output)
DRC007    ERROR     unknown cell type (library)
DRC008    ERROR     size index out of the cell's range (library)
DRC009    ERROR     output load beyond any size's drive limit (library)
DRC010    WARNING   load outside the current size's delay-table domain —
                    ``liberty_lite`` would silently extrapolate (library)
========  ========  ==========================================================

Rules DRC007-DRC010 need a :class:`~repro.library.cell.Library` and are
skipped (recorded as not-run in the report) when none is supplied.

Use :func:`lint_circuit` to run the catalogue; ``repro-sizer lint`` and the
pre-flight hooks in :mod:`repro.flow` / :mod:`repro.runner.sweep` are thin
wrappers over it.  ``repro.netlist.validate.validate_circuit`` is likewise a
compatibility wrapper over the ERROR-severity rules, so there is a single
source of truth for structural invariants.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate
from repro.verify.diagnostics import Diagnostic, LintReport, Severity

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.library.cell import Library
    from repro.library.delay_model import LookupTableDelayModel

#: How many offending names a single diagnostic spells out before eliding.
_MAX_NAMES = 8

#: DRC009 fires when the output load exceeds this multiple of the largest
#: tabulated load of the cell's *strongest* size — i.e. even the most
#: generous upsizing would leave the delay query far outside its table.
DRIVE_LIMIT_FACTOR = 2.0


def _elide(names: Sequence[str]) -> str:
    names = list(names)
    if len(names) <= _MAX_NAMES:
        return repr(names)
    return f"{names[:_MAX_NAMES]!r} (+{len(names) - _MAX_NAMES} more)"


class RuleContext:
    """Shared, lazily-derived structural facts consumed by the rules.

    The linter inspects :class:`Gate` objects directly rather than trusting
    the circuit's driver/load indexes: gates are mutable, so code that
    rewires ``gate.output`` behind the circuit's back can violate invariants
    without tripping any constructor guard (the same reasoning as the
    historical ``validate_circuit``).
    """

    def __init__(self, circuit: Circuit, library: Optional[Library] = None) -> None:
        self.circuit = circuit
        self.library = library
        self.primary_inputs = set(circuit.primary_inputs)
        self.gates: List[Gate] = list(circuit.gates.values())
        #: net -> gate names driving it (from the gate objects themselves)
        self.drivers: Dict[str, List[str]] = {}
        for gate in self.gates:
            self.drivers.setdefault(gate.output, []).append(gate.name)
        self.driven: Set[str] = set(self.primary_inputs) | set(self.drivers)
        #: net -> gate names reading it
        self.readers: Dict[str, List[str]] = {}
        for gate in self.gates:
            for net in gate.inputs:
                self.readers.setdefault(net, []).append(gate.name)
        self._cyclic: Optional[Set[str]] = None
        self._delay_model: Optional[LookupTableDelayModel] = None

    # -- derived ---------------------------------------------------------
    def cyclic_gates(self) -> Set[str]:
        """Gate names lying on (or between) combinational cycles.

        Kahn-peels the gate graph from both ends: gates that survive the
        forward peel are in a cycle *or downstream* of one; gates surviving
        the backward peel are in a cycle *or upstream* of one.  The
        intersection is exactly the gates on a cycle or on a path connecting
        two cycles — a precise, deterministic blame set that never hangs on
        the cyclic inputs it exists to detect.
        """
        if self._cyclic is None:
            survivors_fwd = self._kahn_survivors(forward=True)
            survivors_bwd = self._kahn_survivors(forward=False)
            self._cyclic = survivors_fwd & survivors_bwd
        return self._cyclic

    def _kahn_survivors(self, forward: bool) -> Set[str]:
        gate_map = self.circuit.gates
        degree: Dict[str, int] = {}
        for name, gate in gate_map.items():
            if forward:
                degree[name] = sum(1 for net in gate.inputs if net in self.drivers)
            else:
                degree[name] = len(self.readers.get(gate.output, []))
        ready = deque(sorted(n for n, d in degree.items() if d == 0))
        removed = 0
        while ready:
            name = ready.popleft()
            removed += 1
            gate = gate_map[name]
            if forward:
                neighbours: Iterable[str] = self.readers.get(gate.output, [])
            else:
                neighbours = (
                    drv
                    for net in gate.inputs
                    for drv in self.drivers.get(net, [])
                )
            for nxt in neighbours:
                degree[nxt] -= 1
                if degree[nxt] == 0:
                    ready.append(nxt)
        return {n for n, d in degree.items() if d > 0}

    def delay_model(self) -> Optional[LookupTableDelayModel]:
        """A LUT delay model over :attr:`library` (for load computations)."""
        if self._delay_model is None and self.library is not None:
            from repro.library.delay_model import LookupTableDelayModel

            self._delay_model = LookupTableDelayModel(self.library)
        return self._delay_model


class Rule:
    """Base class: one design rule with a stable id and fixed severity."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    title: str = ""
    #: Library-domain rules are skipped when the context has no library.
    requires_library: bool = False

    def applicable(self, ctx: RuleContext) -> bool:
        return not (self.requires_library and ctx.library is None)

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, message: str, gate: Optional[str] = None,
             net: Optional[str] = None, fix_hint: Optional[str] = None) -> Diagnostic:
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            gate=gate,
            net=net,
            fix_hint=fix_hint,
        )


_RULE_CLASSES: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default catalogue."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _RULE_CLASSES):
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _RULE_CLASSES.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of the full catalogue, in id order."""
    return [cls() for cls in sorted(_RULE_CLASSES, key=lambda c: c.rule_id)]


def rule_catalogue() -> List[Dict[str, str]]:
    """Id / severity / title rows (for ``lint --list-rules`` and docs)."""
    return [
        {"rule_id": rule.rule_id, "severity": str(rule.severity),
         "title": rule.title, "requires_library": rule.requires_library}
        for rule in all_rules()
    ]


# ---------------------------------------------------------------------------
# Structural rules
# ---------------------------------------------------------------------------
@register
class CombinationalCycleRule(Rule):
    rule_id = "DRC001"
    severity = Severity.ERROR
    title = "combinational cycle"

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        # Pure self-loops are DRC002's finding; report only multi-gate
        # feedback here so each defect has exactly one owning rule.
        cyclic = sorted(
            name
            for name in ctx.cyclic_gates()
            if ctx.circuit.gate(name).output not in ctx.circuit.gate(name).inputs
        )
        if cyclic:
            yield self.diag(
                f"circuit {ctx.circuit.name!r} has a combinational cycle "
                f"involving {_elide(cyclic)}",
                gate=cyclic[0],
                fix_hint="break the feedback loop; combinational timing "
                         "analysis requires a DAG",
            )


@register
class SelfLoopRule(Rule):
    rule_id = "DRC002"
    severity = Severity.ERROR
    title = "self-loop gate"

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for gate in ctx.gates:
            if gate.output in gate.inputs:
                yield self.diag(
                    f"gate {gate.name!r} reads its own output net "
                    f"{gate.output!r}",
                    gate=gate.name,
                    net=gate.output,
                    fix_hint="a combinational gate cannot feed itself; "
                             "insert a state element or rewire the input",
                )


@register
class MultiDriverRule(Rule):
    rule_id = "DRC003"
    severity = Severity.ERROR
    title = "multi-driver net"

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        drivers: Dict[str, List[str]] = {}
        for gate in ctx.gates:
            drivers.setdefault(gate.output, []).append(gate.name)
        for net in sorted(drivers):
            names = sorted(drivers[net])
            count = len(names)
            if count > 1:
                yield self.diag(
                    f"net {net!r} is driven by {count} gates: {names}",
                    net=net,
                    gate=names[0],
                    fix_hint="every net must have exactly one driver; "
                             "rename or merge the extra drivers",
                )
            if net in ctx.primary_inputs:
                yield self.diag(
                    f"primary input {net!r} is also driven by gate(s): {names}",
                    net=net,
                    gate=names[0],
                    fix_hint="primary inputs are driven from outside the "
                             "circuit; pick a different output net name",
                )


@register
class FloatingInputRule(Rule):
    rule_id = "DRC004"
    severity = Severity.ERROR
    title = "floating gate input"

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for gate in ctx.gates:
            for net in gate.inputs:
                if net not in ctx.driven:
                    yield self.diag(
                        f"gate {gate.name!r} reads undriven net {net!r}",
                        gate=gate.name,
                        net=net,
                        fix_hint="declare the net as a primary input or "
                                 "connect a driver",
                    )


@register
class UndrivenOutputRule(Rule):
    rule_id = "DRC005"
    severity = Severity.ERROR
    title = "undriven primary output"

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for net in ctx.circuit.primary_outputs:
            if net not in ctx.driven:
                yield self.diag(
                    f"primary output {net!r} has no driver",
                    net=net,
                    fix_hint="connect a gate output (or declare the net a "
                             "primary input) before timing it",
                )


@register
class UnreachableGateRule(Rule):
    rule_id = "DRC006"
    severity = Severity.WARNING
    title = "unreachable gate"

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        # Backward reachability from the primary outputs over gate objects
        # (no topological order needed, so cyclic circuits still lint).
        reachable: Set[str] = set()
        frontier: deque = deque()
        for net in ctx.circuit.primary_outputs:
            for name in ctx.drivers.get(net, []):
                if name not in reachable:
                    reachable.add(name)
                    frontier.append(name)
        gate_map = ctx.circuit.gates
        while frontier:
            name = frontier.popleft()
            for net in gate_map[name].inputs:
                for drv in ctx.drivers.get(net, []):
                    if drv not in reachable:
                        reachable.add(drv)
                        frontier.append(drv)
        dead = sorted(set(gate_map) - reachable)
        if dead:
            yield self.diag(
                f"{len(dead)} gate(s) feed no primary output: {_elide(dead)}",
                gate=dead[0],
                fix_hint="dead logic wastes analysis and sizing effort; "
                         "remove it or declare its sink nets as outputs",
            )


# ---------------------------------------------------------------------------
# Library-domain rules
# ---------------------------------------------------------------------------
@register
class UnknownCellRule(Rule):
    rule_id = "DRC007"
    severity = Severity.ERROR
    title = "unknown cell type"
    requires_library = True

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        assert ctx.library is not None  # guarded by requires_library
        for gate in ctx.gates:
            if not ctx.library.has_cell(gate.cell_type):
                yield self.diag(
                    f"gate {gate.name!r} uses unknown cell type "
                    f"{gate.cell_type!r}",
                    gate=gate.name,
                    fix_hint="map the gate onto a library cell (see "
                             "Library.cell_types)",
                )


@register
class SizeRangeRule(Rule):
    rule_id = "DRC008"
    severity = Severity.ERROR
    title = "size index out of range"
    requires_library = True

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        assert ctx.library is not None  # guarded by requires_library
        for gate in ctx.gates:
            if not ctx.library.has_cell(gate.cell_type):
                continue  # DRC007's finding
            num_sizes = ctx.library.cell(gate.cell_type).num_sizes
            if not 0 <= gate.size_index < num_sizes:
                yield self.diag(
                    f"gate {gate.name!r} size index {gate.size_index} out of "
                    f"range for {gate.cell_type!r} ({num_sizes} sizes)",
                    gate=gate.name,
                    fix_hint=f"valid size indices are 0..{num_sizes - 1}",
                )


def _max_table_load(delay_table: Sequence[Tuple[float, float]]) -> Optional[float]:
    """Largest tabulated load of a delay table (None when untabulated)."""
    if not delay_table:
        return None
    return max(load for load, _ in delay_table)


@register
class DriveLimitRule(Rule):
    rule_id = "DRC009"
    severity = Severity.ERROR
    title = "fanout load beyond library drive limit"
    requires_library = True

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        model = ctx.delay_model()
        assert ctx.library is not None and model is not None
        for gate in ctx.gates:
            if not ctx.library.has_cell(gate.cell_type):
                continue
            cell = ctx.library.cell(gate.cell_type)
            if not cell.num_sizes:
                continue
            strongest = cell.size(cell.num_sizes - 1)
            limit = _max_table_load(strongest.delay_table)
            if limit is None:
                continue  # untabulated cell: no drive limit to enforce
            load = model.load_on_gate(ctx.circuit, gate)
            if load > DRIVE_LIMIT_FACTOR * limit:
                yield self.diag(
                    f"gate {gate.name!r} ({gate.cell_type!r}) drives "
                    f"{load:.1f} fF on {gate.output!r}, beyond "
                    f"{DRIVE_LIMIT_FACTOR:g}x the strongest size's "
                    f"{limit:.1f} fF table limit",
                    gate=gate.name,
                    net=gate.output,
                    fix_hint="buffer the net or split the fanout; no "
                             "library size can drive this load credibly",
                )


@register
class TableDomainRule(Rule):
    rule_id = "DRC010"
    severity = Severity.WARNING
    title = "load outside the delay-table domain"
    requires_library = True

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        model = ctx.delay_model()
        assert ctx.library is not None and model is not None
        for gate in ctx.gates:
            if not ctx.library.has_cell(gate.cell_type):
                continue
            cell = ctx.library.cell(gate.cell_type)
            if not 0 <= gate.size_index < cell.num_sizes:
                continue  # DRC008's finding
            size = cell.size(gate.size_index)
            if not size.delay_table:
                continue
            loads = [load for load, _ in size.delay_table]
            lo, hi = min(loads), max(loads)
            load = model.load_on_gate(ctx.circuit, gate)
            if not lo <= load <= hi:
                yield self.diag(
                    f"gate {gate.name!r} ({size.name!r}) sees "
                    f"{load:.1f} fF, outside its delay table domain "
                    f"[{lo:g}, {hi:g}] fF — the delay will be extrapolated",
                    gate=gate.name,
                    net=gate.output,
                    fix_hint="upsize the gate, buffer the net, or extend "
                             "the library table to cover the load",
                )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def lint_circuit(
    circuit: Circuit,
    library: Optional[Library] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Run the DRC catalogue (or ``rules``) over ``circuit``.

    Parameters
    ----------
    circuit:
        The netlist to check; it is never mutated, and cyclic circuits are
        fully supported (no rule calls ``topological_order``).
    library:
        Optional :class:`~repro.library.cell.Library`.  Library-domain
        rules (DRC007-DRC010) are skipped without one; the report's
        ``rules_run`` records which rules actually executed.
    rules:
        Explicit rule instances to run instead of the default catalogue.
    """
    ctx = RuleContext(circuit, library)
    report = LintReport(circuit=circuit.name)
    for rule in rules if rules is not None else all_rules():
        if not rule.applicable(ctx):
            continue
        report.rules_run.append(rule.rule_id)
        report.diagnostics.extend(rule.check(ctx))
    report.diagnostics.sort(key=lambda d: (-int(d.severity), d.rule_id,
                                           d.gate or "", d.net or ""))
    return report


def error_rules() -> List[Rule]:
    """The ERROR-severity subset (what ``validate_circuit`` wraps)."""
    return [rule for rule in all_rules() if rule.severity >= Severity.ERROR]
