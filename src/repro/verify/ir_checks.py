"""Invariant verification for the compiled array-native IR.

:mod:`repro.ir.compiled` documents a contract every engine silently relies
on — level-major gate ids, the ``gate_output_slot[gid] == num_pis + gid``
net-slot layout, CSR fanin/fanout symmetry, sentinel-padded dense fanin,
boundary/floating masks.  A lowering bug breaks that contract quietly and
surfaces levels away as a wrong arrival time or a crash inside one engine.

:func:`verify_compiled` asserts *every* documented invariant in one call and
raises :class:`IRVerificationError` naming each violated field, so an IR
regression is caught at the lowering boundary instead of being diagnosed
from scattered engine symptoms.  It runs in O(gates + nets + edges) and is
wired into ``Circuit.compiled(verify=True)``; the test suite enables it for
every lowering via the ``REPRO_VERIFY_IR`` environment variable.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

import numpy as np

from repro.ir.compiled import CompiledCircuit
from repro.netlist.circuit import Circuit


class IRVerificationError(AssertionError):
    """A :class:`CompiledCircuit` violates its documented lowering contract.

    Subclasses :class:`AssertionError` because a failure here is always an
    internal bug (in the lowering or in code mutating the IR), never a user
    input problem.  ``problems`` carries one line per violated invariant.
    """

    def __init__(self, name: str, problems: List[str]) -> None:
        self.problems = list(problems)
        lines = "\n".join(f"  - {p}" for p in self.problems)
        super().__init__(
            f"compiled IR for {name!r} violates "
            f"{len(self.problems)} invariant(s):\n{lines}"
        )


def ir_problems(
    compiled: CompiledCircuit, circuit: Optional[Circuit] = None
) -> List[str]:
    """Every violated lowering invariant of ``compiled``, as message lines.

    When ``circuit`` is given, the lowering is additionally cross-checked
    against the source netlist (names, pin order, sizes, PI set).
    """
    p: List[str] = []
    ng, nn, npi = compiled.num_gates, compiled.num_nets, compiled.num_pis

    # -- counts and id bijections ---------------------------------------
    if ng != len(compiled.gate_names):
        p.append(f"num_gates={ng} != len(gate_names)={len(compiled.gate_names)}")
    if nn != len(compiled.net_names):
        p.append(f"num_nets={nn} != len(net_names)={len(compiled.net_names)}")
    if not 0 <= npi <= nn:
        p.append(f"num_pis={npi} outside [0, num_nets={nn}]")
    if len(set(compiled.gate_names)) != len(compiled.gate_names):
        p.append("gate_names contains duplicates")
    if len(set(compiled.net_names)) != len(compiled.net_names):
        p.append("net_names contains duplicates")
    if compiled.gate_index != {n: i for i, n in enumerate(compiled.gate_names)}:
        p.append("gate_index is not the inverse of gate_names")
    if compiled.net_index != {n: i for i, n in enumerate(compiled.net_names)}:
        p.append("net_index is not the inverse of net_names")

    # -- level contiguity ------------------------------------------------
    offsets = np.asarray(compiled.level_offsets)
    if len(offsets) != len(compiled.level_values) + 1:
        p.append(
            f"level_offsets has {len(offsets)} entries for "
            f"{len(compiled.level_values)} level values"
        )
    else:
        if len(offsets) and (offsets[0] != 0 or offsets[-1] != ng):
            p.append(
                f"level_offsets must span [0, num_gates]; got "
                f"[{offsets[0]}, {offsets[-1]}] for num_gates={ng}"
            )
        if np.any(np.diff(offsets) <= 0):
            p.append("level_offsets is not strictly increasing (empty level?)")
        if list(compiled.level_values) != sorted(set(compiled.level_values)):
            p.append("level_values is not strictly increasing")
        if len(compiled.gate_level) == ng:
            for li, level in enumerate(compiled.level_values):
                lo, hi = int(offsets[li]), int(offsets[li + 1])
                seg = compiled.gate_level[lo:hi]
                if np.any(seg != level):
                    p.append(
                        f"gate_level not contiguous: ids [{lo}, {hi}) should "
                        f"all be level {level}"
                    )
        else:
            p.append(f"gate_level has {len(compiled.gate_level)} entries")

    # -- net-slot layout -------------------------------------------------
    if len(compiled.gate_output_slot) != ng:
        p.append(f"gate_output_slot has {len(compiled.gate_output_slot)} entries")
    else:
        expected = np.arange(npi, npi + ng, dtype=np.intp)
        if np.any(compiled.gate_output_slot != expected):
            bad = int(np.argmax(compiled.gate_output_slot != expected))
            p.append(
                f"gate_output_slot[{bad}]={compiled.gate_output_slot[bad]} "
                f"breaks the num_pis+gid slot layout (expected {expected[bad]})"
            )
    floating_start = npi + ng
    if floating_start > nn:
        p.append(f"num_pis+num_gates={floating_start} exceeds num_nets={nn}")

    # -- boundary / floating masks ---------------------------------------
    for mask_name, mask, true_lo, true_hi in (
        ("boundary_mask", compiled.boundary_mask, None, None),
        ("floating_mask", compiled.floating_mask, floating_start, nn),
    ):
        if len(mask) != nn:
            p.append(f"{mask_name} has {len(mask)} entries for {nn} nets")
            continue
        if mask_name == "boundary_mask":
            expect = np.zeros(nn, dtype=bool)
            expect[:npi] = True
            expect[floating_start:] = True
        else:
            expect = np.zeros(nn, dtype=bool)
            expect[true_lo:true_hi] = True
        if np.any(mask != expect):
            bad = int(np.argmax(mask != expect))
            p.append(f"{mask_name}[{bad}] wrong for the documented slot layout")
    if compiled.floating != frozenset(compiled.net_names[floating_start:]):
        p.append("floating set does not match the floating net-name tail")

    # -- fanin CSR --------------------------------------------------------
    fi_ptr = np.asarray(compiled.fanin_indptr)
    if len(fi_ptr) != ng + 1 or (len(fi_ptr) and fi_ptr[0] != 0):
        p.append("fanin_indptr must have num_gates+1 entries starting at 0")
    elif np.any(np.diff(fi_ptr) < 0):
        p.append("fanin_indptr is not monotone")
    elif len(fi_ptr) and fi_ptr[-1] != len(compiled.fanin_slots):
        p.append(
            f"fanin_indptr[-1]={fi_ptr[-1]} != "
            f"len(fanin_slots)={len(compiled.fanin_slots)}"
        )
    if len(compiled.fanin_slots) and (
        compiled.fanin_slots.min() < 0 or compiled.fanin_slots.max() >= nn
    ):
        p.append(f"fanin_slots contains slots outside [0, {nn})")
    if len(compiled.fanin_counts) != ng or (
        len(fi_ptr) == ng + 1 and np.any(compiled.fanin_counts != np.diff(fi_ptr))
    ):
        p.append("fanin_counts disagrees with diff(fanin_indptr)")

    # -- dense fanin matrix ----------------------------------------------
    max_fanin = int(compiled.fanin_counts.max()) if ng else 0
    if compiled.fanin_matrix.shape != (ng, max_fanin):
        p.append(
            f"fanin_matrix shape {compiled.fanin_matrix.shape} != "
            f"({ng}, {max_fanin})"
        )
    elif (
        len(fi_ptr) == ng + 1
        and fi_ptr[-1] == len(compiled.fanin_slots)
        and len(compiled.fanin_counts) == ng
        and np.array_equal(compiled.fanin_counts, np.diff(fi_ptr))
    ):
        for gid in range(ng):
            lo, hi = int(fi_ptr[gid]), int(fi_ptr[gid + 1])
            row = compiled.fanin_matrix[gid]
            if np.any(row[: hi - lo] != compiled.fanin_slots[lo:hi]):
                p.append(f"fanin_matrix[{gid}] disagrees with the fanin CSR")
                break
            if np.any(row[hi - lo:] != nn):
                p.append(
                    f"fanin_matrix[{gid}] padding is not the sentinel "
                    f"slot {nn}"
                )
                break

    # -- fanout CSR and fanin/fanout symmetry ----------------------------
    fo_ptr = np.asarray(compiled.fanout_indptr)
    if len(fo_ptr) != nn + 1 or (len(fo_ptr) and fo_ptr[0] != 0):
        p.append("fanout_indptr must have num_nets+1 entries starting at 0")
    elif np.any(np.diff(fo_ptr) < 0):
        p.append("fanout_indptr is not monotone")
    elif len(fo_ptr) and fo_ptr[-1] != len(compiled.fanout_gates):
        p.append(
            f"fanout_indptr[-1]={fo_ptr[-1]} != "
            f"len(fanout_gates)={len(compiled.fanout_gates)}"
        )
    if len(compiled.fanout_gates) and (
        compiled.fanout_gates.min() < 0 or compiled.fanout_gates.max() >= ng
    ):
        p.append(f"fanout_gates contains gate ids outside [0, {ng})")
    csr_ok = (
        len(fi_ptr) == ng + 1
        and fi_ptr[-1] == len(compiled.fanin_slots)
        and len(fo_ptr) == nn + 1
        and fo_ptr[-1] == len(compiled.fanout_gates)
    )
    if csr_ok:
        fanin_edges = Counter()
        for gid in range(ng):
            for slot in compiled.fanin_slots[fi_ptr[gid]: fi_ptr[gid + 1]]:
                fanin_edges[(int(gid), int(slot))] += 1
        fanout_edges = Counter()
        for slot in range(nn):
            for gid in compiled.fanout_gates[fo_ptr[slot]: fo_ptr[slot + 1]]:
                fanout_edges[(int(gid), int(slot))] += 1
        if fanin_edges != fanout_edges:
            delta = (fanin_edges - fanout_edges) + (fanout_edges - fanin_edges)
            gid, slot = next(iter(delta))
            p.append(
                f"fanin/fanout CSRs are asymmetric (e.g. gate {gid} / "
                f"net slot {slot})"
            )

    # -- topological soundness of the id order ---------------------------
    if csr_ok and len(compiled.gate_level) == ng:
        for gid in range(ng):
            for slot in compiled.fanin_slots[fi_ptr[gid]: fi_ptr[gid + 1]]:
                if npi <= slot < floating_start:
                    driver = int(slot) - npi
                    if compiled.gate_level[driver] >= compiled.gate_level[gid]:
                        p.append(
                            f"gate {gid} (level {compiled.gate_level[gid]}) "
                            f"reads gate {driver} (level "
                            f"{compiled.gate_level[driver]}): id order is "
                            f"not topological"
                        )
                        break
            else:
                continue
            break

    # -- per-gate arrays --------------------------------------------------
    if len(compiled.cell_type_ids) != ng:
        p.append(f"cell_type_ids has {len(compiled.cell_type_ids)} entries")
    elif ng and (
        compiled.cell_type_ids.min() < 0
        or compiled.cell_type_ids.max() >= len(compiled.cell_types)
    ):
        p.append(
            f"cell_type_ids points outside the {len(compiled.cell_types)}-entry "
            f"cell_types vocabulary"
        )
    if len(compiled.size_index) != ng:
        p.append(f"size_index has {len(compiled.size_index)} entries")
    elif ng and compiled.size_index.min() < 0:
        p.append("size_index contains negative entries")

    # -- level blocks ------------------------------------------------------
    if len(compiled.levels) != len(compiled.level_values):
        p.append(
            f"{len(compiled.levels)} level blocks for "
            f"{len(compiled.level_values)} level values"
        )
    elif len(offsets) == len(compiled.level_values) + 1:
        for li, block in enumerate(compiled.levels):
            lo, hi = int(offsets[li]), int(offsets[li + 1])
            if block.level != compiled.level_values[li]:
                p.append(f"level block {li} labelled {block.level}")
                break
            if (
                len(block.gate_ids) != hi - lo
                or (len(block.gate_ids) and (block.gate_ids[0] != lo
                                             or block.gate_ids[-1] != hi - 1))
            ):
                p.append(f"level block {li} gate_ids not arange({lo}, {hi})")
                break
            if np.any(block.out_slots != compiled.gate_output_slot[lo:hi]):
                p.append(f"level block {li} out_slots disagree")
                break
            if block.in_slots.shape != block.in_mask.shape:
                p.append(f"level block {li} in_slots/in_mask shape mismatch")
                break

    # -- optional cross-check against the source netlist ------------------
    if circuit is not None:
        p.extend(_netlist_problems(compiled, circuit))
    return p


def _netlist_problems(compiled: CompiledCircuit, circuit: Circuit) -> List[str]:
    p: List[str] = []
    if compiled.name != circuit.name:
        p.append(f"compiled name {compiled.name!r} != circuit {circuit.name!r}")
    if set(compiled.gate_names) != set(circuit.gates):
        p.append("gate_names does not match the circuit's gate set")
        return p
    npi = compiled.num_pis
    if list(compiled.net_names[:npi]) != list(circuit.primary_inputs):
        p.append("net slots [0, num_pis) are not the primary inputs in order")
    for gid, name in enumerate(compiled.gate_names):
        gate = circuit.gate(name)
        slot = int(compiled.gate_output_slot[gid])
        if slot >= compiled.num_nets or compiled.net_names[slot] != gate.output:
            p.append(f"gate {name!r} output slot does not hold {gate.output!r}")
            break
        slots = [int(s) for s in compiled.gate_fanin_slots(gid)]
        if any(not 0 <= s < compiled.num_nets for s in slots):
            p.append(f"gate {name!r} fanin slots point outside the net table")
            break
        pins = [compiled.net_names[s] for s in slots]
        if pins != list(gate.inputs):
            p.append(f"gate {name!r} fanin slots break pin order")
            break
        if int(compiled.size_index[gid]) != gate.size_index:
            p.append(
                f"gate {name!r} size_index {int(compiled.size_index[gid])} "
                f"stale (circuit has {gate.size_index})"
            )
            break
        cid = int(compiled.cell_type_ids[gid])
        if not 0 <= cid < len(compiled.cell_types) or (
            compiled.cell_types[cid] != gate.cell_type
        ):
            p.append(f"gate {name!r} cell type mismatch")
            break
    return p


def verify_compiled(
    compiled: CompiledCircuit, circuit: Optional[Circuit] = None
) -> CompiledCircuit:
    """Assert every documented lowering invariant of ``compiled``.

    Returns ``compiled`` unchanged on success so calls can be chained;
    raises :class:`IRVerificationError` listing every violation otherwise.
    Pass the source ``circuit`` to additionally cross-check the lowering
    against the netlist (names, pin order, sizes).
    """
    problems = ir_problems(compiled, circuit)
    if problems:
        raise IRVerificationError(compiled.name, problems)
    return compiled
