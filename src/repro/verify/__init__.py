"""Static verification layer: circuit DRC, IR invariants, pre-flight hooks.

Three coordinated passes catch whole bug classes before compute is spent:

* :func:`lint_circuit` — the circuit design-rule checker (DRC001-DRC010);
* :func:`verify_compiled` — the compiled-IR invariant verifier;
* :func:`preflight_circuit` — the pre-flight hook used by ``flow`` and the
  sweep runner (ERROR diagnostics become
  :class:`~repro.runner.errors.DeterministicError`).

``repro-sizer lint`` is the CLI front end; ``tools/repro_lint.py`` holds the
companion repo-invariant AST lints (run in CI, not imported here).
"""

from repro.verify.diagnostics import Diagnostic, LintReport, Severity
from repro.verify.ir_checks import IRVerificationError, ir_problems, verify_compiled
from repro.verify.preflight import PreflightError, preflight_circuit
from repro.verify.rules import (
    Rule,
    RuleContext,
    all_rules,
    error_rules,
    lint_circuit,
    register,
    rule_catalogue,
)

__all__ = [
    "Diagnostic",
    "IRVerificationError",
    "LintReport",
    "PreflightError",
    "Rule",
    "RuleContext",
    "Severity",
    "all_rules",
    "error_rules",
    "ir_problems",
    "lint_circuit",
    "preflight_circuit",
    "register",
    "rule_catalogue",
    "verify_compiled",
]
