"""Adder generators.

Ripple-carry and carry-select adders are the basic datapath blocks used both
as standalone benchmarks and as components of the larger composite circuits
(the c7552-class adder/comparator, the ALUs).  A ripple-carry adder is also
the canonical *deep* circuit: its carry chain gives long paths whose many
independent gate delays average out, which is exactly the low-sigma/mu,
hard-to-improve regime the paper observes for c6288.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.circuits.builder import CircuitBuilder
from repro.netlist.circuit import Circuit


def ripple_carry_adder(
    width: int, name: Optional[str] = None, with_carry_in: bool = True
) -> Circuit:
    """``width``-bit ripple-carry adder: a + b (+ cin) -> sum, cout.

    Gate count is roughly ``5 * width``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    builder = CircuitBuilder(name or f"rca{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    carry = builder.input("cin") if with_carry_in else None

    sums: List[str] = []
    for i in range(width):
        if carry is None:
            s, carry = builder.half_adder(a[i], b[i])
        else:
            s, carry = builder.full_adder(a[i], b[i], carry)
        sums.append(s)

    for i, s in enumerate(sums):
        builder.output(builder.buf(s, f"sum{i}"))
    builder.output(builder.buf(carry, "cout"))
    return builder.build()


def _ripple_block(
    builder: CircuitBuilder, a: List[str], b: List[str], cin: str
) -> Tuple[List[str], str]:
    """Internal ripple chain used by the carry-select adder."""
    sums: List[str] = []
    carry = cin
    for ai, bi in zip(a, b, strict=True):
        s, carry = builder.full_adder(ai, bi, carry)
        sums.append(s)
    return sums, carry


def carry_select_adder(
    width: int, block_size: int = 4, name: Optional[str] = None
) -> Circuit:
    """``width``-bit carry-select adder with ``block_size``-bit blocks.

    Each block computes its sums twice (carry-in 0 and carry-in 1) and muxes
    the result with the actual incoming carry, trading area for a shorter
    critical path — a good stress case for the sizer because the mux chain
    concentrates timing criticality in few gates.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    builder = CircuitBuilder(name or f"csa{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    cin = builder.input("cin")

    # Constant nets for the speculative carries, derived from cin so the
    # circuit stays purely combinational without constant sources.
    zero = builder.and2(cin, builder.inv(cin))   # always 0
    one = builder.or2(cin, builder.inv(cin))     # always 1

    carry = cin
    position = 0
    sum_nets: List[str] = []
    while position < width:
        hi = min(position + block_size, width)
        block_a = a[position:hi]
        block_b = b[position:hi]
        if position == 0:
            sums, carry = _ripple_block(builder, block_a, block_b, carry)
            sum_nets.extend(sums)
        else:
            sums0, carry0 = _ripple_block(builder, block_a, block_b, zero)
            sums1, carry1 = _ripple_block(builder, block_a, block_b, one)
            for s0, s1 in zip(sums0, sums1, strict=True):
                sum_nets.append(builder.mux2(s0, s1, carry))
            carry = builder.mux2(carry0, carry1, carry)
        position = hi

    for i, s in enumerate(sum_nets):
        builder.output(builder.buf(s, f"sum{i}"))
    builder.output(builder.buf(carry, "cout"))
    return builder.build()
