"""Parameterized synthetic big-circuit generator.

The registry's paper stand-ins top out at a few thousand gates, which is
too small to exercise the 100k-gate scale path (ROADMAP: "100k-gate
scenario pool").  This module generates layered random combinational
circuits with controllable structure:

* ``depth`` x ``width`` — the gate grid: ``depth`` logic levels of
  ``width`` gates each (total gate count = ``depth * width``);
* ``fanin_min``/``fanin_max`` — gates draw a uniform fanin in this range;
* ``reconvergence`` — probability that a non-coverage input comes from a
  *random earlier* level instead of the immediately preceding one, creating
  the reconvergent fanout structure that makes SSTA correlation handling
  meaningful;
* ``fanout_skew`` — probability that an input is drawn from a small set of
  per-level hub nets, giving the skewed fanout distribution of real
  netlists (capped at ``max_fanout`` loads per net so the library's drive
  limits hold);
* ``alias_fraction`` — fraction of each level's nets that also get an
  ``assign`` alias (sometimes chained alias-of-alias), so canonicalization
  is exercised at scale.

Generation is fully deterministic for a given :class:`SyntheticSpec`
(seeded :class:`random.Random`; no global RNG).  Structural guarantees:

* every primary input and every gate output below the last level is read
  by at least one later gate (coverage inputs are dealt round-robin), so
  there are no floating or unreachable nets and DRC passes clean;
* the last level's outputs are the primary outputs;
* the result is produced as a :class:`~repro.netlist.ast.RawNetlist` and
  lowered through the shared elaborate + canonicalize pipeline — the
  generator is a front end like the parsers, not a backdoor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.netlist.ast import RawInstance, RawModule, RawNetlist
from repro.netlist.circuit import Circuit
from repro.netlist.elaborate import elaborate
from repro.netlist.gate import make_cell_type

#: Logic functions the generator draws from, with selection weights.
#: Inverting functions dominate, as in technology-mapped netlists.
_FUNCTION_WEIGHTS = (
    ("NAND", 35),
    ("NOR", 15),
    ("AND", 15),
    ("OR", 10),
    ("XOR", 10),
    ("XNOR", 5),
    ("INV", 7),
    ("BUF", 3),
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs of one synthetic circuit (hashable; the generator is pure)."""

    depth: int
    width: int
    seed: int = 0
    inputs: Optional[int] = None  # default: width, capped at width
    fanin_min: int = 2
    fanin_max: int = 3
    reconvergence: float = 0.3
    fanout_skew: float = 0.1
    alias_fraction: float = 0.02
    max_fanout: int = 12
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.depth < 1 or self.width < 1:
            raise ValueError("depth and width must be at least 1")
        if not 1 <= self.fanin_min <= self.fanin_max:
            raise ValueError("need 1 <= fanin_min <= fanin_max")
        if self.max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")

    @property
    def num_inputs(self) -> int:
        return min(self.inputs or self.width, self.width)

    @property
    def num_gates(self) -> int:
        return self.depth * self.width

    @property
    def display_name(self) -> str:
        if self.name:
            return self.name
        return f"gen_d{self.depth}_w{self.width}_s{self.seed}"


def parse_generated_spec(text: str, name: Optional[str] = None) -> SyntheticSpec:
    """Parse a generator spec string.

    Two forms are accepted: the positional shorthand ``"depth,width"``
    (optionally ``"depth,width,seed"``) and the keyword form
    ``"depth=50,width=1000,seed=7,reconvergence=0.4"`` using any
    :class:`SyntheticSpec` field.
    """
    fields: Dict[str, str] = {}
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts:
        raise ValueError(f"empty generator spec {text!r}")
    if "=" in parts[0]:
        for part in parts:
            if "=" not in part:
                raise ValueError(f"bad generator spec field {part!r}")
            key, _, value = part.partition("=")
            fields[key.strip()] = value.strip()
    else:
        if len(parts) not in (2, 3):
            raise ValueError(
                f"positional generator spec must be 'depth,width[,seed]', "
                f"got {text!r}"
            )
        fields["depth"] = parts[0]
        fields["width"] = parts[1]
        if len(parts) == 3:
            fields["seed"] = parts[2]

    kwargs: Dict[str, object] = {}
    int_fields = {"depth", "width", "seed", "inputs", "fanin_min",
                  "fanin_max", "max_fanout"}
    float_fields = {"reconvergence", "fanout_skew", "alias_fraction"}
    for key, value in fields.items():
        if key in int_fields:
            kwargs[key] = int(value)
        elif key in float_fields:
            kwargs[key] = float(value)
        elif key == "name":
            kwargs[key] = value
        else:
            raise ValueError(f"unknown generator spec field {key!r}")
    if "depth" not in kwargs or "width" not in kwargs:
        raise ValueError(f"generator spec {text!r} needs depth and width")
    spec = SyntheticSpec(**kwargs)  # type: ignore[arg-type]
    if name is not None:
        spec = replace(spec, name=name)
    return spec


def synthetic_raw(spec: SyntheticSpec) -> RawNetlist:
    """Generate the raw (unelaborated) netlist for ``spec``."""
    rng = random.Random(spec.seed)
    functions = [f for f, w in _FUNCTION_WEIGHTS for _ in range(w)]

    module = RawModule(name=spec.display_name)
    pis = [f"i{k}" for k in range(spec.num_inputs)]
    for net in pis:
        module.add_port(net, "input")

    # Reader counts enforce max_fanout.  Loads on an alias land on the net
    # the alias canonicalizes to, so counts are kept per resolved target.
    fanout: Dict[str, int] = {net: 0 for net in pis}
    resolved: Dict[str, str] = {}  # alias name -> concrete target net
    levels: List[List[str]] = [pis]
    aliases: List[str] = []  # alias names usable as inputs

    def pick_input(level_idx: int, coverage: Optional[str]) -> str:
        """One input net for a gate at ``level_idx`` (levels[0..level_idx-1])."""
        if coverage is not None:
            return coverage
        prev = levels[level_idx - 1]
        r = rng.random()
        if aliases and r < spec.alias_fraction:
            alias = rng.choice(aliases)
            if fanout[resolved[alias]] < spec.max_fanout:
                return alias
        if level_idx > 1 and r < spec.reconvergence:
            source = levels[rng.randrange(level_idx - 1)]
        else:
            source = prev
        if rng.random() < spec.fanout_skew:
            hubs = source[: max(1, len(source) // 50)]
            candidate = rng.choice(hubs)
        else:
            candidate = rng.choice(source)
        if fanout[candidate] >= spec.max_fanout:
            # Net is saturated: fall back to the least-loaded net sampled
            # from a few tries, keeping the distribution cheap to compute.
            candidate = min(
                (rng.choice(source) for _ in range(4)),
                key=lambda n: fanout[n],
            )
        return candidate

    for level in range(1, spec.depth + 1):
        prev = levels[level - 1]
        outs: List[str] = []
        is_last = level == spec.depth
        for i in range(spec.width):
            out = f"n{level}_{i}"
            function = rng.choice(functions)
            if function in ("INV", "BUF"):
                fanin = 1
            else:
                fanin = rng.randint(spec.fanin_min, spec.fanin_max)
            # Coverage: input 0 is dealt round-robin from the previous
            # level, so every net there gets at least one reader.
            coverage = prev[i % len(prev)]
            inputs = [pick_input(level, coverage if j == 0 else None)
                      for j in range(fanin)]
            for net in inputs:
                target = resolved.get(net, net)
                fanout[target] = fanout.get(target, 0) + 1
            if is_last:
                module.add_port(out, "output")
            else:
                module.add_wire(out)
            fanout[out] = 0
            module.add_instance(
                RawInstance(
                    name=f"u{level}_{i}",
                    target=make_cell_type(function, fanin),
                    positional=[out, *inputs],
                )
            )
            outs.append(out)
        # A slice of this level's nets gets assign aliases (occasionally
        # chained), so canonicalization has real work at scale.
        if not is_last and spec.alias_fraction > 0:
            n_aliases = int(spec.alias_fraction * spec.width)
            for k in range(n_aliases):
                alias = f"a{level}_{k}"
                if aliases and rng.random() < 0.3:
                    target = rng.choice(aliases)  # alias-of-alias chain
                else:
                    target = rng.choice(outs)
                module.add_wire(alias)
                module.add_assign(alias, target)
                resolved[alias] = resolved.get(target, target)
                aliases.append(alias)
        levels.append(outs)
    return RawNetlist(modules={module.name: module}, top=module.name)


def synthetic_circuit(spec: SyntheticSpec) -> Circuit:
    """Generate, elaborate and canonicalize a synthetic circuit."""
    return elaborate(synthetic_raw(spec), name=spec.display_name)


def generate(depth: int, width: int, seed: int = 0, **knobs: object) -> Circuit:
    """Convenience wrapper: ``generate(100, 1000)`` -> 100k-gate circuit."""
    spec = SyntheticSpec(depth=depth, width=width, seed=seed, **knobs)  # type: ignore[arg-type]
    return synthetic_circuit(spec)
