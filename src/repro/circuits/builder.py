"""Helper for writing circuit generators.

:class:`CircuitBuilder` wraps a :class:`~repro.netlist.circuit.Circuit` with
unique-name generation and small combinational idioms (gate primitives,
balanced reduction trees, full adders) so each generator reads like the
datapath it describes rather than a pile of string formatting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate, make_cell_type


class CircuitBuilder:
    """Fluent construction of combinational circuits."""

    def __init__(self, name: str) -> None:
        self.circuit = Circuit(name)
        self._counter = 0

    # -- naming ----------------------------------------------------------
    def fresh_net(self, hint: str = "n") -> str:
        """A new unique internal net name."""
        self._counter += 1
        return f"{hint}_{self._counter}"

    def _fresh_gate_name(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    # -- I/O ---------------------------------------------------------------
    def input(self, net: str) -> str:
        """Declare one primary input and return its net name."""
        self.circuit.add_primary_input(net)
        return net

    def inputs(self, prefix: str, count: int) -> List[str]:
        """Declare ``count`` primary inputs named ``prefix0 .. prefix{count-1}``."""
        return [self.input(f"{prefix}{i}") for i in range(count)]

    def output(self, net: str) -> str:
        """Mark an existing net as a primary output."""
        self.circuit.add_primary_output(net)
        return net

    def outputs(self, nets: Sequence[str]) -> List[str]:
        for net in nets:
            self.output(net)
        return list(nets)

    # -- primitive gates ---------------------------------------------------
    def gate(self, function: str, inputs: Sequence[str], out: Optional[str] = None) -> str:
        """Add one gate of ``function`` over ``inputs``; returns the output net."""
        out = out or self.fresh_net(function.lower())
        cell_type = make_cell_type(function, len(inputs))
        self.circuit.add_gate(
            Gate(
                name=self._fresh_gate_name("g"),
                cell_type=cell_type,
                inputs=list(inputs),
                output=out,
            )
        )
        return out

    def inv(self, a: str, out: Optional[str] = None) -> str:
        return self.gate("INV", [a], out)

    def buf(self, a: str, out: Optional[str] = None) -> str:
        return self.gate("BUF", [a], out)

    def and2(self, a: str, b: str, out: Optional[str] = None) -> str:
        return self.gate("AND", [a, b], out)

    def or2(self, a: str, b: str, out: Optional[str] = None) -> str:
        return self.gate("OR", [a, b], out)

    def nand2(self, a: str, b: str, out: Optional[str] = None) -> str:
        return self.gate("NAND", [a, b], out)

    def nor2(self, a: str, b: str, out: Optional[str] = None) -> str:
        return self.gate("NOR", [a, b], out)

    def xor2(self, a: str, b: str, out: Optional[str] = None) -> str:
        return self.gate("XOR", [a, b], out)

    def xnor2(self, a: str, b: str, out: Optional[str] = None) -> str:
        return self.gate("XNOR", [a, b], out)

    def mux2(self, a: str, b: str, sel: str, out: Optional[str] = None) -> str:
        """2:1 mux built from NAND gates (output = sel ? b : a)."""
        nsel = self.inv(sel)
        t0 = self.nand2(a, nsel)
        t1 = self.nand2(b, sel)
        return self.nand2(t0, t1, out)

    # -- reduction trees ----------------------------------------------------
    def tree(self, function: str, nets: Sequence[str], max_fanin: int = 2) -> str:
        """Balanced reduction tree of ``function`` over ``nets``.

        ``max_fanin`` controls the gate width used at each tree level (2 for
        XOR/XNOR, up to 4 for AND/OR/NAND/NOR when wide cells are desired).
        """
        nets = list(nets)
        if not nets:
            raise ValueError("tree() needs at least one net")
        if len(nets) == 1:
            return nets[0]
        while len(nets) > 1:
            next_level: List[str] = []
            for i in range(0, len(nets), max_fanin):
                group = nets[i:i + max_fanin]
                if len(group) == 1:
                    next_level.append(group[0])
                else:
                    next_level.append(self.gate(function, group))
            nets = next_level
        return nets[0]

    def xor_tree(self, nets: Sequence[str]) -> str:
        return self.tree("XOR", nets, max_fanin=2)

    def and_tree(self, nets: Sequence[str], max_fanin: int = 3) -> str:
        return self.tree("AND", nets, max_fanin=max_fanin)

    def or_tree(self, nets: Sequence[str], max_fanin: int = 3) -> str:
        return self.tree("OR", nets, max_fanin=max_fanin)

    # -- arithmetic idioms ---------------------------------------------------
    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        """Returns ``(sum, carry)``."""
        s = self.xor2(a, b)
        c = self.and2(a, b)
        return s, c

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Returns ``(sum, carry_out)`` using the classic 5-gate NAND/XOR form."""
        p = self.xor2(a, b)
        s = self.xor2(p, cin)
        n1 = self.nand2(a, b)
        n2 = self.nand2(p, cin)
        cout = self.nand2(n1, n2)
        return s, cout

    # -- finishing ----------------------------------------------------------
    def build(self) -> Circuit:
        """Finish the circuit through the shared front-end pipeline.

        The accumulated netlist is wrapped as a
        :class:`~repro.netlist.ast.RawNetlist`, elaborated and canonicalized
        — the same path the Verilog and ``.bench`` readers take — so builder
        output gets identical semantics (driver checks, repair policy) and
        the builders cannot drift from the parsers.  Names, port order, gate
        order and sizes are all preserved; the builder should be discarded
        afterwards.
        """
        from repro.netlist.ast import RawNetlist
        from repro.netlist.elaborate import elaborate

        return elaborate(RawNetlist.from_circuit(self.circuit))
