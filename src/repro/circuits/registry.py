"""Benchmark registry: the paper's circuit names mapped onto generators.

Table 1 of the paper evaluates 13 circuits: three ALUs and ten ISCAS-85
netlists.  The original synthesized netlists are proprietary (they were
mapped with Design Compiler onto an industrial library), so this registry
builds *structural stand-ins* from the parametric generators, chosen so
that gate count, logic depth and circuit style are comparable to the
originals (see DESIGN.md §2 for the substitution rationale).

``build_benchmark("c432")`` returns a fresh circuit; ``benchmark_summary()``
tabulates generated-vs-paper gate counts so the fidelity of the stand-ins is
visible in reports and tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuits.adders import carry_select_adder, ripple_carry_adder
from repro.circuits.alu import alu
from repro.circuits.control import magnitude_comparator, priority_interrupt_controller
from repro.circuits.ecc import parity_tree, sec_circuit
from repro.circuits.multiplier import array_multiplier
from repro.circuits.synthetic import SyntheticSpec, parse_generated_spec, synthetic_circuit
from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate

#: Gate counts reported in Table 1 of the paper (after technology mapping).
PAPER_GATE_COUNTS: Dict[str, int] = {
    "alu1": 234,
    "alu2": 161,
    "alu3": 215,
    "c432": 203,
    "c499": 381,
    "c880": 301,
    "c1355": 378,
    "c1908": 563,
    "c2670": 820,
    "c3540": 1245,
    "c5315": 2318,
    "c6288": 2980,
    "c7552": 2763,
}


def merge_circuits(name: str, parts: Sequence[Tuple[str, Circuit]]) -> Circuit:
    """Merge several independent circuits into one, prefixing all names.

    The parts keep disjoint primary inputs/outputs; merging simply places
    them side by side in a single netlist, which is how the composite
    ISCAS-85 circuits (ALU + control + comparator blocks) are approximated.
    """
    merged = Circuit(name)
    for prefix, part in parts:
        rename = lambda net, p=prefix: f"{p}_{net}"
        for net in part.primary_inputs:
            merged.add_primary_input(rename(net))
        for gate in part.gates.values():
            merged.add_gate(
                Gate(
                    name=f"{prefix}_{gate.name}",
                    cell_type=gate.cell_type,
                    inputs=[rename(n) for n in gate.inputs],
                    output=rename(gate.output),
                    size_index=gate.size_index,
                )
            )
        for net in part.primary_outputs:
            merged.add_primary_output(rename(net))
    return merged


def c17(name: str = "c17") -> Circuit:
    """The six-NAND ISCAS-85 toy circuit, built exactly (used in examples/tests)."""
    circuit = Circuit(
        name,
        primary_inputs=["N1", "N2", "N3", "N6", "N7"],
        primary_outputs=["N22", "N23"],
    )
    circuit.add("g10", "NAND2", ["N1", "N3"], "N10")
    circuit.add("g11", "NAND2", ["N3", "N6"], "N11")
    circuit.add("g16", "NAND2", ["N2", "N11"], "N16")
    circuit.add("g19", "NAND2", ["N11", "N7"], "N19")
    circuit.add("g22", "NAND2", ["N10", "N16"], "N22")
    circuit.add("g23", "NAND2", ["N16", "N19"], "N23")
    return circuit


# ---------------------------------------------------------------------------
# Per-benchmark builders
# ---------------------------------------------------------------------------
def _build_alu1() -> Circuit:
    return alu(8, name="alu1")


def _build_alu2() -> Circuit:
    return alu(6, name="alu2")


def _build_alu3() -> Circuit:
    return alu(7, name="alu3")


def _build_c432() -> Circuit:
    return priority_interrupt_controller(27, name="c432")


def _build_c499() -> Circuit:
    return sec_circuit(32, 8, name="c499")


def _build_c880() -> Circuit:
    return alu(10, name="c880")


def _build_c1355() -> Circuit:
    return sec_circuit(20, 6, expand_xor=True, name="c1355")


def _build_c1908() -> Circuit:
    return sec_circuit(16, 8, ded=True, expand_xor=True, name="c1908")


def _build_c2670() -> Circuit:
    return merge_circuits(
        "c2670",
        [
            ("alu", alu(12)),
            ("pic", priority_interrupt_controller(32)),
            ("cmp", magnitude_comparator(12)),
        ],
    )


def _build_c3540() -> Circuit:
    return merge_circuits(
        "c3540",
        [
            ("alu", alu(16)),
            ("mul", array_multiplier(8)),
            ("pic", priority_interrupt_controller(16)),
        ],
    )


def _build_c5315() -> Circuit:
    return merge_circuits(
        "c5315",
        [
            ("alu", alu(24)),
            ("mul", array_multiplier(10)),
            ("sec", sec_circuit(32, 8)),
            ("add", carry_select_adder(32)),
        ],
    )


def _build_c6288() -> Circuit:
    return array_multiplier(22, name="c6288")


def _build_c7552() -> Circuit:
    return merge_circuits(
        "c7552",
        [
            ("add", carry_select_adder(32)),
            ("rca", ripple_carry_adder(32)),
            ("cmp", magnitude_comparator(32)),
            ("alu", alu(16)),
            ("sec", sec_circuit(32, 8)),
            ("par", parity_tree(32)),
        ],
    )


_BUILDERS: Dict[str, Callable[[], Circuit]] = {
    "c17": c17,
    "alu1": _build_alu1,
    "alu2": _build_alu2,
    "alu3": _build_alu3,
    "c432": _build_c432,
    "c499": _build_c499,
    "c880": _build_c880,
    "c1355": _build_c1355,
    "c1908": _build_c1908,
    "c2670": _build_c2670,
    "c3540": _build_c3540,
    "c5315": _build_c5315,
    "c6288": _build_c6288,
    "c7552": _build_c7552,
}

#: Named synthetic scale points (kept out of ``BENCHMARK_NAMES`` so the
#: paper-facing parametrized suites stay fast; address them directly or via
#: a ``gen:`` spec).  Gate count = depth * width.
GENERATED_SPECS: Dict[str, SyntheticSpec] = {
    "gen1k": SyntheticSpec(depth=10, width=100, seed=17, name="gen1k"),
    "gen10k": SyntheticSpec(depth=20, width=500, seed=17, name="gen10k"),
    "gen50k": SyntheticSpec(depth=50, width=1000, seed=17, name="gen50k"),
    "gen100k": SyntheticSpec(depth=100, width=1000, seed=17, name="gen100k"),
}

GENERATED_NAMES: List[str] = list(GENERATED_SPECS)

#: Names appearing in Table 1, in the paper's order (c17 is extra, for demos).
BENCHMARK_NAMES: List[str] = [
    "alu1",
    "alu2",
    "alu3",
    "c432",
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c2670",
    "c3540",
    "c5315",
    "c6288",
    "c7552",
]


def build_benchmark(name: str) -> Circuit:
    """Build a fresh instance of the named benchmark circuit.

    Besides the registry names, two synthetic-generator forms are accepted:
    the named scale points (``"gen50k"``) and inline ``gen:`` specs such as
    ``"gen:40,250"`` (depth,width[,seed]) or
    ``"gen:depth=40,width=250,reconvergence=0.4"``.
    """
    if name.startswith("gen:"):
        try:
            spec = parse_generated_spec(name[len("gen:"):])
        except ValueError as exc:
            raise KeyError(f"bad generator spec {name!r}: {exc}") from exc
        return synthetic_circuit(spec)
    if name in GENERATED_SPECS:
        return synthetic_circuit(GENERATED_SPECS[name])
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join([*sorted(_BUILDERS), *GENERATED_NAMES, "gen:<spec>"])
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    return builder()


def benchmark_summary(names: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    """Structural summary of the generated stand-ins vs the paper's gate counts."""
    rows: List[Dict[str, object]] = []
    for name in names or BENCHMARK_NAMES:
        circuit = build_benchmark(name)
        stats = circuit.stats()
        rows.append(
            {
                "name": name,
                "generated_gates": stats.num_gates,
                "paper_gates": PAPER_GATE_COUNTS.get(name),
                "logic_depth": stats.logic_depth,
                "primary_inputs": stats.num_primary_inputs,
                "primary_outputs": stats.num_primary_outputs,
            }
        )
    return rows
