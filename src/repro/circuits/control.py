"""Control-style circuits: priority/interrupt controller and comparator.

ISCAS-85 c432 is a 27-channel interrupt controller — essentially priority
logic over channel requests gated by enables, followed by encoding — and
c7552 contains a 32-bit adder/comparator.  These generators reproduce those
structures: long AND/NOR priority chains (shallow fanin but long chains of
small gates) and wide comparison trees.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.builder import CircuitBuilder
from repro.netlist.circuit import Circuit


def priority_interrupt_controller(
    num_channels: int = 27, name: Optional[str] = None
) -> Circuit:
    """``num_channels``-channel priority interrupt controller (c432 class).

    Inputs: per-channel request ``r`` and enable ``e`` plus a global mask
    ``m``.  Outputs: per-group grant signals and an encoded channel id.
    """
    if num_channels < 2:
        raise ValueError("num_channels must be >= 2")
    builder = CircuitBuilder(name or f"pic{num_channels}")
    requests = builder.inputs("r", num_channels)
    enables = builder.inputs("e", num_channels)
    mask = builder.input("m")

    # Qualified requests.
    qualified = [
        builder.and2(builder.and2(requests[i], enables[i]), mask)
        for i in range(num_channels)
    ]

    # Priority chain: channel i is granted iff it requests and no lower-index
    # channel does.  The chain of NOR/AND gates gives the long, thin paths
    # typical of control logic.
    grants: List[str] = [qualified[0]]
    blocked = qualified[0]
    for i in range(1, num_channels):
        not_blocked = builder.inv(blocked)
        grants.append(builder.and2(qualified[i], not_blocked))
        blocked = builder.or2(blocked, qualified[i])

    # Encode the granted channel id (one-hot to binary with OR trees).
    id_bits = max(1, (num_channels - 1).bit_length())
    for bit in range(id_bits):
        ones = [grants[i] for i in range(num_channels) if (i >> bit) & 1]
        if not ones:
            ones = [grants[0]]
        builder.output(builder.buf(builder.or_tree(ones, max_fanin=3), f"id{bit}"))

    # Any-interrupt flag and per-group (byte) summaries.
    builder.output(builder.buf(builder.or_tree(grants, max_fanin=3), "irq"))
    group = 0
    for start in range(0, num_channels, 9):
        chunk = grants[start:start + 9]
        builder.output(
            builder.buf(builder.or_tree(chunk, max_fanin=3), f"grp{group}")
        )
        group += 1
    return builder.build()


def magnitude_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit magnitude comparator: outputs eq, gt, lt (c7552 component)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    builder = CircuitBuilder(name or f"cmp{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)

    eq_bits = [builder.xnor2(a[i], b[i]) for i in range(width)]
    gt_terms: List[str] = []
    # a > b at bit i when a[i]=1, b[i]=0 and all higher bits are equal.
    for i in range(width):
        term = builder.and2(a[i], builder.inv(b[i]))
        higher = eq_bits[i + 1:]
        if higher:
            term = builder.and2(term, builder.and_tree(higher, max_fanin=4))
        gt_terms.append(term)

    eq = builder.and_tree(eq_bits, max_fanin=4)
    gt = builder.or_tree(gt_terms, max_fanin=3)
    lt = builder.nor2(eq, gt)

    builder.output(builder.buf(eq, "eq"))
    builder.output(builder.buf(gt, "gt"))
    builder.output(builder.buf(lt, "lt"))
    return builder.build()
