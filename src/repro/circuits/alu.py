"""74181-style ALU generator (the alu1-3 / c880 / c3540 class).

The paper's "various sized ALU circuits" are relatively shallow datapaths
with moderate gate counts — the class it reports as having the *largest*
starting sigma/mu and the biggest (but most area-expensive) improvement.
This generator builds a classic function-select ALU:

* per-bit slice: operand conditioning (b XOR sub), logic unit (AND/OR/XOR/
  NOR terms), arithmetic unit (propagate/generate + ripple carry), and a
  two-level NAND-mux selecting among the functions;
* global logic: carry-out, zero flag (wide NOR tree over the result) and an
  overflow flag.

Gate count is roughly ``16 * width + 2 * width`` (slice + flags).
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.builder import CircuitBuilder
from repro.netlist.circuit import Circuit


def alu(width: int, name: Optional[str] = None, with_flags: bool = True) -> Circuit:
    """``width``-bit function-select ALU.

    Inputs: operands ``a``/``b``, carry-in ``cin``, function select ``s0``/``s1``
    and mode/subtract control ``sub``.  Outputs: result bits ``f0..``, ``cout``
    and (optionally) ``zero``/``ovf`` flags.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    builder = CircuitBuilder(name or f"alu{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    cin = builder.input("cin")
    s0 = builder.input("s0")
    s1 = builder.input("s1")
    sub = builder.input("sub")

    carry = cin
    prev_carry = cin
    results: List[str] = []
    for i in range(width):
        # Operand conditioning: bx = b XOR sub (one's complement for subtract).
        bx = builder.xor2(b[i], sub)

        # Logic unit.
        and_term = builder.and2(a[i], bx)
        or_term = builder.or2(a[i], bx)
        xor_term = builder.xor2(a[i], bx)
        nor_term = builder.nor2(a[i], bx)

        # Arithmetic unit: sum and ripple carry via propagate/generate.
        sum_term = builder.xor2(xor_term, carry)
        g1 = builder.nand2(a[i], bx)
        g2 = builder.nand2(xor_term, carry)
        prev_carry = carry
        carry = builder.nand2(g1, g2)

        # Function select: s1 picks logic pair, s0 picks between pairs,
        # with the arithmetic result replacing the AND term when s0=s1=1.
        mux_low = builder.mux2(and_term, or_term, s1)
        mux_high = builder.mux2(xor_term, nor_term, s1)
        pre = builder.mux2(mux_low, mux_high, s0)
        f = builder.mux2(pre, sum_term, builder.and2(s0, s1))
        results.append(f)

    for i, net in enumerate(results):
        builder.output(builder.buf(net, f"f{i}"))
    builder.output(builder.buf(carry, "cout"))

    if with_flags:
        zero = builder.inv(builder.or_tree(results, max_fanin=3))
        builder.output(builder.buf(zero, "zero"))
        ovf = builder.xor2(carry, prev_carry)
        builder.output(builder.buf(ovf, "ovf"))
    return builder.build()
