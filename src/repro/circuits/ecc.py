"""Parity and single-error-correction circuits (the c499 / c1355 / c1908 class).

ISCAS-85 c499 and c1355 are functionally the same 32-bit single-error-
correcting (SEC) circuit — c1355 has its XOR gates expanded into NAND
networks — and c1908 is a 16-bit SEC/DED translator.  The defining
structural features are wide XOR (syndrome) trees feeding a decode stage of
AND gates and a correction stage of XORs, which give these circuits their
medium depth and heavy reconvergent fanout.

``sec_circuit(32, 8)`` stands in for c499, ``sec_circuit(32, 8,
expand_xor=True)`` for c1355, and ``sec_circuit(16, 6, ded=True)`` for c1908.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.builder import CircuitBuilder
from repro.netlist.circuit import Circuit


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-input XOR parity tree (a small, shallow benchmark)."""
    if width < 2:
        raise ValueError("width must be >= 2")
    builder = CircuitBuilder(name or f"parity{width}")
    bits = builder.inputs("d", width)
    builder.output(builder.buf(builder.xor_tree(bits), "parity"))
    return builder.build()


def _xor2_expanded(builder: CircuitBuilder, a: str, b: str) -> str:
    """XOR built from four NAND2 gates (the c1355-style expansion)."""
    n1 = builder.nand2(a, b)
    n2 = builder.nand2(a, n1)
    n3 = builder.nand2(b, n1)
    return builder.nand2(n2, n3)


def sec_circuit(
    data_width: int,
    check_bits: int,
    name: Optional[str] = None,
    expand_xor: bool = False,
    ded: bool = False,
) -> Circuit:
    """Single-error-correcting (optionally double-error-detecting) circuit.

    Parameters
    ----------
    data_width:
        Number of data inputs to protect.
    check_bits:
        Number of received check-bit inputs / syndrome bits.
    expand_xor:
        Build every XOR from four NAND2 gates (the c1355 variant), roughly
        tripling the gate count at the same function.
    ded:
        Add an overall-parity tree and a double-error-detect flag (the c1908
        variant).
    """
    if data_width < 2:
        raise ValueError("data_width must be >= 2")
    if check_bits < 2:
        raise ValueError("check_bits must be >= 2")
    builder = CircuitBuilder(name or f"sec{data_width}_{check_bits}")
    data = builder.inputs("d", data_width)
    checks = builder.inputs("c", check_bits)

    def xor_pairwise(nets: List[str]) -> str:
        nets = list(nets)
        while len(nets) > 1:
            next_level = []
            for i in range(0, len(nets) - 1, 2):
                if expand_xor:
                    next_level.append(_xor2_expanded(builder, nets[i], nets[i + 1]))
                else:
                    next_level.append(builder.xor2(nets[i], nets[i + 1]))
            if len(nets) % 2:
                next_level.append(nets[-1])
            nets = next_level
        return nets[0]

    # Syndrome bits: each check bit covers the data bits whose index has the
    # corresponding bit set (Hamming-style coverage).
    syndromes: List[str] = []
    for k in range(check_bits):
        covered = [data[i] for i in range(data_width) if (i >> (k % check_bits.bit_length() or 1)) & 1 or (i + k) % check_bits == 0]
        if len(covered) < 2:
            covered = data[: max(2, data_width // 2)]
        syndrome = xor_pairwise([*covered, checks[k]])
        syndromes.append(syndrome)

    # Decode stage: for every data bit, AND together the syndrome bits (or
    # their complements) matching its position, in two levels to keep fanin
    # realistic.
    corrections: List[str] = []
    inverted = [builder.inv(s) for s in syndromes]
    for i in range(data_width):
        terms = []
        for k in range(check_bits):
            terms.append(syndromes[k] if ((i >> (k % 31)) & 1) or (i + k) % 3 == 0 else inverted[k])
        corrections.append(builder.and_tree(terms, max_fanin=4))

    # Correction stage: corrected data = data XOR correction.
    for i in range(data_width):
        if expand_xor:
            corrected = _xor2_expanded(builder, data[i], corrections[i])
        else:
            corrected = builder.xor2(data[i], corrections[i])
        builder.output(builder.buf(corrected, f"q{i}"))

    # Error-indication outputs.
    any_error = builder.or_tree(syndromes, max_fanin=3)
    builder.output(builder.buf(any_error, "err"))
    if ded:
        overall_parity = xor_pairwise(list(data) + list(checks))
        double_error = builder.and2(any_error, builder.inv(overall_parity))
        builder.output(builder.buf(double_error, "ded"))
    return builder.build()
