"""Parametric benchmark-circuit generators.

The paper evaluates on ISCAS-85 circuits and "various sized ALU circuits"
synthesized with a commercial tool.  Those synthesized netlists are not
redistributable, so this subpackage provides structural generators for the
same circuit families (adders, array multipliers, 74181-style ALUs, parity
and SEC/DED error-correction logic, priority/interrupt controllers and
comparators) plus a registry that maps the paper's circuit names
(``alu1`` ... ``c7552``) to generator configurations of comparable size and
depth.  Real ``.bench`` netlists can also be loaded directly through
:mod:`repro.netlist.bench` and dropped into the same flows.
"""

from repro.circuits.builder import CircuitBuilder
from repro.circuits.adders import ripple_carry_adder, carry_select_adder
from repro.circuits.multiplier import array_multiplier
from repro.circuits.alu import alu
from repro.circuits.ecc import parity_tree, sec_circuit
from repro.circuits.control import priority_interrupt_controller, magnitude_comparator
from repro.circuits.registry import (
    BENCHMARK_NAMES,
    PAPER_GATE_COUNTS,
    build_benchmark,
    benchmark_summary,
    c17,
)

__all__ = [
    "CircuitBuilder",
    "ripple_carry_adder",
    "carry_select_adder",
    "array_multiplier",
    "alu",
    "parity_tree",
    "sec_circuit",
    "priority_interrupt_controller",
    "magnitude_comparator",
    "BENCHMARK_NAMES",
    "PAPER_GATE_COUNTS",
    "build_benchmark",
    "benchmark_summary",
    "c17",
]
