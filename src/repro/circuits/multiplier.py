"""Array multiplier generator (the c6288 class).

ISCAS-85 c6288 is a 16x16 array multiplier; the paper singles it out as the
deepest circuit in the table, with the lowest starting sigma/mu ratio and
the smallest improvement.  This generator reproduces that structure: an
``n x n`` grid of partial-product AND gates reduced by rows of half/full
adders, giving O(n^2) gates and O(n) logic depth.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.builder import CircuitBuilder
from repro.netlist.circuit import Circuit


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """``width`` x ``width`` unsigned array multiplier.

    Gate count grows as ~``7 * width^2``; logic depth as ~``6 * width``.
    ``array_multiplier(16)`` is the stand-in for c6288.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    builder = CircuitBuilder(name or f"mult{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)

    # Partial products pp[i][j] = a[j] & b[i].
    partial: List[List[str]] = [
        [builder.and2(a[j], b[i]) for j in range(width)] for i in range(width)
    ]

    # Row 0 passes straight through; subsequent rows are added with a
    # ripple of half/full adders (carry-save style reduction).
    products: List[str] = [partial[0][0]]
    row_sums: List[str] = partial[0][1:]  # bits 1..width-1 of the running sum

    for i in range(1, width):
        new_sums: List[str] = []
        carry: Optional[str] = None
        for j in range(width):
            addend = partial[i][j]
            running = row_sums[j] if j < len(row_sums) else None
            if running is None and carry is None:
                # Only reachable for width < 2, which the constructor rejects.
                s = addend
            elif running is None:
                # Top bit of the previous row does not exist: half-add with carry.
                s, carry = builder.half_adder(addend, carry)
            elif carry is None:
                s, carry = builder.half_adder(addend, running)
            else:
                s, carry = builder.full_adder(addend, running, carry)
            new_sums.append(s)
        products.append(new_sums[0])
        row_sums = [*new_sums[1:], carry]

    # Remaining running-sum bits are the top product bits.
    products.extend(row_sums)

    for i, net in enumerate(products):
        builder.output(builder.buf(net, f"p{i}"))
    return builder.build()
