"""repro — statistical gate sizing for process-variation tolerance.

This package is a full reproduction of the system described in

    O. Neiroukh and X. Song,
    "Improving the Process-Variation Tolerance of Digital Circuits Using
    Gate Sizing and Statistical Techniques", DATE 2005.

The public API is organised into subpackages:

``repro.netlist``
    Gate-level combinational circuit data model, ISCAS-85 ``.bench`` and
    minimal structural-Verilog readers/writers, structural validation.
``repro.library``
    Standard-cell library substrate: cell types with multiple discrete
    sizes, linear-RC and lookup-table delay models, and a synthetic
    90 nm-like library generator.
``repro.variation``
    Process-variation models (proportional + unsystematic random
    components) that assign a delay sigma to every gate instance.
``repro.sta``
    Deterministic static timing analysis (arrival/required/slack, WNS
    critical path) used as a baseline and for sanity checks.
``repro.core``
    The paper's contribution: FULLSSTA (discrete-PDF SSTA), FASSTA
    (moment-based fast SSTA with Clark-max approximations), WNSS path
    tracing, subcircuit extraction, and the StatisticalGreedy sizer.
``repro.montecarlo``
    Monte-Carlo golden model used to validate the statistical engines.
``repro.circuits``
    Parametric benchmark-circuit generators standing in for the ISCAS-85
    and ALU circuits of the paper's evaluation.
``repro.analysis``
    Experiment harnesses that regenerate the paper's Table 1 and
    Figures 1, 3 and 4, plus metrics and text reporting.
``repro.runner``
    Parallel sweep orchestration: (circuit, lambda) cells fanned across a
    process pool with persistent, resumable JSON artifacts.
``repro.criticality``
    Statistical criticality subsystem: gate/net/edge criticality
    probabilities, top-k statistical path extraction, statistical slack
    PDFs, and the Monte-Carlo critical-path cross-check.

Quickstart
----------
>>> from repro import quick_flow
>>> result = quick_flow("c17", lam=3.0, seed=1)
>>> result.sigma_reduction_pct >= 0
True
"""

from repro.version import __version__
from repro.flow import FlowResult, quick_flow, run_sizing_flow

__all__ = [
    "__version__",
    "FlowResult",
    "quick_flow",
    "run_sizing_flow",
]
