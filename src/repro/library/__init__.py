"""Standard-cell library substrate.

The paper sizes gates drawn from "an industrial 90nm lookup-table based
standard cell library with 6-8 sizes per gate type".  This subpackage
provides the equivalent machinery:

* :class:`~repro.library.cell.CellSize` / :class:`~repro.library.cell.CellType`
  / :class:`~repro.library.cell.Library` — the data model,
* :mod:`repro.library.delay_model` — linear-RC and lookup-table delay
  models for a cell size driving a capacitive load,
* :mod:`repro.library.synthetic90nm` — a generator for a synthetic
  90 nm-like library with realistic relative scaling between sizes,
* :mod:`repro.library.liberty_lite` — a tiny JSON serialisation so
  libraries can be saved, inspected and reloaded.
"""

from repro.library.cell import CellSize, CellType, Library
from repro.library.delay_model import LinearRCDelayModel, LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.library.liberty_lite import library_to_json, library_from_json

__all__ = [
    "CellSize",
    "CellType",
    "Library",
    "LinearRCDelayModel",
    "LookupTableDelayModel",
    "make_synthetic_90nm_library",
    "library_to_json",
    "library_from_json",
]
