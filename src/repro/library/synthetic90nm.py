"""Synthetic 90 nm-like standard-cell library.

The paper's experiments use "an industrial 90nm lookup-table based standard
cell library with 6-8 sizes per gate type".  That library is proprietary;
this module builds a stand-in with the properties the algorithm actually
exploits:

* every logic function comes in several discrete sizes (default 7),
* upsizing a gate multiplies its drive (halving the load-dependent delay
  term per doubling), its area and its input capacitance,
* delay numbers are in the right ballpark for a 90 nm process
  (tens of picoseconds per stage at typical loads),
* each size carries a lookup table sampled from its RC expression so the
  LUT delay model has something to interpolate, like an NLDM library.

The absolute numbers are synthetic; only the relative scaling matters for
reproducing the paper's trends, as documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.library.cell import CellSize, CellType, Library

#: Base (X1) electrical parameters per logic function:
#: (intrinsic delay ps, drive resistance kΩ, input cap fF, area µm²)
_BASE_PARAMS: Dict[str, Tuple[float, float, float, float]] = {
    "INV": (8.0, 6.0, 1.6, 1.6),
    "BUF": (14.0, 6.0, 1.6, 2.4),
    "NAND2": (12.0, 7.0, 1.8, 2.4),
    "NAND3": (16.0, 8.0, 2.0, 3.2),
    "NAND4": (20.0, 9.0, 2.2, 4.0),
    "NOR2": (14.0, 8.0, 1.9, 2.4),
    "NOR3": (19.0, 9.5, 2.1, 3.2),
    "NOR4": (24.0, 11.0, 2.3, 4.0),
    "AND2": (18.0, 7.0, 1.8, 3.2),
    "AND3": (22.0, 8.0, 2.0, 4.0),
    "AND4": (26.0, 9.0, 2.2, 4.8),
    "OR2": (20.0, 8.0, 1.9, 3.2),
    "OR3": (25.0, 9.5, 2.1, 4.0),
    "OR4": (30.0, 11.0, 2.3, 4.8),
    "XOR2": (30.0, 9.0, 2.6, 4.8),
    "XOR3": (42.0, 10.0, 2.8, 7.2),
    "XNOR2": (32.0, 9.0, 2.6, 4.8),
    "XNOR3": (44.0, 10.0, 2.8, 7.2),
    "AOI21": (18.0, 8.5, 2.0, 3.6),
    "OAI21": (18.0, 8.5, 2.0, 3.6),
    "MUX2": (26.0, 8.5, 2.2, 4.8),
}

#: Wider gates (used by .bench circuits with large fanin) are generated on
#: demand by extrapolating from the 4-input variant.
_EXTENDABLE = ("NAND", "NOR", "AND", "OR", "XOR", "XNOR")

#: Default drive multipliers, weakest to strongest: 7 sizes per type, roughly
#: geometric like an industrial library (X1 ... X16).
DEFAULT_DRIVES: Tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)


def _size_name(cell_name: str, drive: float) -> str:
    if float(drive).is_integer():
        return f"{cell_name}_X{int(drive)}"
    return f"{cell_name}_X{drive:g}".replace(".", "p")


def _lut_points(intrinsic: float, resistance: float, max_load: float = 64.0) -> Tuple[Tuple[float, float], ...]:
    """Sample an RC delay curve into a small NLDM-style lookup table."""
    loads = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, max_load)
    return tuple((load, intrinsic + resistance * load) for load in loads)


def _base_params_for(cell_name: str) -> Tuple[float, float, float, float]:
    """Base parameters for ``cell_name``, extrapolating wide gates if needed."""
    if cell_name in _BASE_PARAMS:
        return _BASE_PARAMS[cell_name]
    base = cell_name.rstrip("0123456789")
    suffix = cell_name[len(base):]
    if base in _EXTENDABLE and suffix.isdigit():
        fanin = int(suffix)
        if fanin > 4:
            intr4, res4, cap4, area4 = _BASE_PARAMS[f"{base}4"]
            extra = fanin - 4
            return (
                intr4 + 4.0 * extra,
                res4 + 1.0 * extra,
                cap4 + 0.2 * extra,
                area4 + 0.8 * extra,
            )
    raise KeyError(f"no base parameters for cell type {cell_name!r}")


def make_cell_type(
    cell_name: str,
    num_inputs: int,
    drives: Sequence[float] = DEFAULT_DRIVES,
    with_tables: bool = True,
) -> CellType:
    """Build one :class:`CellType` with a size ladder derived from base params."""
    intrinsic, resistance, cap, area = _base_params_for(cell_name)
    cell = CellType(name=cell_name, num_inputs=num_inputs)
    for drive in drives:
        # Logical-effort-style scaling: the input capacitance (and area) grow
        # essentially linearly with drive while the output resistance falls as
        # 1/drive.  This keeps the "gate effort" roughly constant across
        # sizes, which is what makes mean-delay-optimal sizings finite
        # (instead of saturating every gate at maximum size) and leaves the
        # variance headroom the statistical sizer exploits.
        intr = intrinsic * (1.0 + 0.06 * (drive - 1.0) / drive)
        res = resistance / drive
        size = CellSize(
            name=_size_name(cell_name, drive),
            drive=drive,
            area=area * (0.35 + 0.65 * drive),
            input_cap=cap * (0.15 + 0.85 * drive),
            intrinsic_delay=intr,
            drive_resistance=res,
            delay_table=_lut_points(intr, res) if with_tables else (),
        )
        cell.add_size(size)
    return cell


def make_synthetic_90nm_library(
    sizes_per_cell: int = 7,
    max_fanin: int = 9,
    with_tables: bool = True,
    name: str = "synth90nm",
) -> Library:
    """Build the synthetic 90 nm-like library used throughout the reproduction.

    Parameters
    ----------
    sizes_per_cell:
        Number of discrete sizes per gate type (the paper says 6-8; default 7).
    max_fanin:
        Widest NAND/NOR/AND/OR variant to generate.  ISCAS-85 circuits in
        ``.bench`` form contain gates up to 9 inputs.
    with_tables:
        Attach NLDM-style lookup tables to every size (default) or rely on
        the linear-RC expression only.
    """
    if not 2 <= sizes_per_cell <= len(DEFAULT_DRIVES) + 3:
        raise ValueError("sizes_per_cell must be between 2 and 10")
    if sizes_per_cell <= len(DEFAULT_DRIVES):
        drives = DEFAULT_DRIVES[:sizes_per_cell]
    else:
        drives = DEFAULT_DRIVES + tuple(
            DEFAULT_DRIVES[-1] * (1.5 ** k) for k in range(1, sizes_per_cell - len(DEFAULT_DRIVES) + 1)
        )

    library = Library(name=name, default_output_load=4.0, wire_cap_per_fanout=0.0)

    fixed_arity = {
        "INV": 1,
        "BUF": 1,
        "AOI21": 3,
        "OAI21": 3,
        "MUX2": 3,
    }
    for cell_name, fanin in fixed_arity.items():
        library.add_cell(make_cell_type(cell_name, fanin, drives, with_tables))

    for base in _EXTENDABLE:
        for fanin in range(2, max_fanin + 1):
            cell_name = f"{base}{fanin}"
            if fanin <= 4 or base in ("NAND", "NOR", "AND", "OR", "XOR", "XNOR"):
                try:
                    library.add_cell(make_cell_type(cell_name, fanin, drives, with_tables))
                except KeyError:
                    continue
    return library
