"""Delay models: how a sized gate's nominal delay is computed.

Two models are provided:

* :class:`LinearRCDelayModel` — ``delay = intrinsic + R_drive * C_load``.
  Simple, monotone in load and in 1/drive, and adequate for studying the
  optimization algorithm (the paper's conclusions do not depend on the
  exact delay equation, only on bigger gates being faster under load and
  less variable).
* :class:`LookupTableDelayModel` — interpolates explicit (load, delay)
  tables when the library provides them, mirroring the "lookup-table based"
  industrial library the paper used.

Both models also compute the capacitive load seen by a gate output: the sum
of the input capacitances of its fanout pins, plus the library's default
output load for primary outputs, plus an optional per-fanout wire estimate.
"""

from __future__ import annotations

from typing import Dict

from repro.library.cell import Library
from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate


class BaseDelayModel:
    """Shared load computation for all delay models."""

    def __init__(self, library: Library) -> None:
        self.library = library

    # -- load -----------------------------------------------------------
    def load_on_net(self, circuit: Circuit, net: str) -> float:
        """Total capacitive load (fF) on ``net``."""
        load = 0.0
        fanouts = circuit.loads_of(net)
        for sink in fanouts:
            load += self.library.input_cap(sink.cell_type, sink.size_index)
        load += self.library.wire_cap_per_fanout * len(fanouts)
        if circuit.is_primary_output(net):
            load += self.library.default_output_load
        return load

    def load_on_gate(self, circuit: Circuit, gate: Gate) -> float:
        """Capacitive load driven by ``gate``'s output."""
        return self.load_on_net(circuit, gate.output)

    # -- delay ----------------------------------------------------------
    def gate_delay(self, circuit: Circuit, gate: Gate) -> float:
        """Nominal delay (ps) of ``gate`` in its current size within ``circuit``."""
        raise NotImplementedError

    def gate_delay_at_size(
        self, circuit: Circuit, gate: Gate, size_index: int
    ) -> float:
        """Nominal delay of ``gate`` if it were resized to ``size_index``.

        The load is re-computed with the *current* netlist; resizing the gate
        itself changes its input capacitance (affecting its fanin drivers)
        but not its own load, so this is exact for the candidate gate.
        """
        raise NotImplementedError

    def circuit_area(self, circuit: Circuit) -> float:
        """Total cell area (µm²) of the circuit."""
        return sum(
            self.library.area(g.cell_type, g.size_index) for g in circuit.gates.values()
        )

    def all_gate_delays(self, circuit: Circuit) -> Dict[str, float]:
        """Nominal delay of every gate, keyed by gate name."""
        return {g.name: self.gate_delay(circuit, g) for g in circuit.gates.values()}


class LinearRCDelayModel(BaseDelayModel):
    """``delay = intrinsic + drive_resistance * load`` for every cell size."""

    def gate_delay(self, circuit: Circuit, gate: Gate) -> float:
        size = self.library.size(gate.cell_type, gate.size_index)
        return size.linear_delay(self.load_on_gate(circuit, gate))

    def gate_delay_at_size(self, circuit: Circuit, gate: Gate, size_index: int) -> float:
        size = self.library.size(gate.cell_type, size_index)
        return size.linear_delay(self.load_on_gate(circuit, gate))


class LookupTableDelayModel(BaseDelayModel):
    """Interpolate the per-size (load, delay) tables; fall back to linear-RC.

    This mirrors the NLDM-style "lookup-table based standard cell library"
    of the paper.  Cells without a table silently use the linear expression,
    so mixed libraries work.
    """

    def gate_delay(self, circuit: Circuit, gate: Gate) -> float:
        return self.library.delay(
            gate.cell_type, gate.size_index, self.load_on_gate(circuit, gate)
        )

    def gate_delay_at_size(self, circuit: Circuit, gate: Gate, size_index: int) -> float:
        return self.library.delay(
            gate.cell_type, size_index, self.load_on_gate(circuit, gate)
        )


def make_delay_model(library: Library, kind: str = "lut") -> BaseDelayModel:
    """Factory: ``kind`` is ``"lut"`` or ``"linear"``."""
    if kind == "lut":
        return LookupTableDelayModel(library)
    if kind == "linear":
        return LinearRCDelayModel(library)
    raise ValueError(f"unknown delay model kind {kind!r}")
