"""Tiny JSON serialisation for cell libraries ("liberty lite").

Real Liberty files are enormous; the reproduction only needs to persist the
handful of quantities its delay and variation models consume.  The format is
plain JSON so libraries can be inspected, edited and versioned easily.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.library.cell import CellSize, CellType, Library

FORMAT_VERSION = 1


def library_to_json(library: Library) -> str:
    """Serialise ``library`` to a JSON string."""
    doc = {
        "format_version": FORMAT_VERSION,
        "name": library.name,
        "default_output_load": library.default_output_load,
        "wire_cap_per_fanout": library.wire_cap_per_fanout,
        "cells": [],
    }
    for cell_name in library.cell_types:
        cell = library.cell(cell_name)
        doc["cells"].append(
            {
                "name": cell.name,
                "num_inputs": cell.num_inputs,
                "function": cell.function,
                "sizes": [
                    {
                        "name": s.name,
                        "drive": s.drive,
                        "area": s.area,
                        "input_cap": s.input_cap,
                        "intrinsic_delay": s.intrinsic_delay,
                        "drive_resistance": s.drive_resistance,
                        "delay_table": [list(p) for p in s.delay_table],
                    }
                    for s in cell.sizes
                ],
            }
        )
    return json.dumps(doc, indent=2)


def library_from_json(text: str) -> Library:
    """Reconstruct a :class:`Library` from :func:`library_to_json` output."""
    doc = json.loads(text)
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported library format version {version!r}")
    library = Library(
        name=doc["name"],
        default_output_load=doc.get("default_output_load", 4.0),
        wire_cap_per_fanout=doc.get("wire_cap_per_fanout", 0.0),
    )
    for cell_doc in doc["cells"]:
        cell = CellType(
            name=cell_doc["name"],
            num_inputs=cell_doc["num_inputs"],
            function=cell_doc.get("function", ""),
        )
        for size_doc in cell_doc["sizes"]:
            cell.add_size(
                CellSize(
                    name=size_doc["name"],
                    drive=size_doc["drive"],
                    area=size_doc["area"],
                    input_cap=size_doc["input_cap"],
                    intrinsic_delay=size_doc["intrinsic_delay"],
                    drive_resistance=size_doc["drive_resistance"],
                    delay_table=tuple(tuple(p) for p in size_doc.get("delay_table", [])),
                )
            )
        library.add_cell(cell)
    return library


def save_library(library: Library, path: Union[str, Path]) -> None:
    """Write ``library`` to ``path`` as JSON."""
    Path(path).write_text(library_to_json(library))


def load_library(path: Union[str, Path]) -> Library:
    """Load a library previously written by :func:`save_library`."""
    return library_from_json(Path(path).read_text())
