"""Cell-library data model.

A :class:`CellType` (e.g. ``NAND2``) owns an ordered list of
:class:`CellSize` variants from weakest (index 0) to strongest.  Each size
carries the electrical quantities the delay and variation models need:
area, per-pin input capacitance, intrinsic delay and drive resistance, plus
an optional lookup table of (load -> delay) points.

The :class:`Library` aggregates cell types and answers the queries used by
the timing engines and the sizer:

* ``delay(cell_type, size_index, load)`` — nominal delay of the gate,
* ``input_cap(cell_type, size_index)`` — load it presents to its drivers,
* ``area(cell_type, size_index)``,
* ``num_sizes(cell_type)`` and size enumeration for the sizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CellSize:
    """One discrete size (drive strength) of a cell type.

    Parameters
    ----------
    name:
        Library cell name, e.g. ``"NAND2_X2"``.
    drive:
        Relative drive strength (1.0 = unit drive).  Used by the variation
        model: larger devices exhibit proportionally smaller variation.
    area:
        Cell area in square microns.
    input_cap:
        Capacitance presented by each input pin, in femtofarads.
    intrinsic_delay:
        Load-independent delay component, in picoseconds.
    drive_resistance:
        Effective output resistance in kilo-ohms; the load-dependent delay
        is ``drive_resistance * load_cap`` (kΩ × fF = ps).
    delay_table:
        Optional explicit lookup table of ``(load_fF, delay_ps)`` points.
        When present the LUT delay model interpolates it instead of using
        the linear-RC expression.
    """

    name: str
    drive: float
    area: float
    input_cap: float
    intrinsic_delay: float
    drive_resistance: float
    delay_table: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.drive <= 0:
            raise ValueError(f"cell size {self.name!r}: drive must be positive")
        if self.area <= 0:
            raise ValueError(f"cell size {self.name!r}: area must be positive")
        if self.input_cap <= 0:
            raise ValueError(f"cell size {self.name!r}: input_cap must be positive")
        if self.intrinsic_delay < 0 or self.drive_resistance < 0:
            raise ValueError(
                f"cell size {self.name!r}: delays/resistance must be non-negative"
            )

    def linear_delay(self, load_cap: float) -> float:
        """Nominal delay (ps) driving ``load_cap`` fF with the linear-RC model."""
        return self.intrinsic_delay + self.drive_resistance * max(load_cap, 0.0)


@dataclass
class CellType:
    """A logic function with an ordered list of discrete sizes."""

    name: str
    num_inputs: int
    sizes: List[CellSize] = field(default_factory=list)
    function: str = ""

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError(f"cell type {self.name!r}: num_inputs must be >= 1")
        if not self.function:
            self.function = self.name.rstrip("0123456789") or self.name

    @property
    def num_sizes(self) -> int:
        return len(self.sizes)

    def size(self, index: int) -> CellSize:
        """Return the :class:`CellSize` at ``index`` (0 = weakest)."""
        if not 0 <= index < len(self.sizes):
            raise IndexError(
                f"cell type {self.name!r}: size index {index} out of range "
                f"(has {len(self.sizes)} sizes)"
            )
        return self.sizes[index]

    def add_size(self, size: CellSize) -> None:
        """Append a size; sizes must be added weakest-first."""
        if self.sizes and size.drive <= self.sizes[-1].drive:
            raise ValueError(
                f"cell type {self.name!r}: sizes must be added in increasing "
                f"drive order ({size.drive} <= {self.sizes[-1].drive})"
            )
        self.sizes.append(size)

    def size_indices(self) -> range:
        return range(len(self.sizes))


class Library:
    """A collection of :class:`CellType` objects plus global parameters.

    Parameters
    ----------
    name:
        Library name (appears in reports).
    default_output_load:
        Capacitive load (fF) assumed at every primary output, standing in
        for the flop/pad the output would drive.
    wire_cap_per_fanout:
        Crude interconnect estimate added per fanout pin (fF).  The paper
        ignores interconnect delay; the default of 0 matches that, but the
        knob exists so the sensitivity can be explored.
    """

    def __init__(
        self,
        name: str,
        default_output_load: float = 4.0,
        wire_cap_per_fanout: float = 0.0,
    ) -> None:
        self.name = name
        self.default_output_load = float(default_output_load)
        self.wire_cap_per_fanout = float(wire_cap_per_fanout)
        self._cells: Dict[str, CellType] = {}

    # -- construction ---------------------------------------------------
    def add_cell(self, cell: CellType) -> CellType:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell type {cell.name!r}")
        self._cells[cell.name] = cell
        return cell

    # -- queries ----------------------------------------------------------
    @property
    def cell_types(self) -> List[str]:
        """Sorted list of cell-type names."""
        return sorted(self._cells)

    def has_cell(self, cell_type: str) -> bool:
        return cell_type in self._cells

    def cell(self, cell_type: str) -> CellType:
        try:
            return self._cells[cell_type]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell type {cell_type!r}") from None

    def size(self, cell_type: str, size_index: int) -> CellSize:
        return self.cell(cell_type).size(size_index)

    def num_sizes(self, cell_type: str) -> int:
        return self.cell(cell_type).num_sizes

    def size_indices(self, cell_type: str) -> range:
        return self.cell(cell_type).size_indices()

    def area(self, cell_type: str, size_index: int) -> float:
        """Area (µm²) of one size of a cell type."""
        return self.size(cell_type, size_index).area

    def input_cap(self, cell_type: str, size_index: int) -> float:
        """Per-pin input capacitance (fF)."""
        return self.size(cell_type, size_index).input_cap

    def delay(self, cell_type: str, size_index: int, load_cap: float) -> float:
        """Nominal pin-to-pin delay (ps) of the cell driving ``load_cap`` fF.

        Uses the cell's lookup table when it has one, otherwise the
        linear-RC expression.
        """
        size = self.size(cell_type, size_index)
        if size.delay_table:
            return _interpolate_table(size.delay_table, load_cap)
        return size.linear_delay(load_cap)

    def min_size_index(self, cell_type: str) -> int:
        return 0

    def max_size_index(self, cell_type: str) -> int:
        return self.cell(cell_type).num_sizes - 1

    def __contains__(self, cell_type: str) -> bool:
        return self.has_cell(cell_type)

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"Library({self.name!r}, cells={len(self._cells)})"


def _interpolate_table(table: Sequence[Tuple[float, float]], load: float) -> float:
    """Piecewise-linear interpolation of a (load, delay) table.

    Loads outside the table range are extrapolated from the nearest segment,
    matching how Liberty NLDM tables are commonly extended.  Extrapolating
    below the smallest tabulated load of a steep table can cross zero; a
    negative delay is physically meaningless (and would corrupt arrival
    times downstream), so the result is floored at 0.
    """
    points = sorted(table)
    if len(points) == 1:
        return max(points[0][1], 0.0)
    if load <= points[0][0]:
        (x0, y0), (x1, y1) = points[0], points[1]
    elif load >= points[-1][0]:
        (x0, y0), (x1, y1) = points[-2], points[-1]
    else:
        # Adjacent-pair walk; the one-shorter second iterable is the point.
        for (x0, y0), (x1, y1) in zip(points, points[1:], strict=False):  # noqa: B007
            if x0 <= load <= x1:
                break
    if x1 == x0:
        return max(y0, 0.0)
    frac = (load - x0) / (x1 - x0)
    return max(y0 + frac * (y1 - y0), 0.0)
