"""Subcircuit extraction around a candidate gate (paper §4.5).

For every gate considered for resizing the optimizer extracts a small
region — by default two levels of transitive fanin plus two levels of
transitive fanout, the depth the paper found "sufficiently accurate without
being too costly to evaluate" — and scores candidate sizes by running FASSTA
on that region only.

A :class:`Subcircuit` is a *view* onto the parent circuit rather than a
copy: member gates are referenced by name, and all electrical queries (loads
in particular) are answered against the parent.  This keeps boundary loads
exact — a member gate driving non-member gates still sees their input
capacitance — and means a temporary resize of the candidate gate in the
parent is immediately visible to the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.circuit import Circuit

#: Default extraction depth (levels of transitive fanin and fanout).
DEFAULT_DEPTH = 2


@dataclass
class Subcircuit:
    """A region of a parent circuit centred on ``seed``.

    Attributes
    ----------
    parent:
        The full circuit the region was extracted from.
    seed:
        Name of the candidate gate at the centre of the region.
    gate_names:
        Member gate names in parent topological order.
    input_nets:
        Nets read by member gates but driven outside the region (or primary
        inputs); their arrival times must be supplied as boundary conditions.
    output_nets:
        Nets driven by member gates that are observed outside the region
        (primary outputs or inputs of non-member gates); the cost function
        is evaluated over these.
    """

    parent: Circuit
    seed: str
    gate_names: List[str]
    input_nets: List[str]
    output_nets: List[str]
    _member_set: Optional[Set[str]] = field(default=None, repr=False, compare=False)
    _fringe_gates: Optional[List[str]] = field(default=None, repr=False, compare=False)

    @property
    def num_gates(self) -> int:
        return len(self.gate_names)

    def member_set(self) -> Set[str]:
        if self._member_set is None:
            self._member_set = set(self.gate_names)
        return self._member_set

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self.member_set()

    # ------------------------------------------------------------------
    def fringe_gates(self) -> List[str]:
        """Non-member gates loading a member output net, in deterministic order.

        Their sizes set the input capacitance seen by member drivers, so a
        member gate's delay depends on them even though they are outside the
        evaluated region.
        """
        if self._fringe_gates is None:
            members = self.member_set()
            fringe: List[str] = []
            seen: Set[str] = set()
            for name in self.gate_names:
                net = self.parent.gate(name).output
                for load in self.parent.loads_of(net):
                    if load.name not in members and load.name not in seen:
                        seen.add(load.name)
                        fringe.append(load.name)
            self._fringe_gates = fringe
        return self._fringe_gates

    def context_signature(self) -> Tuple[int, ...]:
        """Size indices of every gate that can influence this region's timing
        given fixed boundary arrivals: the members (delays) plus the fringe
        loads (member output capacitance).  Two evaluations with the same
        seed, depth, boundary arrivals and context signature are guaranteed
        to produce identical costs, which is what makes the sizer's
        evaluation memo exact.
        """
        gates = self.parent.gates
        return tuple(
            gates[name].size_index
            for name in self.gate_names + self.fringe_gates()
        )

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"Subcircuit(seed={self.seed!r}, gates={self.num_gates}, "
            f"inputs={len(self.input_nets)}, outputs={len(self.output_nets)})"
        )


def extract_subcircuit(
    circuit: Circuit, seed_gate: str, depth: int = DEFAULT_DEPTH
) -> Subcircuit:
    """Extract the TFI/TFO region of ``seed_gate`` up to ``depth`` levels each way.

    The seed gate is always included.  Member gates are returned in the
    parent circuit's topological order so moment propagation can run over
    them directly.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    circuit.gate(seed_gate)  # raises for unknown seeds

    members: Set[str] = {seed_gate}
    members.update(circuit.transitive_fanin(seed_gate, depth=depth))
    members.update(circuit.transitive_fanout(seed_gate, depth=depth))

    # Structural extraction, not an analysis loop; the IR has no subcircuit
    # view.  repro-lint: allow=RL001
    order = [name for name in circuit.topological_order() if name in members]

    driven_inside = {circuit.gate(name).output for name in members}
    input_nets: List[str] = []
    seen_inputs: Set[str] = set()
    for name in order:
        for net in circuit.gate(name).inputs:
            if net not in driven_inside and net not in seen_inputs:
                seen_inputs.add(net)
                input_nets.append(net)

    output_nets: List[str] = []
    for name in order:
        net = circuit.gate(name).output
        external_load = any(
            load.name not in members for load in circuit.loads_of(net)
        )
        if circuit.is_primary_output(net) or external_load or not circuit.loads_of(net):
            output_nets.append(net)

    return Subcircuit(
        parent=circuit,
        seed=seed_gate,
        gate_names=order,
        input_nets=input_nets,
        output_nets=output_nets,
    )


class SubcircuitCache:
    """Memoizes :func:`extract_subcircuit` per (seed, depth) for one circuit.

    Extraction walks the parent's full topological order, so the greedy
    sizer — which extracts around every WNSS-path gate every pass — pays
    O(gates) per visit without a cache.  Subcircuit structure only depends
    on the netlist, not on gate sizes, so entries stay valid until the
    circuit's :attr:`~repro.netlist.circuit.Circuit.structure_version`
    changes (or a different circuit is queried), at which point the cache
    resets itself.
    """

    def __init__(self) -> None:
        self._circuit: Optional[Circuit] = None
        self._structure_version: Optional[int] = None
        self._entries: Dict[Tuple[str, int], Subcircuit] = {}
        self.hits = 0
        self.misses = 0

    def get(self, circuit: Circuit, seed: str, depth: int = DEFAULT_DEPTH) -> Subcircuit:
        """Cached extraction of the (seed, depth) region of ``circuit``."""
        if (
            self._circuit is not circuit
            or self._structure_version != circuit.structure_version
        ):
            self._entries.clear()
            self._circuit = circuit
            self._structure_version = circuit.structure_version
        key = (seed, depth)
        subcircuit = self._entries.get(key)
        if subcircuit is None:
            self.misses += 1
            subcircuit = extract_subcircuit(circuit, seed, depth)
            self._entries[key] = subcircuit
        else:
            self.hits += 1
        return subcircuit

    def clear(self) -> None:
        self._entries.clear()
        self._circuit = None
        self._structure_version = None


def extraction_statistics(circuit: Circuit, depth: int = DEFAULT_DEPTH) -> Dict[str, float]:
    """Average/maximum subcircuit size over all gates (used in reports/tests)."""
    sizes = [
        extract_subcircuit(circuit, name, depth).num_gates
        # repro-lint: allow=RL001 -- reporting helper, not a hot path
        for name in circuit.topological_order()
    ]
    if not sizes:
        return {"avg_gates": 0.0, "max_gates": 0.0, "min_gates": 0.0}
    return {
        "avg_gates": sum(sizes) / len(sizes),
        "max_gates": float(max(sizes)),
        "min_gates": float(min(sizes)),
    }
