"""Normal random variables for arrival times and gate delays.

The paper represents every gate delay and arrival time as a normally
distributed random variable characterised by its mean and variance (§3).
:class:`NormalDelay` is the value type passed around by the fast engine
(FASSTA), the WNSS tracer and the cost functions.

Only the operations statistical STA needs are provided:

* ``+`` — sum of independent normals (means and variances add),
* :func:`NormalDelay.maximum` — statistical max via Clark's formulae
  (delegates to :mod:`repro.core.clark`),
* ordering helpers used to pick dominant inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union


@dataclass(frozen=True)
class NormalDelay:
    """A normally distributed delay/arrival time ``Normal(mean, sigma)`` in ps."""

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        if not math.isfinite(self.mean) or not math.isfinite(self.sigma):
            raise ValueError("mean and sigma must be finite")

    # -- basic statistics ------------------------------------------------
    @property
    def variance(self) -> float:
        return self.sigma * self.sigma

    @property
    def cv(self) -> float:
        """Coefficient of variation sigma/mu (0 when the mean is 0)."""
        return self.sigma / self.mean if self.mean != 0 else 0.0

    def quantile(self, q: float) -> float:
        """Inverse CDF using the scipy-free Acklam/Beasley-Springer approach.

        Accurate to ~1e-9 over (0, 1); used for reporting percentile delays
        (e.g. the 99th-percentile delay that yield arguments are made with).
        """
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        return self.mean + self.sigma * _standard_normal_quantile(q)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: Union["NormalDelay", float, int]) -> "NormalDelay":
        if isinstance(other, NormalDelay):
            return NormalDelay(
                self.mean + other.mean,
                math.sqrt(self.variance + other.variance),
            )
        return NormalDelay(self.mean + float(other), self.sigma)

    __radd__ = __add__

    def shift(self, offset: float) -> "NormalDelay":
        """Deterministic shift of the mean (used for required-time arithmetic)."""
        return NormalDelay(self.mean + offset, self.sigma)

    def scale(self, factor: float) -> "NormalDelay":
        """Scale both mean and sigma (e.g. unit conversions)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return NormalDelay(self.mean * factor, self.sigma * factor)

    # -- statistical max ---------------------------------------------------
    def maximum(self, other: "NormalDelay", exact: bool = False) -> "NormalDelay":
        """Statistical max of two independent normal arrival times.

        Uses the fast Clark approximation from the paper by default; pass
        ``exact=True`` for the scipy-based exact Clark moments (used by
        tests and the accuracy benchmarks).
        """
        from repro.core import clark  # local import to avoid a cycle

        if exact:
            mean, var = clark.clark_max_exact(self.mean, self.sigma, other.mean, other.sigma)
        else:
            mean, var = clark.clark_max_fast(self.mean, self.sigma, other.mean, other.sigma)
        return NormalDelay(mean, math.sqrt(max(var, 0.0)))

    @staticmethod
    def maximum_of(delays: Sequence["NormalDelay"], exact: bool = False) -> "NormalDelay":
        """Statistical max of several arrival times, folded pairwise left-to-right."""
        if not delays:
            raise ValueError("maximum_of needs at least one delay")
        result = delays[0]
        for delay in delays[1:]:
            result = result.maximum(delay, exact=exact)
        return result

    # -- comparisons -------------------------------------------------------
    def dominates(self, other: "NormalDelay", threshold: float = 2.6) -> bool:
        """True when this arrival statistically dominates ``other``.

        Implements Eq. (5)/(6) of the paper: the normalized mean separation
        exceeds ``threshold`` (2.6 in the paper), so ``max(self, other)`` is
        simply ``self`` to the accuracy of the erf approximation.
        """
        from repro.core import clark

        return clark.dominance(self.mean, self.sigma, other.mean, other.sigma, threshold) == 1

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"NormalDelay(mean={self.mean:.3f}, sigma={self.sigma:.3f})"


ZERO_DELAY = NormalDelay(0.0, 0.0)


def _standard_normal_quantile(q: float) -> float:
    """Acklam's rational approximation of the standard normal inverse CDF."""
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
               ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
               ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    u = q - 0.5
    t = u * u
    return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u / \
           (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0)
