"""The paper's contribution: statistical timing engines, WNSS tracing and
the StatisticalGreedy sizer.

Module map (paper section in parentheses):

* :mod:`repro.core.rv` — normal arrival-time random variables (§3).
* :mod:`repro.core.clark` — Clark's max moments, the quadratic erf
  approximation and the ±2.6-sigma dominance shortcuts (§4.3, Eqs. 1-6).
* :mod:`repro.core.discrete_pdf` — discrete sampled PDFs with sum/max (§4.2).
* :mod:`repro.core.fullssta` — the outer discrete-PDF SSTA engine (§4.2).
* :mod:`repro.core.fassta` — the fast moment-based inner engine (§4.3).
* :mod:`repro.core.wnss` — Worst-Negative-Statistical-Slack path tracing (§4.4).
* :mod:`repro.core.subcircuit` — TFI/TFO subcircuit extraction (§4.5).
* :mod:`repro.core.cost` — the weighted mu + lambda*sigma cost (Eq. 7).
* :mod:`repro.core.sizer` — the StatisticalGreedy optimizer (Fig. 2).
* :mod:`repro.core.baseline` — deterministic mean-delay sizer producing the
  "original" design point of Table 1 / Fig. 1.
"""

from repro.core.rv import NormalDelay
from repro.core.clark import (
    clark_max_exact,
    clark_max_fast,
    dominance,
    erf_quadratic,
    phi,
    capital_phi,
)
from repro.core.discrete_pdf import DiscretePDF
from repro.core.fassta import FASSTA, FasstaResult
from repro.core.fullssta import FULLSSTA, FullSstaResult
from repro.core.wnss import WNSSTracer, WNSSPath
from repro.core.subcircuit import Subcircuit, extract_subcircuit
from repro.core.cost import WeightedCost, CostEvaluator, YieldObjective
from repro.core.sizer import StatisticalGreedySizer, SizerConfig, SizerResult
from repro.core.baseline import MeanDelaySizer, BaselineResult

__all__ = [
    "NormalDelay",
    "clark_max_exact",
    "clark_max_fast",
    "dominance",
    "erf_quadratic",
    "phi",
    "capital_phi",
    "DiscretePDF",
    "FASSTA",
    "FasstaResult",
    "FULLSSTA",
    "FullSstaResult",
    "WNSSTracer",
    "WNSSPath",
    "Subcircuit",
    "extract_subcircuit",
    "WeightedCost",
    "CostEvaluator",
    "YieldObjective",
    "StatisticalGreedySizer",
    "SizerConfig",
    "SizerResult",
    "MeanDelaySizer",
    "BaselineResult",
]
