"""FULLSSTA — the accurate discrete-PDF statistical timing engine (paper §4.2).

The outer loop of the optimization runs this engine.  Every gate delay is
discretized into a small pdf (10-15 samples, following Liou et al. DAC 2001)
and arrival times are propagated as discrete pdfs using the ``sum``
(convolution) and ``max`` (pairwise-max reduction) operations of
:class:`~repro.core.discrete_pdf.DiscretePDF`.

Besides the output pdf, the engine records the mean and variance at *every*
node — the paper stores exactly these point values "for use in the fast
timing engine (FASSTA)" and the WNSS tracer consumes them too.

An optional spatial-correlation overlay can inflate the output variance to
first order when a :class:`~repro.variation.correlation.SpatialCorrelationModel`
is supplied; the paper leaves correlation handling to "PCA or other methods"
in the outer loop, so this is provided as an extension and disabled by
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.discrete_pdf import DEFAULT_SAMPLES, DiscretePDF
from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.model import VariationModel


@dataclass
class FullSstaResult:
    """Per-node pdfs and moments produced by one FULLSSTA run."""

    arrival_pdfs: Dict[str, DiscretePDF]
    arrival_moments: Dict[str, NormalDelay]
    gate_delay_moments: Dict[str, NormalDelay]
    output_pdf: DiscretePDF
    output_rv: NormalDelay
    worst_output: str

    def arrival(self, net: str) -> NormalDelay:
        """Arrival moments at ``net`` (0 for primary inputs / unknown nets)."""
        return self.arrival_moments.get(net, ZERO_DELAY)

    def arrival_pdf(self, net: str) -> Optional[DiscretePDF]:
        return self.arrival_pdfs.get(net)

    @property
    def mean(self) -> float:
        return self.output_rv.mean

    @property
    def sigma(self) -> float:
        return self.output_rv.sigma


class FULLSSTA:
    """Discrete-PDF statistical static timing analysis.

    Parameters
    ----------
    delay_model / variation_model:
        Same substrates FASSTA uses; the two engines always see identical
        gate-delay distributions, only the propagation math differs.
    num_samples:
        Samples kept per pdf (the paper's "10-15 samples"; default 13).
    correlation_model:
        Optional spatial-correlation overlay (see module docstring).
    """

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: VariationModel,
        num_samples: int = DEFAULT_SAMPLES,
        correlation_model: Optional[SpatialCorrelationModel] = None,
    ) -> None:
        if num_samples < 3:
            raise ValueError("num_samples must be at least 3 for a useful pdf")
        self.delay_model = delay_model
        self.variation_model = variation_model
        self.num_samples = num_samples
        self.correlation_model = correlation_model

    # ------------------------------------------------------------------
    def gate_delay_pdf(self, circuit: Circuit, gate_name: str) -> DiscretePDF:
        """Discretized delay pdf of one gate at its current size."""
        gate = circuit.gate(gate_name)
        dist = self.variation_model.gate_distribution(circuit, gate, self.delay_model)
        return DiscretePDF.from_normal(dist.mean, dist.sigma, self.num_samples)

    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, DiscretePDF]] = None,
        outputs: Optional[List[str]] = None,
    ) -> FullSstaResult:
        """Propagate discrete-pdf arrival times through ``circuit``."""
        arrivals: Dict[str, DiscretePDF] = {}
        if boundary_arrivals:
            arrivals.update(boundary_arrivals)
        for net in circuit.primary_inputs:
            arrivals.setdefault(net, DiscretePDF.point(0.0))

        gate_delay_moments: Dict[str, NormalDelay] = {}
        for gate in circuit:
            dist = self.variation_model.gate_distribution(
                circuit, gate, self.delay_model
            )
            gate_delay_moments[gate.name] = NormalDelay(dist.mean, dist.sigma)
            delay_pdf = DiscretePDF.from_normal(dist.mean, dist.sigma, self.num_samples)
            input_pdfs = [
                arrivals.get(net, DiscretePDF.point(0.0)) for net in gate.inputs
            ]
            if len(input_pdfs) == 1:
                worst_input = input_pdfs[0]
            else:
                worst_input = DiscretePDF.maximum_of(input_pdfs, self.num_samples)
            arrivals[gate.output] = worst_input.add(delay_pdf, self.num_samples)

        output_nets = outputs if outputs is not None else circuit.primary_outputs
        if not output_nets:
            raise ValueError(f"circuit {circuit.name!r} has no outputs to time")
        output_pdfs = [
            arrivals.get(net, DiscretePDF.point(0.0)) for net in output_nets
        ]
        output_pdf = DiscretePDF.maximum_of(output_pdfs, self.num_samples)

        arrival_moments = {
            net: NormalDelay(pdf.mean(), pdf.std()) for net, pdf in arrivals.items()
        }
        output_sigma = output_pdf.std()
        if self.correlation_model is not None:
            output_sigma = self._inflate_sigma_for_correlation(
                circuit, output_sigma, gate_delay_moments
            )
        output_rv = NormalDelay(output_pdf.mean(), output_sigma)
        worst_output = max(
            output_nets, key=lambda net: arrival_moments.get(net, ZERO_DELAY).mean
        )
        return FullSstaResult(
            arrival_pdfs=arrivals,
            arrival_moments=arrival_moments,
            gate_delay_moments=gate_delay_moments,
            output_pdf=output_pdf,
            output_rv=output_rv,
            worst_output=worst_output,
        )

    # ------------------------------------------------------------------
    def _inflate_sigma_for_correlation(
        self,
        circuit: Circuit,
        independent_sigma: float,
        gate_delay_moments: Dict[str, NormalDelay],
    ) -> float:
        """First-order variance correction for spatially correlated variation.

        Positive pairwise correlation along the dominant path adds
        ``2 * rho * sigma_i * sigma_j`` cross terms that the independent
        propagation misses.  We approximate the correction along the gates of
        the nominal critical path only, which keeps the cost linear in path
        length and matches how the correction is typically quoted.
        """
        from repro.sta.dsta import DeterministicSTA  # local import avoids a cycle

        dsta = DeterministicSTA(self.delay_model)
        path = dsta.critical_path(circuit)
        extra_var = 0.0
        for i, gate_i in enumerate(path):
            sigma_i = gate_delay_moments[gate_i].sigma
            for gate_j in path[i + 1:]:
                rho = self.correlation_model.correlation_between(gate_i, gate_j)
                sigma_j = gate_delay_moments[gate_j].sigma
                extra_var += 2.0 * rho * sigma_i * sigma_j
        return float((independent_sigma ** 2 + max(extra_var, 0.0)) ** 0.5)

    # ------------------------------------------------------------------
    def output_moments(self, circuit: Circuit) -> NormalDelay:
        """Shortcut: moments of the circuit-level output arrival."""
        return self.analyze(circuit).output_rv
