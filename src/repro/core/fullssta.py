"""FULLSSTA — the accurate discrete-PDF statistical timing engine (paper §4.2).

The outer loop of the optimization runs this engine.  Every gate delay is
discretized into a small pdf (10-15 samples, following Liou et al. DAC 2001)
and arrival times are propagated as discrete pdfs using the ``sum``
(convolution) and ``max`` (pairwise-max reduction) operations of
:class:`~repro.core.discrete_pdf.DiscretePDF`.

Besides the output pdf, the engine records the mean and variance at *every*
node — the paper stores exactly these point values "for use in the fast
timing engine (FASSTA)" and the WNSS tracer consumes them too.

An optional spatial-correlation overlay can inflate the output variance to
first order when a :class:`~repro.variation.correlation.SpatialCorrelationModel`
is supplied; the paper leaves correlation handling to "PCA or other methods"
in the outer loop, so this is provided as an extension and disabled by
default.

:class:`IncrementalReanalysis` wraps the engine with a per-net pdf cache:
after gate resizes it re-propagates only the transitive-fanout cone of the
changed gates (and of their fanin drivers, whose loads changed) and reuses
the cached pdfs everywhere else.  Because propagation is deterministic and
untouched nets keep bitwise-identical pdfs, the incremental result equals a
from-scratch run exactly — it is a pure wall-clock optimization, which is
what makes nesting FULLSSTA inside a sizing loop affordable at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set

import numpy as np

from repro.core.discrete_pdf import (
    DEFAULT_SAMPLES,
    DiscretePDF,
    batched_combine,
    batched_from_normal,
)
from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.obs import METRICS, span
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.model import VariationModel


@dataclass
class FullSstaResult:
    """Per-node pdfs and moments produced by one FULLSSTA run."""

    arrival_pdfs: Dict[str, DiscretePDF]
    arrival_moments: Dict[str, NormalDelay]
    gate_delay_moments: Dict[str, NormalDelay]
    output_pdf: DiscretePDF
    output_rv: NormalDelay
    worst_output: str

    def arrival(self, net: str) -> NormalDelay:
        """Arrival moments at ``net`` (0 for primary inputs / unknown nets)."""
        return self.arrival_moments.get(net, ZERO_DELAY)

    def arrival_pdf(self, net: str) -> Optional[DiscretePDF]:
        return self.arrival_pdfs.get(net)

    @property
    def mean(self) -> float:
        return self.output_rv.mean

    @property
    def sigma(self) -> float:
        return self.output_rv.sigma


class FULLSSTA:
    """Discrete-PDF statistical static timing analysis.

    Parameters
    ----------
    delay_model / variation_model:
        Same substrates FASSTA uses; the two engines always see identical
        gate-delay distributions, only the propagation math differs.
    num_samples:
        Samples kept per pdf (the paper's "10-15 samples"; default 13).
    correlation_model:
        Optional spatial-correlation overlay (see module docstring).
    vectorized:
        When true, full-circuit analyses run the levelized batched-NumPy
        propagation over padded sample arrays (one
        :func:`~repro.core.discrete_pdf.batched_combine` per input position
        per level) instead of the per-gate scalar pdf fold — the same
        treatment :class:`~repro.core.fassta.FASSTA` received for moments.
        Both paths perform the same canonicalize/compact arithmetic, so
        their moments agree to ~1e-12 (pinned on every registry circuit by
        ``tests/core/test_fullssta_vectorized.py``).
    worst_key:
        Ranking criterion used to report :attr:`FullSstaResult.worst_output`.
        Defaults to the raw mean (a ``lambda = 0`` objective); the sizer
        passes its weighted cost ``mu + lambda * sigma`` so the reported
        worst output matches the optimization objective.
    """

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: VariationModel,
        num_samples: int = DEFAULT_SAMPLES,
        correlation_model: Optional[SpatialCorrelationModel] = None,
        vectorized: bool = False,
        worst_key: Optional[Callable[[NormalDelay], float]] = None,
    ) -> None:
        if num_samples < 3:
            raise ValueError("num_samples must be at least 3 for a useful pdf")
        self.delay_model = delay_model
        self.variation_model = variation_model
        self.num_samples = num_samples
        self.correlation_model = correlation_model
        self.vectorized = vectorized
        self.worst_key = worst_key

    # ------------------------------------------------------------------
    def gate_delay_pdf(self, circuit: Circuit, gate_name: str) -> DiscretePDF:
        """Discretized delay pdf of one gate at its current size."""
        gate = circuit.gate(gate_name)
        dist = self.variation_model.gate_distribution(circuit, gate, self.delay_model)
        return DiscretePDF.from_normal(dist.mean, dist.sigma, self.num_samples)

    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, DiscretePDF]] = None,
        outputs: Optional[List[str]] = None,
    ) -> FullSstaResult:
        """Propagate discrete-pdf arrival times through ``circuit``.

        Requested ``outputs`` must exist in the circuit (or the boundary
        map); unknown names raise ``KeyError`` instead of silently timing as
        zero.
        """
        if self.vectorized:
            METRICS.counter("fullssta.runs.levelized")
            with span("fullssta.analyze", path="levelized") as sp:
                arrivals, gate_delay_moments = self._propagate_vectorized(
                    circuit, boundary_arrivals
                )
                sp.set(gates=len(gate_delay_moments))
        else:
            METRICS.counter("fullssta.runs.scalar")
            with span("fullssta.analyze", path="scalar") as sp:
                arrivals, gate_delay_moments = self._propagate_scalar(
                    circuit, boundary_arrivals
                )
                sp.set(gates=len(gate_delay_moments))
        arrival_moments = {
            net: NormalDelay(pdf.mean(), pdf.std()) for net, pdf in arrivals.items()
        }
        return self._build_result(
            circuit, arrivals, arrival_moments, gate_delay_moments, outputs
        )

    # ------------------------------------------------------------------
    def _propagate_scalar(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, DiscretePDF]],
    ) -> "tuple[Dict[str, DiscretePDF], Dict[str, NormalDelay]]":
        arrivals: Dict[str, DiscretePDF] = {}
        if boundary_arrivals:
            arrivals.update(boundary_arrivals)
        for net in circuit.primary_inputs:
            arrivals.setdefault(net, DiscretePDF.point(0.0))

        gate_delay_moments: Dict[str, NormalDelay] = {}
        for gate in circuit:
            dist = self.variation_model.gate_distribution(
                circuit, gate, self.delay_model
            )
            gate_delay_moments[gate.name] = NormalDelay(dist.mean, dist.sigma)
            delay_pdf = DiscretePDF.from_normal(dist.mean, dist.sigma, self.num_samples)
            input_pdfs = [
                arrivals.get(net, DiscretePDF.point(0.0)) for net in gate.inputs
            ]
            if len(input_pdfs) == 1:
                worst_input = input_pdfs[0]
            else:
                worst_input = DiscretePDF.maximum_of(input_pdfs, self.num_samples)
            arrivals[gate.output] = worst_input.add(delay_pdf, self.num_samples)
        return arrivals, gate_delay_moments

    # ------------------------------------------------------------------
    def _propagate_vectorized(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, DiscretePDF]],
    ) -> "tuple[Dict[str, DiscretePDF], Dict[str, NormalDelay]]":
        """Levelized batched propagation over padded (net, sample) arrays.

        Every net owns one row of the ``values``/``probs`` state arrays
        (padding convention of :mod:`repro.core.discrete_pdf`); each level
        folds its gates' input rows pairwise with masked
        :func:`batched_combine` calls — the identical fold order the scalar
        path uses — then convolves the fold with the level's batched gate
        delay pdfs and scatters the rows to the output nets.
        """
        plan = circuit.compiled()

        # Boundary pdfs may carry more samples than the engine budget; the
        # scalar path folds them at full width (only the *results* are
        # compacted), so the state arrays are sized for the widest row.
        extra_boundary: Dict[str, DiscretePDF] = {}
        known_boundary: Dict[str, DiscretePDF] = {}
        boundary_nets: Set[str] = set()
        if boundary_arrivals:
            for net, pdf in boundary_arrivals.items():
                if net in plan.net_index:
                    known_boundary[net] = pdf
                    boundary_nets.add(net)
                else:
                    # Net unknown to this circuit: keep it visible in the
                    # result map, exactly like the scalar path does.
                    extra_boundary[net] = pdf
        num_samples = self.num_samples
        width = max(
            [num_samples, *(pdf.num_samples for pdf in known_boundary.values())]
        )
        values = np.zeros((plan.num_nets, width))
        probs = np.zeros((plan.num_nets, width))
        probs[:, 0] = 1.0  # every slot starts as the point pdf at 0.0
        counts = np.ones(plan.num_nets, dtype=np.intp)

        def scatter(slot_ids, row_values, row_probs, row_counts) -> None:
            n = row_values.shape[1]
            values[slot_ids, :n] = row_values
            probs[slot_ids, :n] = row_probs
            if width > n:
                values[slot_ids, n:] = row_values[:, -1:]
                probs[slot_ids, n:] = 0.0
            counts[slot_ids] = row_counts

        for net, pdf in known_boundary.items():
            idx = plan.net_index[net]
            scatter(
                np.array([idx]),
                pdf.values[None, :],
                pdf.probabilities[None, :],
                pdf.num_samples,
            )

        gate_delay_moments: Dict[str, NormalDelay] = {}
        for block in plan.levels:
            names, out_ids = block.names, block.out_slots
            in_ids, in_mask = block.in_slots, block.in_mask
            d_mu = np.empty(len(names))
            d_sg = np.empty(len(names))
            for row, name in enumerate(names):
                dist = self.variation_model.gate_distribution(
                    circuit, circuit.gate(name), self.delay_model
                )
                gate_delay_moments[name] = NormalDelay(dist.mean, dist.sigma)
                d_mu[row] = dist.mean
                d_sg[row] = dist.sigma
            delay_values, delay_probs, _ = batched_from_normal(
                d_mu, d_sg, num_samples
            )

            # Left-to-right pairwise fold over input positions, masked so a
            # gate with fewer inputs keeps its running max untouched — the
            # same fold order as DiscretePDF.maximum_of in the scalar path.
            # The running rows start at the state width (wide when boundary
            # pdfs exceed the budget); combine results are padded back to it
            # so masked-out rows merge shape-compatibly.
            worst_values = values[in_ids[:, 0]]
            worst_probs = probs[in_ids[:, 0]]
            for col in range(1, in_ids.shape[1]):
                mask = in_mask[:, col]
                max_values, max_probs, _ = batched_combine(
                    worst_values,
                    worst_probs,
                    values[in_ids[:, col]],
                    probs[in_ids[:, col]],
                    "max",
                    num_samples,
                )
                pad = worst_values.shape[1] - max_values.shape[1]
                if pad > 0:
                    max_values = np.concatenate(
                        [max_values, np.repeat(max_values[:, -1:], pad, axis=1)],
                        axis=1,
                    )
                    max_probs = np.concatenate(
                        [max_probs, np.zeros((max_probs.shape[0], pad))], axis=1
                    )
                worst_values = np.where(mask[:, None], max_values, worst_values)
                worst_probs = np.where(mask[:, None], max_probs, worst_probs)

            out_values, out_probs, out_counts = batched_combine(
                worst_values, worst_probs, delay_values, delay_probs, "add",
                num_samples,
            )
            scatter(out_ids, out_values, out_probs, out_counts)

        arrivals = {
            net: DiscretePDF._from_canonical(
                values[idx, : counts[idx]].copy(), probs[idx, : counts[idx]].copy()
            )
            for net, idx in plan.net_index.items()
            if net not in plan.floating or net in boundary_nets
        }
        arrivals.update(extra_boundary)
        return arrivals, gate_delay_moments

    # ------------------------------------------------------------------
    def _build_result(
        self,
        circuit: Circuit,
        arrivals: Dict[str, DiscretePDF],
        arrival_moments: Dict[str, NormalDelay],
        gate_delay_moments: Dict[str, NormalDelay],
        outputs: Optional[List[str]],
    ) -> FullSstaResult:
        """Assemble a :class:`FullSstaResult` from propagated per-net state.

        Shared by the from-scratch path and :class:`IncrementalReanalysis`
        so the output max, correlation inflation and worst-output ranking
        are computed identically in both.
        """
        output_nets = outputs if outputs is not None else circuit.primary_outputs
        if not output_nets:
            raise ValueError(f"circuit {circuit.name!r} has no outputs to time")
        missing = [net for net in output_nets if net not in arrivals]
        if missing:
            raise KeyError(
                f"unknown output net(s) {missing} in circuit {circuit.name!r}"
            )
        output_pdfs = [arrivals[net] for net in output_nets]
        output_pdf = DiscretePDF.maximum_of(output_pdfs, self.num_samples)

        output_sigma = output_pdf.std()
        if self.correlation_model is not None:
            output_sigma = self._inflate_sigma_for_correlation(
                circuit, output_sigma, gate_delay_moments
            )
        output_rv = NormalDelay(output_pdf.mean(), output_sigma)
        key = self.worst_key or (lambda rv: rv.mean)
        worst_output = max(output_nets, key=lambda net: key(arrival_moments[net]))
        return FullSstaResult(
            arrival_pdfs=arrivals,
            arrival_moments=arrival_moments,
            gate_delay_moments=gate_delay_moments,
            output_pdf=output_pdf,
            output_rv=output_rv,
            worst_output=worst_output,
        )

    # ------------------------------------------------------------------
    def _inflate_sigma_for_correlation(
        self,
        circuit: Circuit,
        independent_sigma: float,
        gate_delay_moments: Dict[str, NormalDelay],
    ) -> float:
        """First-order variance correction for spatially correlated variation.

        Positive pairwise correlation along the dominant path adds
        ``2 * rho * sigma_i * sigma_j`` cross terms that the independent
        propagation misses.  We approximate the correction along the gates of
        the nominal critical path only, which keeps the cost linear in path
        length and matches how the correction is typically quoted.
        """
        from repro.sta.dsta import DeterministicSTA  # local import avoids a cycle

        dsta = DeterministicSTA(self.delay_model)
        path = dsta.critical_path(circuit)
        extra_var = 0.0
        for i, gate_i in enumerate(path):
            sigma_i = gate_delay_moments[gate_i].sigma
            for gate_j in path[i + 1:]:
                rho = self.correlation_model.correlation_between(gate_i, gate_j)
                sigma_j = gate_delay_moments[gate_j].sigma
                extra_var += 2.0 * rho * sigma_i * sigma_j
        return float((independent_sigma ** 2 + max(extra_var, 0.0)) ** 0.5)

    # ------------------------------------------------------------------
    def output_moments(self, circuit: Circuit) -> NormalDelay:
        """Shortcut: moments of the circuit-level output arrival."""
        return self.analyze(circuit).output_rv


class IncrementalReanalysis:
    """Incremental FULLSSTA over one circuit, driven by its size-change log.

    The wrapper keeps the last committed run's per-net arrival pdfs/moments,
    the per-gate delay moments and the gate sizes they were computed at.  On
    :meth:`analyze` it reads the gate names resized since the previous call
    (recorded by :meth:`~repro.netlist.circuit.Circuit.set_size`), keeps
    only those whose size actually differs from the cached state (resizes
    that cancelled out — trial then revert — are recognised as clean), and
    re-propagates only the gates whose timing can actually have moved:

    * every net-resized gate (its drive, intrinsic delay and sigma changed),
    * the drivers of its input nets (the resized gate's input capacitance is
      part of *their* load),
    * downstream gates, recursively — but propagation stops as soon as a
      recomputed pdf is bitwise-identical to the cached one, which happens
      quickly once a dominant side path reasserts itself.

    :meth:`preview` evaluates the pending resizes *without* committing them
    to the cache; a caller trying a candidate resize calls ``preview``,
    then either :meth:`commit_preview` (keep it) or simply reverts the
    resize via ``set_size`` (the cancelled pair then costs nothing).  This
    is what makes the sizer's accept/reject trial loop cheap.

    Results are exactly equal to a from-scratch :meth:`FULLSSTA.analyze`
    (same arithmetic on identical inputs), so callers can switch between the
    two freely.  Contract: all persistent resizes must go through
    ``Circuit.set_size`` (direct ``Gate.size_index`` writes bypass the log);
    structural edits are detected via ``structure_version`` and trigger a
    full rebuild automatically.
    """

    def __init__(self, engine: FULLSSTA, circuit: Circuit) -> None:
        self.engine = engine
        self.circuit = circuit
        self._cursor = 0
        self._structure_version: Optional[int] = None
        self._arrival_pdfs: Optional[Dict[str, DiscretePDF]] = None
        self._arrival_moments: Dict[str, NormalDelay] = {}
        self._gate_delay_moments: Dict[str, NormalDelay] = {}
        self._gate_delay_pdfs: Dict[str, DiscretePDF] = {}
        self._cached_sizes: Dict[str, int] = {}
        self._pending: Optional[_PendingDelta] = None
        # Diagnostics (cumulative over the wrapper's lifetime).
        self.full_runs = 0
        self.incremental_runs = 0
        self.preview_runs = 0
        self.gates_retimed = 0

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cache; the next :meth:`analyze` runs from scratch."""
        self._arrival_pdfs = None
        self._pending = None

    @property
    def stats(self) -> Dict[str, int]:
        """Cumulative run counters (full runs, incremental runs, gates retimed)."""
        return {
            "full_runs": self.full_runs,
            "incremental_runs": self.incremental_runs,
            "preview_runs": self.preview_runs,
            "gates_retimed": self.gates_retimed,
        }

    # ------------------------------------------------------------------
    def analyze(self) -> FullSstaResult:
        """Full-circuit FULLSSTA result, reusing cached pdfs where possible."""
        self._pending = None
        circuit = self.circuit
        if (
            self._arrival_pdfs is None
            or self._structure_version != circuit.structure_version
        ):
            return self._full_rebuild()

        dirty = self._net_dirty_gates(self._cursor)
        if dirty is None:
            return self._full_rebuild()
        self._cursor = circuit.size_change_cursor

        self.incremental_runs += 1
        METRICS.counter("incremental.runs")
        if dirty:
            delta = self._compute_delta(dirty)
            self._apply_delta(delta)
        return self.engine._build_result(
            circuit,
            dict(self._arrival_pdfs),
            dict(self._arrival_moments),
            dict(self._gate_delay_moments),
            outputs=None,
        )

    # ------------------------------------------------------------------
    def preview(self) -> Optional[FullSstaResult]:
        """Evaluate pending resizes against the cache without committing.

        Returns ``None`` when the cache cannot answer incrementally (no
        prior run, or a structural change) — callers should fall back to
        :meth:`analyze`.  Otherwise the result reflects the circuit's
        current sizes while the cache keeps the previously committed state;
        call :meth:`commit_preview` to fold the evaluated delta in, or
        revert the resizes (via ``set_size``) to discard it for free.
        """
        circuit = self.circuit
        if (
            self._arrival_pdfs is None
            or self._structure_version != circuit.structure_version
        ):
            return None
        dirty = self._net_dirty_gates(self._cursor)
        if dirty is None:
            return None

        self.preview_runs += 1
        METRICS.counter("incremental.preview_runs")
        delta = self._compute_delta(dirty)
        self._pending = delta
        merged_pdfs = dict(self._arrival_pdfs)
        merged_pdfs.update(delta.arrival_pdfs)
        merged_moments = dict(self._arrival_moments)
        merged_moments.update(delta.arrival_moments)
        merged_gates = dict(self._gate_delay_moments)
        merged_gates.update(delta.gate_delay_moments)
        return self.engine._build_result(
            circuit, merged_pdfs, merged_moments, merged_gates, outputs=None
        )

    def commit_preview(self) -> bool:
        """Fold the last :meth:`preview` delta into the cache.

        Returns False (and leaves the cache untouched) when no preview is
        pending or further resizes happened after it — the next
        :meth:`analyze`/:meth:`preview` then recomputes from the log as
        usual, so a refused commit is safe, just not free.
        """
        delta = self._pending
        if delta is None or delta.cursor != self.circuit.size_change_cursor:
            return False
        self._apply_delta(delta)
        self._cursor = delta.cursor
        self._pending = None
        return True

    # ------------------------------------------------------------------
    def _net_dirty_gates(self, since_cursor: int) -> Optional[Set[str]]:
        """Gates whose delay may differ from the cached state, or None.

        Compares each logged gate's *current* size against the size the
        cache was computed at, so resize sequences that cancel out are
        recognised as clean.  Returns ``None`` when the log references a
        gate the circuit no longer has (defensive: callers rebuild).
        """
        circuit = self.circuit
        dirty: Set[str] = set()
        for name in circuit.size_changes_since(since_cursor):
            if not circuit.has_gate(name):
                return None
            if circuit.gate(name).size_index == self._cached_sizes.get(name):
                continue
            dirty.add(name)
            for gate in circuit.fanin_gates(name):
                dirty.add(gate.name)
        return dirty

    # ------------------------------------------------------------------
    def _full_rebuild(self) -> FullSstaResult:
        circuit = self.circuit
        self._cursor = circuit.size_change_cursor
        self._structure_version = circuit.structure_version
        result = self.engine.analyze(circuit)
        self._arrival_pdfs = dict(result.arrival_pdfs)
        self._arrival_moments = dict(result.arrival_moments)
        self._gate_delay_moments = dict(result.gate_delay_moments)
        self._gate_delay_pdfs = {}
        self._cached_sizes = circuit.sizes()
        self.full_runs += 1
        self.gates_retimed += circuit.num_gates()
        METRICS.counter("incremental.full_runs")
        return result

    # ------------------------------------------------------------------
    def _compute_delta(self, dirty_delay: Set[str]) -> "_PendingDelta":
        """Recompute the cone of ``dirty_delay`` gates into an overlay.

        Candidate gates come from the compiled IR's fanout CSR: the dirty
        gates plus their transitive fanout, as a topologically sorted
        index range — gates outside that cone can never need recomputation,
        so the sweep is O(cone) instead of a full-circuit scan.  Within the
        cone a gate is recomputed when its own delay is dirty or any of its
        input nets changed; its output is marked changed only when the new
        pdf differs from the cached one, so the wavefront dies out as soon
        as the numbers reconverge.  The cache itself is not touched.
        """
        engine = self.engine
        circuit = self.circuit
        cache = self._arrival_pdfs
        delta = _PendingDelta(cursor=circuit.size_change_cursor)
        if not dirty_delay:
            return delta
        overlay = delta.arrival_pdfs
        changed_nets: Set[str] = set()
        point_zero = DiscretePDF.point(0.0)

        plan = circuit.compiled()
        cone = plan.fanout_cone(plan.gate_index[name] for name in dirty_delay)
        # The per-resize dirty-cone size is the quantity that makes (or
        # breaks) the incremental win: its distribution is the headline
        # observability metric of this layer.
        METRICS.histogram("incremental.dirty_cone_gates", len(cone))
        for gid in cone:
            gate = circuit.gate(plan.gate_names[gid])
            recompute = gate.name in dirty_delay or any(
                net in changed_nets for net in gate.inputs
            )
            if not recompute:
                continue
            self.gates_retimed += 1
            if gate.name in dirty_delay:
                # The gate's own delay distribution moved (its size or one
                # of its fanout's input caps changed): re-derive it.  The
                # pdf goes into the delta, not the shared cache — a preview
                # must not leak trial delays.
                dist = engine.variation_model.gate_distribution(
                    circuit, gate, engine.delay_model
                )
                delta.gate_delay_moments[gate.name] = NormalDelay(
                    dist.mean, dist.sigma
                )
                delay_pdf = DiscretePDF.from_normal(
                    dist.mean, dist.sigma, engine.num_samples
                )
                delta.gate_delay_pdfs[gate.name] = delay_pdf
            else:
                # Only the gate's *inputs* changed; its delay pdf is
                # bitwise-identical to the committed state, so rebuild it
                # from the cached moments at most once.
                delay_pdf = self._gate_delay_pdfs.get(gate.name)
                if delay_pdf is None:
                    rv = self._gate_delay_moments[gate.name]
                    delay_pdf = DiscretePDF.from_normal(
                        rv.mean, rv.sigma, engine.num_samples
                    )
                    self._gate_delay_pdfs[gate.name] = delay_pdf
            input_pdfs = [
                overlay[net] if net in overlay else cache.get(net, point_zero)
                for net in gate.inputs
            ]
            if len(input_pdfs) == 1:
                worst_input = input_pdfs[0]
            else:
                worst_input = DiscretePDF.maximum_of(input_pdfs, engine.num_samples)
            new_pdf = worst_input.add(delay_pdf, engine.num_samples)

            old_pdf = cache.get(gate.output)
            if old_pdf is not None and _pdfs_equal(old_pdf, new_pdf):
                continue
            overlay[gate.output] = new_pdf
            delta.arrival_moments[gate.output] = NormalDelay(
                new_pdf.mean(), new_pdf.std()
            )
            changed_nets.add(gate.output)

        for name in dirty_delay:
            delta.sizes[name] = circuit.gate(name).size_index
        return delta

    def _apply_delta(self, delta: "_PendingDelta") -> None:
        self._arrival_pdfs.update(delta.arrival_pdfs)
        self._arrival_moments.update(delta.arrival_moments)
        self._gate_delay_moments.update(delta.gate_delay_moments)
        self._gate_delay_pdfs.update(delta.gate_delay_pdfs)
        self._cached_sizes.update(delta.sizes)


@dataclass
class _PendingDelta:
    """Uncommitted re-propagation overlay produced by one preview/analyze."""

    cursor: int
    arrival_pdfs: Dict[str, DiscretePDF] = field(default_factory=dict)
    arrival_moments: Dict[str, NormalDelay] = field(default_factory=dict)
    gate_delay_moments: Dict[str, NormalDelay] = field(default_factory=dict)
    gate_delay_pdfs: Dict[str, DiscretePDF] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)


def _pdfs_equal(a: DiscretePDF, b: DiscretePDF) -> bool:
    """Bitwise equality of two discrete pdfs (sample locations and masses)."""
    return np.array_equal(a.values, b.values) and np.array_equal(
        a.probabilities, b.probabilities
    )
