"""Clark's moments of max(A, B) and the paper's fast approximations.

Given two independent normal random variables ``A ~ N(mu_a, sigma_a)`` and
``B ~ N(mu_b, sigma_b)``, Clark (1961) gives the first two moments of
``max(A, B)`` in closed form (paper Eqs. 1-3)::

    a^2   = sigma_a^2 + sigma_b^2
    alpha = (mu_a - mu_b) / a
    nu1   = mu_a * Phi(alpha) + mu_b * Phi(-alpha) + a * phi(alpha)
    nu2   = (mu_a^2 + sigma_a^2) * Phi(alpha)
          + (mu_b^2 + sigma_b^2) * Phi(-alpha)
          + (mu_a + mu_b) * a * phi(alpha)
    Var[max(A, B)] = nu2 - nu1^2

where ``phi``/``Phi`` are the standard normal pdf/cdf.  Evaluating the cdf
is the expensive part; the paper replaces it with the CRC quadratic
approximation (accurate to two decimal places) and observes that when the
normalized mean separation ``|alpha|`` exceeds 2.6 the max simply collapses
to the dominant operand (Eqs. 5-6), so no arithmetic is needed at all.

This module provides:

* :func:`clark_max_exact` — the exact moments (scipy normal cdf/pdf);
* :func:`clark_max_fast` — the paper's approximation with the dominance
  shortcut, using only multiply/add and one exponential;
* :func:`dominance` — the Eq. 5/6 test by itself (also used by the WNSS
  tracer);
* :func:`clark_max_fast_arrays` — the same fast max evaluated elementwise
  over NumPy arrays, the kernel of the levelized vectorized FASSTA path;
* :func:`variance_sensitivities` — forward finite-difference approximations
  of ``dVar(max)/dmu`` with the ``delta_sigma = c * delta_mu`` coupling of
  §4.4, used to rank inputs when neither dominates.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.stats import norm as _scipy_norm

#: Normalized mean separation beyond which one operand fully dominates the
#: max (paper Eqs. 5 and 6).
DOMINANCE_THRESHOLD = 2.6

_SQRT_2PI = math.sqrt(2.0 * math.pi)
_SQRT_2 = math.sqrt(2.0)


# ---------------------------------------------------------------------------
# Standard-normal helpers
# ---------------------------------------------------------------------------
def phi(x: float) -> float:
    """Standard normal pdf ``(1/sqrt(2*pi)) * exp(-x^2/2)`` (paper's lowercase phi)."""
    return math.exp(-0.5 * x * x) / _SQRT_2PI


def capital_phi(x: float) -> float:
    """Exact standard normal cdf (used by the exact Clark evaluation)."""
    return 0.5 * math.erfc(-x / _SQRT_2)


def capital_phi_quadratic(x: float) -> float:
    """CRC quadratic approximation of the standard normal cdf (paper §4.3).

    For ``x >= 0``::

        Phi(x) ~= 0.5 + 0.1 * x * (4.4 - x)   0   <= x <= 2.2
                  0.99                         2.2 <  x <= 2.6
                  1.0                          x   >  2.6

    and ``Phi(-x) = 1 - Phi(x)`` (the approximation is odd about 0.5, which
    is the property the paper uses).  Accurate to about two decimal places.
    """
    negative = x < 0.0
    ax = -x if negative else x
    if ax <= 2.2:
        value = 0.5 + 0.1 * ax * (4.4 - ax)
    elif ax <= 2.6:
        value = 0.99
    else:
        value = 1.0
    return 1.0 - value if negative else value


def erf_quadratic(x: float) -> float:
    """Quadratic approximation of ``erf(x)`` consistent with :func:`capital_phi_quadratic`.

    Derived through ``erf(x) = 2 * Phi(x * sqrt(2)) - 1``; odd in ``x``.
    """
    return 2.0 * capital_phi_quadratic(x * _SQRT_2) - 1.0


# ---------------------------------------------------------------------------
# Dominance test (Eqs. 5 and 6)
# ---------------------------------------------------------------------------
def dominance(
    mu_a: float,
    sigma_a: float,
    mu_b: float,
    sigma_b: float,
    threshold: float = DOMINANCE_THRESHOLD,
) -> int:
    """Return +1 if A dominates the max, -1 if B dominates, 0 otherwise.

    A dominates when ``(mu_a - mu_b) / a >= threshold`` with
    ``a = sqrt(sigma_a^2 + sigma_b^2)`` (Eq. 5); B dominates for the mirror
    condition (Eq. 6).  When both sigmas are zero the comparison degenerates
    to the deterministic one.
    """
    a2 = sigma_a * sigma_a + sigma_b * sigma_b
    if a2 <= 0.0:
        if mu_a > mu_b:
            return 1
        if mu_b > mu_a:
            return -1
        return 1  # identical deterministic values: either operand is the max
    alpha = (mu_a - mu_b) / math.sqrt(a2)
    if alpha >= threshold:
        return 1
    if alpha <= -threshold:
        return -1
    return 0


# ---------------------------------------------------------------------------
# Clark moments
# ---------------------------------------------------------------------------
def _clark_moments(
    mu_a: float,
    sigma_a: float,
    mu_b: float,
    sigma_b: float,
    cdf,
) -> Tuple[float, float]:
    """Clark's first two central moments of max(A, B) with a pluggable cdf."""
    a2 = sigma_a * sigma_a + sigma_b * sigma_b
    if a2 <= 0.0:
        # Both operands deterministic.
        return (max(mu_a, mu_b), 0.0)
    a = math.sqrt(a2)
    alpha = (mu_a - mu_b) / a
    cdf_pos = cdf(alpha)
    cdf_neg = 1.0 - cdf_pos
    pdf_alpha = phi(alpha)
    nu1 = mu_a * cdf_pos + mu_b * cdf_neg + a * pdf_alpha
    nu2 = (
        (mu_a * mu_a + sigma_a * sigma_a) * cdf_pos
        + (mu_b * mu_b + sigma_b * sigma_b) * cdf_neg
        + (mu_a + mu_b) * a * pdf_alpha
    )
    variance = nu2 - nu1 * nu1
    return nu1, max(variance, 0.0)


def clark_max_exact(
    mu_a: float, sigma_a: float, mu_b: float, sigma_b: float
) -> Tuple[float, float]:
    """Exact Clark mean and variance of ``max(A, B)`` (independent normals)."""
    return _clark_moments(mu_a, sigma_a, mu_b, sigma_b, capital_phi)


def clark_max_fast(
    mu_a: float,
    sigma_a: float,
    mu_b: float,
    sigma_b: float,
    threshold: float = DOMINANCE_THRESHOLD,
) -> Tuple[float, float]:
    """The paper's fast max: dominance shortcut plus quadratic-cdf Clark.

    Returns ``(mean, variance)``.  When Eq. (5) or (6) holds the dominant
    operand's moments are returned directly (no floating point beyond the
    test itself); otherwise Clark's formulae are evaluated with the CRC
    quadratic cdf approximation.
    """
    dom = dominance(mu_a, sigma_a, mu_b, sigma_b, threshold)
    if dom == 1:
        return mu_a, sigma_a * sigma_a
    if dom == -1:
        return mu_b, sigma_b * sigma_b
    return _clark_moments(mu_a, sigma_a, mu_b, sigma_b, capital_phi_quadratic)


def clark_max_fast_arrays(
    mu_a: np.ndarray,
    sigma_a: np.ndarray,
    mu_b: np.ndarray,
    sigma_b: np.ndarray,
    threshold: float = DOMINANCE_THRESHOLD,
) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise :func:`clark_max_fast` over NumPy arrays.

    Returns ``(mean, variance)`` arrays.  The arithmetic mirrors the scalar
    path operation-for-operation (same dominance test, same quadratic cdf,
    same order of additions) so results agree with the scalar engine to the
    last few ulps; the only non-correctly-rounded primitive is ``exp``.
    """
    mu_a = np.asarray(mu_a, dtype=float)
    sigma_a = np.asarray(sigma_a, dtype=float)
    mu_b = np.asarray(mu_b, dtype=float)
    sigma_b = np.asarray(sigma_b, dtype=float)

    var_a = sigma_a * sigma_a
    var_b = sigma_b * sigma_b
    a2 = var_a + var_b
    deterministic = a2 <= 0.0
    a = np.sqrt(np.where(deterministic, 1.0, a2))
    alpha = (mu_a - mu_b) / a

    # CRC quadratic cdf approximation (capital_phi_quadratic), vectorized.
    ax = np.abs(alpha)
    value = np.where(
        ax <= 2.2,
        0.5 + 0.1 * ax * (4.4 - ax),
        np.where(ax <= 2.6, 0.99, 1.0),
    )
    cdf_pos = np.where(alpha < 0.0, 1.0 - value, value)
    cdf_neg = 1.0 - cdf_pos
    pdf_alpha = np.exp(-0.5 * alpha * alpha) / _SQRT_2PI

    nu1 = mu_a * cdf_pos + mu_b * cdf_neg + a * pdf_alpha
    nu2 = (
        (mu_a * mu_a + var_a) * cdf_pos
        + (mu_b * mu_b + var_b) * cdf_neg
        + (mu_a + mu_b) * a * pdf_alpha
    )
    mean = nu1
    variance = np.maximum(nu2 - nu1 * nu1, 0.0)

    # Dominance shortcut (Eqs. 5/6): the dominant operand passes through.
    dom_a = alpha >= threshold
    dom_b = alpha <= -threshold
    mean = np.where(dom_a, mu_a, np.where(dom_b, mu_b, mean))
    variance = np.where(dom_a, var_a, np.where(dom_b, var_b, variance))

    # Both operands deterministic: plain max, zero variance.
    mean = np.where(deterministic, np.maximum(mu_a, mu_b), mean)
    variance = np.where(deterministic, 0.0, variance)
    return mean, variance


def clark_max_scipy(
    mu_a: float, sigma_a: float, mu_b: float, sigma_b: float
) -> Tuple[float, float]:
    """Reference Clark moments using scipy's normal cdf (for cross-checks)."""
    return _clark_moments(
        mu_a, sigma_a, mu_b, sigma_b, lambda x: float(_scipy_norm.cdf(x))
    )


# ---------------------------------------------------------------------------
# Variance sensitivities for WNSS tracing (paper §4.4)
# ---------------------------------------------------------------------------
def variance_of_max_fast(
    mu_a: float, sigma_a: float, mu_b: float, sigma_b: float
) -> float:
    """Variance of max(A, B) via the fast approximation (helper for sensitivities)."""
    _, var = clark_max_fast(mu_a, sigma_a, mu_b, sigma_b)
    return var


def variance_sensitivities(
    mu_a: float,
    sigma_a: float,
    mu_b: float,
    sigma_b: float,
    coupling: float,
    rel_step: float = 0.01,
) -> Tuple[float, float]:
    """Finite-difference sensitivities of Var[max(A,B)] to the input means.

    Implements §4.4: the partial derivative with respect to ``mu_a`` is
    approximated by a forward difference with step ``h ~= rel_step * mu_a``,
    and — because mean and sigma along a path are correlated — the sigma is
    simultaneously perturbed by ``g = coupling * h`` (the paper's linear
    ``delta_sigma = c * delta_mu`` model).

    Returns ``(dVar/dmu_a, dVar/dmu_b)``.
    """
    if rel_step <= 0:
        raise ValueError("rel_step must be positive")
    base = variance_of_max_fast(mu_a, sigma_a, mu_b, sigma_b)

    h_a = max(abs(mu_a) * rel_step, 1e-6)
    g_a = coupling * h_a
    var_a = variance_of_max_fast(mu_a + h_a, sigma_a + g_a, mu_b, sigma_b)
    sens_a = (var_a - base) / h_a

    h_b = max(abs(mu_b) * rel_step, 1e-6)
    g_b = coupling * h_b
    var_b = variance_of_max_fast(mu_a, sigma_a, mu_b + h_b, sigma_b + g_b)
    sens_b = (var_b - base) / h_b

    return sens_a, sens_b
