"""Deterministic mean-delay sizer — the "original" design point.

The first column of the paper's Table 1 ("original") is "the ratio of sigma
to mu obtained by optimizing for mean delay": before the statistical sizer
runs, the circuit is sized by a conventional deterministic greedy optimizer
whose only goal is minimum worst-case (mean) delay.  Such a design "will
typically exhibit the widest spread in performance due to high usage of
smaller devices".

:class:`MeanDelaySizer` implements that baseline following the classic
greedy critical-path sizing template the paper cites (Coudert 1997, Fishburn
1992, Murgai 2002):

1. run deterministic STA, find the WNS critical path;
2. for each gate on the path, evaluate every size by the resulting critical
   path delay through its two-level subcircuit (nominal delays only);
3. commit the best size per gate, repeat until no improvement;
4. optionally recover area: downsize gates off the critical path as long as
   the circuit's worst delay does not degrade beyond a tolerance.

It reuses the same subcircuit extraction as the statistical sizer, with
``lambda = 0`` (pure mean objective), so the two optimizers are directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cost import CostEvaluator, WeightedCost
from repro.core.fassta import FASSTA
from repro.core.rv import NormalDelay
from repro.core.subcircuit import DEFAULT_DEPTH, extract_subcircuit
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.obs import clock, span
from repro.sta.dsta import DeterministicSTA
from repro.variation.model import VariationModel


@dataclass
class BaselineResult:
    """Outcome of the deterministic mean-delay sizing."""

    circuit: Circuit
    initial_delay: float
    final_delay: float
    initial_area: float
    final_area: float
    passes: int
    runtime_seconds: float

    @property
    def delay_reduction_pct(self) -> float:
        if self.initial_delay == 0:
            return 0.0
        return 100.0 * (self.initial_delay - self.final_delay) / self.initial_delay


class MeanDelaySizer:
    """Greedy deterministic gate sizer minimizing the worst nominal delay."""

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: Optional[VariationModel] = None,
        subcircuit_depth: int = DEFAULT_DEPTH,
        max_passes: int = 40,
        min_gain: float = 1e-6,
        area_recovery: bool = True,
        area_recovery_tolerance: float = 0.002,
        near_critical_fraction: float = 0.05,
        patience: int = 3,
    ) -> None:
        self.delay_model = delay_model
        # A zero-variation model lets us reuse the FASSTA/CostEvaluator pair
        # as a purely deterministic evaluator (sigma is identically the
        # random floor, which is constant and cannot affect rankings at lam=0).
        self.variation_model = variation_model or VariationModel(
            proportional_alpha=0.0, random_sigma=0.0
        )
        self.subcircuit_depth = subcircuit_depth
        self.max_passes = max_passes
        self.min_gain = min_gain
        self.area_recovery = area_recovery
        self.area_recovery_tolerance = area_recovery_tolerance
        self.near_critical_fraction = near_critical_fraction
        self.patience = patience

        self.dsta = DeterministicSTA(delay_model)
        self.fassta = FASSTA(delay_model, self.variation_model)
        self.evaluator = CostEvaluator(self.fassta, WeightedCost(0.0))

    # ------------------------------------------------------------------
    def optimize(self, circuit: Circuit) -> BaselineResult:
        """Size ``circuit`` in place for minimum mean delay."""
        with span("baseline.optimize", circuit=circuit.name) as sp:
            result = self._optimize(circuit)
            sp.set(passes=result.passes)
        return result

    def _optimize(self, circuit: Circuit) -> BaselineResult:
        start = clock()
        initial_delay = self.dsta.max_delay(circuit)
        initial_area = self.delay_model.circuit_area(circuit)

        best_delay = initial_delay
        best_sizes = circuit.sizes()
        passes = 0
        stall = 0
        for _ in range(self.max_passes):
            passes += 1
            report = self.dsta.analyze(circuit)
            targets = self._near_critical_gates(circuit, report)
            scheduled = self._schedule_path_resizes(circuit, targets)
            if not scheduled:
                break
            snapshot = circuit.sizes()
            for name, size in scheduled.items():
                circuit.set_size(name, size)
            new_delay = self.dsta.max_delay(circuit)
            min_gain = self.min_gain * max(best_delay, 1.0)
            if best_delay - new_delay <= min_gain:
                # Bulk commit did not help (resizes interact through shared
                # loads): retry the scheduled resizes one at a time and keep
                # only those that improve the worst delay.
                circuit.apply_sizes(snapshot)
                improved = False
                for name, size in scheduled.items():
                    previous = circuit.gate(name).size_index
                    circuit.set_size(name, size)
                    trial = self.dsta.max_delay(circuit)
                    if trial < best_delay - min_gain:
                        best_delay = trial
                        best_sizes = circuit.sizes()
                        improved = True
                    else:
                        circuit.set_size(name, previous)
                if improved:
                    stall = 0
                    continue
                # Nothing helps individually either: keep the bulk pass so the
                # changed loads can unlock progress, bounded by the patience
                # counter; the best configuration is restored at the end.
                for name, size in scheduled.items():
                    circuit.set_size(name, size)
                stall += 1
                if stall >= self.patience:
                    break
                continue
            best_delay = new_delay
            best_sizes = circuit.sizes()
            stall = 0

        circuit.apply_sizes(best_sizes)
        if self.area_recovery:
            best_delay = self._recover_area(circuit, best_delay)

        runtime = clock() - start
        return BaselineResult(
            circuit=circuit,
            initial_delay=initial_delay,
            final_delay=best_delay,
            initial_area=initial_area,
            final_area=self.delay_model.circuit_area(circuit),
            passes=passes,
            runtime_seconds=runtime,
        )

    # ------------------------------------------------------------------
    def _near_critical_gates(self, circuit: Circuit, report) -> List[str]:
        """Gates whose output slack is within a small fraction of the period.

        Working on all near-critical gates (rather than the single worst
        path) lets circuits with many parallel, similar-length paths — the
        ECC and multi-output datapath benchmarks — converge in a handful of
        passes instead of one pass per path.
        """
        threshold = self.near_critical_fraction * max(report.clock_period, 1.0)
        critical = set(report.critical_path)
        names = []
        # Optimizer pass over gate objects, not a per-sample engine loop.
        # repro-lint: allow=RL001
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            if name in critical or report.slack.get(gate.output, threshold) <= threshold:
                names.append(name)
        return names

    # ------------------------------------------------------------------
    def _schedule_path_resizes(
        self, circuit: Circuit, path: List[str]
    ) -> Dict[str, int]:
        """Pick the best size (by nominal subcircuit delay) for each target gate."""
        library = self.delay_model.library
        scheduled: Dict[str, int] = {}
        # Arrival times for subcircuit boundaries come from nominal STA.
        arrival, _ = self.dsta.arrival_times(circuit)
        boundary_moments = {net: NormalDelay(t, 0.0) for net, t in arrival.items()}

        for gate_name in path:
            gate = circuit.gate(gate_name)
            subcircuit = extract_subcircuit(circuit, gate_name, self.subcircuit_depth)
            boundary = {
                net: boundary_moments.get(net, NormalDelay(0.0, 0.0))
                for net in subcircuit.input_nets
            }
            best_cost = self.evaluator.subcircuit_cost_components(subcircuit, boundary)
            best_size = gate.size_index
            for size_index in library.size_indices(gate.cell_type):
                if size_index == gate.size_index:
                    continue
                cost = self.evaluator.candidate_size_cost_components(
                    subcircuit, boundary, size_index
                )
                if cost.better_than(best_cost):
                    best_cost = cost
                    best_size = size_index
            if best_size != gate.size_index:
                scheduled[gate_name] = best_size
        return scheduled

    # ------------------------------------------------------------------
    def _recover_area(self, circuit: Circuit, best_delay: float, passes: int = 3) -> float:
        """Downsize off-critical gates while the worst delay stays within tolerance.

        This is the "area is recovered as far as possible without violating
        a delay constraint" step the paper describes for constrained-mode
        deterministic sizers; it keeps the baseline honest (otherwise every
        gate would simply end up at maximum size and the statistical sizer
        would have nothing left to upsize).

        To stay fast on multi-thousand-gate circuits the check is slack
        based: a gate may step down one size per pass if the local delay
        increase fits comfortably inside the slack at its output; a full STA
        run after each pass verifies the global constraint and rolls the
        pass back if it was violated.
        """
        limit = best_delay * (1.0 + self.area_recovery_tolerance)
        for _ in range(passes):
            report = self.dsta.analyze(circuit, clock_period=limit)
            snapshot = circuit.sizes()
            changed = False
            # repro-lint: allow=RL001 -- optimizer pass, mutates sizes
            for gate_name in circuit.reverse_topological_order():
                gate = circuit.gate(gate_name)
                if gate.size_index == 0:
                    continue
                slack = report.slack.get(gate.output, 0.0)
                if slack <= 0:
                    continue
                current_delay = self.delay_model.gate_delay(circuit, gate)
                smaller_delay = self.delay_model.gate_delay_at_size(
                    circuit, gate, gate.size_index - 1
                )
                if smaller_delay - current_delay < 0.5 * slack:
                    gate.size_index -= 1
                    changed = True
            if not changed:
                break
            if self.dsta.max_delay(circuit) > limit:
                circuit.apply_sizes(snapshot)
                break
        return self.dsta.max_delay(circuit)
