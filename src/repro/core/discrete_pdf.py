"""Discrete (sampled) probability distribution functions.

FULLSSTA — the paper's outer, accurate engine — follows Liou et al.
(DAC 2001): every arrival time is carried as a *discrete pdf*, i.e. a small
set of ``(value, probability)`` points (the paper uses 10-15 samples per
pdf "as a reasonable tradeoff between accuracy and speed").  Propagation
needs only two operations:

* ``sum`` — convolution of two discrete pdfs (all pairwise value sums,
  probabilities multiplied), followed by re-compaction to the sample budget;
* ``max`` — the discrete order statistic (all pairwise maxima, probabilities
  multiplied), likewise re-compacted.

:class:`DiscretePDF` implements both with numpy outer products, plus the
statistics (mean, variance, quantiles, cdf) the experiments report.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np
from scipy.special import erf as _erf

#: Default number of samples kept per pdf, the middle of the paper's 10-15 range.
DEFAULT_SAMPLES = 13

#: How many sigmas around the mean a normal is discretized over.
NORMAL_SPAN_SIGMAS = 3.5


class DiscretePDF:
    """A discrete probability distribution over delay values (picoseconds).

    Parameters
    ----------
    values:
        Sample locations.  Need not be sorted or unique; the constructor
        canonicalises them.
    probabilities:
        Non-negative weights of the same length; they are normalised to sum
        to one.
    """

    __slots__ = ("values", "probabilities")

    def __init__(self, values: Iterable[float], probabilities: Iterable[float]) -> None:
        vals = np.asarray(list(values), dtype=float)
        probs = np.asarray(list(probabilities), dtype=float)
        if vals.shape != probs.shape or vals.ndim != 1:
            raise ValueError("values and probabilities must be 1-D and the same length")
        if vals.size == 0:
            raise ValueError("a discrete pdf needs at least one sample")
        if np.any(probs < -1e-12):
            raise ValueError("probabilities must be non-negative")
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        probs = probs / total

        # Canonical form: sorted unique values with merged probabilities.
        order = np.argsort(vals)
        vals = vals[order]
        probs = probs[order]
        unique_vals, inverse = np.unique(vals, return_inverse=True)
        merged = np.zeros_like(unique_vals)
        np.add.at(merged, inverse, probs)
        self.values = unique_vals
        self.probabilities = merged

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: float) -> "DiscretePDF":
        """A deterministic value as a single-sample pdf."""
        return cls([value], [1.0])

    @classmethod
    def from_normal(
        cls,
        mean: float,
        sigma: float,
        num_samples: int = DEFAULT_SAMPLES,
        span_sigmas: float = NORMAL_SPAN_SIGMAS,
    ) -> "DiscretePDF":
        """Discretize ``Normal(mean, sigma)`` onto ``num_samples`` equispaced points.

        Each point receives the probability mass of its surrounding interval
        (difference of the normal cdf at the bin edges) so the discrete mean
        and variance track the continuous ones closely even at 10-15 samples.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if sigma == 0 or num_samples == 1:
            return cls.point(mean)
        edges = np.linspace(
            mean - span_sigmas * sigma, mean + span_sigmas * sigma, num_samples + 1
        )
        centers = 0.5 * (edges[:-1] + edges[1:])
        z = (edges - mean) / sigma
        cdf = 0.5 * (1.0 + _erf(z / math.sqrt(2.0)))
        masses = np.diff(cdf)
        # Fold the tails beyond the span into the extreme bins.
        masses[0] += cdf[0]
        masses[-1] += 1.0 - cdf[-1]
        return cls(centers, masses)

    @classmethod
    def from_samples(cls, samples: Sequence[float], num_bins: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Build a pdf from Monte-Carlo samples by histogramming."""
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("need at least one sample")
        if data.min() == data.max():
            return cls.point(float(data[0]))
        counts, edges = np.histogram(data, bins=num_bins)
        centers = 0.5 * (edges[:-1] + edges[1:])
        keep = counts > 0
        return cls(centers[keep], counts[keep].astype(float))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return int(self.values.size)

    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    def variance(self) -> float:
        mu = self.mean()
        return float(np.dot((self.values - mu) ** 2, self.probabilities))

    def std(self) -> float:
        return math.sqrt(max(self.variance(), 0.0))

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        return float(self.probabilities[self.values <= x].sum())

    def quantile(self, q: float) -> float:
        """Smallest value whose cumulative probability reaches ``q``."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile level must be in (0, 1]")
        cum = np.cumsum(self.probabilities)
        idx = int(np.searchsorted(cum, q - 1e-12))
        idx = min(idx, self.values.size - 1)
        return float(self.values[idx])

    def support(self) -> Tuple[float, float]:
        """(min, max) of the sample locations."""
        return float(self.values[0]), float(self.values[-1])

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Re-discretize onto at most ``num_samples`` equispaced bins.

        Keeps the full probability mass; bins are centred between the current
        min and max values.  Pdfs already within budget are returned as-is.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if self.values.size <= num_samples:
            return self
        lo, hi = self.support()
        if lo == hi:
            return DiscretePDF.point(lo)
        edges = np.linspace(lo, hi, num_samples + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        idx = np.clip(np.digitize(self.values, edges) - 1, 0, num_samples - 1)
        masses = np.zeros(num_samples)
        np.add.at(masses, idx, self.probabilities)
        # Preserve the mean exactly by re-centring each occupied bin on its
        # conditional mean rather than the geometric centre.
        sums = np.zeros(num_samples)
        np.add.at(sums, idx, self.probabilities * self.values)
        occupied = masses > 0
        centers = centers.copy()
        centers[occupied] = sums[occupied] / masses[occupied]
        return DiscretePDF(centers[occupied], masses[occupied])

    # ------------------------------------------------------------------
    # Propagation operations
    # ------------------------------------------------------------------
    def add(self, other: "DiscretePDF", num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Sum of two independent random variables (discrete convolution)."""
        values = np.add.outer(self.values, other.values).ravel()
        probs = np.multiply.outer(self.probabilities, other.probabilities).ravel()
        return DiscretePDF(values, probs).compact(num_samples)

    def shift(self, offset: float) -> "DiscretePDF":
        """Add a deterministic offset to every sample."""
        return DiscretePDF(self.values + offset, self.probabilities.copy())

    def maximum(self, other: "DiscretePDF", num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Max of two independent random variables (pairwise max reduction)."""
        values = np.maximum.outer(self.values, other.values).ravel()
        probs = np.multiply.outer(self.probabilities, other.probabilities).ravel()
        return DiscretePDF(values, probs).compact(num_samples)

    @staticmethod
    def maximum_of(pdfs: Sequence["DiscretePDF"], num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Fold :meth:`maximum` over several pdfs (at least one required)."""
        if not pdfs:
            raise ValueError("maximum_of needs at least one pdf")
        result = pdfs[0]
        for pdf in pdfs[1:]:
            result = result.maximum(pdf, num_samples)
        return result

    # ------------------------------------------------------------------
    def as_tuples(self) -> Tuple[Tuple[float, float], ...]:
        """The pdf as ``((value, probability), ...)`` for reporting/serialisation."""
        return tuple(zip(self.values.tolist(), self.probabilities.tolist()))

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"DiscretePDF(n={self.num_samples}, mean={self.mean():.3f}, "
            f"std={self.std():.3f})"
        )
