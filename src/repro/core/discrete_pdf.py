"""Discrete (sampled) probability distribution functions.

FULLSSTA — the paper's outer, accurate engine — follows Liou et al.
(DAC 2001): every arrival time is carried as a *discrete pdf*, i.e. a small
set of ``(value, probability)`` points (the paper uses 10-15 samples per
pdf "as a reasonable tradeoff between accuracy and speed").  Propagation
needs only two operations:

* ``sum`` — convolution of two discrete pdfs (all pairwise value sums,
  probabilities multiplied), followed by re-compaction to the sample budget;
* ``max`` — the discrete order statistic (all pairwise maxima, probabilities
  multiplied), likewise re-compacted.

:class:`DiscretePDF` implements both with numpy outer products, plus the
statistics (mean, variance, quantiles, cdf) the experiments report.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np
from scipy.special import erf as _erf

from repro.obs import METRICS

#: Default number of samples kept per pdf, the middle of the paper's 10-15 range.
DEFAULT_SAMPLES = 13

#: How many sigmas around the mean a normal is discretized over.
NORMAL_SPAN_SIGMAS = 3.5


class DiscretePDF:
    """A discrete probability distribution over delay values (picoseconds).

    Parameters
    ----------
    values:
        Sample locations.  Need not be sorted or unique; the constructor
        canonicalises them.
    probabilities:
        Non-negative weights of the same length; they are normalised to sum
        to one.
    """

    __slots__ = ("values", "probabilities")

    def __init__(self, values: Iterable[float], probabilities: Iterable[float]) -> None:
        vals = np.asarray(list(values), dtype=float)
        probs = np.asarray(list(probabilities), dtype=float)
        if vals.shape != probs.shape or vals.ndim != 1:
            raise ValueError("values and probabilities must be 1-D and the same length")
        if vals.size == 0:
            raise ValueError("a discrete pdf needs at least one sample")
        if np.any(probs < -1e-12):
            raise ValueError("probabilities must be non-negative")
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        probs = probs / total

        # Canonical form: sorted unique values with merged probabilities.
        order = np.argsort(vals)
        vals = vals[order]
        probs = probs[order]
        unique_vals, inverse = np.unique(vals, return_inverse=True)
        merged = np.zeros_like(unique_vals)
        np.add.at(merged, inverse, probs)
        self.values = unique_vals
        self.probabilities = merged

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: float) -> "DiscretePDF":
        """A deterministic value as a single-sample pdf."""
        return cls([value], [1.0])

    @classmethod
    def _from_canonical(cls, values: np.ndarray, probabilities: np.ndarray) -> "DiscretePDF":
        """Wrap arrays already in canonical form (sorted unique values,
        normalized probabilities) without re-canonicalising them.

        Used by the batched propagation path, whose rows are canonical by
        construction; going through ``__init__`` would re-normalize and
        perturb the stored probabilities at the last bit.
        """
        pdf = object.__new__(cls)
        pdf.values = values
        pdf.probabilities = probabilities
        return pdf

    @classmethod
    def from_normal(
        cls,
        mean: float,
        sigma: float,
        num_samples: int = DEFAULT_SAMPLES,
        span_sigmas: float = NORMAL_SPAN_SIGMAS,
    ) -> "DiscretePDF":
        """Discretize ``Normal(mean, sigma)`` onto ``num_samples`` equispaced points.

        Each point receives the probability mass of its surrounding interval
        (difference of the normal cdf at the bin edges) so the discrete mean
        and variance track the continuous ones closely even at 10-15 samples.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if sigma == 0 or num_samples == 1:
            return cls.point(mean)
        edges = np.linspace(
            mean - span_sigmas * sigma, mean + span_sigmas * sigma, num_samples + 1
        )
        centers = 0.5 * (edges[:-1] + edges[1:])
        z = (edges - mean) / sigma
        cdf = 0.5 * (1.0 + _erf(z / math.sqrt(2.0)))
        masses = np.diff(cdf)
        # Fold the tails beyond the span into the extreme bins.
        masses[0] += cdf[0]
        masses[-1] += 1.0 - cdf[-1]
        return cls(centers, masses)

    @classmethod
    def from_samples(cls, samples: Sequence[float], num_bins: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Build a pdf from Monte-Carlo samples by histogramming."""
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("need at least one sample")
        if data.min() == data.max():
            return cls.point(float(data[0]))
        counts, edges = np.histogram(data, bins=num_bins)
        centers = 0.5 * (edges[:-1] + edges[1:])
        keep = counts > 0
        return cls(centers[keep], counts[keep].astype(float))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return int(self.values.size)

    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    def variance(self) -> float:
        mu = self.mean()
        return float(np.dot((self.values - mu) ** 2, self.probabilities))

    def std(self) -> float:
        return math.sqrt(max(self.variance(), 0.0))

    def cdf(self, x: float) -> float:
        """P(X <= x), normalized by the stored probabilities' total.

        The normalization mirrors :meth:`quantile`, keeping the pair
        self-consistent (``cdf(quantile(q)) >= q`` up to summation order)
        even when floating-point drift leaves the stored probabilities
        summing slightly off 1.0.
        """
        return float(
            self.probabilities[self.values <= x].sum() / self.probabilities.sum()
        )

    def quantile(self, q: float) -> float:
        """Generalized inverse CDF: smallest value ``v`` with ``cdf(v) >= q``.

        The cumulative probabilities are normalized by their final sum, so
        the inverse is well defined even when the stored probabilities do
        not sum to exactly 1.0 (floating-point drift after repeated
        ``compact``/truncation).  ``q = 1.0`` always returns the largest
        sample; a single-sample pdf returns its sole value for every ``q``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile level must be in (0, 1]")
        cum = np.cumsum(self.probabilities)
        cum /= cum[-1]
        idx = int(np.searchsorted(cum, q, side="left"))
        idx = min(idx, self.values.size - 1)
        return float(self.values[idx])

    def support(self) -> Tuple[float, float]:
        """(min, max) of the sample locations."""
        return float(self.values[0]), float(self.values[-1])

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Re-discretize onto at most ``num_samples`` equispaced bins.

        Keeps the full probability mass; bins are centred between the current
        min and max values.  Pdfs already within budget are returned as-is.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if self.values.size <= num_samples:
            return self
        lo, hi = self.support()
        if lo == hi:
            return DiscretePDF.point(lo)
        edges = np.linspace(lo, hi, num_samples + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        idx = np.clip(np.digitize(self.values, edges) - 1, 0, num_samples - 1)
        masses = np.zeros(num_samples)
        np.add.at(masses, idx, self.probabilities)
        # Preserve the mean exactly by re-centring each occupied bin on its
        # conditional mean rather than the geometric centre.
        sums = np.zeros(num_samples)
        np.add.at(sums, idx, self.probabilities * self.values)
        occupied = masses > 0
        centers = centers.copy()
        centers[occupied] = sums[occupied] / masses[occupied]
        return DiscretePDF(centers[occupied], masses[occupied])

    # ------------------------------------------------------------------
    # Propagation operations
    # ------------------------------------------------------------------
    def add(self, other: "DiscretePDF", num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Sum of two independent random variables (discrete convolution)."""
        METRICS.counter("discrete_pdf.add")
        values = np.add.outer(self.values, other.values).ravel()
        probs = np.multiply.outer(self.probabilities, other.probabilities).ravel()
        return DiscretePDF(values, probs).compact(num_samples)

    def shift(self, offset: float) -> "DiscretePDF":
        """Add a deterministic offset to every sample."""
        return DiscretePDF(self.values + offset, self.probabilities.copy())

    def maximum(self, other: "DiscretePDF", num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Max of two independent random variables (pairwise max reduction)."""
        METRICS.counter("discrete_pdf.maximum")
        values = np.maximum.outer(self.values, other.values).ravel()
        probs = np.multiply.outer(self.probabilities, other.probabilities).ravel()
        return DiscretePDF(values, probs).compact(num_samples)

    @staticmethod
    def maximum_of(pdfs: Sequence["DiscretePDF"], num_samples: int = DEFAULT_SAMPLES) -> "DiscretePDF":
        """Fold :meth:`maximum` over several pdfs (at least one required)."""
        if not pdfs:
            raise ValueError("maximum_of needs at least one pdf")
        result = pdfs[0]
        for pdf in pdfs[1:]:
            result = result.maximum(pdf, num_samples)
        return result

    # ------------------------------------------------------------------
    def as_tuples(self) -> Tuple[Tuple[float, float], ...]:
        """The pdf as ``((value, probability), ...)`` for reporting/serialisation."""
        return tuple(zip(self.values.tolist(), self.probabilities.tolist(), strict=True))

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"DiscretePDF(n={self.num_samples}, mean={self.mean():.3f}, "
            f"std={self.std():.3f})"
        )


# ---------------------------------------------------------------------------
# Batched (vectorized) discrete-pdf machinery
# ---------------------------------------------------------------------------
# The levelized FULLSSTA path processes one circuit level at a time: all K
# arrival pdfs of a level live in padded ``(K, width)`` arrays.  Row ``k``
# keeps its ``counts[k]`` canonical samples (sorted unique values, normalized
# probabilities) in the leading columns; trailing columns repeat the row's
# largest value with probability 0.0, so every row stays sorted, its support
# maximum is always the last column, and padding contributes nothing to any
# mass, mean or bin sum.  Because a pad duplicates a real sample, pairwise
# products against pads also duplicate real (value, 0.0) pairs and vanish in
# the merge — the batched results reproduce the scalar ``add``/``maximum``/
# ``compact`` arithmetic operation for operation.


def _pad_rows(values: np.ndarray, probabilities: np.ndarray, counts: np.ndarray) -> None:
    """In place, overwrite each row's trailing columns with its last sample."""
    width = values.shape[1]
    hi = np.take_along_axis(values, (counts - 1)[:, None], axis=1)
    pad = np.arange(width)[None, :] >= counts[:, None]
    np.copyto(values, np.broadcast_to(hi, values.shape), where=pad)
    probabilities[pad] = 0.0


def batched_from_normal(
    means: np.ndarray,
    sigmas: np.ndarray,
    num_samples: int = DEFAULT_SAMPLES,
    span_sigmas: float = NORMAL_SPAN_SIGMAS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise :meth:`DiscretePDF.from_normal` over ``(means, sigmas)`` arrays.

    Returns padded ``(values, probabilities, counts)`` arrays of width
    ``num_samples``.  Rows with ``sigma == 0`` become single-sample points,
    exactly as the scalar constructor does.
    """
    means = np.asarray(means, dtype=float)
    sigmas = np.asarray(sigmas, dtype=float)
    num_rows = means.size
    if np.any(sigmas < 0):
        raise ValueError("sigma must be non-negative")
    if num_samples < 2:
        raise ValueError("batched_from_normal needs num_samples >= 2")

    safe_sigma = np.where(sigmas > 0, sigmas, 1.0)
    lo = means - span_sigmas * safe_sigma
    step = (2.0 * span_sigmas * safe_sigma) / num_samples
    edges = lo[:, None] + np.arange(num_samples + 1) * step[:, None]
    edges[:, -1] = means + span_sigmas * safe_sigma
    centers = 0.5 * (edges[:, :-1] + edges[:, 1:])
    z = (edges - means[:, None]) / safe_sigma[:, None]
    cdf = 0.5 * (1.0 + _erf(z / math.sqrt(2.0)))
    masses = np.diff(cdf, axis=1)
    masses[:, 0] += cdf[:, 0]
    masses[:, -1] += 1.0 - cdf[:, -1]
    masses /= masses.sum(axis=1, keepdims=True)

    counts = np.full(num_rows, num_samples, dtype=np.intp)
    degenerate = sigmas == 0
    if np.any(degenerate):
        centers[degenerate] = means[degenerate, None]
        masses[degenerate] = 0.0
        masses[degenerate, 0] = 1.0
        counts[degenerate] = 1
    return centers, masses, counts


def batched_combine(
    a_values: np.ndarray,
    a_probs: np.ndarray,
    b_values: np.ndarray,
    b_probs: np.ndarray,
    op: str,
    num_samples: int = DEFAULT_SAMPLES,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise ``a.add(b)`` (``op="add"``) or ``a.maximum(b)`` (``op="max"``).

    Inputs are padded row batches; the result is a padded batch of width
    ``num_samples`` holding, per row, the same canonicalized and compacted
    samples the scalar operations produce.
    """
    num_rows = a_values.shape[0]
    METRICS.counter(f"discrete_pdf.batched_{op}_rows", num_rows)
    if op == "add":
        pair_values = a_values[:, :, None] + b_values[:, None, :]
    elif op == "max":
        pair_values = np.maximum(a_values[:, :, None], b_values[:, None, :])
    else:
        raise ValueError(f"unknown op {op!r}; expected 'add' or 'max'")
    pair_probs = a_probs[:, :, None] * b_probs[:, None, :]
    return _canonicalize_and_compact_rows(
        pair_values.reshape(num_rows, -1),
        pair_probs.reshape(num_rows, -1),
        num_samples,
    )


def _canonicalize_and_compact_rows(
    values: np.ndarray, probs: np.ndarray, num_samples: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise ``DiscretePDF(values, probs).compact(num_samples)``.

    Mirrors the scalar pipeline: normalize, sort, merge duplicate values,
    and re-bin rows whose unique count exceeds the sample budget onto
    equispaced bins re-centred on their conditional means.
    """
    num_rows, width = values.shape
    probs = probs / probs.sum(axis=1, keepdims=True)
    order = np.argsort(values, axis=1, kind="stable")
    values = np.take_along_axis(values, order, axis=1)
    probs = np.take_along_axis(probs, order, axis=1)

    # Merge duplicate values (the constructor's unique/add.at step).
    fresh = np.ones((num_rows, width), dtype=bool)
    fresh[:, 1:] = values[:, 1:] != values[:, :-1]
    group = np.cumsum(fresh, axis=1) - 1
    counts = group[:, -1] + 1
    merged_width = int(counts.max())
    flat_group = (np.arange(num_rows)[:, None] * merged_width + group).ravel()
    merged_probs = np.bincount(
        flat_group, weights=probs.ravel(), minlength=num_rows * merged_width
    ).reshape(num_rows, merged_width)
    merged_values = np.zeros((num_rows, merged_width))
    merged_values[np.arange(num_rows)[:, None], group] = values
    _pad_rows(merged_values, merged_probs, counts)

    if merged_width <= num_samples:
        if merged_width < num_samples:
            # Callers scatter fixed-width rows; grow to the full budget.
            pad_cols = num_samples - merged_width
            merged_values = np.concatenate(
                [merged_values, np.repeat(merged_values[:, -1:], pad_cols, axis=1)],
                axis=1,
            )
            merged_probs = np.concatenate(
                [merged_probs, np.zeros((num_rows, pad_cols))], axis=1
            )
        return merged_values, merged_probs, counts

    # Re-bin rows over budget; computed for every row, selected per row.
    lo = merged_values[:, :1]
    hi = merged_values[:, -1:]
    span = np.where(hi > lo, hi - lo, 1.0)
    edges = lo + np.arange(num_samples + 1) * (span / num_samples)
    edges[:, -1:] = hi
    # np.digitize(v, edges) - 1 clipped into range, row-wise.
    bin_idx = np.clip(
        (merged_values[:, :, None] >= edges[:, None, :]).sum(axis=2) - 1,
        0,
        num_samples - 1,
    )
    flat_bins = (np.arange(num_rows)[:, None] * num_samples + bin_idx).ravel()
    minlength = num_rows * num_samples
    masses = np.bincount(
        flat_bins, weights=merged_probs.ravel(), minlength=minlength
    ).reshape(num_rows, num_samples)
    sums = np.bincount(
        flat_bins, weights=(merged_probs * merged_values).ravel(), minlength=minlength
    ).reshape(num_rows, num_samples)
    occupied = masses > 0
    centers = 0.5 * (edges[:, :-1] + edges[:, 1:])
    centers = np.where(occupied, sums / np.where(occupied, masses, 1.0), centers)

    # Left-compact the occupied bins and renormalize (the constructor pass
    # at the end of the scalar compact()).
    keep_order = np.argsort(~occupied, axis=1, kind="stable")
    binned_values = np.take_along_axis(centers, keep_order, axis=1)
    binned_probs = np.take_along_axis(
        np.where(occupied, masses, 0.0), keep_order, axis=1
    )
    binned_counts = occupied.sum(axis=1).astype(np.intp)
    binned_probs /= binned_probs.sum(axis=1, keepdims=True)
    _pad_rows(binned_values, binned_probs, binned_counts)

    over_budget = counts > num_samples
    out_values = np.where(over_budget[:, None], binned_values, merged_values[:, :num_samples])
    out_probs = np.where(over_budget[:, None], binned_probs, merged_probs[:, :num_samples])
    out_counts = np.where(over_budget, binned_counts, counts)
    return out_values, out_probs, out_counts
