"""StatisticalGreedy — the gain-based statistical sizing algorithm (paper Fig. 2).

The optimizer nests the two statistical engines:

* the **outer loop** runs FULLSSTA over the whole circuit, records per-node
  arrival moments, and traces the WNSS path;
* the **inner loop** visits every gate on the WNSS path, extracts the
  two-level TFI/TFO subcircuit around it, and evaluates every available
  discrete size of that gate with FASSTA, scoring candidates with the
  weighted cost ``max_i (mu_i + lambda * sigma_i)`` over the subcircuit's
  outputs (Eq. 7).  The best size per gate is *scheduled*; all scheduled
  resizes are committed together at the end of the pass ("Resize scheduled
  gates"), and the outer loop repeats.

Termination follows the paper: "until constraints are satisfied or no
further improvements can be made".  Improvement is measured on the
circuit-level objective ``mu_O + lambda * sigma_O`` computed by FULLSSTA;
an optional sigma target and iteration cap provide the constrained mode.

Throughput machinery (all exactness-preserving, so enabling it never
changes the optimization trajectory):

* the outer engine runs behind :class:`~repro.core.fullssta.IncrementalReanalysis`
  — after each commit only the resized gates' cones are re-propagated;
* subcircuit extraction is memoized in a
  :class:`~repro.core.subcircuit.SubcircuitCache` (structure never changes
  during a run);
* whole-gate evaluations are memoized per (gate, depth, context signature,
  boundary moments) — with incremental FULLSSTA, untouched regions keep
  bitwise-identical moments between passes, so gates far from the action
  hit this cache every pass;
* within one evaluation the candidate sizes share the delay moments of
  unaffected subcircuit members
  (:meth:`~repro.core.cost.CostEvaluator.size_sweep_components`), and those
  moments are further shared across neighbouring subcircuits until any gate
  size changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cost import CostComponents, CostEvaluator, WeightedCost, YieldObjective
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA, FullSstaResult, IncrementalReanalysis
from repro.core.rv import NormalDelay
from repro.core.subcircuit import DEFAULT_DEPTH, SubcircuitCache
from repro.core.wnss import WNSSTracer
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.obs import METRICS, clock, span
from repro.variation.model import VariationModel


@dataclass
class SizerConfig:
    """Tuning knobs of the StatisticalGreedy optimizer.

    Parameters mirror the paper's description; defaults reproduce its setup.
    ``incremental_reanalysis`` and ``vectorized_fassta`` select the fast
    evaluation pipeline — both are exactness-preserving and on by default;
    turning them off yields the original from-scratch engines (used as the
    reference in ``benchmarks/bench_incremental.py``).

    ``objective`` selects what the optimizer minimizes:

    * ``"cost"`` (default) — the paper's weighted cost ``mu + lam * sigma``;
    * ``"yield"`` — the smallest clock period achieving ``target_yield``
      (:class:`~repro.core.cost.YieldObjective`).  ``lam`` is then ignored:
      the inner loop scores candidates with the equivalent weight
      ``z = Phi^{-1}(target_yield)`` while circuit-level accept/reject
      decisions use the exact FULLSSTA discrete-pdf quantile.  An optional
      ``max_area_ratio`` rejects states whose area exceeds that multiple of
      the starting area (the area-constrained variant); the constraint also
      applies under the cost objective when set.

    ``criticality_threshold`` enables criticality-guided candidate pruning:
    before each pass the per-gate statistical criticality probabilities are
    computed from the recorded FULLSSTA arrival moments
    (:class:`~repro.criticality.analysis.CriticalityAnalyzer`), and WNSS
    gates whose criticality falls below the threshold are skipped by the
    inner loop.  The default of ``0.0`` disables pruning entirely — the
    optimization trajectory is then bit-identical to a sizer without the
    feature; practical thresholds (0.01-0.05) trade a small objective
    deviation for fewer subcircuit evaluations per pass
    (``benchmarks/bench_criticality.py`` measures both).
    """

    lam: float = 3.0
    subcircuit_depth: int = DEFAULT_DEPTH
    max_iterations: int = 60
    min_relative_gain: float = 1e-5
    sigma_target: Optional[float] = None
    pdf_samples: int = 13
    freeze_no_gain_gates: bool = False
    incremental_fallback: bool = True
    max_outputs_per_pass: int = 6
    patience: int = 4
    incremental_reanalysis: bool = True
    vectorized_fassta: bool = True
    objective: str = "cost"
    target_yield: float = 0.99
    max_area_ratio: Optional[float] = None
    criticality_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError("lam must be non-negative")
        if self.subcircuit_depth < 0:
            raise ValueError("subcircuit_depth must be non-negative")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.min_relative_gain < 0:
            raise ValueError("min_relative_gain must be non-negative")
        if self.objective not in ("cost", "yield"):
            raise ValueError(
                f"objective must be 'cost' or 'yield', got {self.objective!r}"
            )
        if self.objective == "yield" and not 0.5 <= self.target_yield < 1.0:
            raise ValueError("target_yield must be in [0.5, 1)")
        if self.max_area_ratio is not None and self.max_area_ratio < 1.0:
            raise ValueError("max_area_ratio must be >= 1 (relative to start)")
        if not 0.0 <= self.criticality_threshold < 1.0:
            raise ValueError("criticality_threshold must be in [0, 1)")


@dataclass
class IterationRecord:
    """Diagnostics of one outer-loop iteration."""

    index: int
    objective: float
    mean: float
    sigma: float
    area: float
    wnss_length: int
    resized_gates: Dict[str, int] = field(default_factory=dict)


@dataclass
class SizerResult:
    """Outcome of a StatisticalGreedy run."""

    circuit: Circuit
    initial: NormalDelay
    final: NormalDelay
    initial_area: float
    final_area: float
    iterations: List[IterationRecord]
    runtime_seconds: float
    lam: float
    converged: bool
    diagnostics: Dict[str, int] = field(default_factory=dict)
    #: Which objective drove the run ("cost" or "yield"); in yield mode
    #: ``lam`` records the equivalent z-score weight actually used.
    objective: str = "cost"
    target_yield: Optional[float] = None

    @property
    def sigma_reduction_pct(self) -> float:
        """Percentage reduction in output sigma relative to the starting point."""
        if self.initial.sigma == 0:
            return 0.0
        return 100.0 * (self.initial.sigma - self.final.sigma) / self.initial.sigma

    @property
    def mean_increase_pct(self) -> float:
        if self.initial.mean == 0:
            return 0.0
        return 100.0 * (self.final.mean - self.initial.mean) / self.initial.mean

    @property
    def area_increase_pct(self) -> float:
        if self.initial_area == 0:
            return 0.0
        return 100.0 * (self.final_area - self.initial_area) / self.initial_area

    @property
    def final_cv(self) -> float:
        """Final sigma/mu ratio (the paper's per-circuit quality metric)."""
        return self.final.sigma / self.final.mean if self.final.mean else 0.0

    @property
    def initial_cv(self) -> float:
        return self.initial.sigma / self.initial.mean if self.initial.mean else 0.0


class StatisticalGreedySizer:
    """The paper's StatisticalGreedy algorithm (Fig. 2)."""

    #: Whole-gate evaluation memo entries kept before a wholesale reset.
    _EVAL_CACHE_LIMIT = 200_000

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: VariationModel,
        config: Optional[SizerConfig] = None,
    ) -> None:
        self.delay_model = delay_model
        self.variation_model = variation_model
        self.config = config or SizerConfig()

        # Under the yield objective every moment-based ranking (inner-loop
        # candidate scores, WNSS tracing, output ordering) uses the target's
        # z-score as the lambda weight — for normal moments mu + z * sigma
        # *is* the period achieving the target yield — while circuit-level
        # accept/reject decisions use the discrete-pdf quantile directly.
        self.yield_objective: Optional[YieldObjective] = None
        if self.config.objective == "yield":
            self.yield_objective = YieldObjective(
                self.config.target_yield, self.config.max_area_ratio
            )
            self.cost = self.yield_objective.equivalent_cost()
        else:
            self.cost = WeightedCost(self.config.lam)
        self.fullssta = FULLSSTA(
            delay_model,
            variation_model,
            num_samples=self.config.pdf_samples,
            worst_key=self.cost.of,
        )
        self.fassta = FASSTA(
            delay_model,
            variation_model,
            vectorized=self.config.vectorized_fassta,
            worst_key=self.cost.of,
        )
        self.evaluator = CostEvaluator(self.fassta, self.cost)
        self.tracer = WNSSTracer(
            coupling=variation_model.mean_sigma_coupling, lam=self.cost.lam
        )

        # Exactness-preserving caches shared by optimize()/_best_size_for().
        self._subcircuits = SubcircuitCache()
        self._eval_cache: Dict[tuple, Optional[int]] = {}
        self._eval_hits = 0
        self._eval_misses = 0
        # Delay-rv cache for unaffected subcircuit members, valid only while
        # no gate size changes; keyed by the circuit's size-change cursor.
        self._rv_cache: Dict[str, NormalDelay] = {}
        self._rv_cache_key: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    def optimize(self, circuit: Circuit) -> SizerResult:
        """Run StatisticalGreedy on ``circuit`` in place and return the result."""
        with span("sizer.optimize", circuit=circuit.name) as sp:
            result = self._optimize(circuit)
            sp.set(
                iterations=len(result.iterations),
                converged=result.converged,
            )
        return result

    def _optimize(self, circuit: Circuit) -> SizerResult:
        start_time = clock()
        sub_hits0 = self._subcircuits.hits
        sub_misses0 = self._subcircuits.misses
        config = self.config
        self._eval_cache.clear()
        self._eval_hits = 0
        self._eval_misses = 0
        self._rv_cache = {}
        self._rv_cache_key = None

        reanalysis: Optional[IncrementalReanalysis] = None
        if config.incremental_reanalysis:
            reanalysis = IncrementalReanalysis(self.fullssta, circuit)
            analyze: Callable[[], FullSstaResult] = reanalysis.analyze
        else:
            analyze = lambda: self.fullssta.analyze(circuit)  # noqa: E731

        # Criticality-guided pruning (off at threshold 0: no analyzer is even
        # built, so the default path is exactly the historical one).
        crit_analyzer = None
        pruned_gates = 0
        if config.criticality_threshold > 0.0:
            from repro.criticality.analysis import CriticalityAnalyzer

            crit_analyzer = CriticalityAnalyzer(circuit)

        initial_full = analyze()
        initial_rv = initial_full.output_rv
        initial_area = self.delay_model.circuit_area(circuit)
        area_limit = (
            config.max_area_ratio * initial_area
            if config.max_area_ratio is not None
            else None
        )

        best_components = self._objective_components(circuit, initial_full)
        best_sizes = circuit.sizes()
        best_full = initial_full
        iterations: List[IterationRecord] = []
        frozen: set = set()
        converged = False
        current_full = initial_full
        stall = 0

        for iteration in range(config.max_iterations):
            # Constraint check ("until constraints met").
            if (
                config.sigma_target is not None
                and current_full.output_rv.sigma <= config.sigma_target
            ):
                converged = True
                break

            # Trace the WNSS path of the worst output first; if none of its
            # gates can be improved, fall through to the next-worst outputs.
            # A circuit's variance is set by *all* outputs with comparable
            # mean (paper §2.1), so giving up after the single worst path
            # would leave most of the recoverable variance on the table.
            outputs_by_cost = sorted(
                circuit.primary_outputs,
                key=lambda net: self.cost.of(current_full.arrival(net)),
                reverse=True,
            )[: config.max_outputs_per_pass]

            # One criticality analysis per pass: gates below the floor are
            # excluded from the inner loop's candidate set.
            critical_enough = None
            if crit_analyzer is not None:
                crit = crit_analyzer.analyze(current_full.arrival_moments)
                critical_enough = {
                    name
                    for name, value in crit.gate_criticality.items()
                    if value >= config.criticality_threshold
                }

            scheduled: Dict[str, int] = {}
            wnss_length = 0
            for output_net in outputs_by_cost:
                wnss = self.tracer.trace(
                    circuit, current_full.arrival_moments, start_output=output_net
                )
                wnss_length = max(wnss_length, len(wnss))
                for gate_name in wnss.gates:
                    if gate_name in scheduled:
                        continue
                    if (
                        critical_enough is not None
                        and gate_name not in critical_enough
                    ):
                        pruned_gates += 1
                        continue
                    if config.freeze_no_gain_gates and gate_name in frozen:
                        continue
                    new_size = self._best_size_for(circuit, gate_name, current_full)
                    gate = circuit.gate(gate_name)
                    if new_size is not None and new_size != gate.size_index:
                        scheduled[gate_name] = new_size
                    elif config.freeze_no_gain_gates:
                        frozen.add(gate_name)

            if not scheduled:
                converged = True
                break

            # "Resize scheduled gates" — commit the whole pass at once.
            snapshot = circuit.sizes()
            for gate_name, size_index in scheduled.items():
                circuit.set_size(gate_name, size_index)

            new_full = analyze()
            new_objective = self.cost.of(new_full.output_rv)
            new_components = self._objective_components(circuit, new_full)

            bulk_improved = new_components.better_than(
                best_components
            ) and self._area_ok(circuit, area_limit)
            if not bulk_improved and config.incremental_fallback:
                # Bulk commit did not help (individually good moves can
                # interact through shared loads, or blow the area budget).
                # Roll back and retry the scheduled resizes one at a time,
                # keeping only those that improve the global objective.
                circuit.apply_sizes(snapshot)
                accepted, accepted_full, accepted_components = self._commit_incrementally(
                    circuit, scheduled, best_components, analyze, reanalysis,
                    area_limit,
                )
                if accepted:
                    scheduled = accepted
                    new_full = accepted_full
                    new_components = accepted_components
                    new_objective = self.cost.of(new_full.output_rv)
                else:
                    # Nothing helps individually either: keep the bulk pass
                    # (the changed loads may unlock progress next pass) and
                    # let the patience counter decide when to give up.  The
                    # bulk-state analysis (new_full) is still valid for it.
                    for gate_name, size_index in scheduled.items():
                        circuit.set_size(gate_name, size_index)

            # The pass is accepted even when it does not beat the best-seen
            # objective (later passes can recover through the new loads); the
            # best configuration is tracked and restored at the end, and the
            # loop stops after ``patience`` passes without a new best.
            current_full = new_full
            frozen.difference_update(scheduled)
            iterations.append(
                IterationRecord(
                    index=iteration,
                    objective=new_objective,
                    mean=new_full.output_rv.mean,
                    sigma=new_full.output_rv.sigma,
                    area=self.delay_model.circuit_area(circuit),
                    wnss_length=wnss_length,
                    resized_gates=dict(scheduled),
                )
            )

            if new_components.better_than(best_components) and self._area_ok(
                circuit, area_limit
            ):
                best_components = new_components
                best_sizes = circuit.sizes()
                best_full = new_full
                stall = 0
            else:
                stall += 1
                if stall >= config.patience:
                    converged = True
                    break

        # Restore the best configuration seen during the run.
        circuit.apply_sizes(best_sizes)
        final_full = best_full
        runtime = clock() - start_time

        diagnostics: Dict[str, int] = {
            "evaluation_cache_hits": self._eval_hits,
            "evaluation_cache_misses": self._eval_misses,
            "subcircuit_cache_hits": self._subcircuits.hits,
            "subcircuit_cache_misses": self._subcircuits.misses,
        }
        if crit_analyzer is not None:
            diagnostics["criticality_pruned_gates"] = pruned_gates
        if reanalysis is not None:
            diagnostics.update(reanalysis.stats)
        METRICS.counter("sizer.eval_cache_hits", self._eval_hits)
        METRICS.counter("sizer.eval_cache_misses", self._eval_misses)
        METRICS.counter("sizer.subcircuit_cache_hits", self._subcircuits.hits - sub_hits0)
        METRICS.counter(
            "sizer.subcircuit_cache_misses", self._subcircuits.misses - sub_misses0
        )
        if crit_analyzer is not None:
            METRICS.counter("sizer.criticality_pruned_gates", pruned_gates)

        return SizerResult(
            circuit=circuit,
            initial=initial_rv,
            final=final_full.output_rv,
            initial_area=initial_area,
            final_area=self.delay_model.circuit_area(circuit),
            iterations=iterations,
            runtime_seconds=runtime,
            lam=self.cost.lam,
            converged=converged,
            diagnostics=diagnostics,
            objective=config.objective,
            target_yield=(
                config.target_yield if self.yield_objective is not None else None
            ),
        )

    # ------------------------------------------------------------------
    def _objective_components(
        self, circuit: Circuit, full_result: FullSstaResult
    ) -> CostComponents:
        """Global objective as (worst, total) components.

        Cost mode: the worst component is the paper's objective,
        ``mu + lambda * sigma`` of the circuit-level max arrival; the total
        sums the weighted cost over all primary outputs and acts as a
        tie-breaker so progress on non-worst outputs (which still feeds the
        overall variance) is recognised between passes.

        Yield mode: the same shape, but worst is the exact discrete-pdf
        period achieving the target yield on the circuit-level output pdf,
        and the tie-breaker sums the per-output pdf periods.
        """
        if self.yield_objective is not None:
            worst = self.yield_objective.period_for(full_result.output_pdf)
            total = sum(
                self.yield_objective.period_for(full_result.arrival_pdfs[net])
                for net in circuit.primary_outputs
            )
            return CostComponents(worst=worst, total=total)
        worst = self.cost.of(full_result.output_rv)
        total = sum(
            self.cost.of(full_result.arrival(net)) for net in circuit.primary_outputs
        )
        return CostComponents(worst=worst, total=total)

    # ------------------------------------------------------------------
    def _area_ok(self, circuit: Circuit, area_limit: Optional[float]) -> bool:
        """True when the circuit respects the optional area constraint."""
        if area_limit is None:
            return True
        return self.delay_model.circuit_area(circuit) <= area_limit * (1.0 + 1e-12)

    # ------------------------------------------------------------------
    def _commit_incrementally(
        self,
        circuit: Circuit,
        scheduled: Dict[str, int],
        best_components: CostComponents,
        analyze: Optional[Callable[[], FullSstaResult]] = None,
        reanalysis: Optional[IncrementalReanalysis] = None,
        area_limit: Optional[float] = None,
    ) -> "tuple[Dict[str, int], FullSstaResult, CostComponents]":
        """Apply scheduled resizes one at a time, keeping only improving ones.

        Fallback used when the bulk commit of a pass does not improve the
        global objective; returns the accepted resizes and the FULLSSTA
        result / objective components of the resulting circuit.  ``analyze``
        is the outer-loop analysis callable; with ``reanalysis`` available
        each trial is *previewed* against the cached state — an accepted
        trial commits its delta, a rejected one is reverted for free instead
        of paying a second cone re-propagation to undo itself.
        """
        if analyze is None:
            analyze = lambda: self.fullssta.analyze(circuit)  # noqa: E731
        if reanalysis is not None:
            # Sync the cache to the rolled-back base state once, so each
            # trial below is a single-cone preview on top of it.
            analyze()
        accepted: Dict[str, int] = {}
        components = best_components
        full_result: Optional[FullSstaResult] = None
        for gate_name, size_index in scheduled.items():
            previous = circuit.gate(gate_name).size_index
            circuit.set_size(gate_name, size_index)
            trial_full = None
            previewed = False
            if reanalysis is not None:
                trial_full = reanalysis.preview()
                previewed = trial_full is not None
            if trial_full is None:
                trial_full = analyze()
            trial_components = self._objective_components(circuit, trial_full)
            if trial_components.better_than(components) and self._area_ok(
                circuit, area_limit
            ):
                accepted[gate_name] = size_index
                components = trial_components
                full_result = trial_full
                if previewed:
                    reanalysis.commit_preview()
            else:
                circuit.set_size(gate_name, previous)
        if full_result is None:
            full_result = analyze()
        return accepted, full_result, components

    # ------------------------------------------------------------------
    def _best_size_for(
        self,
        circuit: Circuit,
        gate_name: str,
        full_result: FullSstaResult,
    ) -> Optional[int]:
        """Inner loop of Fig. 2: best size of one gate by subcircuit cost.

        Returns the winning size index, or ``None`` when no size beats the
        current assignment.  The decision is a pure function of the
        subcircuit structure, the sizes of its members and fringe loads, and
        the boundary arrival moments — so it is memoized on exactly that
        key.  With incremental re-analysis upstream, unchanged regions carry
        bitwise-identical moments between passes and the memo keeps hitting.
        """
        library = self.delay_model.library
        gate = circuit.gate(gate_name)
        depth = self.config.subcircuit_depth
        subcircuit = self._subcircuits.get(circuit, gate_name, depth)
        boundary = {
            net: full_result.arrival(net) for net in subcircuit.input_nets
        }

        cache_key = (
            id(circuit),
            circuit.structure_version,
            gate_name,
            depth,
            subcircuit.context_signature(),
            tuple((rv.mean, rv.sigma) for rv in boundary.values()),
        )
        if cache_key in self._eval_cache:
            self._eval_hits += 1
            return self._eval_cache[cache_key]
        self._eval_misses += 1
        if len(self._eval_cache) > self._EVAL_CACHE_LIMIT:
            # Boundary moments are part of the key, so entries from passes
            # whose upstream arrivals moved can never hit again; a periodic
            # wholesale reset bounds memory on very long constrained runs.
            self._eval_cache.clear()

        rv_key = (id(circuit), circuit.size_change_cursor)
        if self._rv_cache_key != rv_key:
            self._rv_cache = {}
            self._rv_cache_key = rv_key

        sweep = self.evaluator.size_sweep_components(
            subcircuit,
            boundary,
            library.size_indices(gate.cell_type),
            delay_rv_cache=self._rv_cache,
        )
        best_cost = sweep[gate.size_index]
        best_size = gate.size_index
        for size_index, cost in sweep.items():
            if size_index == gate.size_index:
                continue
            if cost.better_than(best_cost):
                best_cost = cost
                best_size = size_index
        choice = best_size if best_size != gate.size_index else None
        self._eval_cache[cache_key] = choice
        return choice
