"""Cost functions: the weighted mean/sigma objective (paper Eq. 7).

For every output ``O_i`` of a (sub)circuit the paper scores

    Cost(O_i) = mu_i + lambda * sigma_i

where ``lambda`` is a user-specified weight that "ranks relative importance
of minimizing standard variation against mean of delay"; the cost of the
(sub)circuit is the *maximum* of the per-output costs.  ``lambda = 0``
recovers a pure mean-delay objective; the paper's experiments use
``lambda in {3, 9}`` (and 6 in Fig. 4).

:class:`YieldObjective` recasts the same machinery as a *parametric timing
yield* target (the paper's Fig. 1 motivation): minimize the clock period at
which ``target_yield`` of manufactured parts meet timing.  Under the normal
approximation that period is exactly ``mu + z * sigma`` with
``z = Phi^{-1}(target_yield)`` — i.e. a weighted cost whose lambda is the
target's z-score — which is what the sizer's inner loop uses; circuit-level
accept/reject decisions use the exact discrete-pdf quantile instead.

:class:`CostEvaluator` binds the cost to a FASSTA engine and evaluates
candidate gate sizes on extracted subcircuits, which is exactly the
``Cost(S)`` procedure of the Fig. 2 pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Union

from repro.core.discrete_pdf import DiscretePDF
from repro.core.fassta import FASSTA
from repro.core.rv import NormalDelay, ZERO_DELAY, _standard_normal_quantile
from repro.core.subcircuit import Subcircuit


@dataclass(frozen=True)
class WeightedCost:
    """``cost(rv) = rv.mean + lam * rv.sigma`` (Eq. 7)."""

    lam: float

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError("lambda weight must be non-negative")

    def of(self, rv: NormalDelay) -> float:
        """Cost of a single arrival-time random variable."""
        return rv.mean + self.lam * rv.sigma

    def of_moments(self, mean: float, sigma: float) -> float:
        return mean + self.lam * sigma

    def worst(self, arrivals: Mapping[str, NormalDelay]) -> float:
        """Maximum cost over a set of outputs (the subcircuit cost of §4.5)."""
        if not arrivals:
            raise ValueError("worst() needs at least one output arrival")
        return max(self.of(rv) for rv in arrivals.values())

    def components(self, arrivals: Mapping[str, NormalDelay]) -> "CostComponents":
        """Both the worst and the summed per-output cost of a set of outputs.

        The sum acts as a tie-breaker when comparing candidate gate sizes: a
        resize that improves a non-worst output of the subcircuit (without
        hurting the worst one) is still progress, even though the Eq. 7 max
        is unchanged.  Without the tie-breaker, circuits with many parallel
        near-critical paths dead-lock because every local improvement is
        masked by some slower path crossing the same subcircuit.
        """
        if not arrivals:
            raise ValueError("components() needs at least one output arrival")
        costs = [self.of(rv) for rv in arrivals.values()]
        return CostComponents(worst=max(costs), total=sum(costs))


@dataclass(frozen=True)
class YieldObjective:
    """Size for the smallest clock period achieving ``target_yield``.

    Parameters
    ----------
    target_yield:
        Fraction of manufactured parts that must meet the period, in
        ``[0.5, 1)``.  Targets below one half would reward *increasing*
        variance (negative z-score) and are rejected.
    max_area_ratio:
        Optional area constraint for the sizer: candidate states whose
        total area exceeds ``max_area_ratio`` times the starting area are
        rejected even when they improve the period (the area-constrained
        variant of the yield mode).
    """

    target_yield: float
    max_area_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.5 <= self.target_yield < 1.0:
            raise ValueError("target_yield must be in [0.5, 1)")
        if self.max_area_ratio is not None and self.max_area_ratio < 1.0:
            raise ValueError("max_area_ratio must be >= 1 (relative to start)")

    @property
    def z(self) -> float:
        """z-score of the target yield, ``Phi^{-1}(target_yield)``."""
        return _standard_normal_quantile(self.target_yield)

    def equivalent_cost(self) -> WeightedCost:
        """The Eq. 7 cost whose lambda equals the target's z-score.

        For normal moments ``mu + z * sigma`` *is* the period that achieves
        the target yield, so the sizer's moment-based inner loop optimizes
        the yield objective by reusing the weighted cost unchanged.
        """
        return WeightedCost(self.z)

    def period_for(self, distribution: Union[NormalDelay, DiscretePDF]) -> float:
        """Smallest clock period achieving the target on ``distribution``.

        Delegates to :func:`repro.analysis.timing_yield.period_for_yield`
        (imported lazily: the analysis package imports the sizer stack at
        module scope, so a top-level import here would be circular).
        """
        from repro.analysis.timing_yield import period_for_yield

        return period_for_yield(distribution, self.target_yield)


@dataclass(frozen=True)
class CostComponents:
    """(worst, total) cost of a subcircuit's outputs, compared lexicographically."""

    worst: float
    total: float

    #: Relative tolerance used when deciding the worst costs are "equal".
    REL_TOL = 1e-9

    def better_than(self, other: "CostComponents") -> bool:
        """True when this cost is strictly preferable to ``other``."""
        tol = self.REL_TOL * max(abs(self.worst), abs(other.worst), 1.0)
        if self.worst < other.worst - tol:
            return True
        if self.worst > other.worst + tol:
            return False
        return self.total < other.total - tol


class CostEvaluator:
    """Evaluates the Eq. 7 cost of a subcircuit with the FASSTA engine.

    Parameters
    ----------
    fassta:
        The fast inner-loop engine.
    cost:
        The weighted cost (carries lambda).
    """

    def __init__(self, fassta: FASSTA, cost: WeightedCost) -> None:
        self.fassta = fassta
        self.cost = cost

    # ------------------------------------------------------------------
    def subcircuit_arrivals(
        self,
        subcircuit: Subcircuit,
        boundary_arrivals: Mapping[str, NormalDelay],
        gate_delay_rvs: Optional[Mapping[str, NormalDelay]] = None,
    ) -> Dict[str, NormalDelay]:
        """Propagate moments across the subcircuit's member gates only.

        ``boundary_arrivals`` supplies the arrival moments of the
        subcircuit's input nets (typically the values FULLSSTA recorded).
        Loads are computed against the parent circuit so boundary fanout is
        exact.  ``gate_delay_rvs`` optionally supplies precomputed delay
        moments for member gates (the size-sweep path uses this to avoid
        re-deriving delays whose inputs did not change); gates missing from
        the map are computed fresh.
        """
        circuit = subcircuit.parent
        arrivals: Dict[str, NormalDelay] = {}
        for net in subcircuit.input_nets:
            arrivals[net] = boundary_arrivals.get(net, ZERO_DELAY)

        for gate_name in subcircuit.gate_names:
            gate = circuit.gate(gate_name)
            delay_rv = None
            if gate_delay_rvs is not None:
                delay_rv = gate_delay_rvs.get(gate_name)
            if delay_rv is None:
                delay_rv = self.fassta.gate_delay_rv(circuit, gate_name)
            input_rvs = [arrivals.get(net, ZERO_DELAY) for net in gate.inputs]
            if len(input_rvs) == 1:
                worst_input = input_rvs[0]
            else:
                worst_input = NormalDelay.maximum_of(
                    input_rvs, exact=self.fassta.exact_max
                )
            arrivals[gate.output] = worst_input + delay_rv
        return arrivals

    def _output_arrivals(
        self,
        subcircuit: Subcircuit,
        boundary_arrivals: Mapping[str, NormalDelay],
    ) -> Dict[str, NormalDelay]:
        arrivals = self.subcircuit_arrivals(subcircuit, boundary_arrivals)
        return {net: arrivals.get(net, ZERO_DELAY) for net in subcircuit.output_nets}

    def subcircuit_cost(
        self,
        subcircuit: Subcircuit,
        boundary_arrivals: Mapping[str, NormalDelay],
    ) -> float:
        """The Eq. 7 cost of the subcircuit: max over its output nets."""
        return self.cost.worst(self._output_arrivals(subcircuit, boundary_arrivals))

    def subcircuit_cost_components(
        self,
        subcircuit: Subcircuit,
        boundary_arrivals: Mapping[str, NormalDelay],
    ) -> CostComponents:
        """(worst, total) cost of the subcircuit, for candidate-size comparisons."""
        return self.cost.components(self._output_arrivals(subcircuit, boundary_arrivals))

    def candidate_size_cost(
        self,
        subcircuit: Subcircuit,
        boundary_arrivals: Mapping[str, NormalDelay],
        size_index: int,
    ) -> float:
        """Cost of the subcircuit with the seed gate temporarily at ``size_index``.

        The seed's size is restored before returning, so the parent circuit
        is never left in the trial state.
        """
        circuit = subcircuit.parent
        gate = circuit.gate(subcircuit.seed)
        original = gate.size_index
        try:
            gate.size_index = size_index
            return self.subcircuit_cost(subcircuit, boundary_arrivals)
        finally:
            gate.size_index = original

    def candidate_size_cost_components(
        self,
        subcircuit: Subcircuit,
        boundary_arrivals: Mapping[str, NormalDelay],
        size_index: int,
    ) -> CostComponents:
        """(worst, total) cost with the seed gate temporarily at ``size_index``."""
        circuit = subcircuit.parent
        gate = circuit.gate(subcircuit.seed)
        original = gate.size_index
        try:
            gate.size_index = size_index
            return self.subcircuit_cost_components(subcircuit, boundary_arrivals)
        finally:
            gate.size_index = original

    # ------------------------------------------------------------------
    def size_sweep_components(
        self,
        subcircuit: Subcircuit,
        boundary_arrivals: Mapping[str, NormalDelay],
        size_indices: Iterable[int],
        delay_rv_cache: Optional[Dict[str, NormalDelay]] = None,
    ) -> Dict[int, CostComponents]:
        """(worst, total) cost for every candidate seed size in one sweep.

        Equivalent to calling :meth:`candidate_size_cost_components` once per
        size, but the delay moments of *unaffected* member gates — everything
        except the seed itself and the member drivers of its input nets,
        whose loads include the seed's input capacitance — are computed once
        and shared across all candidates instead of once per candidate.

        ``delay_rv_cache`` optionally memoizes those unaffected delay
        moments across calls; the caller owns the dict and must clear it
        whenever any gate size in the parent circuit changes.

        The seed's size is restored before returning.
        """
        circuit = subcircuit.parent
        seed_gate = circuit.gate(subcircuit.seed)
        affected = {subcircuit.seed}
        for net in seed_gate.inputs:
            driver = circuit.driver_of(net)
            if driver is not None and driver.name in subcircuit:
                affected.add(driver.name)

        static_rvs: Dict[str, NormalDelay] = {}
        for name in subcircuit.gate_names:
            if name in affected:
                continue
            rv = None if delay_rv_cache is None else delay_rv_cache.get(name)
            if rv is None:
                rv = self.fassta.gate_delay_rv(circuit, name)
                if delay_rv_cache is not None:
                    delay_rv_cache[name] = rv
            static_rvs[name] = rv

        results: Dict[int, CostComponents] = {}
        original = seed_gate.size_index
        try:
            for size_index in size_indices:
                seed_gate.size_index = size_index
                arrivals = self.subcircuit_arrivals(
                    subcircuit, boundary_arrivals, gate_delay_rvs=static_rvs
                )
                outputs = {
                    net: arrivals.get(net, ZERO_DELAY)
                    for net in subcircuit.output_nets
                }
                results[size_index] = self.cost.components(outputs)
        finally:
            seed_gate.size_index = original
        return results

    # ------------------------------------------------------------------
    def circuit_cost(self, output_rv: NormalDelay) -> float:
        """Circuit-level objective from the FULLSSTA/FASSTA output moments."""
        return self.cost.of(output_rv)
