"""FASSTA — the fast, moment-based statistical timing engine (paper §4.3).

FASSTA is the inner-loop engine used while evaluating candidate gate sizes.
Instead of carrying full discrete pdfs it carries only the first two moments
of every arrival time (a :class:`~repro.core.rv.NormalDelay`):

* ``sum`` — means and variances add (independent-normal assumption),
* ``max`` — Clark's formulae with the quadratic-cdf approximation plus the
  ±2.6-sigma dominance shortcut (:func:`repro.core.clark.clark_max_fast`).

The engine can time a whole :class:`~repro.netlist.circuit.Circuit` or a
:class:`~repro.core.subcircuit.Subcircuit` whose boundary arrival times were
previously annotated by FULLSSTA — exactly the nesting the paper describes
("a slower more accurate approach for tracking statistical critical paths
and a fast engine for evaluation of gate size assignments").

Two propagation paths are provided:

* the **scalar** path walks gates in topological order, folding the Clark
  max pairwise per gate — simple, and the reference for correctness;
* the **levelized vectorized** path (``FASSTA(vectorized=True)``) groups
  gates by logic level and evaluates the Clark fast-max over NumPy arrays of
  μ/σ, one fold per input position per level
  (:func:`repro.core.clark.clark_max_fast_arrays`).  The level schedule
  comes from the circuit's shared array-native IR
  (:meth:`Circuit.compiled() <repro.netlist.circuit.Circuit.compiled>`),
  lowered once per structure version and shared with every other engine.
  Both paths perform the same floating-point operations in the same order,
  so their moments agree to ~1e-12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.clark import clark_max_fast_arrays
from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.obs import METRICS, span
from repro.variation.model import VariationModel


@dataclass
class FasstaResult:
    """Arrival-time moments produced by one FASSTA run."""

    arrivals: Dict[str, NormalDelay]
    gate_delays: Dict[str, NormalDelay]
    output_rv: NormalDelay
    worst_output: str

    def arrival(self, net: str) -> NormalDelay:
        """Arrival-time moments at ``net`` (0 for unknown/primary-input nets)."""
        return self.arrivals.get(net, ZERO_DELAY)

    @property
    def mean(self) -> float:
        """Mean of the circuit-level max arrival (the paper's mu of RV_O)."""
        return self.output_rv.mean

    @property
    def sigma(self) -> float:
        """Standard deviation of the circuit-level max arrival."""
        return self.output_rv.sigma


class FASSTA:
    """Fast moment-propagation SSTA engine.

    Parameters
    ----------
    delay_model:
        Library delay model giving nominal gate delays under load.
    variation_model:
        Process-variation model assigning a sigma to every gate delay.
    exact_max:
        When true, use the exact Clark moments instead of the fast
        approximation (used by accuracy studies; default false).
    vectorized:
        When true, full-circuit analyses run the levelized NumPy path
        instead of the per-gate scalar fold.  Ignored when ``exact_max`` is
        set (the exact cdf is not vectorized).
    worst_key:
        Ranking criterion used to report :attr:`FasstaResult.worst_output`.
        Defaults to the raw mean (a ``lambda = 0`` objective); the sizer
        passes its weighted cost ``mu + lambda * sigma`` so the reported
        worst output matches the optimization objective.
    """

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: VariationModel,
        exact_max: bool = False,
        vectorized: bool = False,
        worst_key: Optional[Callable[[NormalDelay], float]] = None,
    ) -> None:
        self.delay_model = delay_model
        self.variation_model = variation_model
        self.exact_max = exact_max
        self.vectorized = vectorized
        self.worst_key = worst_key

    # ------------------------------------------------------------------
    def gate_delay_rv(
        self, circuit: Circuit, gate_name: str, size_index: Optional[int] = None
    ) -> NormalDelay:
        """Delay distribution of one gate (optionally at a hypothetical size)."""
        gate = circuit.gate(gate_name)
        dist = self.variation_model.gate_distribution(
            circuit, gate, self.delay_model, size_index
        )
        return NormalDelay(dist.mean, dist.sigma)

    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, NormalDelay]] = None,
        outputs: Optional[List[str]] = None,
    ) -> FasstaResult:
        """Propagate arrival-time moments through ``circuit``.

        Parameters
        ----------
        circuit:
            The circuit (or extracted subcircuit) to time.
        boundary_arrivals:
            Arrival moments of nets driven from outside the analysed region
            (primary inputs default to ``NormalDelay(0, 0)``).
        outputs:
            Net names over which the circuit-level max is taken; defaults to
            the circuit's primary outputs.  Requested nets must exist in the
            circuit (or the boundary map) — unknown names raise ``KeyError``
            instead of silently timing as zero.
        """
        if self.vectorized and not self.exact_max:
            METRICS.counter("fassta.runs.levelized")
            with span("fassta.analyze", path="levelized") as sp:
                arrivals, gate_delays = self._propagate_vectorized(
                    circuit, boundary_arrivals
                )
                sp.set(gates=len(gate_delays))
        else:
            METRICS.counter("fassta.runs.scalar")
            with span("fassta.analyze", path="scalar") as sp:
                arrivals, gate_delays = self._propagate_scalar(
                    circuit, boundary_arrivals
                )
                sp.set(gates=len(gate_delays))
        return self._build_result(circuit, arrivals, gate_delays, outputs)

    # ------------------------------------------------------------------
    def _propagate_scalar(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, NormalDelay]],
    ) -> Tuple[Dict[str, NormalDelay], Dict[str, NormalDelay]]:
        arrivals: Dict[str, NormalDelay] = {}
        if boundary_arrivals:
            arrivals.update(boundary_arrivals)
        for net in circuit.primary_inputs:
            arrivals.setdefault(net, ZERO_DELAY)

        gate_delays: Dict[str, NormalDelay] = {}
        for gate in circuit:
            delay_rv = self.gate_delay_rv(circuit, gate.name)
            gate_delays[gate.name] = delay_rv
            input_rvs = [arrivals.get(net, ZERO_DELAY) for net in gate.inputs]
            if len(input_rvs) == 1:
                worst_input = input_rvs[0]
            else:
                worst_input = NormalDelay.maximum_of(input_rvs, exact=self.exact_max)
            arrivals[gate.output] = worst_input + delay_rv
        return arrivals, gate_delays

    # ------------------------------------------------------------------
    def _propagate_vectorized(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, NormalDelay]],
    ) -> Tuple[Dict[str, NormalDelay], Dict[str, NormalDelay]]:
        plan = circuit.compiled()

        mu = np.zeros(plan.num_nets)
        sg = np.zeros(plan.num_nets)
        extra_boundary: Dict[str, NormalDelay] = {}
        boundary_nets: set = set()
        if boundary_arrivals:
            for net, rv in boundary_arrivals.items():
                idx = plan.net_index.get(net)
                if idx is None:
                    # Net unknown to this circuit: keep it visible in the
                    # result map, exactly like the scalar path does.
                    extra_boundary[net] = rv
                else:
                    boundary_nets.add(net)
                    mu[idx] = rv.mean
                    sg[idx] = rv.sigma

        gate_delays: Dict[str, NormalDelay] = {}
        for block in plan.levels:
            names, out_ids = block.names, block.out_slots
            in_ids, in_mask = block.in_slots, block.in_mask
            d_mu = np.empty(len(names))
            d_sg = np.empty(len(names))
            for row, name in enumerate(names):
                rv = self.gate_delay_rv(circuit, name)
                gate_delays[name] = rv
                d_mu[row] = rv.mean
                d_sg[row] = rv.sigma

            # Left-to-right pairwise fold over input positions, masked so a
            # gate with fewer inputs keeps its running max untouched — the
            # same fold order as NormalDelay.maximum_of in the scalar path.
            worst_mu = mu[in_ids[:, 0]]
            worst_sg = sg[in_ids[:, 0]]
            for col in range(1, in_ids.shape[1]):
                mask = in_mask[:, col]
                cand_mu = mu[in_ids[:, col]]
                cand_sg = sg[in_ids[:, col]]
                max_mu, max_var = clark_max_fast_arrays(
                    worst_mu, worst_sg, cand_mu, cand_sg
                )
                max_sg = np.sqrt(max_var)
                worst_mu = np.where(mask, max_mu, worst_mu)
                worst_sg = np.where(mask, max_sg, worst_sg)

            mu[out_ids] = worst_mu + d_mu
            sg[out_ids] = np.sqrt(worst_sg * worst_sg + d_sg * d_sg)

        arrivals = {
            net: NormalDelay(float(mu[idx]), float(sg[idx]))
            for net, idx in plan.net_index.items()
            if net not in plan.floating or net in boundary_nets
        }
        arrivals.update(extra_boundary)
        return arrivals, gate_delays

    # ------------------------------------------------------------------
    def _build_result(
        self,
        circuit: Circuit,
        arrivals: Dict[str, NormalDelay],
        gate_delays: Dict[str, NormalDelay],
        outputs: Optional[List[str]],
    ) -> FasstaResult:
        output_nets = outputs if outputs is not None else circuit.primary_outputs
        if not output_nets:
            raise ValueError(f"circuit {circuit.name!r} has no outputs to time")
        missing = [net for net in output_nets if net not in arrivals]
        if missing:
            raise KeyError(
                f"unknown output net(s) {missing} in circuit {circuit.name!r}"
            )
        output_rvs = [arrivals[net] for net in output_nets]
        output_rv = NormalDelay.maximum_of(output_rvs, exact=self.exact_max)
        key = self.worst_key or (lambda rv: rv.mean)
        worst_output = max(output_nets, key=lambda net: key(arrivals[net]))
        return FasstaResult(
            arrivals=arrivals,
            gate_delays=gate_delays,
            output_rv=output_rv,
            worst_output=worst_output,
        )

    # ------------------------------------------------------------------
    def output_moments(self, circuit: Circuit) -> NormalDelay:
        """Shortcut: moments of the circuit-level max arrival."""
        return self.analyze(circuit).output_rv
