"""FASSTA — the fast, moment-based statistical timing engine (paper §4.3).

FASSTA is the inner-loop engine used while evaluating candidate gate sizes.
Instead of carrying full discrete pdfs it carries only the first two moments
of every arrival time (a :class:`~repro.core.rv.NormalDelay`):

* ``sum`` — means and variances add (independent-normal assumption),
* ``max`` — Clark's formulae with the quadratic-cdf approximation plus the
  ±2.6-sigma dominance shortcut (:func:`repro.core.clark.clark_max_fast`).

The engine can time a whole :class:`~repro.netlist.circuit.Circuit` or a
:class:`~repro.core.subcircuit.Subcircuit` whose boundary arrival times were
previously annotated by FULLSSTA — exactly the nesting the paper describes
("a slower more accurate approach for tracking statistical critical paths
and a fast engine for evaluation of gate size assignments").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.variation.model import VariationModel


@dataclass
class FasstaResult:
    """Arrival-time moments produced by one FASSTA run."""

    arrivals: Dict[str, NormalDelay]
    gate_delays: Dict[str, NormalDelay]
    output_rv: NormalDelay
    worst_output: str

    def arrival(self, net: str) -> NormalDelay:
        """Arrival-time moments at ``net`` (0 for unknown/primary-input nets)."""
        return self.arrivals.get(net, ZERO_DELAY)

    @property
    def mean(self) -> float:
        """Mean of the circuit-level max arrival (the paper's mu of RV_O)."""
        return self.output_rv.mean

    @property
    def sigma(self) -> float:
        """Standard deviation of the circuit-level max arrival."""
        return self.output_rv.sigma


class FASSTA:
    """Fast moment-propagation SSTA engine.

    Parameters
    ----------
    delay_model:
        Library delay model giving nominal gate delays under load.
    variation_model:
        Process-variation model assigning a sigma to every gate delay.
    exact_max:
        When true, use the exact Clark moments instead of the fast
        approximation (used by accuracy studies; default false).
    """

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: VariationModel,
        exact_max: bool = False,
    ) -> None:
        self.delay_model = delay_model
        self.variation_model = variation_model
        self.exact_max = exact_max

    # ------------------------------------------------------------------
    def gate_delay_rv(
        self, circuit: Circuit, gate_name: str, size_index: Optional[int] = None
    ) -> NormalDelay:
        """Delay distribution of one gate (optionally at a hypothetical size)."""
        gate = circuit.gate(gate_name)
        dist = self.variation_model.gate_distribution(
            circuit, gate, self.delay_model, size_index
        )
        return NormalDelay(dist.mean, dist.sigma)

    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: Circuit,
        boundary_arrivals: Optional[Mapping[str, NormalDelay]] = None,
        outputs: Optional[List[str]] = None,
    ) -> FasstaResult:
        """Propagate arrival-time moments through ``circuit``.

        Parameters
        ----------
        circuit:
            The circuit (or extracted subcircuit) to time.
        boundary_arrivals:
            Arrival moments of nets driven from outside the analysed region
            (primary inputs default to ``NormalDelay(0, 0)``).
        outputs:
            Net names over which the circuit-level max is taken; defaults to
            the circuit's primary outputs.
        """
        arrivals: Dict[str, NormalDelay] = {}
        if boundary_arrivals:
            arrivals.update(boundary_arrivals)
        for net in circuit.primary_inputs:
            arrivals.setdefault(net, ZERO_DELAY)

        gate_delays: Dict[str, NormalDelay] = {}
        for gate in circuit:
            delay_rv = self.gate_delay_rv(circuit, gate.name)
            gate_delays[gate.name] = delay_rv
            input_rvs = [arrivals.get(net, ZERO_DELAY) for net in gate.inputs]
            if len(input_rvs) == 1:
                worst_input = input_rvs[0]
            else:
                worst_input = NormalDelay.maximum_of(input_rvs, exact=self.exact_max)
            arrivals[gate.output] = worst_input + delay_rv

        output_nets = outputs if outputs is not None else circuit.primary_outputs
        if not output_nets:
            raise ValueError(f"circuit {circuit.name!r} has no outputs to time")
        output_rvs = [arrivals.get(net, ZERO_DELAY) for net in output_nets]
        output_rv = NormalDelay.maximum_of(output_rvs, exact=self.exact_max)
        worst_output = max(output_nets, key=lambda net: arrivals.get(net, ZERO_DELAY).mean)
        return FasstaResult(
            arrivals=arrivals,
            gate_delays=gate_delays,
            output_rv=output_rv,
            worst_output=worst_output,
        )

    # ------------------------------------------------------------------
    def output_moments(self, circuit: Circuit) -> NormalDelay:
        """Shortcut: moments of the circuit-level max arrival."""
        return self.analyze(circuit).output_rv
