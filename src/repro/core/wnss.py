"""Worst Negative Statistical Slack (WNSS) path tracing (paper §4.4).

The deterministic critical (WNS) path is the chain of latest-arriving inputs
from the worst output back to a primary input.  Statistically this no longer
works: "one cannot simply pick the input with the higher mean or variance to
determine which input is most responsible for the variance at the output",
because every input of a statistical ``max`` contributes to the result.

The paper's procedure, implemented here:

1. start at the output whose arrival has the worst weighted cost
   (``mu + lambda*sigma``) — the statistical analogue of the worst output;
2. at each gate compare its inputs pairwise:
   * if the Eq. 5/6 dominance test fires (normalized mean separation beyond
     2.6), pick the input with the larger mean — it clearly dominates;
   * otherwise compare the finite-difference sensitivities
     ``dVar[max]/dmu`` of the two inputs, where a perturbation of an input's
     mean is coupled to its sigma through ``delta_sigma = c * delta_mu``
     (the constant ``c`` is the same one relating a gate's mean delay to its
     variation), and pick the input with the larger sensitivity;
3. follow the winning input's driver and repeat until a primary input is
   reached.

The traced gates form the WNSS path the sizer focuses its effort on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core import clark
from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.netlist.circuit import Circuit


@dataclass
class WNSSPath:
    """Result of one WNSS trace."""

    gates: List[str]
    output_net: str
    output_rv: NormalDelay
    decisions: List["TraceDecision"] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self):
        return iter(self.gates)

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self.gates


@dataclass(frozen=True)
class TraceDecision:
    """Record of one input-selection decision along the trace (for reports/tests)."""

    gate: str
    chosen_net: str
    method: str  # "single", "dominance" or "sensitivity"
    candidates: Dict[str, NormalDelay]


class WNSSTracer:
    """Traces the worst-negative-statistical-slack path of a circuit.

    Parameters
    ----------
    coupling:
        The linear mean-to-sigma coupling constant ``c`` of §4.4
        (``delta_sigma ~= c * delta_mu`` along a path).  Usually taken from
        :attr:`repro.variation.model.VariationModel.mean_sigma_coupling`.
    lam:
        Weight used to pick the starting output (``mu + lam*sigma``); the
        same lambda the optimizer is run with.
    dominance_threshold:
        Normalized mean separation beyond which an input is considered
        fully dominant (2.6 in the paper).
    rel_step:
        Relative finite-difference step for the sensitivity comparison
        (the paper uses "values for h of the order of 1% of the mean").
    """

    def __init__(
        self,
        coupling: float,
        lam: float = 3.0,
        dominance_threshold: float = clark.DOMINANCE_THRESHOLD,
        rel_step: float = 0.01,
    ) -> None:
        if coupling < 0:
            raise ValueError("coupling must be non-negative")
        if lam < 0:
            raise ValueError("lambda must be non-negative")
        self.coupling = coupling
        self.lam = lam
        self.dominance_threshold = dominance_threshold
        self.rel_step = rel_step

    # ------------------------------------------------------------------
    def select_start_output(
        self, circuit: Circuit, arrivals: Mapping[str, NormalDelay]
    ) -> str:
        """The primary output with the worst weighted arrival cost."""
        outputs = circuit.primary_outputs
        if not outputs:
            raise ValueError(f"circuit {circuit.name!r} has no primary outputs")
        return max(
            outputs,
            key=lambda net: self._cost(arrivals.get(net, ZERO_DELAY)),
        )

    def _cost(self, rv: NormalDelay) -> float:
        return rv.mean + self.lam * rv.sigma

    # ------------------------------------------------------------------
    def pick_dominant_input(
        self, candidates: Mapping[str, NormalDelay]
    ) -> "tuple[str, str]":
        """Pick the input most responsible for the output max.

        Returns ``(net, method)`` where method is ``"single"``,
        ``"dominance"`` or ``"sensitivity"``.  The tournament is run
        pairwise, carrying the current winner forward, exactly as described
        in §4.4.
        """
        nets = list(candidates)
        if not nets:
            raise ValueError("pick_dominant_input needs at least one candidate")
        if len(nets) == 1:
            return nets[0], "single"

        winner = nets[0]
        method = "dominance"
        for challenger in nets[1:]:
            a = candidates[winner]
            b = candidates[challenger]
            dom = clark.dominance(
                a.mean, a.sigma, b.mean, b.sigma, self.dominance_threshold
            )
            if dom != 0:
                # Eq. 5/6 satisfied: the input with the higher mean dominates.
                if b.mean > a.mean:
                    winner = challenger
                continue
            sens_a, sens_b = clark.variance_sensitivities(
                a.mean, a.sigma, b.mean, b.sigma, self.coupling, self.rel_step
            )
            method = "sensitivity"
            if sens_b > sens_a:
                winner = challenger
            elif sens_b == sens_a and b.mean > a.mean:
                winner = challenger
        return winner, method

    # ------------------------------------------------------------------
    def trace(
        self,
        circuit: Circuit,
        arrivals: Mapping[str, NormalDelay],
        start_output: Optional[str] = None,
    ) -> WNSSPath:
        """Trace the WNSS path from ``start_output`` (or the worst output) to a PI.

        ``arrivals`` maps net names to arrival moments, typically the
        ``arrival_moments`` recorded by the last FULLSSTA run.  The returned
        gate list is ordered from inputs towards the output (the order the
        sizer visits them in).
        """
        output_net = start_output or self.select_start_output(circuit, arrivals)
        output_rv = arrivals.get(output_net, ZERO_DELAY)

        gates: List[str] = []
        decisions: List[TraceDecision] = []
        gate = circuit.driver_of(output_net)
        visited = set()
        while gate is not None and gate.name not in visited:
            visited.add(gate.name)
            gates.append(gate.name)
            candidates = {
                net: arrivals.get(net, ZERO_DELAY) for net in gate.inputs
            }
            chosen, method = self.pick_dominant_input(candidates)
            decisions.append(
                TraceDecision(
                    gate=gate.name,
                    chosen_net=chosen,
                    method=method,
                    candidates=dict(candidates),
                )
            )
            gate = circuit.driver_of(chosen)

        gates.reverse()
        decisions.reverse()
        return WNSSPath(
            gates=gates,
            output_net=output_net,
            output_rv=output_rv,
            decisions=decisions,
        )
