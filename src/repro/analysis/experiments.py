"""Experiment runners for every table and figure of the paper.

* Table 1 — :func:`run_table1_row` / :func:`run_table1`
* Figure 1 — :func:`run_fig1` (output-delay pdfs of the original design and
  of variance-optimized designs)
* Figure 3 — :func:`run_fig3_example` (WNSS tracing on the paper's 6-gate
  example)
* Figure 4 — :func:`run_fig4_sweep` (normalized mean vs sigma trade-off of
  one circuit across lambda values)

The runners deliberately return plain dataclasses/lists rather than printing
so they can be reused from tests, benchmarks and the examples; the text
rendering lives in :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import Table1Row
from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark
from repro.core.clark import variance_sensitivities
from repro.core.discrete_pdf import DiscretePDF
from repro.core.fullssta import FULLSSTA
from repro.core.rv import NormalDelay
from repro.core.sizer import SizerConfig
from repro.core.wnss import WNSSTracer
from repro.flow import FlowResult, run_sizing_flow
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.netlist.circuit import Circuit
from repro.variation.model import VariationModel


def _default_substrates():
    library = make_synthetic_90nm_library()
    delay_model = LookupTableDelayModel(library)
    variation_model = VariationModel()
    return library, delay_model, variation_model


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def run_table1_row(
    circuit_name: str,
    lam: float,
    sizer_config: Optional[SizerConfig] = None,
    monte_carlo_samples: int = 0,
) -> Table1Row:
    """Run the paper's flow for one circuit at one lambda and return its row."""
    circuit = build_benchmark(circuit_name)
    library, delay_model, variation_model = _default_substrates()
    flow = run_sizing_flow(
        circuit,
        lam=lam,
        library=library,
        delay_model=delay_model,
        variation_model=variation_model,
        sizer_config=sizer_config,
        monte_carlo_samples=monte_carlo_samples,
    )
    return Table1Row.from_flow(circuit_name, flow)


def run_table1(
    circuit_names: Optional[Sequence[str]] = None,
    lams: Sequence[float] = (3.0, 9.0),
    sizer_config: Optional[SizerConfig] = None,
) -> List[Table1Row]:
    """Regenerate Table 1 for the given circuits and lambda values.

    Running the full 13-circuit set takes a while on the larger circuits; the
    benchmarks default to a representative subset and the full sweep is
    enabled with an environment variable (see ``benchmarks/bench_table1.py``).
    """
    rows: List[Table1Row] = []
    for name in circuit_names or BENCHMARK_NAMES:
        for lam in lams:
            config = sizer_config
            if config is not None:
                config = SizerConfig(
                    lam=lam,
                    subcircuit_depth=config.subcircuit_depth,
                    max_iterations=config.max_iterations,
                    min_relative_gain=config.min_relative_gain,
                    sigma_target=config.sigma_target,
                    pdf_samples=config.pdf_samples,
                    freeze_no_gain_gates=config.freeze_no_gain_gates,
                )
            rows.append(run_table1_row(name, lam, config))
    return rows


# ---------------------------------------------------------------------------
# Figure 1 — output delay pdfs at different optimization points
# ---------------------------------------------------------------------------
@dataclass
class Fig1Curves:
    """Output-delay pdfs of the original and optimized designs."""

    circuit: str
    original: DiscretePDF
    optimized: Dict[float, DiscretePDF] = field(default_factory=dict)

    def series(self) -> Dict[str, Tuple[Tuple[float, float], ...]]:
        """All curves as name -> ((delay, probability), ...) pairs for plotting."""
        out = {"original": self.original.as_tuples()}
        for lam, pdf in sorted(self.optimized.items()):
            out[f"lambda={lam:g}"] = pdf.as_tuples()
        return out


def run_fig1(
    circuit_name: str = "c432",
    lams: Sequence[float] = (3.0, 9.0),
    sizer_config: Optional[SizerConfig] = None,
    pdf_samples: int = 31,
) -> Fig1Curves:
    """Regenerate Figure 1: the circuit-output delay pdf before/after optimization.

    The original curve is the mean-delay-optimized design (widest spread);
    each optimized curve is the same circuit re-sized at one lambda.  A finer
    pdf sampling than the optimizer's default is used purely for plotting.
    """
    library, delay_model, variation_model = _default_substrates()
    plot_engine = FULLSSTA(delay_model, variation_model, num_samples=pdf_samples)

    # Original (mean-delay optimized) design.
    base_circuit = build_benchmark(circuit_name)
    from repro.core.baseline import MeanDelaySizer

    MeanDelaySizer(delay_model).optimize(base_circuit)
    original_pdf = plot_engine.analyze(base_circuit).output_pdf
    original_sizes = base_circuit.sizes()

    curves = Fig1Curves(circuit=circuit_name, original=original_pdf)
    for lam in lams:
        circuit = base_circuit.copy()
        circuit.apply_sizes(original_sizes)
        config = sizer_config or SizerConfig(lam=lam)
        if config.lam != lam:
            config = SizerConfig(lam=lam)
        from repro.core.sizer import StatisticalGreedySizer

        StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        curves.optimized[lam] = plot_engine.analyze(circuit).output_pdf
    return curves


# ---------------------------------------------------------------------------
# Figure 3 — WNSS tracing example
# ---------------------------------------------------------------------------
def run_fig3_example(coupling: float = 0.12) -> Dict[str, object]:
    """Reproduce the paper's Fig. 3 WNSS-tracing decision.

    The figure shows a node X whose two input arrivals are (357, 32) and
    (392, 35) — too close for the dominance test — while deeper in the cone
    the candidate arrivals are (320, 27) vs (310, 45) and (190, 41).  The
    statistical tracer must weigh variance contributions, not just means.
    This runner rebuilds that situation and reports which inputs the tracer
    picks and why.
    """
    arrivals = {
        "arc_a": NormalDelay(320.0, 27.0),
        "arc_b": NormalDelay(310.0, 45.0),
        "arc_c": NormalDelay(357.0, 32.0),
        "arc_d": NormalDelay(392.0, 35.0),
        "arc_e": NormalDelay(190.0, 41.0),
    }
    tracer = WNSSTracer(coupling=coupling, lam=3.0)

    # Decision at node X: inputs (357, 32) vs (392, 35).
    choice_x, method_x = tracer.pick_dominant_input(
        {"arc_c": arrivals["arc_c"], "arc_d": arrivals["arc_d"]}
    )
    # Decision one level up: inputs (320, 27) vs (310, 45): close means, very
    # different sigmas — the sensitivity comparison must prefer the noisier arc.
    choice_y, method_y = tracer.pick_dominant_input(
        {"arc_a": arrivals["arc_a"], "arc_b": arrivals["arc_b"]}
    )
    # And a clearly dominated pair: (392, 35) vs (190, 41).
    choice_z, method_z = tracer.pick_dominant_input(
        {"arc_d": arrivals["arc_d"], "arc_e": arrivals["arc_e"]}
    )

    sens = variance_sensitivities(320.0, 27.0, 310.0, 45.0, coupling)
    return {
        "arrivals": arrivals,
        "node_x": {"chosen": choice_x, "method": method_x},
        "node_y": {"chosen": choice_y, "method": method_y},
        "node_z": {"chosen": choice_z, "method": method_z},
        "sensitivities_y": {"arc_a": sens[0], "arc_b": sens[1]},
    }


# ---------------------------------------------------------------------------
# Figure 4 — mean/sigma trade-off sweep
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Point:
    """One point of the Fig. 4 normalized mean vs sigma plot."""

    lam: float
    mean: float
    sigma: float
    normalized_mean: float
    normalized_sigma: float
    area: float


def run_fig4_sweep(
    circuit_name: str = "c432",
    lams: Sequence[float] = (0.0, 3.0, 6.0, 9.0),
    sizer_config: Optional[SizerConfig] = None,
) -> List[Fig4Point]:
    """Regenerate Figure 4: (mu, sigma) of one circuit across lambda values.

    Values are normalized to the original (mean-optimized, lambda = 0) design
    point, as in the paper's plot: the x axis is mu / mu_original, the y axis
    sigma / mu_original.
    """
    library, delay_model, variation_model = _default_substrates()
    fullssta = FULLSSTA(delay_model, variation_model)

    base_circuit = build_benchmark(circuit_name)
    from repro.core.baseline import MeanDelaySizer
    from repro.core.sizer import StatisticalGreedySizer

    MeanDelaySizer(delay_model).optimize(base_circuit)
    base_sizes = base_circuit.sizes()
    original_rv = fullssta.analyze(base_circuit).output_rv
    mu0 = original_rv.mean if original_rv.mean else 1.0

    points: List[Fig4Point] = []
    for lam in lams:
        circuit = base_circuit.copy()
        circuit.apply_sizes(base_sizes)
        if lam > 0:
            config = sizer_config or SizerConfig(lam=lam)
            if config.lam != lam:
                config = SizerConfig(lam=lam)
            StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        rv = fullssta.analyze(circuit).output_rv
        points.append(
            Fig4Point(
                lam=lam,
                mean=rv.mean,
                sigma=rv.sigma,
                normalized_mean=rv.mean / mu0,
                normalized_sigma=rv.sigma / mu0,
                area=delay_model.circuit_area(circuit),
            )
        )
    return points
