"""Experiment runners for every table and figure of the paper.

* Table 1 — :func:`run_table1_row` / :func:`run_table1`
* Figure 1 — :func:`run_fig1` (output-delay pdfs of the original design and
  of variance-optimized designs)
* Figure 3 — :func:`run_fig3_example` (WNSS tracing on the paper's 6-gate
  example)
* Figure 4 — :func:`run_fig4_sweep` (normalized mean vs sigma trade-off of
  one circuit across lambda values)

The runners deliberately return plain dataclasses/lists rather than printing
so they can be reused from tests, benchmarks and the examples; the text
rendering lives in :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import Table1Row
from repro.circuits.registry import BENCHMARK_NAMES, build_benchmark
from repro.core.clark import variance_sensitivities
from repro.core.discrete_pdf import DiscretePDF
from repro.core.fullssta import FULLSSTA
from repro.core.rv import NormalDelay
from repro.core.sizer import SizerConfig
from repro.core.wnss import WNSSTracer
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.runner.sweep import (
    CellSpec,
    ProgressFn,
    SubstrateSpec,
    config_with_lam,
    evaluate_cell,
    fig4_specs,
    run_cells,
    table1_specs,
)
from repro.variation.model import VariationModel


def _default_substrates():
    library = make_synthetic_90nm_library()
    delay_model = LookupTableDelayModel(library)
    variation_model = VariationModel()
    return library, delay_model, variation_model


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def run_table1_row(
    circuit_name: str,
    lam: float,
    sizer_config: Optional[SizerConfig] = None,
    monte_carlo_samples: int = 0,
    substrates: Optional[SubstrateSpec] = None,
    seed: int = 0,
) -> Table1Row:
    """Run the paper's flow for one circuit at one lambda and return its row.

    ``sizer_config`` is evaluated at ``lam`` (only its lambda is replaced;
    every other tuning field is preserved); ``seed`` drives the optional
    Monte-Carlo validation.
    """
    spec = CellSpec(
        kind="table1",
        circuit=circuit_name,
        lam=lam,
        sizer_config=config_with_lam(sizer_config, lam),
        monte_carlo_samples=monte_carlo_samples,
        seed=seed,
        substrates=substrates or SubstrateSpec(),
    )
    return evaluate_cell(spec).table1_row()


def run_table1(
    circuit_names: Optional[Sequence[str]] = None,
    lams: Sequence[float] = (3.0, 9.0),
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
    monte_carlo_samples: int = 0,
    seed: int = 0,
    jobs: int = 1,
    out_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    cell_timeout: Optional[float] = None,
    max_retries: int = 0,
) -> List[Table1Row]:
    """Regenerate Table 1 for the given circuits and lambda values.

    A thin driver over :func:`repro.runner.sweep.run_cells`: ``jobs`` fans
    the (circuit, lambda) cells across worker processes (``jobs=1`` keeps
    the historical serial in-process path), ``out_dir`` persists each cell
    as a JSON artifact, ``resume`` skips cells whose artifact matches
    the current configuration, and ``cell_timeout`` / ``max_retries``
    bound and retry individual cells (see :func:`run_cells`).  Running the
    full 13-circuit set takes a while on the larger circuits; the
    benchmarks default to a representative subset (see
    ``benchmarks/bench_table1.py``).
    """
    specs = table1_specs(
        circuit_names or BENCHMARK_NAMES,
        lams,
        sizer_config=sizer_config,
        substrates=substrates,
        monte_carlo_samples=monte_carlo_samples,
        seed=seed,
    )
    report = run_cells(
        specs, jobs=jobs, out_dir=out_dir, resume=resume, progress=progress,
        cell_timeout=cell_timeout, max_retries=max_retries,
    )
    return [result.table1_row() for result in report.results]


# ---------------------------------------------------------------------------
# Figure 1 — output delay pdfs at different optimization points
# ---------------------------------------------------------------------------
@dataclass
class Fig1Curves:
    """Output-delay pdfs of the original and optimized designs."""

    circuit: str
    original: DiscretePDF
    optimized: Dict[float, DiscretePDF] = field(default_factory=dict)

    def series(self) -> Dict[str, Tuple[Tuple[float, float], ...]]:
        """All curves as name -> ((delay, probability), ...) pairs for plotting."""
        out = {"original": self.original.as_tuples()}
        for lam, pdf in sorted(self.optimized.items()):
            out[f"lambda={lam:g}"] = pdf.as_tuples()
        return out


def run_fig1(
    circuit_name: str = "c432",
    lams: Sequence[float] = (3.0, 9.0),
    sizer_config: Optional[SizerConfig] = None,
    pdf_samples: int = 31,
) -> Fig1Curves:
    """Regenerate Figure 1: the circuit-output delay pdf before/after optimization.

    The original curve is the mean-delay-optimized design (widest spread);
    each optimized curve is the same circuit re-sized at one lambda.  A finer
    pdf sampling than the optimizer's default is used purely for plotting.
    """
    library, delay_model, variation_model = _default_substrates()
    plot_engine = FULLSSTA(delay_model, variation_model, num_samples=pdf_samples)

    # Original (mean-delay optimized) design.
    base_circuit = build_benchmark(circuit_name)
    from repro.core.baseline import MeanDelaySizer

    MeanDelaySizer(delay_model).optimize(base_circuit)
    original_pdf = plot_engine.analyze(base_circuit).output_pdf
    original_sizes = base_circuit.sizes()

    curves = Fig1Curves(circuit=circuit_name, original=original_pdf)
    for lam in lams:
        circuit = base_circuit.copy()
        circuit.apply_sizes(original_sizes)
        config = config_with_lam(sizer_config, lam)
        from repro.core.sizer import StatisticalGreedySizer

        StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        curves.optimized[lam] = plot_engine.analyze(circuit).output_pdf
    return curves


# ---------------------------------------------------------------------------
# Figure 3 — WNSS tracing example
# ---------------------------------------------------------------------------
def run_fig3_example(coupling: float = 0.12) -> Dict[str, object]:
    """Reproduce the paper's Fig. 3 WNSS-tracing decision.

    The figure shows a node X whose two input arrivals are (357, 32) and
    (392, 35) — too close for the dominance test — while deeper in the cone
    the candidate arrivals are (320, 27) vs (310, 45) and (190, 41).  The
    statistical tracer must weigh variance contributions, not just means.
    This runner rebuilds that situation and reports which inputs the tracer
    picks and why.
    """
    arrivals = {
        "arc_a": NormalDelay(320.0, 27.0),
        "arc_b": NormalDelay(310.0, 45.0),
        "arc_c": NormalDelay(357.0, 32.0),
        "arc_d": NormalDelay(392.0, 35.0),
        "arc_e": NormalDelay(190.0, 41.0),
    }
    tracer = WNSSTracer(coupling=coupling, lam=3.0)

    # Decision at node X: inputs (357, 32) vs (392, 35).
    choice_x, method_x = tracer.pick_dominant_input(
        {"arc_c": arrivals["arc_c"], "arc_d": arrivals["arc_d"]}
    )
    # Decision one level up: inputs (320, 27) vs (310, 45): close means, very
    # different sigmas — the sensitivity comparison must prefer the noisier arc.
    choice_y, method_y = tracer.pick_dominant_input(
        {"arc_a": arrivals["arc_a"], "arc_b": arrivals["arc_b"]}
    )
    # And a clearly dominated pair: (392, 35) vs (190, 41).
    choice_z, method_z = tracer.pick_dominant_input(
        {"arc_d": arrivals["arc_d"], "arc_e": arrivals["arc_e"]}
    )

    sens = variance_sensitivities(320.0, 27.0, 310.0, 45.0, coupling)
    return {
        "arrivals": arrivals,
        "node_x": {"chosen": choice_x, "method": method_x},
        "node_y": {"chosen": choice_y, "method": method_y},
        "node_z": {"chosen": choice_z, "method": method_z},
        "sensitivities_y": {"arc_a": sens[0], "arc_b": sens[1]},
    }


# ---------------------------------------------------------------------------
# Figure 4 — mean/sigma trade-off sweep
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Point:
    """One point of the Fig. 4 normalized mean vs sigma plot."""

    lam: float
    mean: float
    sigma: float
    normalized_mean: float
    normalized_sigma: float
    area: float


def run_fig4_sweep(
    circuit_name: str = "c432",
    lams: Sequence[float] = (0.0, 3.0, 6.0, 9.0),
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
    jobs: int = 1,
    out_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    cell_timeout: Optional[float] = None,
    max_retries: int = 0,
) -> List[Fig4Point]:
    """Regenerate Figure 4: (mu, sigma) of one circuit across lambda values.

    Values are normalized to the original (mean-optimized, lambda = 0) design
    point, as in the paper's plot: the x axis is mu / mu_original, the y axis
    sigma / mu_original.

    A thin driver over :func:`repro.runner.sweep.run_cells` — each lambda is
    one independent cell (every worker re-derives the deterministic
    mean-delay baseline), so the sweep parallelizes and resumes exactly like
    :func:`run_table1`.  ``sizer_config`` is re-targeted per lambda with
    :func:`~repro.runner.sweep.config_with_lam`, preserving all its tuning
    fields.
    """
    specs = fig4_specs(
        circuit_name, lams, sizer_config=sizer_config, substrates=substrates
    )
    report = run_cells(
        specs, jobs=jobs, out_dir=out_dir, resume=resume, progress=progress,
        cell_timeout=cell_timeout, max_retries=max_retries,
    )
    results = [result.result for result in report.results]
    if not results:
        return []
    # Every cell measures the same deterministic baseline; normalize to it.
    mu0 = results[0]["original_mean"] or 1.0
    return [
        Fig4Point(
            lam=cell["lam"],
            mean=cell["mean"],
            sigma=cell["sigma"],
            normalized_mean=cell["mean"] / mu0,
            normalized_sigma=cell["sigma"] / mu0,
            area=cell["area"],
        )
        for cell in results
    ]
