"""Experiment harnesses, metrics and text reporting.

* :mod:`repro.analysis.metrics` — the per-circuit quantities Table 1 reports
  (sigma/mu, percentage deltas, area) computed from flow results.
* :mod:`repro.analysis.experiments` — runners that regenerate Table 1,
  Figure 1 (output-delay pdfs), Figure 3 (WNSS trace example) and Figure 4
  (mean-sigma trade-off sweep).
* :mod:`repro.analysis.report` — plain-text table formatting used by the
  examples and benchmark harnesses.
"""

from repro.analysis.metrics import Table1Row, summarize_rows
from repro.analysis.experiments import (
    Fig1Curves,
    Fig4Point,
    run_table1_row,
    run_table1,
    run_fig1,
    run_fig3_example,
    run_fig4_sweep,
)
from repro.analysis.report import format_table, format_table1, format_fig4
from repro.analysis.timing_yield import (
    YieldReport,
    period_for_yield,
    timing_yield,
    yield_improvement,
)

__all__ = [
    "YieldReport",
    "period_for_yield",
    "timing_yield",
    "yield_improvement",
    "Table1Row",
    "summarize_rows",
    "Fig1Curves",
    "Fig4Point",
    "run_table1_row",
    "run_table1",
    "run_fig1",
    "run_fig3_example",
    "run_fig4_sweep",
    "format_table",
    "format_table1",
    "format_fig4",
]
