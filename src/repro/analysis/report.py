"""Plain-text table rendering for experiment results.

The benchmark harnesses and examples print their results through these
helpers so the regenerated Table 1 / Figure 4 data appears in the same
shape as the paper's tables, making paper-vs-measured comparison easy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.experiments import Fig4Point
from repro.analysis.metrics import Table1Row, summarize_rows


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for cells in rendered:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def format_table1(rows: Iterable[Table1Row], include_summary: bool = True) -> str:
    """Render Table-1 rows in the paper's column order, grouped by lambda."""
    rows = list(rows)
    headers = [
        "circuit",
        "gates",
        "lambda",
        "orig s/m",
        "dMean%",
        "dSigma%",
        "s/m",
        "dArea%",
        "runtime_s",
    ]
    body = [
        (
            r.circuit,
            r.gates,
            f"{r.lam:g}",
            f"{r.original_cv:.3f}",
            f"{r.mean_increase_pct:+.1f}",
            f"{r.sigma_change_pct:+.1f}",
            f"{r.final_cv:.3f}",
            f"{r.area_increase_pct:+.1f}",
            f"{r.runtime_seconds:.1f}",
        )
        for r in sorted(rows, key=lambda r: (r.lam, r.circuit))
    ]
    text = format_table(headers, body)
    if include_summary:
        for lam in sorted({r.lam for r in rows}):
            summary = summarize_rows([r for r in rows if r.lam == lam])
            text += (
                f"\naverage (lambda={lam:g}): "
                f"sigma reduction {summary['avg_sigma_reduction_pct']:.1f}%, "
                f"area increase {summary['avg_area_increase_pct']:.1f}%, "
                f"mean increase {summary['avg_mean_increase_pct']:.1f}%"
            )
    return text


def format_fig4(points: Iterable[Fig4Point]) -> str:
    """Render the Fig. 4 sweep as a normalized (mean, sigma) table."""
    headers = ["lambda", "mean_ps", "sigma_ps", "mean/mu0", "sigma/mu0", "area_um2"]
    body = [
        (
            f"{p.lam:g}",
            f"{p.mean:.1f}",
            f"{p.sigma:.2f}",
            f"{p.normalized_mean:.4f}",
            f"{p.normalized_sigma:.4f}",
            f"{p.area:.0f}",
        )
        for p in points
    ]
    return format_table(headers, body)


def format_pdf_curve(
    pdf_tuples: Sequence[Sequence[float]], width: int = 50, label: str = ""
) -> str:
    """Tiny ASCII rendering of a discrete pdf (used by the Fig. 1 example)."""
    if not pdf_tuples:
        return f"{label}: (empty)"
    max_p = max(p for _, p in pdf_tuples) or 1.0
    lines = [f"{label}"] if label else []
    for value, prob in pdf_tuples:
        bar = "#" * int(round(width * prob / max_p))
        lines.append(f"{value:10.1f} ps | {bar}")
    return "\n".join(lines)


def _markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_criticality_report(data: Dict, markdown: bool = False) -> str:
    """Render a criticality-report payload as plain text or markdown.

    ``data`` is the dict produced by
    :func:`repro.analysis.metrics.criticality_report_data`; the JSON form of
    a report is simply ``json.dumps(data)``.
    """
    table = _markdown_table if markdown else format_table
    heading = (lambda text: f"## {text}") if markdown else (lambda text: f"== {text} ==")
    sections: List[str] = []

    title = (
        f"Statistical criticality report: {data['circuit']} "
        f"({data['gates']} gates)"
    )
    sections.append(f"# {title}" if markdown else title)
    if "clock_period" in data:
        sections.append(f"clock period: {data['clock_period']:.1f} ps")
    sections.append(
        f"source criticality mass: {data['source_mass']:.6f} (conserved ~1)"
    )

    mc = data.get("monte_carlo")
    if mc:
        sections.append(
            f"Monte-Carlo cross-check ({mc['num_samples']} samples): "
            f"max |analytic - MC| gate criticality "
            f"{mc['max_abs_gate_error']:.4f}, "
            f"mean {mc['mean_abs_gate_error']:.5f}"
        )

    has_mc = mc is not None
    out_headers = ["output", "P(critical)", *(["MC freq"] if has_mc else [])]
    out_rows = [
        [row["net"], f"{row['probability']:.4f}",
         *([f"{row.get('mc_frequency', 0.0):.4f}"] if has_mc else [])]
        for row in data["outputs"]
    ]
    sections.append(heading("Output criticality") + "\n" + table(out_headers, out_rows))

    gate_headers = ["gate", "cell", "size", "criticality",
                    *(["MC freq"] if has_mc else [])]
    gate_rows = [
        [row["gate"], row["cell"], row["size"], f"{row['criticality']:.4f}",
         *([f"{row.get('mc_frequency', 0.0):.4f}"] if has_mc else [])]
        for row in data["gate_criticality"]
    ]
    sections.append(
        heading("Gate criticality (top)") + "\n" + table(gate_headers, gate_rows)
    )

    path_headers = [
        "rank", "criticality", "output", "source", "len", "arrival", "path",
        *(["MC freq"] if has_mc else []),
    ]
    path_rows = []
    for row in data["top_paths"]:
        gates = row["gates"]
        shown = (
            " > ".join(gates)
            if len(gates) <= 6
            else " > ".join(gates[:3]) + f" > ... > {gates[-1]}"
        )
        path_rows.append(
            [
                row["rank"],
                f"{row['criticality']:.4f}",
                row["output"],
                row["source"],
                row["length"],
                f"{row['arrival_mean']:.1f}+/-{row['arrival_sigma']:.1f}",
                shown,
                *([f"{row.get('mc_frequency', 0.0):.4f}"] if has_mc else []),
            ]
        )
    sections.append(
        heading(
            f"Top statistical paths (combined mass "
            f"{data['top_path_mass']:.4f})"
        )
        + "\n"
        + table(path_headers, path_rows)
    )

    if data.get("worst_slacks"):
        slack_headers = ["net", "slack mean (ps)", "sigma"]
        slack_rows = [
            [row["net"], f"{row['mean']:.1f}", f"{row['sigma']:.2f}"]
            for row in data["worst_slacks"]
        ]
        sections.append(
            heading("Worst statistical slacks") + "\n" + table(slack_headers, slack_rows)
        )
    for histogram in data.get("slack_histograms", []):
        curve = format_pdf_curve(
            histogram["pdf"],
            label=(
                f"slack pdf of {histogram['gate']} "
                f"(mean {histogram['mean']:.1f} ps, "
                f"sigma {histogram['sigma']:.2f} ps)"
            ),
        )
        sections.append("```\n" + curve + "\n```" if markdown else curve)
    return "\n\n".join(sections)
