"""Parametric timing-yield analysis.

The paper motivates variance reduction partly through yield: "Decreasing
variance can increase the overall yield of a design.  An example of this is
optimization 1 in Fig. 1 which yields more functional units at period T
relative to the original design."  This module quantifies that argument:

* :func:`timing_yield` — probability that a design meets a clock period,
  from either the normal output moments (FASSTA/FULLSSTA) or a discrete pdf
  or Monte-Carlo samples;
* :func:`period_for_yield` — the clock period needed to hit a yield target;
* :func:`yield_improvement` — the Fig. 1 comparison between an original and
  an optimized design at a fixed period;
* :class:`YieldReport` — all three views for one design.

All yields are *parametric timing* yields (delay-limited only); functional
and defect-limited yield are out of scope, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.discrete_pdf import DiscretePDF
from repro.core.rv import NormalDelay

#: Accepted descriptions of a design's delay distribution.
DelayDistribution = Union[NormalDelay, DiscretePDF, Sequence[float], np.ndarray]


def _as_cdf(distribution: DelayDistribution):
    """Return a callable ``cdf(t) = P(delay <= t)`` for any supported input."""
    if isinstance(distribution, NormalDelay):
        mean, sigma = distribution.mean, distribution.sigma

        def cdf(t: float) -> float:
            if sigma == 0.0:
                return 1.0 if t >= mean else 0.0
            z = (t - mean) / (sigma * math.sqrt(2.0))
            return 0.5 * (1.0 + math.erf(z))

        return cdf
    if isinstance(distribution, DiscretePDF):
        return distribution.cdf
    samples = np.asarray(distribution, dtype=float)
    if samples.size == 0:
        raise ValueError("an empirical delay distribution needs at least one sample")

    def empirical_cdf(t: float) -> float:
        return float(np.mean(samples <= t))

    return empirical_cdf


def timing_yield(distribution: DelayDistribution, clock_period: float) -> float:
    """Fraction of manufactured parts whose delay meets ``clock_period``."""
    if clock_period < 0:
        raise ValueError("clock_period must be non-negative")
    return float(_as_cdf(distribution)(clock_period))


def period_for_yield(distribution: DelayDistribution, target_yield: float) -> float:
    """Smallest clock period that achieves ``target_yield``.

    For normal moments this is the exact quantile; for discrete pdfs it is
    the generalized inverse CDF (:meth:`DiscretePDF.quantile`); for sample
    sets it is the inverted ECDF — the smallest *sample* whose empirical
    yield reaches the target.  ``np.quantile``'s default linear
    interpolation would instead return a period strictly between two
    samples whose empirical yield falls *below* the target, contradicting
    this function's contract; ``method="inverted_cdf"`` guarantees
    ``timing_yield(samples, period_for_yield(samples, q)) >= q``.
    """
    if not 0.0 < target_yield < 1.0:
        raise ValueError("target_yield must be in (0, 1)")
    if isinstance(distribution, NormalDelay):
        return distribution.quantile(target_yield)
    if isinstance(distribution, DiscretePDF):
        return distribution.quantile(target_yield)
    samples = np.asarray(distribution, dtype=float)
    if samples.size == 0:
        raise ValueError("an empirical delay distribution needs at least one sample")
    return float(np.quantile(samples, target_yield, method="inverted_cdf"))


def yield_improvement(
    original: DelayDistribution,
    optimized: DelayDistribution,
    clock_period: float,
) -> float:
    """Absolute yield gain (optimized minus original) at ``clock_period``.

    This is the Fig. 1 argument in one number: at a period T between the two
    distribution centres, the narrower (variance-optimized) distribution
    yields more good parts even if its mean is slightly larger.
    """
    return timing_yield(optimized, clock_period) - timing_yield(original, clock_period)


@dataclass(frozen=True)
class YieldReport:
    """Timing-yield summary of one design at one clock period."""

    clock_period: float
    yield_fraction: float
    period_for_90: float
    period_for_99: float
    period_for_3sigma: float

    @classmethod
    def from_distribution(
        cls, distribution: DelayDistribution, clock_period: float
    ) -> "YieldReport":
        return cls(
            clock_period=clock_period,
            yield_fraction=timing_yield(distribution, clock_period),
            period_for_90=period_for_yield(distribution, 0.90),
            period_for_99=period_for_yield(distribution, 0.99),
            period_for_3sigma=period_for_yield(distribution, 0.99865),
        )

    def as_dict(self) -> dict:
        return {
            "clock_period": self.clock_period,
            "yield_fraction": self.yield_fraction,
            "period_for_90": self.period_for_90,
            "period_for_99": self.period_for_99,
            "period_for_3sigma": self.period_for_3sigma,
        }
