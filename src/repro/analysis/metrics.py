"""Table-1 style metrics and criticality-report payloads.

The paper summarises every (circuit, lambda) experiment with five numbers:
the change in mean delay, the change in sigma, the resulting sigma/mu ratio,
the change in area, and the runtime.  :class:`Table1Row` holds one such row
plus the raw quantities it was derived from; :func:`summarize_rows` computes
the headline averages the abstract quotes (72 % sigma reduction for 20 %
area at lambda = 9).

:func:`criticality_report_data` assembles the JSON-able payload of a
statistical-criticality report (gate criticality table, top-k paths, slack
summaries, optional Monte-Carlo agreement); the renderers in
:mod:`repro.analysis.report` and the ``repro-sizer report`` CLI command
consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Sequence

from repro.flow import FlowResult


@dataclass
class Table1Row:
    """One (circuit, lambda) entry of the paper's Table 1."""

    circuit: str
    lam: float
    gates: int
    original_cv: float
    mean_increase_pct: float
    sigma_change_pct: float  # negative = reduction, matching the paper's sign
    final_cv: float
    area_increase_pct: float
    runtime_seconds: float
    original_mean: float = 0.0
    original_sigma: float = 0.0
    final_mean: float = 0.0
    final_sigma: float = 0.0

    @classmethod
    def from_flow(cls, circuit_name: str, flow: FlowResult) -> "Table1Row":
        return cls(
            circuit=circuit_name,
            lam=flow.lam,
            gates=flow.circuit.num_gates(),
            original_cv=flow.original_cv,
            mean_increase_pct=flow.mean_increase_pct,
            sigma_change_pct=-flow.sigma_reduction_pct,
            final_cv=flow.final_cv,
            area_increase_pct=flow.area_increase_pct,
            runtime_seconds=flow.sizer_result.runtime_seconds,
            original_mean=flow.original_rv.mean,
            original_sigma=flow.original_rv.sigma,
            final_mean=flow.final_rv.mean,
            final_sigma=flow.final_rv.sigma,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "circuit": self.circuit,
            "lambda": self.lam,
            "gates": self.gates,
            "original_cv": self.original_cv,
            "mean_increase_pct": self.mean_increase_pct,
            "sigma_change_pct": self.sigma_change_pct,
            "final_cv": self.final_cv,
            "area_increase_pct": self.area_increase_pct,
            "runtime_seconds": self.runtime_seconds,
        }


def summarize_rows(rows: Iterable[Table1Row]) -> Dict[str, float]:
    """Averages over a set of Table-1 rows (the paper's headline numbers)."""
    rows = list(rows)
    if not rows:
        return {
            "num_circuits": 0,
            "avg_sigma_reduction_pct": 0.0,
            "avg_area_increase_pct": 0.0,
            "avg_mean_increase_pct": 0.0,
        }
    return {
        "num_circuits": len(rows),
        "avg_sigma_reduction_pct": -sum(r.sigma_change_pct for r in rows) / len(rows),
        "avg_area_increase_pct": sum(r.area_increase_pct for r in rows) / len(rows),
        "avg_mean_increase_pct": sum(r.mean_increase_pct for r in rows) / len(rows),
    }


def criticality_report_data(
    circuit,
    crit_result,
    paths: Sequence,
    slack_result=None,
    mc_result=None,
    max_gates: int = 20,
    max_slack_histograms: int = 3,
) -> Dict[str, Any]:
    """JSON-able payload of one statistical-criticality report.

    Parameters
    ----------
    circuit:
        The analysed :class:`~repro.netlist.circuit.Circuit`.
    crit_result:
        A :class:`~repro.criticality.analysis.CriticalityResult`.
    paths:
        Extracted :class:`~repro.criticality.paths.StatisticalPath` objects
        (already limited to the requested k).
    slack_result:
        Optional :class:`~repro.criticality.slack.SlackResult`; adds slack
        summaries and histograms of the worst gates.
    mc_result:
        Optional
        :class:`~repro.criticality.mc.MonteCarloCriticalityResult`; adds
        empirical frequencies next to every analytic probability (its
        ``path_frequency`` must have been computed for ``paths``).
    max_gates:
        Number of rows kept in the gate-criticality table.
    max_slack_histograms:
        Number of worst-slack gates whose discretized pdfs are included.
    """
    mc_gate = mc_result.gate_frequency if mc_result is not None else {}
    mc_out = mc_result.output_frequency if mc_result is not None else {}
    mc_paths = list(mc_result.path_frequency) if mc_result is not None else []

    outputs = [
        {
            "net": net,
            "probability": prob,
            **({"mc_frequency": mc_out[net]} if net in mc_out else {}),
        }
        for net, prob in sorted(
            crit_result.output_probabilities.items(), key=lambda kv: -kv[1]
        )
    ]
    gate_rows = []
    for name, value in crit_result.top_gates(max_gates):
        gate = circuit.gate(name)
        row = {
            "gate": name,
            "cell": gate.cell_type,
            "size": gate.size_index,
            "criticality": value,
        }
        if mc_result is not None:
            row["mc_frequency"] = mc_gate.get(name, 0.0)
        gate_rows.append(row)

    path_rows = []
    for rank, path in enumerate(paths):
        row = {
            "rank": rank + 1,
            "output": path.output_net,
            "source": path.source_net,
            "criticality": path.criticality,
            "length": len(path.gates),
            "arrival_mean": path.arrival_rv.mean,
            "arrival_sigma": path.arrival_rv.sigma,
            "exact": bool(getattr(path, "exact", True)),
            "gates": list(path.gates),
        }
        if rank < len(mc_paths):
            row["mc_frequency"] = mc_paths[rank]
        path_rows.append(row)

    data: Dict[str, Any] = {
        "circuit": circuit.name,
        "gates": circuit.num_gates(),
        "outputs": outputs,
        "gate_criticality": gate_rows,
        "top_paths": path_rows,
        "top_path_mass": float(sum(p.criticality for p in paths)),
        "source_mass": crit_result.total_source_mass(),
    }
    if slack_result is not None:
        worst = slack_result.worst_slacks(max_gates)
        data["clock_period"] = slack_result.clock_period
        data["worst_slacks"] = [
            {"net": net, "mean": rv.mean, "sigma": rv.sigma}
            for net, rv in worst
        ]
        histograms = []
        ranked_gates = sorted(
            slack_result.slack_pdfs.items(),
            key=lambda kv: (kv[1].mean(), kv[0]),
        )[:max_slack_histograms]
        for name, pdf in ranked_gates:
            histograms.append(
                {
                    "gate": name,
                    "mean": pdf.mean(),
                    "sigma": pdf.std(),
                    "pdf": [list(point) for point in pdf.as_tuples()],
                }
            )
        data["slack_histograms"] = histograms
    if mc_result is not None:
        data["monte_carlo"] = {
            "num_samples": mc_result.num_samples,
            "max_abs_gate_error": mc_result.max_abs_gate_error(
                crit_result.gate_criticality
            ),
            "mean_abs_gate_error": mc_result.mean_abs_gate_error(
                crit_result.gate_criticality
            ),
        }
    return data
