"""Table-1 style metrics.

The paper summarises every (circuit, lambda) experiment with five numbers:
the change in mean delay, the change in sigma, the resulting sigma/mu ratio,
the change in area, and the runtime.  :class:`Table1Row` holds one such row
plus the raw quantities it was derived from; :func:`summarize_rows` computes
the headline averages the abstract quotes (72 % sigma reduction for 20 %
area at lambda = 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.flow import FlowResult


@dataclass
class Table1Row:
    """One (circuit, lambda) entry of the paper's Table 1."""

    circuit: str
    lam: float
    gates: int
    original_cv: float
    mean_increase_pct: float
    sigma_change_pct: float  # negative = reduction, matching the paper's sign
    final_cv: float
    area_increase_pct: float
    runtime_seconds: float
    original_mean: float = 0.0
    original_sigma: float = 0.0
    final_mean: float = 0.0
    final_sigma: float = 0.0

    @classmethod
    def from_flow(cls, circuit_name: str, flow: FlowResult) -> "Table1Row":
        return cls(
            circuit=circuit_name,
            lam=flow.lam,
            gates=flow.circuit.num_gates(),
            original_cv=flow.original_cv,
            mean_increase_pct=flow.mean_increase_pct,
            sigma_change_pct=-flow.sigma_reduction_pct,
            final_cv=flow.final_cv,
            area_increase_pct=flow.area_increase_pct,
            runtime_seconds=flow.sizer_result.runtime_seconds,
            original_mean=flow.original_rv.mean,
            original_sigma=flow.original_rv.sigma,
            final_mean=flow.final_rv.mean,
            final_sigma=flow.final_rv.sigma,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "circuit": self.circuit,
            "lambda": self.lam,
            "gates": self.gates,
            "original_cv": self.original_cv,
            "mean_increase_pct": self.mean_increase_pct,
            "sigma_change_pct": self.sigma_change_pct,
            "final_cv": self.final_cv,
            "area_increase_pct": self.area_increase_pct,
            "runtime_seconds": self.runtime_seconds,
        }


def summarize_rows(rows: Iterable[Table1Row]) -> Dict[str, float]:
    """Averages over a set of Table-1 rows (the paper's headline numbers)."""
    rows = list(rows)
    if not rows:
        return {
            "num_circuits": 0,
            "avg_sigma_reduction_pct": 0.0,
            "avg_area_increase_pct": 0.0,
            "avg_mean_increase_pct": 0.0,
        }
    return {
        "num_circuits": len(rows),
        "avg_sigma_reduction_pct": -sum(r.sigma_change_pct for r in rows) / len(rows),
        "avg_area_increase_pct": sum(r.area_increase_pct for r in rows) / len(rows),
        "avg_mean_increase_pct": sum(r.mean_increase_pct for r in rows) / len(rows),
    }
