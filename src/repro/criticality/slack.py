"""Statistical slacks: backward required-time propagation and slack PDFs.

Deterministic STA defines slack as ``required - arrival``; statistically
both terms are random variables.  Required times propagate *backwards*
through the circuit:

* a primary output's required time is the clock period ``T``
  (deterministic);
* a net's required time is the statistical **min** over its load gates of
  ``required(load output) - delay(load)``.  The min of independent normals
  is evaluated through Clark on the negated moments
  (``min(A, B) = -max(-A, -B)``), mirroring the forward max.

The slack RV at a net is then ``required - arrival`` with means subtracted
and variances added (the independence approximation the engines already
make for the forward max).  Per-gate slack *PDFs* are discretized in one
batched call (:func:`repro.core.discrete_pdf.batched_from_normal`), so a
whole circuit's slack histograms cost one vectorized pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core import clark
from repro.core.discrete_pdf import (
    DEFAULT_SAMPLES,
    DiscretePDF,
    batched_from_normal,
)
from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.netlist.circuit import Circuit


def statistical_min(a: NormalDelay, b: NormalDelay) -> NormalDelay:
    """Clark-based min of two independent normals: ``-max(-A, -B)``."""
    mean, var = clark.clark_max_fast(-a.mean, a.sigma, -b.mean, b.sigma)
    return NormalDelay(-mean, math.sqrt(max(var, 0.0)))


@dataclass
class SlackResult:
    """Statistical required times, slack RVs and slack PDFs of one circuit."""

    circuit_name: str
    clock_period: float
    #: Net -> statistical required time (outputs are pinned at the period).
    required: Dict[str, NormalDelay]
    #: Net -> slack RV ``required - arrival`` (negative mean = failing).
    slack: Dict[str, NormalDelay]
    #: Gate name -> discretized pdf of the slack at its output net.
    slack_pdfs: Dict[str, DiscretePDF]

    def slack_of(self, net: str) -> NormalDelay:
        """Slack RV at ``net`` (raises KeyError for unknown nets)."""
        return self.slack[net]

    def worst_slacks(self, k: int = 10):
        """The ``k`` smallest-mean slack nets as ``(net, rv)`` pairs."""
        ranked = sorted(self.slack.items(), key=lambda kv: (kv[1].mean, kv[0]))
        return ranked[:k]

    def negative_slack_probability(self, net: str) -> float:
        """P(slack < 0) at ``net`` under the normal approximation."""
        rv = self.slack[net]
        if rv.sigma == 0.0:
            return 1.0 if rv.mean < 0.0 else 0.0
        return clark.capital_phi(-rv.mean / rv.sigma)


def compute_slacks(
    circuit: Circuit,
    arrivals: Mapping[str, NormalDelay],
    gate_delays: Mapping[str, NormalDelay],
    clock_period: Optional[float] = None,
    lam: float = 3.0,
    num_samples: int = DEFAULT_SAMPLES,
) -> SlackResult:
    """Backward required-time propagation and slack PDFs for ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    arrivals:
        Net -> arrival moments from a forward FASSTA/FULLSSTA run.
    gate_delays:
        Gate name -> delay moments from the same run
        (:attr:`~repro.core.fassta.FasstaResult.gate_delays` or
        :attr:`~repro.core.fullssta.FullSstaResult.gate_delay_moments`).
    clock_period:
        Required time at every primary output.  Defaults to the worst
        weighted output cost ``max_o (mu_o + lam * sigma_o)`` — the
        statistical analogue of a zero-worst-slack clock.
    lam:
        Weight used by the default clock period.
    num_samples:
        Samples per discretized slack pdf.
    """
    outputs = circuit.primary_outputs
    if not outputs:
        raise ValueError(f"circuit {circuit.name!r} has no outputs to analyse")
    if clock_period is None:
        clock_period = max(
            arrivals.get(net, ZERO_DELAY).mean
            + lam * arrivals.get(net, ZERO_DELAY).sigma
            for net in outputs
        )

    period_rv = NormalDelay(float(clock_period), 0.0)
    required: Dict[str, NormalDelay] = {net: period_rv for net in outputs}

    # Backward required-time pass; the compiled IR only orders forward
    # levels and this path is not per-sample.  repro-lint: allow=RL001
    for name in circuit.reverse_topological_order():
        gate = circuit.gate(name)
        # A gate output that neither reaches an output nor another gate
        # (dangling) imposes no requirement; pin it at the period — and
        # *record* that pin, so the dangling net still gets a slack entry
        # and its pdf reflects the real arrival rather than 0±0.
        out_required = required.setdefault(gate.output, period_rv)
        delay = gate_delays.get(name, ZERO_DELAY)
        candidate = NormalDelay(
            out_required.mean - delay.mean,
            math.sqrt(out_required.variance + delay.variance),
        )
        for net in gate.inputs:
            existing = required.get(net)
            required[net] = (
                candidate
                if existing is None
                else statistical_min(existing, candidate)
            )

    slack: Dict[str, NormalDelay] = {}
    for net, req in required.items():
        arr = arrivals.get(net, ZERO_DELAY)
        slack[net] = NormalDelay(
            req.mean - arr.mean, math.sqrt(req.variance + arr.variance)
        )

    gate_names = list(circuit.gates)
    gate_nets = [circuit.gate(name).output for name in gate_names]
    slack_rvs = [slack.get(net, ZERO_DELAY) for net in gate_nets]
    means = np.array([rv.mean for rv in slack_rvs], dtype=float)
    sigmas = np.array([rv.sigma for rv in slack_rvs], dtype=float)
    slack_pdfs: Dict[str, DiscretePDF] = {}
    if gate_names:
        values, probs, counts = batched_from_normal(means, sigmas, num_samples)
        for row, name in enumerate(gate_names):
            n = int(counts[row])
            slack_pdfs[name] = DiscretePDF._from_canonical(
                values[row, :n].copy(), probs[row, :n].copy()
            )
    return SlackResult(
        circuit_name=circuit.name,
        clock_period=float(clock_period),
        required=required,
        slack=slack,
        slack_pdfs=slack_pdfs,
    )
