"""Top-k statistical path extraction (branch-and-bound on criticality).

The WNSS tracer follows *one* locally-dominant input per gate; here the
local selection probabilities computed by
:class:`~repro.criticality.analysis.CriticalityAnalyzer` define a proper
probability distribution over complete output-to-input paths: the mass of a
path is the product of its output's selection probability and the edge
selection probabilities along it.  The masses of all source-to-output paths
sum to ~1 — they partition the event "which path is critical".

Extraction is a best-first branch-and-bound: partial paths live in a
max-heap keyed by their accumulated mass.  Every edge factor is <= 1, so a
partial path's mass is an upper bound on the mass of any of its
completions — popping the heap in mass order therefore yields *complete*
paths in globally non-increasing mass order, and the first ``k`` completed
pops are exactly the top-k statistical paths.  Prefixes whose bound falls
below ``min_criticality`` (or below the running k-th best completed mass)
are pruned without expansion.

On circuits whose mass is *diffuse* (deep XOR trees, multiplier arrays:
near-50/50 splits at every level) the number of prefixes above even the
top path's mass grows exponentially with depth, so exact extraction is
intractable by nature.  ``max_expansions`` bounds the search; because pops
happen in non-increasing mass order, the paths completed within the budget
are still *exactly* the global heaviest ones.  Any remaining slots are
then filled by *greedy completions* of the best-bound prefixes left on the
heap (always following the locally most probable edge) — valid paths with
exact masses, just without the global-rank guarantee; they are flagged via
:attr:`StatisticalPath.exact`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.criticality.analysis import CriticalityResult
from repro.netlist.circuit import Circuit


@dataclass
class StatisticalPath:
    """One complete statistical path with its criticality mass.

    ``gates`` runs from inputs towards the output — the same orientation as
    :class:`~repro.core.wnss.WNSSPath`, so the sizer and reports can treat
    both interchangeably.
    """

    gates: List[str]
    output_net: str
    source_net: str
    criticality: float
    arrival_rv: NormalDelay
    #: True when the path was proven to be among the global top-k; False
    #: for greedy completions emitted after the expansion budget ran out.
    exact: bool = True

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self):
        return iter(self.gates)

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self.gates


#: Default cap on heap pops per extraction; keeps diffuse-mass circuits
#: (where exact top-k is exponential) bounded while leaving orders of
#: magnitude of headroom for concentrated-mass ones.
DEFAULT_MAX_EXPANSIONS = 200_000


def extract_top_paths(
    circuit: Circuit,
    result: CriticalityResult,
    arrivals: Mapping[str, NormalDelay],
    k: int = 10,
    min_criticality: float = 0.0,
    outputs: Optional[Sequence[str]] = None,
    max_expansions: int = DEFAULT_MAX_EXPANSIONS,
) -> List[StatisticalPath]:
    """The ``k`` highest-criticality complete paths of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit the criticality ``result`` was computed on.
    result:
        A :class:`CriticalityResult` carrying output and edge selection
        probabilities.
    arrivals:
        Net -> arrival moments (used to annotate each path's output RV).
    k:
        Number of paths to return (fewer when the circuit has fewer paths
        above the pruning floor).
    min_criticality:
        Prefixes whose accumulated mass falls below this floor are pruned.
        0 disables the floor (the k-th-best bound still prunes).
    outputs:
        Restrict extraction to these output nets; defaults to every output
        carrying positive probability in ``result``.
    max_expansions:
        Cap on heap pops.  When exhausted, the (possibly fewer than ``k``)
        paths completed so far are returned — they are still the exact
        global heaviest ones, in order.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if min_criticality < 0:
        raise ValueError("min_criticality must be non-negative")
    if max_expansions < 1:
        raise ValueError("max_expansions must be >= 1")

    output_nets = (
        list(outputs) if outputs is not None else list(result.output_probabilities)
    )
    counter = itertools.count()
    # Heap entries: (-mass, tiebreak, output_net, frontier_net, gates_so_far)
    # where gates_so_far is ordered output-side first and frontier_net is the
    # net whose driver is explored next.
    heap: list = []
    for net in output_nets:
        mass = float(result.output_probabilities.get(net, 0.0))
        if mass > 0.0 and mass >= min_criticality:
            heapq.heappush(heap, (-mass, next(counter), net, net, []))

    paths: List[StatisticalPath] = []
    expansions = 0
    while heap and len(paths) < k and expansions < max_expansions:
        expansions += 1
        neg_mass, _, output_net, frontier, gates = heapq.heappop(heap)
        mass = -neg_mass
        driver = circuit.driver_of(frontier)
        if driver is None:
            # Reached a primary input (or floating net): the path is complete.
            ordered = list(reversed(gates))
            paths.append(
                StatisticalPath(
                    gates=ordered,
                    output_net=output_net,
                    source_net=frontier,
                    criticality=mass,
                    arrival_rv=arrivals.get(output_net, ZERO_DELAY),
                )
            )
            continue
        edges = result.edge_probabilities.get(driver.name, {})
        new_gates = [*gates, driver.name]
        for net, prob in edges.items():
            bound = mass * prob
            if bound <= 0.0 or bound < min_criticality:
                continue
            heapq.heappush(
                heap, (-bound, next(counter), output_net, net, new_gates)
            )

    # Budget exhausted before k completions: greedily complete the
    # best-bound prefixes so callers still get k concrete paths.
    seen = {tuple(p.gates) for p in paths}
    greedy: List[StatisticalPath] = []
    attempts = 0
    while heap and len(paths) + len(greedy) < k and attempts < 4 * k:
        attempts += 1
        neg_mass, _, output_net, frontier, gates = heapq.heappop(heap)
        mass = -neg_mass
        gates = list(gates)
        driver = circuit.driver_of(frontier)
        while driver is not None:
            gates.append(driver.name)
            edges = result.edge_probabilities.get(driver.name, {})
            if not edges:
                break
            frontier, prob = max(edges.items(), key=lambda kv: kv[1])
            mass *= prob
            driver = circuit.driver_of(frontier)
        ordered = tuple(reversed(gates))
        if mass < min_criticality or ordered in seen:
            continue
        seen.add(ordered)
        greedy.append(
            StatisticalPath(
                gates=list(ordered),
                output_net=output_net,
                source_net=frontier,
                criticality=mass,
                arrival_rv=arrivals.get(output_net, ZERO_DELAY),
                exact=False,
            )
        )
    greedy.sort(key=lambda p: -p.criticality)
    paths.extend(greedy)
    return paths


def total_path_mass(paths: Sequence[StatisticalPath]) -> float:
    """Combined criticality mass of the extracted paths (coverage metric)."""
    return float(sum(p.criticality for p in paths))
