"""Statistical criticality subsystem.

Computes gate/net/edge criticality probabilities, top-k statistical paths,
and statistical slack PDFs on top of the existing SSTA engines, plus the
Monte-Carlo cross-check that validates them.  See
:mod:`repro.criticality.analysis` for the propagation scheme.
"""

from repro.criticality.analysis import (
    CriticalityAnalyzer,
    CriticalityResult,
    selection_probabilities,
)
from repro.criticality.mc import (
    MonteCarloCriticality,
    MonteCarloCriticalityResult,
)
from repro.criticality.paths import (
    StatisticalPath,
    extract_top_paths,
    total_path_mass,
)
from repro.criticality.slack import SlackResult, compute_slacks, statistical_min

__all__ = [
    "CriticalityAnalyzer",
    "CriticalityResult",
    "selection_probabilities",
    "MonteCarloCriticality",
    "MonteCarloCriticalityResult",
    "StatisticalPath",
    "extract_top_paths",
    "total_path_mass",
    "SlackResult",
    "compute_slacks",
    "statistical_min",
]
