"""Statistical criticality probabilities (gate / net / edge).

The WNSS trace of §4.4 extracts exactly *one* statistical worst path, but
its own premise — "every input of a statistical max contributes to the
result" — means the probability mass of being critical is spread over many
near-critical paths.  This module turns that observation into numbers: for
every gate, net and gate-input edge, the probability that it lies on the
*statistically critical path* of the circuit.

The computation is the classical two-pass criticality propagation:

1. **forward** — arrival-time moments at every net, supplied by the caller
   (FASSTA's ``arrivals`` or FULLSSTA's ``arrival_moments``; both engines
   already record exactly these values);
2. **local selection probabilities** — at a gate with inputs ``x_1..x_k``
   the probability that input ``j`` determines the output max is
   ``P(x_j >= max_{i != j} x_i)``.  The complement max is built from Clark
   prefix/suffix folds (:func:`repro.core.clark.clark_max_fast_arrays`),
   and the tie probability of two independent normals is
   ``Phi((mu_j - mu_c) / sqrt(sg_j^2 + sg_c^2))``.  The same formula over
   the primary-output arrivals gives each output's probability of being the
   circuit-level max;
3. **backward** — criticality mass starts at the outputs (their selection
   probabilities, or 1.0 for a single-output cone analysis) and flows
   backwards: a gate inherits the criticality of its output net, and
   distributes it over its input nets proportionally to the selection
   probabilities.  Because the per-gate probabilities are normalized to sum
   to one, mass is conserved level by level — the criticalities absorbed at
   the primary inputs of an output's fan-in cone sum to ~1.

Everything is vectorized over logic levels using the circuit's shared
array-native IR (:meth:`Circuit.compiled()
<repro.netlist.circuit.Circuit.compiled>`) — the same schedule the levelized
engines use; the backward pass is a reverse-level scatter-add.

Approximations inherited from the engines: arrival times at a gate's inputs
are treated as independent (reconvergent fanout correlation is ignored) and
the max moments come from Clark's formulae.  The Monte-Carlo cross-check in
:mod:`repro.criticality.mc` quantifies the resulting error per circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.special import ndtr as _ndtr

from repro.core.clark import clark_max_fast_arrays
from repro.core.rv import NormalDelay, ZERO_DELAY
from repro.netlist.circuit import Circuit

#: Sentinel mean used for masked-out input positions: so far below any real
#: arrival that the dominance shortcut removes it from every max.
_NEG_SENTINEL = -1.0e30


@dataclass
class CriticalityResult:
    """Criticality probabilities of one circuit under one arrival state.

    All probabilities refer to the event "the statistically critical path
    passes through this object" with respect to the analysed output set.
    """

    circuit_name: str
    #: Output net -> probability that it is the circuit-level max (the
    #: weights the backward pass was seeded with).
    output_probabilities: Dict[str, float]
    #: Gate name -> probability that the critical path passes through it.
    gate_criticality: Dict[str, float]
    #: Net name -> criticality mass flowing through the net.
    net_criticality: Dict[str, float]
    #: Gate name -> {input net -> local selection probability}.  Each inner
    #: map sums to 1: it is the conditional distribution of "which input
    #: determines this gate's output max".
    edge_probabilities: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Primary-input (or floating) net -> absorbed criticality mass.  Sums
    #: to ~1 over the analysed cone(s): total mass is conserved.
    source_criticality: Dict[str, float] = field(default_factory=dict)

    def criticality(self, gate_name: str) -> float:
        """Criticality probability of ``gate_name`` (0 for unknown gates)."""
        return self.gate_criticality.get(gate_name, 0.0)

    def top_gates(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` most critical gates as ``(name, probability)`` pairs."""
        ranked = sorted(
            self.gate_criticality.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:k]

    def total_source_mass(self) -> float:
        """Total mass absorbed at the sources (~1 when mass is conserved)."""
        return float(sum(self.source_criticality.values()))

    def gates_above(self, threshold: float) -> List[str]:
        """Names of gates whose criticality reaches ``threshold``."""
        return [
            name
            for name, value in self.gate_criticality.items()
            if value >= threshold
        ]


def selection_probabilities(
    rvs: Sequence[NormalDelay],
) -> np.ndarray:
    """P(rv_j is the maximum) for independent normal arrivals.

    Each probability compares ``rv_j`` against the Clark max of all the
    *other* entries (prefix/suffix complement folds); the vector is
    normalized to sum to one.  Used both for gate-input selection and for
    ranking primary outputs.
    """
    mu = np.array([rv.mean for rv in rvs], dtype=float)[None, :]
    sg = np.array([rv.sigma for rv in rvs], dtype=float)[None, :]
    mask = np.ones_like(mu, dtype=bool)
    return _row_selection_probs(mu, sg, mask)[0]


def _row_selection_probs(
    mu: np.ndarray, sg: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Row-wise selection probabilities over padded ``(rows, F)`` arrays.

    Masked-out positions receive probability 0; each row's valid positions
    sum to 1.  Rows with a single valid position get probability 1 there.
    """
    rows, width = mu.shape
    if width == 1:
        return mask.astype(float)

    # Replace invalid positions by a sentinel so the Clark folds ignore them.
    m = np.where(mask, mu, _NEG_SENTINEL)
    s = np.where(mask, sg, 0.0)
    v = s * s

    # Prefix maxes: pm[:, j] = max(x_0..x_j); suffix likewise from the right.
    pm = np.empty_like(m)
    pv = np.empty_like(m)
    pm[:, 0] = m[:, 0]
    pv[:, 0] = v[:, 0]
    for j in range(1, width):
        pm[:, j], pv[:, j] = clark_max_fast_arrays(
            pm[:, j - 1], np.sqrt(pv[:, j - 1]), m[:, j], s[:, j]
        )
    sm = np.empty_like(m)
    sv = np.empty_like(m)
    sm[:, -1] = m[:, -1]
    sv[:, -1] = v[:, -1]
    for j in range(width - 2, -1, -1):
        sm[:, j], sv[:, j] = clark_max_fast_arrays(
            sm[:, j + 1], np.sqrt(sv[:, j + 1]), m[:, j], s[:, j]
        )

    probs = np.zeros_like(m)
    for j in range(width):
        if j == 0:
            comp_mu, comp_var = sm[:, 1], sv[:, 1]
        elif j == width - 1:
            comp_mu, comp_var = pm[:, j - 1], pv[:, j - 1]
        else:
            comp_mu, comp_var = clark_max_fast_arrays(
                pm[:, j - 1], np.sqrt(pv[:, j - 1]), sm[:, j + 1], np.sqrt(sv[:, j + 1])
            )
        denom2 = v[:, j] + comp_var
        safe = np.sqrt(np.where(denom2 > 0.0, denom2, 1.0))
        z = (m[:, j] - comp_mu) / safe
        p = _ndtr(z)
        # Deterministic comparison when both sides have zero variance.
        # Exact ties go to the *first* tied position — the convention of the
        # scalar max folds and of ``np.argmax`` in the Monte-Carlo
        # backtrace, so zero-variance ties (all primary inputs arrive at
        # exactly t=0) route their mass identically in both models.
        deterministic = denom2 <= 0.0
        if j == 0:
            beats_earlier = np.ones(rows, dtype=bool)
        else:
            beats_earlier = pm[:, j - 1] < m[:, j]
        p = np.where(
            deterministic,
            np.where(
                m[:, j] > comp_mu,
                1.0,
                np.where(
                    (m[:, j] == comp_mu) & beats_earlier, 1.0, 0.0
                ),
            ),
            p,
        )
        probs[:, j] = np.where(mask[:, j], p, 0.0)

    totals = probs.sum(axis=1, keepdims=True)
    # A row can only total zero if every valid tie probability vanished to
    # exactly 0.0; fall back to the (valid) first position in that case.
    degenerate = totals[:, 0] <= 0.0
    if np.any(degenerate):
        first_valid = np.argmax(mask, axis=1)
        probs[degenerate, first_valid[degenerate]] = 1.0
        totals = probs.sum(axis=1, keepdims=True)
    return probs / totals


class CriticalityAnalyzer:
    """Computes criticality probabilities over one circuit.

    The levelized schedule comes from the circuit's own compiled IR
    (:meth:`Circuit.compiled() <repro.netlist.circuit.Circuit.compiled>`),
    lowered once per structure version and shared with every engine — so
    repeated analyses inside a sizing loop are cheap and the analyzer holds
    no plan state of its own.

    Parameters
    ----------
    circuit:
        The circuit to analyse.  Structural edits are detected through
        :attr:`~repro.netlist.circuit.Circuit.structure_version` and
        recompile the IR automatically.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit

    # ------------------------------------------------------------------
    def analyze(
        self,
        arrivals: Mapping[str, NormalDelay],
        outputs: Optional[Sequence[str]] = None,
        output_weights: Optional[Mapping[str, float]] = None,
    ) -> CriticalityResult:
        """Compute criticality probabilities for the given arrival state.

        Parameters
        ----------
        arrivals:
            Net -> arrival moments, as recorded by FASSTA
            (:attr:`~repro.core.fassta.FasstaResult.arrivals`) or FULLSSTA
            (:attr:`~repro.core.fullssta.FullSstaResult.arrival_moments`).
            Unknown nets default to a zero arrival, like the engines.
        outputs:
            Output nets seeding the backward pass.  Defaults to the
            circuit's primary outputs.  Passing a single net analyses that
            output's fan-in cone alone (its weight is then 1.0).
        output_weights:
            Explicit output seed masses, overriding the Clark-based output
            selection probabilities.  Must be non-negative.
        """
        circuit = self.circuit
        plan = circuit.compiled()
        output_nets = list(outputs) if outputs is not None else circuit.primary_outputs
        if not output_nets:
            raise ValueError(f"circuit {circuit.name!r} has no outputs to analyse")
        missing = [
            net
            for net in output_nets
            if net not in plan.net_index and net not in arrivals
        ]
        if missing:
            raise KeyError(
                f"unknown output net(s) {missing} in circuit {circuit.name!r}"
            )

        if output_weights is not None:
            weights = {net: float(output_weights.get(net, 0.0)) for net in output_nets}
            if any(w < 0 for w in weights.values()):
                raise ValueError("output weights must be non-negative")
        elif len(output_nets) == 1:
            weights = {output_nets[0]: 1.0}
        else:
            probs = selection_probabilities(
                [arrivals.get(net, ZERO_DELAY) for net in output_nets]
            )
            weights = {}
            for net, p in zip(output_nets, probs, strict=True):
                weights[net] = weights.get(net, 0.0) + float(p)

        # Arrival moments per slot.
        mu = np.zeros(plan.num_nets)
        sg = np.zeros(plan.num_nets)
        for net, idx in plan.net_index.items():
            rv = arrivals.get(net)
            if rv is not None:
                mu[idx] = rv.mean
                sg[idx] = rv.sigma

        crit = np.zeros(plan.num_nets)
        for net, weight in weights.items():
            idx = plan.net_index.get(net)
            if idx is not None and weight:
                crit[idx] += weight

        gate_criticality: Dict[str, float] = {}
        edge_probabilities: Dict[str, Dict[str, float]] = {}
        for block in reversed(plan.levels):
            names, out_ids = block.names, block.out_slots
            in_ids, in_mask = block.in_slots, block.in_mask
            in_mu = mu[in_ids]
            in_sg = sg[in_ids]
            probs = _row_selection_probs(in_mu, in_sg, in_mask)
            gate_crit = crit[out_ids]
            contrib = gate_crit[:, None] * probs
            np.add.at(crit, in_ids[in_mask], contrib[in_mask])
            for row, name in enumerate(names):
                gate_criticality[name] = float(gate_crit[row])
                gate = circuit.gate(name)
                edges: Dict[str, float] = {}
                for col, net in enumerate(gate.inputs):
                    edges[net] = edges.get(net, 0.0) + float(probs[row, col])
                edge_probabilities[name] = edges

        net_criticality = {
            net: float(crit[idx]) for net, idx in plan.net_index.items()
        }
        sources = set(circuit.primary_inputs) | plan.floating
        source_criticality = {
            net: net_criticality.get(net, 0.0) for net in sorted(sources)
        }
        return CriticalityResult(
            circuit_name=circuit.name,
            output_probabilities=weights,
            gate_criticality=gate_criticality,
            net_criticality=net_criticality,
            edge_probabilities=edge_probabilities,
            source_criticality=source_criticality,
        )
