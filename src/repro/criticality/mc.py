"""Monte-Carlo cross-check of analytic criticality probabilities.

The analytic criticalities of :mod:`repro.criticality.analysis` inherit the
engines' approximations (Clark max moments, input independence).  This
module provides the golden model: draw joint gate-delay samples exactly like
:class:`~repro.montecarlo.mc.MonteCarloTimer`, and for every draw determine
the *deterministic* critical path by backtracking argmax inputs from the
argmax output.  The frequency with which a gate (or a whole path) lies on
the per-draw critical path estimates its true criticality probability.

The backtrace is vectorized across samples: per gate one boolean
"on-the-critical-path" array is propagated backwards, and argmax-input
indicator arrays route it to the inputs — no per-sample Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.criticality.paths import StatisticalPath
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.variation.model import VariationModel


@dataclass
class MonteCarloCriticalityResult:
    """Empirical critical-path frequencies from one MC run."""

    num_samples: int
    #: Gate name -> fraction of draws whose critical path passes through it.
    gate_frequency: Dict[str, float]
    #: Output net -> fraction of draws in which it is the slowest output.
    output_frequency: Dict[str, float]
    #: Per requested path: fraction of draws whose critical path *is* it.
    path_frequency: List[float] = field(default_factory=list)

    def frequency(self, gate_name: str) -> float:
        return self.gate_frequency.get(gate_name, 0.0)

    def max_abs_gate_error(self, analytic: Dict[str, float]) -> float:
        """Largest |analytic - empirical| criticality over all gates."""
        names = set(self.gate_frequency) | set(analytic)
        return max(
            abs(analytic.get(n, 0.0) - self.gate_frequency.get(n, 0.0))
            for n in names
        )

    def mean_abs_gate_error(self, analytic: Dict[str, float]) -> float:
        """Mean |analytic - empirical| criticality over all gates."""
        names = set(self.gate_frequency) | set(analytic)
        total = sum(
            abs(analytic.get(n, 0.0) - self.gate_frequency.get(n, 0.0))
            for n in names
        )
        return total / len(names) if names else 0.0


class MonteCarloCriticality:
    """Samples which gates/paths are critical under the variation model."""

    def __init__(
        self, delay_model: BaseDelayModel, variation_model: VariationModel
    ) -> None:
        self.delay_model = delay_model
        self.variation_model = variation_model

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        num_samples: int = 2000,
        seed: Optional[int] = 0,
        paths: Optional[Sequence[StatisticalPath]] = None,
    ) -> MonteCarloCriticalityResult:
        """Estimate criticality frequencies from ``num_samples`` draws.

        ``paths`` optionally requests per-path frequencies: for each
        :class:`StatisticalPath` the returned ``path_frequency`` entry is
        the fraction of draws whose critical path coincides with it edge
        for edge (including the source net).
        """
        if num_samples < 2:
            raise ValueError("num_samples must be at least 2")
        outputs = circuit.primary_outputs
        if not outputs:
            raise ValueError(f"circuit {circuit.name!r} has no primary outputs")
        rng = np.random.default_rng(seed)
        # Draw order pins the RNG stream bit-for-bit against the MC timer.
        # repro-lint: allow=RL001
        order = circuit.topological_order()
        distributions = self.variation_model.all_gate_distributions(
            circuit, self.delay_model
        )

        # Forward pass over the compiled IR (identical sampling scheme to
        # MonteCarloTimer's independent path: draws stay in topological
        # order, so the generator stream is unchanged; propagation is
        # levelized across all samples at once).
        plan = circuit.compiled()
        delay = np.empty((plan.num_gates, num_samples))
        for name in order:
            dist = distributions[name]
            delay[plan.gate_index[name]] = rng.normal(
                dist.mean, dist.sigma, num_samples
            )

        # The sentinel row holds -inf so the padded fanin matrix folds
        # without a validity mask; argmax over the padded columns keeps
        # np.argmax's first-max tie convention for the real pins (a -inf
        # pad can never win — every gate has at least one input).
        arr = np.zeros((plan.num_nets + 1, num_samples))
        arr[plan.num_nets] = -np.inf
        fanin = plan.fanin_matrix
        offsets = plan.level_offsets
        argmax_input: Dict[str, np.ndarray] = {}
        for li, block in enumerate(plan.levels):
            start, stop = offsets[li], offsets[li + 1]
            vals = arr[fanin[start:stop]]
            worst = vals.max(axis=1)
            amax = vals.argmax(axis=1)
            out = plan.num_pis + start
            arr[out: out + (stop - start)] = worst + delay[start:stop]
            for row, name in enumerate(block.names):
                argmax_input[name] = amax[row]

        missing = [net for net in outputs if net not in plan.net_index]
        if missing:
            raise KeyError(
                f"unknown output net(s) {missing} in circuit {circuit.name!r}"
            )
        # Which output is the slowest, per draw.
        out_stack = np.stack([arr[plan.net_index[net]] for net in outputs])
        out_argmax = np.argmax(out_stack, axis=0)
        output_frequency = {
            net: float(np.mean(out_argmax == i)) for i, net in enumerate(outputs)
        }

        # Backward pass: boolean per-net "on the critical path" arrays.
        crit_net: Dict[str, np.ndarray] = {}
        for i, net in enumerate(outputs):
            sel = out_argmax == i
            existing = crit_net.get(net)
            crit_net[net] = sel if existing is None else (existing | sel)

        gate_frequency: Dict[str, float] = {}
        for name in reversed(order):
            gate = circuit.gate(name)
            g_crit = crit_net.get(gate.output)
            if g_crit is None:
                gate_frequency[name] = 0.0
                continue
            gate_frequency[name] = float(np.mean(g_crit))
            chosen = argmax_input[name]
            for idx, net in enumerate(gate.inputs):
                routed = g_crit & (chosen == idx)
                if not routed.any():
                    continue
                existing = crit_net.get(net)
                crit_net[net] = routed if existing is None else (existing | routed)

        path_frequency: List[float] = []
        if paths:
            for path in paths:
                try:
                    out_idx = outputs.index(path.output_net)
                except ValueError:
                    path_frequency.append(0.0)
                    continue
                indicator = out_argmax == out_idx
                # Walk output-side first; each gate must have chosen the
                # predecessor net on the path (the previous gate's output,
                # or the source net for the innermost gate).
                ok = True
                for pos in range(len(path.gates) - 1, -1, -1):
                    gate_name = path.gates[pos]
                    gate = circuit.gate(gate_name)
                    predecessor = (
                        path.gates[pos - 1] if pos > 0 else None
                    )
                    wanted = (
                        circuit.gate(predecessor).output
                        if predecessor is not None
                        else path.source_net
                    )
                    try:
                        pin = gate.inputs.index(wanted)
                    except ValueError:
                        ok = False
                        break
                    indicator = indicator & (argmax_input[gate_name] == pin)
                path_frequency.append(float(np.mean(indicator)) if ok else 0.0)

        return MonteCarloCriticalityResult(
            num_samples=num_samples,
            gate_frequency=gate_frequency,
            output_frequency=output_frequency,
            path_frequency=path_frequency,
        )
