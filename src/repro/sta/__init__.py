"""Deterministic static timing analysis substrate.

Provides the classic corner-based STA the paper's statistical machinery is
contrasted against: nominal arrival times, required times, slacks, and the
Worst Negative Slack (WNS) critical path.  The deterministic critical path
is also what the baseline mean-delay sizer optimizes.
"""

from repro.sta.dsta import DeterministicTimingReport, DeterministicSTA

__all__ = ["DeterministicSTA", "DeterministicTimingReport"]
